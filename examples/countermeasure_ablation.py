"""Measure the Section 7 countermeasures instead of arguing them.

Usage::

    python examples/countermeasure_ablation.py

Runs the same seeded world three times: unmodified, with provider-side
randomized resource names, and with a one-year re-registration
quarantine on released names — and compares the takeover counts.
"""

from datetime import timedelta

from repro import ScenarioConfig, run_scenario
from repro.core.reporting import render_table


def main() -> None:
    rows = []
    for label, mutate in (
        ("none (baseline)", lambda c: c),
        ("randomized resource names", _set_randomize),
        ("90-day re-registration quarantine", _set_quarantine(90)),
        ("1-year re-registration quarantine", _set_quarantine(365)),
    ):
        config = mutate(ScenarioConfig.small(seed=23))
        print(f"running: {label} ...", flush=True)
        result = run_scenario(config)
        rows.append(
            (label, len(result.ground_truth), len(result.dataset),
             result.collector.monitored_count())
        )
    print()
    print(render_table(
        ["countermeasure", "takeovers", "detected", "monitored"],
        rows,
        title="Countermeasure ablation (Section 7), same seed & world shape",
    ))
    print("\nRandomized names remove the deterministic re-registration primitive")
    print("entirely; quarantines only help while they outlast attacker patience.")


def _set_randomize(config: ScenarioConfig) -> ScenarioConfig:
    config.randomize_names = True
    return config


def _set_quarantine(days: int):
    def mutate(config: ScenarioConfig) -> ScenarioConfig:
        config.reregistration_cooldown = timedelta(days=days)
        return config

    return mutate


if __name__ == "__main__":
    main()
