"""Defender-side audit: find your own dangling records before attackers do.

Usage::

    python examples/defender_audit.py

Runs a world for a year, then plays the *defender*: survey the
organization's own DNS estate with the chain classifier (the
[18]-style hostingChecker apparatus), list what is deterministically
hijackable right now, and evaluate how well CT monitoring would have
caught the hijacks that already happened.
"""

from collections import Counter

from repro import ScenarioConfig, run_scenario
from repro.core.chains import ChainStatus, survey_attack_surface
from repro.core.ct_monitoring import evaluate_ct_monitoring
from repro.core.reporting import percent, render_table


def main() -> None:
    print("Simulating one year of Internet history...", flush=True)
    result = run_scenario(ScenarioConfig.small(seed=31))
    internet = result.internet
    now = result.end

    # 1. Audit the full monitored estate.
    fqdns = result.collector.monitored_sorted
    survey = survey_attack_surface(internet, fqdns, now)
    print(render_table(
        ["chain status", "FQDNs"], survey.rows(),
        title=f"\nEstate audit — {survey.total} FQDNs at {now.date()}",
    ))

    exposed = [r for r in survey.reports if r.hijackable]
    print(render_table(
        ["FQDN", "service", "re-registrable name"],
        [(r.fqdn, r.service_key, r.resource_name) for r in exposed[:10]],
        title=f"\nDeterministically hijackable right now: {len(exposed)}",
    ))
    if exposed:
        print("-> purge these records or re-register the names yourself, today.")

    # 2. Per-org view: the single worst-exposed organization.
    owner_counts = Counter()
    for report in survey.reports:
        if report.status in (ChainStatus.DANGLING_CNAME, ChainStatus.DANGLING_WILDCARD):
            owner_counts[".".join(report.fqdn.split(".")[-2:])] += 1
    if owner_counts:
        worst, count = owner_counts.most_common(1)[0]
        print(f"\nMost exposed SLD: {worst} with {count} dangling records")

    # 3. Would CT monitoring have caught the hijacks that DID happen?
    ct = evaluate_ct_monitoring(result.ground_truth, internet.ct_log)
    print(f"\nCT monitoring retrospective: {ct.alerted_count} of "
          f"{ct.total_hijacks} hijacks ({percent(ct.coverage)}) issued a "
          f"certificate and would have alerted a subscribed owner"
          + (f" within a median of {ct.median_latency_days:.1f} days."
             if ct.median_latency_days is not None else "."))
    print("Coverage is bounded by the attackers' certificate appetite —")
    print("CT is a tripwire, not a fence (Section 5.6.3).")


if __name__ == "__main__":
    main()
