"""Full forensic report over one simulated measurement.

Usage::

    python examples/abuse_forensics.py [--full]

Runs the scenario (the 52-week "small" world by default, the paper's
full 156-week world with ``--full``) and prints the complete set of
Section 4-6 analyses via :func:`repro.core.paper_report.build_report`,
plus the attacker-attribution drill-down (phone geolocation, backend
hosting, the Figure 27 graph export).
"""

import sys

from repro import ScenarioConfig, run_scenario
from repro.core import identifiers as identifiers_mod
from repro.core.clustering import cluster_identifiers, cooccurrence_to_dot
from repro.core.paper_report import build_report
from repro.core.reporting import render_table


def main() -> None:
    full = "--full" in sys.argv
    config = ScenarioConfig() if full else ScenarioConfig.small()
    print(f"Running {'156' if full else '52'}-week measurement...", flush=True)
    result = run_scenario(config)

    print(build_report(result))

    # Attribution drill-down (Section 6).
    imap = identifiers_mod.extract_identifiers(result.dataset, result.monitor.store)
    print(render_table(
        ["country", "phones"], identifiers_mod.phone_geo_distribution(imap),
        title="Phone geolocation (Figure 21)",
    ))
    print()
    print(render_table(
        ["hosting organization", "backend IPs"],
        identifiers_mod.ip_organizations(imap, result.internet.geoip),
        title="Backend hosting (Figure 26)",
    ))

    clusters = cluster_identifiers(imap)
    print(f"\nTop clusters (Figure 22): "
          f"{[(c.identifier_count, c.domain_count) for c in clusters.top_by_domains(5)]}")

    dot = cooccurrence_to_dot(imap)
    out_path = "attacker_infrastructure.dot"
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write(dot)
    print(f"Figure 27 network graph written to {out_path} "
          f"({dot.count('--')} co-occurrence edges) — render with graphviz neato.")


if __name__ == "__main__":
    main()
