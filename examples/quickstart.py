"""Quickstart: run one simulated year and inspect what was found.

Usage::

    python examples/quickstart.py [seed]

Builds a small world (organizations with cloud assets, attacker groups
hunting for dangling records), runs the measurement pipeline weekly for
52 simulated weeks, and prints the headline results — including the
precision/recall against ground truth that only a simulation can know.
"""

import sys

from repro import ScenarioConfig, run_scenario
from repro.core.reporting import percent, render_table
from repro.core.scoring import score_detector
from repro.core.victimology import analyze_victims, top_victims


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 42
    print(f"Running a 52-week world (seed={seed})... ", flush=True)
    result = run_scenario(ScenarioConfig.small(seed=seed))

    score = score_detector(result.dataset, result.ground_truth)
    print(
        render_table(
            ["metric", "value"],
            [
                ("monitored cloud FQDNs", result.collector.monitored_count()),
                ("actual takeovers (ground truth)", len(result.ground_truth)),
                ("abused FQDNs detected", len(result.dataset)),
                ("signatures extracted", len(result.detector.signatures)),
                ("precision", percent(score.precision)),
                ("recall", percent(score.recall)),
                ("median detection latency (days)", score.median_latency_days),
            ],
            title="Pipeline summary",
        )
    )
    print()
    report = analyze_victims(result.dataset, result.organizations)
    print(
        render_table(
            ["victim", "domain", "hijacked subdomains"],
            [
                (org.display_name, org.domain, count)
                for org, count in top_victims(result.dataset, result.organizations, limit=10)
            ],
            title=f"Top victims ({report.abused_slds} SLDs across "
                  f"{report.affected_tlds} TLDs affected)",
        )
    )
    print()
    sample = result.dataset.records()[0]
    print(f"Example detection: {sample.fqdn}")
    print(f"  topics         : {sorted(t.value for t in sample.topics)}")
    print(f"  indicators     : {sorted(sample.simplest_indicators())}")
    print(f"  sample keywords: {sorted(sample.keywords)[:8]}")
    print()
    from repro.core.timeline import build_timeline

    print(build_timeline(result, sample.fqdn).render())


if __name__ == "__main__":
    main()
