"""A subdomain-takeover walkthrough, step by step.

Usage::

    python examples/takeover_scanner.py

Demonstrates the full mechanics of Section 4.3 on a hand-built world:

1. an org provisions an Azure web app and CNAMEs a subdomain to it;
2. the org releases the resource but forgets the CNAME (dangling);
3. a scanner (the same loop dnsReaper/subjack-style tools run) spots
   the re-registrable name via passive DNS + liveness fingerprinting;
4. the attacker re-registers the freetext name, aliases the victim
   domain, deploys SEO content and obtains a fraudulent certificate;
5. a CT monitor on the victim's apex — the Section 5.6.3
   countermeasure — fires within the issuance.
"""

from datetime import timedelta

from repro.attacker.scanner import DanglingScanner
from repro.dns.records import RRType, ResourceRecord
from repro.sim.clock import SimClock
from repro.sim.rng import RngStreams
from repro.world.internet import Internet


def main() -> None:
    internet = Internet(RngStreams(7), SimClock())
    clock = internet.clock
    azure = internet.catalog.provider("Azure")

    # 1. The victim sets up shop.example.com -> shop-prod.azurewebsites.net.
    internet.whois.register("example.com", owner="Example Corp",
                            registrar="MarkMonitor",
                            created_at=clock.now - timedelta(days=365 * 14))
    zone = internet.zones.create_zone("example.com")
    resource = azure.provision("azure-web-app", "shop-prod",
                               owner="org:example", at=clock.now)
    zone.add(ResourceRecord("shop.example.com", RRType.CNAME,
                            resource.generated_fqdn), clock.now)
    azure.add_custom_domain(resource, "shop.example.com", clock.now)
    resource.site.put_index("<html><head><title>Example Shop</title></head>"
                            "<body><p>Welcome</p></body></html>")
    print(f"[week 0] victim live: shop.example.com -> {resource.generated_fqdn}")
    print(f"         fetch: {internet.client.fetch('shop.example.com', at=clock.now).response.body[:60]}")

    # The owner monitors CT for their domain (Section 5.6.3).
    alerts = []
    internet.ct_log.monitor("example.com", alerts.append)

    # 2. Months later the app is decommissioned — but not the CNAME.
    clock.advance_days(120)
    azure.release(resource, clock.now)
    result = internet.resolver.resolve_a_with_chain("shop.example.com", at=clock.now)
    print(f"[week 17] resource released; shop.example.com now {result.status.value} "
          f"via chain {result.cname_chain}")

    # 3. Attacker-side reconnaissance finds the dangling record.
    scanner = DanglingScanner(internet)
    candidates = scanner.find_candidates(clock.now)
    assert candidates, "scanner should find the dangling record"
    candidate = candidates[0]
    print(f"[week 17] scanner: {candidate.generated_fqdn} is re-registrable "
          f"(service {candidate.service_key}), victims {candidate.victim_fqdns}, "
          f"reputation {candidate.reputation:.1f}")

    # 4. Deterministic re-registration + alias + content + certificate.
    clock.advance_days(7)
    hijack = azure.provision(candidate.service_key, candidate.resource_name,
                             owner="attacker:demo", at=clock.now)
    azure.add_custom_domain(hijack, "shop.example.com", clock.now)
    hijack.site.put_index(
        '<html lang="id"><head><title>slot gacor</title>'
        '<meta name="keywords" content="slot, judi, gacor"></head>'
        '<body><a href="https://mega-gacor.bet/play?ref=demo1">DAFTAR</a></body></html>'
    )
    page = internet.client.fetch("shop.example.com", at=clock.now)
    print(f"[week 18] hijacked! shop.example.com now serves: {page.response.body[:70]}...")

    certificate = internet.issue_certificate(hijack, "shop.example.com", clock.now)
    https = internet.client.fetch("shop.example.com", scheme="https", at=clock.now)
    print(f"[week 18] fraudulent cert issued by {certificate.issuer} "
          f"(single-SAN: {certificate.is_single_san}); https fetch ok: {https.ok}")

    # 5. The CT monitor caught it.
    print(f"[week 18] CT monitor alerts for example.com: {len(alerts)} "
          f"(latest covers {alerts[-1].certificate.sans})")
    print("\nTakeaway: the whole attack needed one free registration — and the")
    print("only timely owner-side tripwire was Certificate Transparency.")


if __name__ == "__main__":
    main()
