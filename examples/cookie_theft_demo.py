"""Cookie theft under different hijack capability levels (Section 5.5).

Usage::

    python examples/cookie_theft_demo.py

Hijacks two resources — an S3 static bucket (content control only) and
an Azure web app (full webserver) — and shows exactly which of a
victim's cookies each attacker can capture, including the role of the
HttpOnly and Secure flags and of the fraudulent certificate.
"""

from datetime import timedelta

from repro.attacker.stealing import CookieStealingSite
from repro.dns.records import RRType, ResourceRecord
from repro.sim.clock import SimClock
from repro.sim.rng import RngStreams
from repro.web.cookies import Cookie, CookieJar
from repro.world.internet import Internet


def build_jar() -> CookieJar:
    jar = CookieJar()
    jar.set(Cookie(name="session_plain", value="A", domain="victim.com",
                   is_authentication=True))
    jar.set(Cookie(name="session_httponly", value="B", domain="victim.com",
                   http_only=True, is_authentication=True))
    jar.set(Cookie(name="session_secure", value="C", domain="victim.com",
                   secure=True, http_only=True, is_authentication=True))
    return jar


def hijack(internet, service_key, provider_name, label, fqdn, at):
    provider = internet.catalog.provider(provider_name)
    victim = provider.provision(service_key, label, owner="org:victim", at=at)
    zone = internet.zones.get_zone("victim.com")
    zone.add(ResourceRecord(fqdn, RRType.CNAME, victim.generated_fqdn), at)
    provider.add_custom_domain(victim, fqdn, at)
    provider.release(victim, at + timedelta(days=30))
    later = at + timedelta(days=37)
    stolen = provider.provision(service_key, label, owner="attacker:demo",
                                at=later, region=victim.region)
    provider.add_custom_domain(stolen, fqdn, later)
    site = CookieStealingSite(stolen.access)
    site.put_index("<html><body>totally legit</body></html>")
    provider.replace_site(stolen, site)
    return stolen, site, later


def visit(internet, fqdn, jar, scheme, at):
    outcome = internet.client.fetch(fqdn, scheme=scheme, at=at, cookie_jar=jar,
                                    headers={"X-Client-IP": "203.0.113.5"})
    return outcome


def main() -> None:
    internet = Internet(RngStreams(3), SimClock())
    at = internet.clock.now
    internet.whois.register("victim.com", owner="Victim Org", registrar="GoDaddy",
                            created_at=at - timedelta(days=4000))
    internet.zones.create_zone("victim.com")

    s3_res, s3_site, when = hijack(
        internet, "aws-s3-static", "AWS", "victim-static", "files.victim.com", at
    )
    app_res, app_site, _ = hijack(
        internet, "azure-web-app", "Azure", "victim-app", "portal.victim.com", at
    )

    jar = build_jar()
    print("Victim cookies: session_plain, session_httponly (HttpOnly),")
    print("                session_secure (HttpOnly+Secure)\n")

    visit(internet, "files.victim.com", jar, "http", when)
    print(f"S3 bucket hijack (content control, {s3_res.access.value}):")
    print(f"  captured over http : {sorted(c.cookie.name for c in s3_site.drain())}")

    visit(internet, "portal.victim.com", jar, "http", when)
    print(f"\nWeb app hijack (full webserver, {app_res.access.value}):")
    print(f"  captured over http : {sorted(c.cookie.name for c in app_site.drain())}")

    # Secure cookies need HTTPS — which needs the fraudulent certificate.
    outcome = visit(internet, "portal.victim.com", jar, "https", when)
    print(f"  https before cert  : {outcome.status.value} (no cookies flow)")
    internet.issue_certificate(app_res, "portal.victim.com", when)
    visit(internet, "portal.victim.com", jar, "https", when)
    print(f"  captured over https: {sorted(c.cookie.name for c in app_site.drain())}")
    print("\nExactly Table 4: content control loses HttpOnly cookies; Secure")
    print("cookies additionally require the attacker to obtain a certificate.")


if __name__ == "__main__":
    main()
