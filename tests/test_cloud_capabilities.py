"""Tests for the Table 4 capability model."""

from repro.cloud.capabilities import (
    AccessLevel,
    Capability,
    can_steal_cookie,
    capabilities_for_access,
)


def test_static_content_capabilities():
    caps = capabilities_for_access(AccessLevel.STATIC_CONTENT)
    assert Capability.FILE in caps
    assert Capability.JAVASCRIPT in caps
    assert Capability.HEADERS not in caps
    assert Capability.HTTPS not in caps


def test_full_webserver_capabilities_superset():
    static = capabilities_for_access(AccessLevel.STATIC_CONTENT)
    server = capabilities_for_access(AccessLevel.FULL_WEBSERVER)
    assert static < server
    assert Capability.HEADERS in server
    assert Capability.HTTPS in server


def test_cookie_theft_matrix_section_5_5():
    # Content-only attackers read only JS-visible, non-Secure cookies.
    assert can_steal_cookie(AccessLevel.STATIC_CONTENT, http_only=False, secure=False)
    assert not can_steal_cookie(AccessLevel.STATIC_CONTENT, http_only=True, secure=False)
    assert not can_steal_cookie(AccessLevel.STATIC_CONTENT, http_only=False, secure=True)
    # Full-webserver attackers read everything.
    assert can_steal_cookie(AccessLevel.FULL_WEBSERVER, http_only=True, secure=True)
    assert can_steal_cookie(AccessLevel.FULL_WEBSERVER, http_only=True, secure=False)
