"""Graceful degradation, mid-week resume and chaos-run determinism."""

from datetime import timedelta

import pytest

from repro.core.export import dataset_to_json
from repro.core.scenario import ScenarioConfig, build_scenario, run_scenario
from repro.faults.plan import FaultConfig
from repro.faults.retry import RetryPolicy
from repro.pipeline import FunctionStage, PipelineEngine, Stage
from repro.sim.clock import DEFAULT_START, SimClock
from repro.sim.rng import RngStreams


def _clock(weeks: int) -> SimClock:
    return SimClock(DEFAULT_START, DEFAULT_START + timedelta(weeks=weeks))


def _engine(stages, weeks=3, **kwargs) -> PipelineEngine:
    return PipelineEngine(stages, _clock(weeks), RngStreams(1), **kwargs)


class _BoomStage(Stage):
    """Raises on configured week indices (picklable, unlike a lambda)."""

    name = "boom"
    provides = ("boom-output",)

    def __init__(self, fail_weeks=(), fail_times_per_week=1):
        self._fail_weeks = set(fail_weeks)
        self._fail_times = fail_times_per_week
        self._failures_this_week = {}
        self.ticks = 0

    def tick(self, ctx):
        self.ticks += 1
        done = self._failures_this_week.get(ctx.week_index, 0)
        if ctx.week_index in self._fail_weeks and done < self._fail_times:
            self._failures_this_week[ctx.week_index] = done + 1
            raise RuntimeError(f"boom in week {ctx.week_index}")
        ctx.put("boom-output", ctx.week_index)
        return 1


class _RecorderStage(Stage):
    """Consumes boom-output; records which weeks it actually ran."""

    name = "recorder"
    requires = ("boom-output",)

    def __init__(self):
        self.ran_weeks = []

    def tick(self, ctx):
        self.ran_weeks.append(ctx.week_index)
        return 1


# -- degrade mode ---------------------------------------------------------


def test_degrade_mode_dead_letters_and_completes_the_run():
    boom = _BoomStage(fail_weeks=(1,))
    recorder = _RecorderStage()
    engine = _engine([boom, recorder], weeks=4, on_stage_error="degrade")
    assert engine.run() == 4  # no exception escapes
    # Week 1 produced a dead-lettered tick and a skipped downstream stage.
    items = [(r.stage, r.item) for r in engine.dead_letters]
    assert ("boom", "<stage-tick>") in items
    assert ("recorder", "<stage-skip>") in items
    assert recorder.ran_weeks == [0, 2, 3]
    assert engine.metrics.stage("boom").failures == 1
    assert engine.metrics.stage("recorder").skips == 1
    assert engine.metrics.total_quarantined() == 2


def test_degrade_mode_records_exception_reason():
    engine = _engine([_BoomStage(fail_weeks=(0,))], weeks=1,
                     on_stage_error="degrade")
    engine.run()
    (record,) = engine.dead_letters
    assert record.week_index == 0
    assert "RuntimeError" in record.reason
    assert "boom in week 0" in record.reason


def test_stage_retry_recovers_without_dead_letter():
    boom = _BoomStage(fail_weeks=(1,), fail_times_per_week=1)
    engine = _engine(
        [boom, _RecorderStage()], weeks=3,
        stage_retry=RetryPolicy.standard(2), on_stage_error="degrade",
    )
    assert engine.run() == 3
    assert engine.dead_letters == []
    assert engine.metrics.stage("boom").retries == 1
    assert engine.metrics.stage("boom").failures == 0
    # The retried tick succeeded, so every week ticked through.
    assert engine.metrics.stage("recorder").ticks == 3


def test_invalid_error_mode_rejected():
    with pytest.raises(ValueError, match="on_stage_error"):
        _engine([_BoomStage()], on_stage_error="explode")


# -- raise mode: mid-week checkpoint / resume -----------------------------


class _CountingStage(Stage):
    """Counts its ticks per week (picklable state)."""

    provides = ()

    def __init__(self, name):
        self.name = name
        self.ticks_by_week = {}

    def tick(self, ctx):
        self.ticks_by_week[ctx.week_index] = (
            self.ticks_by_week.get(ctx.week_index, 0) + 1
        )
        return 1


def test_checkpoint_after_failure_resumes_mid_week_at_failed_stage():
    before = _CountingStage("before")
    boom = _BoomStage(fail_weeks=(2,))
    after = _CountingStage("after")
    engine = _engine([before, boom, after], weeks=5, on_stage_error="raise")
    with pytest.raises(RuntimeError, match="boom in week 2"):
        engine.run()
    checkpoint = engine.checkpoint()
    assert checkpoint.failed_stage == "boom"
    assert checkpoint.week_index == 2  # the interrupted week

    restored = PipelineEngine.restore(checkpoint)
    assert restored.run() == 3  # weeks 2, 3, 4
    r_before, r_boom, r_after = restored.stages
    # The completed stage of the interrupted week did NOT re-run...
    assert r_before.ticks_by_week[2] == 1
    # ...while the failed stage re-ran (original attempt + resumed one)
    # and the downstream stage ran exactly once for every week.
    assert r_after.ticks_by_week == {0: 1, 1: 1, 2: 1, 3: 1, 4: 1}
    assert restored.week_index == 5


def test_clean_checkpoint_has_no_failed_stage():
    engine = _engine([_CountingStage("only")], weeks=3)
    engine.step()
    checkpoint = engine.checkpoint()
    assert checkpoint.failed_stage is None
    restored = PipelineEngine.restore(checkpoint)
    assert restored.run() == 2


class _Producer(Stage):
    name = "producer"
    provides = ("value",)

    def tick(self, ctx):
        ctx.put("value", f"week-{ctx.week_index}")
        return 1


class _Consumer(Stage):
    name = "consumer"
    requires = ("value",)

    def __init__(self):
        self.seen = []

    def tick(self, ctx):
        self.seen.append(ctx.get("value"))
        return 1


def test_resumed_week_preserves_completed_outputs():
    boom = _BoomStage(fail_weeks=(1,))
    boom.requires = ("value",)
    engine = _engine([_Producer(), boom, _Consumer()], weeks=2,
                     on_stage_error="raise")
    with pytest.raises(RuntimeError):
        engine.run()
    restored = PipelineEngine.restore(engine.checkpoint())
    restored.run()
    # The consumer saw the ORIGINAL week-1 producer output after resume.
    assert restored.stages[2].seen == ["week-0", "week-1"]


# -- chaos runs end to end ------------------------------------------------


def _chaos_config(seed=42, fault_seed=777, weeks=10) -> ScenarioConfig:
    config = ScenarioConfig.tiny(seed=seed)
    config.weeks = weeks
    config.faults = FaultConfig.chaos(0.08, seed=fault_seed)
    config.monitor.retry = RetryPolicy.standard(3)
    return config


def test_chaos_run_is_deterministic():
    a = run_scenario(_chaos_config())
    b = run_scenario(_chaos_config())
    assert dataset_to_json(a.dataset) == dataset_to_json(b.dataset)
    assert a.dead_letters == b.dead_letters
    assert a.internet.client.retries_total == b.internet.client.retries_total
    assert a.fault_plan.stats.injected == b.fault_plan.stats.injected
    assert a.fault_plan.stats.total > 0  # the storm actually happened


def test_chaos_run_never_raises_and_quarantines_unreachable_fqdns():
    result = run_scenario(_chaos_config(weeks=8))
    assert result.weeks_run == 8
    # Retries happened; whatever still failed went to quarantine with a
    # transient status recorded in the reason.
    assert result.internet.client.retries_total > 0
    for record in result.dead_letters:
        assert record.stage == "monitor-sweep"
        assert "retries exhausted" in record.reason


def test_faults_disabled_is_byte_identical_to_no_fault_plan():
    baseline = run_scenario(ScenarioConfig.tiny(seed=9))
    quiet = ScenarioConfig.tiny(seed=9)
    quiet.faults = FaultConfig()  # explicit but disabled
    quiet_result = run_scenario(quiet)
    assert dataset_to_json(baseline.dataset) == dataset_to_json(quiet_result.dataset)
    assert quiet_result.fault_plan is None
    assert quiet_result.dead_letters == []


def test_fault_seed_pins_weather_independently():
    # Same fault seed, different world seeds: both run to completion and
    # the fault decision streams are seeded identically (the worlds
    # differ, so consumption differs — but construction must not).
    a = build_scenario(_chaos_config(seed=1))
    b = build_scenario(_chaos_config(seed=2))
    plan_a, plan_b = a.payload.fault_plan, b.payload.fault_plan
    assert plan_a is not None and plan_b is not None
    assert plan_a._dns.getstate() == plan_b._dns.getstate()


def test_scenario_engine_uses_degrade_mode():
    engine = build_scenario(_chaos_config())
    assert engine.on_stage_error == "degrade"
    assert engine.stage_retry.max_attempts >= 1
