"""Tests for the WHOIS registry."""

from datetime import datetime

import pytest

from repro.whois.registrars import DEFAULT_REGISTRARS, pick_registrar
from repro.whois.registry import DomainRegistry

T0 = datetime(2010, 5, 1)
NOW = datetime(2022, 5, 1)


def test_register_and_lookup():
    registry = DomainRegistry()
    registry.register("acme.com", owner="Acme", registrar="GoDaddy", created_at=T0)
    record = registry.lookup("acme.com")
    assert record.owner == "Acme"
    assert record.registrar == "GoDaddy"
    assert len(registry) == 1


def test_lookup_by_subdomain_resolves_to_sld():
    registry = DomainRegistry()
    registry.register("acme.co.uk", owner="Acme UK", registrar="Tucows", created_at=T0)
    assert registry.owner_of("deep.app.acme.co.uk") == "Acme UK"
    assert registry.registrar_of("www.acme.co.uk") == "Tucows"
    assert registry.creation_date_of("x.acme.co.uk") == T0


def test_duplicate_registration_rejected():
    registry = DomainRegistry()
    registry.register("acme.com", owner="A", registrar="R", created_at=T0)
    with pytest.raises(ValueError):
        registry.register("ACME.com", owner="B", registrar="R", created_at=T0)


def test_missing_domain_returns_none():
    registry = DomainRegistry()
    assert registry.lookup("ghost.com") is None
    assert registry.owner_of("ghost.com") is None


def test_age_years():
    registry = DomainRegistry()
    record = registry.register("old.com", owner="O", registrar="R", created_at=T0)
    assert 11.9 < record.age_years(NOW) < 12.1
    assert record.age_years(T0) == 0.0


def test_all_records_sorted():
    registry = DomainRegistry()
    registry.register("zzz.com", owner="z", registrar="R", created_at=T0)
    registry.register("aaa.com", owner="a", registrar="R", created_at=T0)
    assert [r.domain for r in registry.all_records()] == ["aaa.com", "zzz.com"]


def test_pick_registrar_respects_market():
    import random

    rng = random.Random(0)
    picks = [pick_registrar(rng) for _ in range(2000)]
    known = {name for name, _ in DEFAULT_REGISTRARS}
    assert set(picks) <= known
    # The market leader should dominate the draw.
    assert picks.count("GoDaddy") > picks.count("Epik")
