"""Unit tests for analysis modules, on synthetic inputs.

The integration tests cover these against a finished world; these
exercise the arithmetic and edge cases directly.
"""

from datetime import datetime, timedelta

from repro.content.vocab import Topic
from repro.core.abuse_volume import analyze_volume
from repro.core.cert_analysis import analyze_certificates
from repro.core.detection import AbuseDataset, AbuseEpisode, AbuseRecord
from repro.core.duration import (
    DurationReport,
    analyze_durations,
    concurrent_hijacks,
)
from repro.core.growth import GrowthPoint, growth_factor
from repro.pki.certificate import Certificate
from repro.pki.ct_log import CTLog

T0 = datetime(2020, 1, 6)


def _dataset(records):
    dataset = AbuseDataset()
    for record in records:
        dataset._records[record.fqdn] = record
    return dataset


def _record(fqdn, start_day, end_day=None, sitemap=1000, topics=(Topic.GAMBLING,)):
    record = AbuseRecord(fqdn=fqdn, first_detected=T0 + timedelta(days=start_day))
    record.episodes.append(
        AbuseEpisode(
            started_at=T0 + timedelta(days=start_day),
            last_matched=T0 + timedelta(days=end_day or start_day + 7),
            ended_at=T0 + timedelta(days=end_day) if end_day else None,
        )
    )
    record.max_sitemap_count = sitemap
    record.topics = set(topics)
    return record


def test_duration_buckets():
    dataset = _dataset([
        _record("a.x.com", 0, 10),    # short
        _record("b.x.com", 0, 40),    # medium
        _record("c.x.com", 0, 100),   # long
        _record("d.x.com", 0, 400),   # beyond a year
    ])
    report = analyze_durations(dataset, T0 + timedelta(days=500))
    assert report.short_lived == 1
    assert report.medium == 1
    assert report.long_lived == 2
    assert report.beyond_year == 1
    assert report.total == 4
    assert sum(c for _, c in report.histogram()) == 4


def test_open_episode_right_censored():
    dataset = _dataset([_record("a.x.com", 0, None)])
    now = T0 + timedelta(days=30)
    report = analyze_durations(dataset, now)
    assert report.durations_days[0] == 30.0


def test_concurrent_hijacks_counts_overlap():
    dataset = _dataset([
        _record("a.x.com", 0, 50),
        _record("b.x.com", 20, 80),
        _record("c.x.com", 60, None),
    ])
    instants = [T0 + timedelta(days=d) for d in (10, 30, 70, 90)]
    counts = dict(concurrent_hijacks(dataset, instants))
    assert counts[instants[0]] == 1  # only a
    assert counts[instants[1]] == 2  # a + b
    assert counts[instants[2]] == 2  # b + c
    assert counts[instants[3]] == 1  # only c (open)


def test_volume_statistics():
    dataset = _dataset([
        _record("a.x.com", 0, sitemap=100),
        _record("b.x.com", 0, sitemap=900),
        _record("c.x.com", 0, sitemap=-1),  # no sitemap observed
    ])
    report = analyze_volume(dataset)
    assert report.sites_with_sitemaps == 2
    assert report.total_files == 1000
    assert report.min_files == 100 and report.max_files == 900
    assert report.average_files == 500
    assert report.estimated_total_kb == 1000 * 52.4
    bins = dict(report.histogram(bin_size=500))
    assert bins["0-500"] == 1 and bins["500-1000"] == 1


def test_volume_empty_dataset():
    report = analyze_volume(_dataset([]))
    assert report.total_files == 0
    assert report.histogram() == []


def test_growth_factor_edge_cases():
    assert growth_factor([]) == 1.0
    assert growth_factor([GrowthPoint("2020-01", 100, 0)]) == 1.0
    points = [GrowthPoint("2020-01", 100, 0), GrowthPoint("2020-06", 250, 5)]
    assert growth_factor(points) == 2.5


def test_certificate_analysis_synthetic():
    log = CTLog()
    hijacked = _dataset([_record("shop.victim.com", 0, 50)])
    single = Certificate(serial=1, sans=("shop.victim.com",), issuer="Let's Encrypt",
                         not_before=T0, not_after=T0 + timedelta(days=90))
    wildcard = Certificate(serial=2, sans=("*.victim.com", "victim.com"),
                           issuer="DigiCert",
                           not_before=T0, not_after=T0 + timedelta(days=365))
    unrelated = Certificate(serial=3, sans=("other.example",), issuer="ZeroSSL",
                            not_before=T0, not_after=T0 + timedelta(days=90))
    log.submit(single, T0 + timedelta(days=3))
    log.submit(wildcard, T0 + timedelta(days=40))
    log.submit(unrelated, T0)
    report = analyze_certificates(hijacked, log)
    assert report.single_san_total == 1
    assert report.multi_san_total == 1  # the wildcard covers the hijack
    assert report.free_ca_share == 1.0
    assert report.abused_with_certificates == 1
    months = {month: (s, m) for month, s, m in report.monthly}
    assert months["2020-01"] == (1, 0)
    assert months["2020-02"] == (0, 1)


def test_simplest_indicators_prefers_smallest():
    record = _record("a.x.com", 0, 10)
    record.indicator_combinations = {
        frozenset({"keywords", "sitemap"}),
        frozenset({"keywords"}),
        frozenset({"keywords", "infrastructure", "sitemap"}),
    }
    assert record.simplest_indicators() == frozenset({"keywords"})
