"""Cross-seed stability: the paper's findings are not one lucky draw.

Runs several independently seeded worlds and asserts that the headline
*shape* results hold in every one of them — the reproduction's claims
should be properties of the mechanics, not of seed 42.
"""

import pytest

from repro.core.detection import topic_breakdown
from repro.core.provider_analysis import analyze_providers
from repro.core.scenario import ScenarioConfig, run_scenario
from repro.core.scoring import score_detector

SEEDS = (101, 202, 303)


@pytest.fixture(scope="module", params=SEEDS)
def seeded_world(request):
    return run_scenario(ScenarioConfig.tiny(seed=request.param))


def test_hijacks_happen_in_every_world(seeded_world):
    assert len(seeded_world.ground_truth) >= 5


def test_detector_quality_holds_across_seeds(seeded_world):
    score = score_detector(seeded_world.dataset, seeded_world.ground_truth)
    assert score.precision >= 0.9
    assert score.recall >= 0.7


def test_user_nameable_invariant_holds_across_seeds(seeded_world):
    report = analyze_providers(
        seeded_world.dataset, seeded_world.organizations, seeded_world.ground_truth
    )
    assert report.all_abuses_user_nameable
    assert report.dedicated_ip_abuses == 0
    assert report.random_name_abuses == 0


def test_gambling_dominates_across_seeds(seeded_world):
    shares = {label: share for label, _, share in topic_breakdown(seeded_world.dataset)}
    assert shares.get("gambling", 0) > shares.get("adult", 0)
    assert shares.get("gambling", 0) > 0.3


def test_azure_leads_across_seeds(seeded_world):
    report = analyze_providers(
        seeded_world.dataset, seeded_world.organizations, seeded_world.ground_truth
    )
    counts = dict(report.provider_abuse_counts)
    if counts:
        assert max(counts, key=counts.get) in ("Azure", "AWS")
        assert "Google Cloud" not in counts
