"""Tests for provider mechanics: the heart of the hijack."""

from datetime import datetime, timedelta

import pytest

from repro.cloud.provider import CustomDomainError, ProvisioningError, ReleaseError
from repro.cloud.resources import ResourceStatus
from repro.dns.records import RRType, ResourceRecord
from repro.web.site import StaticSite

T0 = datetime(2020, 1, 6)
T1 = datetime(2020, 6, 1)
T2 = datetime(2020, 6, 8)


@pytest.fixture()
def azure(internet):
    return internet.catalog.provider("Azure")


def test_provision_creates_record_and_route(internet, azure):
    resource = azure.provision("azure-web-app", "shop", owner="org:acme", at=T0)
    assert resource.generated_fqdn == "shop.azurewebsites.net"
    result = internet.resolver.resolve_a_with_chain("shop.azurewebsites.net")
    assert result.ok and result.addresses == [resource.ip]
    assert azure.get_active("azure-web-app", "shop") is resource


def test_name_collision_rejected(azure):
    azure.provision("azure-web-app", "shop", owner="a", at=T0)
    with pytest.raises(ProvisioningError):
        azure.provision("azure-web-app", "shop", owner="b", at=T0)


def test_release_purges_provider_state_only(internet, azure):
    org_zone = internet.zones.create_zone("acme.com")
    resource = azure.provision("azure-web-app", "shop", owner="org:acme", at=T0)
    org_zone.add(
        ResourceRecord("shop.acme.com", RRType.CNAME, resource.generated_fqdn), T0
    )
    azure.add_custom_domain(resource, "shop.acme.com", T0)
    azure.release(resource, T1)
    assert resource.status == ResourceStatus.RELEASED
    # Provider-side name is gone...
    assert not internet.resolver.resolve_a_with_chain("shop.azurewebsites.net").ok
    # ...but the customer's CNAME now dangles, pointing into the void.
    result = internet.resolver.resolve_a_with_chain("shop.acme.com")
    assert result.status.value == "NXDOMAIN"
    assert "shop.azurewebsites.net" in result.cname_chain


def test_release_twice_rejected(azure):
    resource = azure.provision("azure-web-app", "x", owner="a", at=T0)
    azure.release(resource, T1)
    with pytest.raises(ReleaseError):
        azure.release(resource, T1)


def test_released_name_is_immediately_reregistrable(azure):
    resource = azure.provision("azure-web-app", "shop", owner="org:acme", at=T0)
    azure.release(resource, T1)
    assert azure.is_name_available("azure-web-app", "shop", T1)
    stolen = azure.provision("azure-web-app", "shop", owner="attacker:g1", at=T2)
    assert stolen.generated_fqdn == resource.generated_fqdn
    assert stolen.owner == "attacker:g1"


def test_reregistration_cooldown_blocks_fast_takeover(internet):
    from repro.sim.rng import RngStreams
    from repro.world.internet import Internet

    world = Internet(RngStreams(11), reregistration_cooldown=timedelta(days=30))
    azure = world.catalog.provider("Azure")
    resource = azure.provision("azure-web-app", "shop", owner="org:acme", at=T0)
    azure.release(resource, T1)
    assert not azure.is_name_available("azure-web-app", "shop", T1 + timedelta(days=5))
    assert azure.is_name_available("azure-web-app", "shop", T1 + timedelta(days=31))


def test_randomize_names_countermeasure():
    from repro.sim.rng import RngStreams
    from repro.world.internet import Internet

    world = Internet(RngStreams(12), randomize_names=True)
    azure = world.catalog.provider("Azure")
    resource = azure.provision("azure-web-app", "shop", owner="org:acme", at=T0)
    assert resource.name != "shop"
    assert len(resource.name) >= 12


def test_custom_domain_requires_cname_proof(internet, azure):
    internet.zones.create_zone("acme.com")
    resource = azure.provision("azure-web-app", "shop", owner="org:acme", at=T0)
    with pytest.raises(CustomDomainError):
        azure.add_custom_domain(resource, "shop.acme.com", T0)  # no CNAME yet


def test_custom_domain_verification_passes_for_dangling_record(internet, azure):
    """The attacker's alias step: the victim's dangling CNAME *is* the proof."""
    org_zone = internet.zones.create_zone("acme.com")
    victim = azure.provision("azure-web-app", "shop", owner="org:acme", at=T0)
    org_zone.add(ResourceRecord("shop.acme.com", RRType.CNAME, victim.generated_fqdn), T0)
    azure.release(victim, T1)
    hijack = azure.provision("azure-web-app", "shop", owner="attacker:g1", at=T2)
    azure.add_custom_domain(hijack, "shop.acme.com", T2)
    assert "shop.acme.com" in hijack.custom_domains
    outcome = internet.client.fetch("shop.acme.com", at=T2)
    assert outcome.ok  # requests for the victim domain now reach the attacker


def test_dedicated_ip_lifecycle(internet):
    aws = internet.catalog.provider("AWS")
    resource = aws.provision("aws-ec2-ip", "vm1", owner="org:acme", at=T0)
    assert resource.ip
    assert internet.network.is_bound(resource.ip)
    aws.release(resource, T1)
    assert not internet.network.is_bound(resource.ip)
    assert not aws.pool.is_allocated(resource.ip)


def test_random_name_service_ignores_requested_label(internet):
    gcp = internet.catalog.provider("Google Cloud")
    resource = gcp.provision("gcp-appspot", "wanted-name", owner="org:acme", at=T0)
    assert "wanted-name" not in resource.generated_fqdn


def test_replace_site_reroutes_everything(internet, azure):
    org_zone = internet.zones.create_zone("acme.com")
    resource = azure.provision("azure-web-app", "shop", owner="org:acme", at=T0)
    org_zone.add(ResourceRecord("shop.acme.com", RRType.CNAME, resource.generated_fqdn), T0)
    azure.add_custom_domain(resource, "shop.acme.com", T0)
    new_site = StaticSite()
    new_site.put_index("replaced")
    azure.replace_site(resource, new_site)
    assert internet.client.fetch("shop.acme.com", at=T0).response.body == "replaced"
    assert internet.client.fetch("shop.azurewebsites.net", at=T0).response.body == "replaced"


def test_events_recorded(internet, azure):
    resource = azure.provision("azure-web-app", "e1", owner="org:a", at=T0)
    azure.release(resource, T1)
    kinds = internet.events.counts_by_kind()
    assert kinds.get("cloud.provision", 0) >= 1
    assert kinds.get("cloud.release", 0) >= 1
