"""Tests for the signature/posting candidate indexes (the fast path).

The hard contract under test: the indexed detector path is a pure
candidate pruner — for any world, matching and retrospective rescans
through the indexes produce byte-identical output (same weekly flagged
sets, same signatures, same export digests) to the paper-faithful
linear scans.  The parity test drives randomized multi-week worlds
through both paths side by side.
"""

import random
from datetime import datetime, timedelta

from repro.core.changes import detect_changes
from repro.core.detection import AbuseDetector, DetectorConfig
from repro.core.export import dataset_to_json
from repro.core.monitoring import SnapshotFeatures, SnapshotStore
from repro.core.sigindex import (
    PostingIndex,
    SignatureIndex,
    signature_anchor,
    state_tokens,
)
from repro.core.signatures import Signature
from repro.obs import OBS, MetricsRegistry

T0 = datetime(2020, 3, 2)
WEEK = timedelta(weeks=1)

#: Topic-vocabulary tokens (gambling) so extraction's analyst gate fires.
ABUSE_TOKENS = (
    "slot", "judi", "gacor", "daftar", "situs", "terpercaya", "maxwin",
    "joker123", "pulsa", "bola", "slot88", "jackpot",
)
BENIGN_TOKENS = (
    "products", "careers", "support", "contact", "about", "pricing",
    "team", "blog", "press", "docs", "status", "partners",
)


def _page(fqdn, at, keywords, reachable=True, sitemap_count=-1, urls=(),
          title=""):
    return SnapshotFeatures(
        fqdn=fqdn, at=at,
        dns_status="NOERROR" if reachable else "NXDOMAIN",
        cname_chain=("x.azurewebsites.net",),
        addresses=("40.0.0.1",) if reachable else (),
        fetch_status="ok" if reachable else "dns-nxdomain",
        http_status=200 if reachable else 0,
        html_hash=f"h-{fqdn}-{sorted(keywords)}-{sitemap_count}" if reachable else "",
        html_size=100, keywords=frozenset(keywords),
        external_urls=tuple(urls), title=title,
        sitemap_count=sitemap_count, sitemap_size=max(-1, sitemap_count * 80),
    )


def _sig(serial, **kwargs):
    return Signature(signature_id=f"sig-{serial:04d}", created_at=T0, **kwargs)


# -- anchor selection ---------------------------------------------------------


def test_anchor_prefers_most_selective_group():
    assert signature_anchor(
        _sig(1, keywords=frozenset({"a", "b", "c"}),
             infrastructure=frozenset({"evil.example"}),
             template_markers=frozenset({"comming soon"}))
    ) == ("template", frozenset({"comming soon"}))
    assert signature_anchor(
        _sig(2, keywords=frozenset({"a", "b", "c"}),
             infrastructure=frozenset({"evil.example"}))
    ) == ("infrastructure", frozenset({"evil.example"}))
    assert signature_anchor(
        _sig(3, keywords=frozenset({"a", "b", "c"}))
    ) == ("keywords", frozenset({"a", "b", "c"}))


def test_anchor_falls_back_on_unusable_groups():
    # A zero hit floor means the keyword group can fire with no shared
    # token, so it cannot anchor the signature.
    kind, _ = signature_anchor(
        _sig(1, keywords=frozenset({"a", "b"}), min_keyword_hits=0,
             sitemap_min_count=300)
    )
    assert kind == "sitemap"
    assert signature_anchor(_sig(2, sitemap_min_count=300))[0] == "sitemap"
    assert signature_anchor(_sig(3))[0] == "scan"


# -- SignatureIndex -----------------------------------------------------------


def test_signature_index_candidates_are_exact_by_group():
    index = SignatureIndex()
    sigs = [
        _sig(1, keywords=frozenset({"slot", "judi", "gacor"})),
        _sig(2, infrastructure=frozenset({"cdn.evil.example"})),
        _sig(3, template_markers=frozenset({"comming soon"})),
        _sig(4, sitemap_min_count=300),
    ]
    for sig in sigs:
        index.add(sig)
    assert len(index) == 4
    # Keyword hit activates only the keyword-anchored signature (plus
    # the always-checked sitemap bucket).
    assert index.candidates({"slot"}, (), ()) == [0, 3]
    # A keyword that happens to equal an anchored *host* must not
    # activate the host-anchored signature.
    assert index.candidates({"cdn.evil.example"}, (), ()) == [3]
    assert index.candidates((), {"cdn.evil.example"}, ()) == [1, 3]
    assert index.candidates((), (), {"comming soon"}) == [2, 3]
    assert index.candidates({"benign"}, (), ()) == [3]


def test_signature_index_sync_catches_external_appends():
    index = SignatureIndex()
    sigs = [_sig(1, keywords=frozenset({"slot", "judi"}))]
    index.sync(sigs)
    sigs.append(_sig(2, keywords=frozenset({"daftar", "bola"})))
    index.sync(sigs)
    assert len(index) == 2
    assert index.candidates({"bola"}, (), ()) == [1]


# -- PostingIndex -------------------------------------------------------------


def test_posting_index_candidates_and_unknown_tokens():
    postings = PostingIndex()
    postings.add("a.example", {"slot", "judi"})
    postings.add("b.example", {"judi", "careers"})
    assert postings.candidate_fqdns({"slot"}) == {"a.example"}
    assert postings.candidate_fqdns({"judi"}) == {"a.example", "b.example"}
    # Never-seen token: provably no FQDN carries it.
    assert postings.candidate_fqdns({"never-seen"}) == set()
    # Empty anchor: nothing to answer with.
    assert postings.candidate_fqdns(()) is None


def test_posting_index_eviction_is_conservative():
    postings = PostingIndex(cap=4)
    for i in range(4):
        postings.add(f"f{i}.example", {"common"})
    assert postings.evictions == 0
    # The fifth posting pair overflows the cap; the largest list
    # ("common", carried by every FQDN) is evicted and marked
    # unprunable, while the small selective posting survives.
    postings.add("f4.example", {"common", "rare"})
    assert postings.evictions >= 1
    assert postings.candidate_fqdns({"common"}) is None  # cannot prune
    assert postings.candidate_fqdns({"rare"}) == {"f4.example"}
    # Mixed queries touching an evicted token degrade to "cannot prune".
    assert postings.candidate_fqdns({"rare", "common"}) is None


def test_state_tokens_unions_all_component_groups():
    features = _page(
        "v.example.com", T0, {"slot"},
        urls=("https://cdn.evil.example/p.js",), title="Comming Soon!!",
    )
    tokens = state_tokens(features)
    assert "slot" in tokens
    assert "cdn.evil.example" in tokens
    assert "comming soon" in tokens


# -- store-side rescan candidates ---------------------------------------------


def test_store_rescan_candidates_by_token_and_sitemap():
    store = SnapshotStore()
    store.record(_page("v1.example.com", T0, {"slot", "judi"}))
    store.record(_page("v2.example.com", T0, {"careers"}, sitemap_count=900))
    keyword_sig = _sig(1, keywords=frozenset({"slot", "gacor"}), min_keyword_hits=1)
    assert store.rescan_candidates(keyword_sig) == {"v1.example.com"}
    sitemap_sig = _sig(2, sitemap_min_count=500)
    assert store.rescan_candidates(sitemap_sig) == {"v2.example.com"}
    # A degenerate signature with no anchor cannot be pruned for.
    assert store.rescan_candidates(_sig(3)) is None
    # Histories accumulate: an FQDN stays a candidate for tokens any
    # *past* state carried, even after the content moved on.
    store.record(_page("v1.example.com", T0 + WEEK, {"careers"}))
    assert store.rescan_candidates(keyword_sig) == {"v1.example.com"}


# -- indexed-vs-linear parity (randomized worlds) -----------------------------


def _world_events(seed, weeks=10):
    """One randomized multi-week stream of weekly page batches.

    Mixes co-changing abuse campaigns (shared vocabulary, shared script
    host, bulk sitemaps), benign churn, facade pages and remediations —
    enough variety to exercise every signature component and the
    backlog/rescan/episode machinery.
    """
    rng = random.Random(seed)
    fleet = [f"site-{i}.tenant-{i % 7}.example.com" for i in range(40)]
    weeks_out = []
    for week in range(weeks):
        at = T0 + week * WEEK
        pages = []
        for fqdn in rng.sample(fleet, rng.randint(6, 14)):
            roll = rng.random()
            if roll < 0.45:
                pages.append(_page(fqdn, at, set(rng.sample(BENIGN_TOKENS, 3))))
            elif roll < 0.75:
                campaign = rng.randint(0, 2)
                tokens = set(ABUSE_TOKENS[campaign * 4:campaign * 4 + 4])
                tokens |= {rng.choice(ABUSE_TOKENS)}
                pages.append(_page(
                    fqdn, at, tokens,
                    sitemap_count=rng.choice((-1, 400, 900)),
                    urls=(f"https://cdn-{campaign}.gacor.example/p.js",),
                ))
            elif roll < 0.9:
                pages.append(_page(
                    fqdn, at, set(rng.sample(BENIGN_TOKENS, 2)),
                    title="Comming soon", sitemap_count=rng.choice((-1, 350)),
                ))
            else:
                pages.append(_page(fqdn, at, set(), reachable=False))
        weeks_out.append((at, pages))
    return weeks_out


def _run_world(events, use_index):
    store = SnapshotStore()
    detector = AbuseDetector(store, DetectorConfig(use_index=use_index))
    flagged_by_week = []
    for at, pages in events:
        changes = []
        for page in pages:
            is_new, previous = store.record(page)
            if is_new:
                changes.append(detect_changes(previous, page))
        flagged_by_week.append(detector.process_week(changes, at))
    return detector, flagged_by_week


def test_indexed_path_matches_linear_path_on_random_worlds():
    for seed in range(6):
        events = _world_events(seed)
        indexed, flagged_indexed = _run_world(events, use_index=True)
        linear, flagged_linear = _run_world(events, use_index=False)
        assert flagged_indexed == flagged_linear, f"seed {seed}"
        assert indexed.signatures == linear.signatures, f"seed {seed}"
        assert sorted(indexed._backlog) == sorted(linear._backlog), f"seed {seed}"
        assert dataset_to_json(indexed.dataset, indent=2) == \
            dataset_to_json(linear.dataset, indent=2), f"seed {seed}"
        assert len(indexed.dataset) > 0, f"seed {seed}: world detected nothing"


def test_indexed_path_actually_prunes():
    """Parity alone could be satisfied by indexing nothing; assert the
    candidate sets are genuinely narrower than the signature store."""
    registry = MetricsRegistry()
    OBS.configure(metrics=registry)
    try:
        _run_world(_world_events(1), use_index=True)
    finally:
        OBS.reset()
    counters = registry.counters()
    assert counters.get("detector.index.lookups", 0) > 0
    assert counters.get("detector.index.pruned", 0) > 0
    assert counters.get("rescan.signatures", 0) > 0
    assert counters.get("rescan.skipped", 0) > 0


def test_parity_survives_posting_eviction():
    """A starved posting cap forces eviction fallbacks mid-world; the
    indexed path must degrade to full scans, never to wrong answers."""
    events = _world_events(2)
    store = SnapshotStore(posting_cap=16)
    detector = AbuseDetector(store, DetectorConfig(use_index=True))
    flagged = []
    for at, pages in events:
        changes = []
        for page in pages:
            is_new, previous = store.record(page)
            if is_new:
                changes.append(detect_changes(previous, page))
        flagged.append(detector.process_week(changes, at))
    linear, flagged_linear = _run_world(events, use_index=False)
    assert store.postings.evictions > 0
    assert flagged == flagged_linear
    assert dataset_to_json(detector.dataset, indent=2) == \
        dataset_to_json(linear.dataset, indent=2)
