"""Determinism regression tests for the pipeline refactor.

The stage-based engine must be a pure refactor: a fixed seed produces
the identical abuse dataset it produced when ``run_scenario`` was one
monolithic loop.  The golden digests below were captured from the
pre-refactor driver (seed commit) on ``ScenarioConfig.tiny()`` — if
either changes, a behavioural difference slipped into the pipeline.
"""

import hashlib

from repro.core.export import dataset_to_json, ground_truth_to_json
from repro.core.scenario import ScenarioConfig, build_scenario, run_scenario

#: sha256 of ``dataset_to_json(result.dataset, indent=2)`` for
#: ``ScenarioConfig.tiny()`` under the pre-refactor monolithic loop.
GOLDEN_DATASET_SHA256 = (
    "790d381e65cc8179b548ea176df255a64702a8f0a9338746bdc0c53680818272"
)
#: sha256 of ``ground_truth_to_json(result.ground_truth, indent=2)``.
GOLDEN_GROUND_TRUTH_SHA256 = (
    "ee60bcb3b5a81fcf1bc2107992910b15b00479f03b835b56f59112f39b397b19"
)


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def test_same_seed_runs_export_identical_datasets():
    a = run_scenario(ScenarioConfig.tiny())
    b = run_scenario(ScenarioConfig.tiny())
    assert dataset_to_json(a.dataset, indent=2) == dataset_to_json(b.dataset, indent=2)
    assert ground_truth_to_json(a.ground_truth) == ground_truth_to_json(b.ground_truth)


def test_pipeline_engine_matches_pre_refactor_golden_output(tiny_result):
    assert _digest(dataset_to_json(tiny_result.dataset, indent=2)) == (
        GOLDEN_DATASET_SHA256
    )
    assert _digest(ground_truth_to_json(tiny_result.ground_truth, indent=2)) == (
        GOLDEN_GROUND_TRUTH_SHA256
    )


def test_stepped_engine_matches_run_scenario(tiny_result):
    """Driving the engine week by week equals the one-shot driver."""
    engine = build_scenario(ScenarioConfig.tiny())
    while not engine.clock.finished():
        engine.step()
    assert dataset_to_json(engine.payload.dataset, indent=2) == dataset_to_json(
        tiny_result.dataset, indent=2
    )
    assert engine.week_index == tiny_result.weeks_run
