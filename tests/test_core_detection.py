"""Tests for the abuse detector's weekly driver."""

from datetime import datetime, timedelta

from repro.core.changes import detect_changes
from repro.core.detection import AbuseDetector
from repro.core.monitoring import SnapshotStore, SnapshotFeatures

T0 = datetime(2020, 3, 2)
WEEK = timedelta(weeks=1)


def _page(fqdn, at, keywords, reachable=True, sitemap_count=-1, urls=()):
    return SnapshotFeatures(
        fqdn=fqdn, at=at,
        dns_status="NOERROR" if reachable else "NXDOMAIN",
        cname_chain=("x.azurewebsites.net",),
        addresses=("40.0.0.1",) if reachable else (),
        fetch_status="ok" if reachable else "dns-nxdomain",
        http_status=200 if reachable else 0,
        html_hash=f"h-{fqdn}-{sorted(keywords)}" if reachable else "",
        html_size=100, keywords=frozenset(keywords),
        external_urls=tuple(urls),
        sitemap_count=sitemap_count, sitemap_size=max(-1, sitemap_count * 80),
    )


def _detector():
    store = SnapshotStore()
    from repro.whois.registry import DomainRegistry

    whois = DomainRegistry()
    for sld, registrar in (("foo.com", "GoDaddy"), ("bar.com", "Tucows"),
                           ("baz.com", "Gandi")):
        whois.register(sld, owner=sld.split(".")[0].title(), registrar=registrar,
                       created_at=T0 - timedelta(days=3000))
    return store, AbuseDetector(store, whois=whois)


def _feed(store, detector, pages, at):
    changes = []
    for page in pages:
        is_new, previous = store.record(page)
        if is_new:
            changes.append(detect_changes(previous, page))
    return detector.process_week(changes, at)


def test_benign_first_sightings_build_corpus():
    store, detector = _detector()
    benign = [
        _page("a.foo.com", T0, {"products", "careers"}),
        _page("b.bar.com", T0, {"support", "contact"}),
    ]
    _feed(store, detector, benign, T0)
    assert len(detector.benign) == 2
    assert len(detector.dataset) == 0


def test_cochanging_abuse_is_detected():
    store, detector = _detector()
    _feed(store, detector, [
        _page("a.foo.com", T0, {"products"}),
        _page("b.bar.com", T0, {"support"}),
    ], T0)
    abuse_keywords = {"slot", "judi", "gacor", "daftar"}
    flagged = _feed(store, detector, [
        _page("a.foo.com", T0 + WEEK, abuse_keywords, sitemap_count=800,
              urls=("https://mega-gacor.bet/p?ref=1",)),
        _page("b.bar.com", T0 + WEEK, abuse_keywords | {"bola"}, sitemap_count=600,
              urls=("https://mega-gacor.bet/p?ref=1",)),
    ], T0 + WEEK)
    assert set(flagged) == {"a.foo.com", "b.bar.com"}
    assert len(detector.signatures) >= 1
    record = detector.dataset.get("a.foo.com")
    assert record.currently_abused
    assert record.first_detected == T0 + WEEK


def test_backlog_clusters_across_weeks():
    """The same change landing on different assets weeks apart still
    forms a cluster (the backlog window)."""
    store, detector = _detector()
    abuse = {"slot", "judi", "gacor", "daftar"}
    _feed(store, detector, [_page("a.foo.com", T0, abuse, sitemap_count=500)], T0)
    assert len(detector.dataset) == 0  # lone page: no signature yet
    flagged = _feed(
        store, detector,
        [_page("b.bar.com", T0 + 2 * WEEK, abuse | {"pulsa"}, sitemap_count=700)],
        T0 + 2 * WEEK,
    )
    assert set(flagged) == {"a.foo.com", "b.bar.com"}
    # Retrospective scan back-dated the first victim.
    assert detector.dataset.get("a.foo.com").first_detected == T0


def test_episode_closes_when_abuse_disappears():
    store, detector = _detector()
    abuse = {"slot", "judi", "gacor"}
    _feed(store, detector, [
        _page("a.foo.com", T0, abuse, sitemap_count=500),
        _page("b.bar.com", T0, abuse, sitemap_count=500),
    ], T0)
    record = detector.dataset.get("a.foo.com")
    assert record.currently_abused
    # Owner fixes the record: the name goes dark.
    _feed(store, detector, [_page("a.foo.com", T0 + WEEK, set(), reachable=False)], T0 + WEEK)
    assert not detector.dataset.get("a.foo.com").currently_abused
    assert detector.dataset.get("b.bar.com").currently_abused


def test_indicator_combinations_recorded():
    store, detector = _detector()
    abuse = {"slot", "judi", "gacor"}
    _feed(store, detector, [
        _page("a.foo.com", T0, abuse, sitemap_count=900),
        _page("b.bar.com", T0, abuse, sitemap_count=800),
    ], T0)
    record = detector.dataset.get("a.foo.com")
    simplest = record.simplest_indicators()
    assert "keywords" in simplest or "sitemap" in simplest


def test_monthly_cumulative_tracked():
    store, detector = _detector()
    abuse = {"slot", "judi", "gacor"}
    _feed(store, detector, [
        _page("a.foo.com", T0, abuse, sitemap_count=500),
        _page("b.bar.com", T0, abuse, sitemap_count=500),
    ], T0)
    assert detector.dataset.monthly_cumulative.get("2020-03") == 2
