"""Tests for the abuse detector's weekly driver."""

from datetime import datetime, timedelta

from repro.core.changes import detect_changes
from repro.core.detection import AbuseDetector
from repro.core.monitoring import SnapshotStore, SnapshotFeatures
from repro.core.signatures import Signature

T0 = datetime(2020, 3, 2)
WEEK = timedelta(weeks=1)


def _page(fqdn, at, keywords, reachable=True, sitemap_count=-1, urls=()):
    return SnapshotFeatures(
        fqdn=fqdn, at=at,
        dns_status="NOERROR" if reachable else "NXDOMAIN",
        cname_chain=("x.azurewebsites.net",),
        addresses=("40.0.0.1",) if reachable else (),
        fetch_status="ok" if reachable else "dns-nxdomain",
        http_status=200 if reachable else 0,
        html_hash=f"h-{fqdn}-{sorted(keywords)}" if reachable else "",
        html_size=100, keywords=frozenset(keywords),
        external_urls=tuple(urls),
        sitemap_count=sitemap_count, sitemap_size=max(-1, sitemap_count * 80),
    )


def _detector():
    store = SnapshotStore()
    from repro.whois.registry import DomainRegistry

    whois = DomainRegistry()
    for sld, registrar in (("foo.com", "GoDaddy"), ("bar.com", "Tucows"),
                           ("baz.com", "Gandi")):
        whois.register(sld, owner=sld.split(".")[0].title(), registrar=registrar,
                       created_at=T0 - timedelta(days=3000))
    return store, AbuseDetector(store, whois=whois)


def _feed(store, detector, pages, at):
    changes = []
    for page in pages:
        is_new, previous = store.record(page)
        if is_new:
            changes.append(detect_changes(previous, page))
    return detector.process_week(changes, at)


def test_benign_first_sightings_build_corpus():
    store, detector = _detector()
    benign = [
        _page("a.foo.com", T0, {"products", "careers"}),
        _page("b.bar.com", T0, {"support", "contact"}),
    ]
    _feed(store, detector, benign, T0)
    assert len(detector.benign) == 2
    assert len(detector.dataset) == 0


def test_cochanging_abuse_is_detected():
    store, detector = _detector()
    _feed(store, detector, [
        _page("a.foo.com", T0, {"products"}),
        _page("b.bar.com", T0, {"support"}),
    ], T0)
    abuse_keywords = {"slot", "judi", "gacor", "daftar"}
    flagged = _feed(store, detector, [
        _page("a.foo.com", T0 + WEEK, abuse_keywords, sitemap_count=800,
              urls=("https://mega-gacor.bet/p?ref=1",)),
        _page("b.bar.com", T0 + WEEK, abuse_keywords | {"bola"}, sitemap_count=600,
              urls=("https://mega-gacor.bet/p?ref=1",)),
    ], T0 + WEEK)
    assert set(flagged) == {"a.foo.com", "b.bar.com"}
    assert len(detector.signatures) >= 1
    record = detector.dataset.get("a.foo.com")
    assert record.currently_abused
    assert record.first_detected == T0 + WEEK


def test_backlog_clusters_across_weeks():
    """The same change landing on different assets weeks apart still
    forms a cluster (the backlog window)."""
    store, detector = _detector()
    abuse = {"slot", "judi", "gacor", "daftar"}
    _feed(store, detector, [_page("a.foo.com", T0, abuse, sitemap_count=500)], T0)
    assert len(detector.dataset) == 0  # lone page: no signature yet
    flagged = _feed(
        store, detector,
        [_page("b.bar.com", T0 + 2 * WEEK, abuse | {"pulsa"}, sitemap_count=700)],
        T0 + 2 * WEEK,
    )
    assert set(flagged) == {"a.foo.com", "b.bar.com"}
    # Retrospective scan back-dated the first victim.
    assert detector.dataset.get("a.foo.com").first_detected == T0


def test_episode_closes_when_abuse_disappears():
    store, detector = _detector()
    abuse = {"slot", "judi", "gacor"}
    _feed(store, detector, [
        _page("a.foo.com", T0, abuse, sitemap_count=500),
        _page("b.bar.com", T0, abuse, sitemap_count=500),
    ], T0)
    record = detector.dataset.get("a.foo.com")
    assert record.currently_abused
    # Owner fixes the record: the name goes dark.
    _feed(store, detector, [_page("a.foo.com", T0 + WEEK, set(), reachable=False)], T0 + WEEK)
    assert not detector.dataset.get("a.foo.com").currently_abused
    assert detector.dataset.get("b.bar.com").currently_abused


def test_indicator_combinations_recorded():
    store, detector = _detector()
    abuse = {"slot", "judi", "gacor"}
    _feed(store, detector, [
        _page("a.foo.com", T0, abuse, sitemap_count=900),
        _page("b.bar.com", T0, abuse, sitemap_count=800),
    ], T0)
    record = detector.dataset.get("a.foo.com")
    simplest = record.simplest_indicators()
    assert "keywords" in simplest or "sitemap" in simplest


def test_rescan_close_never_backdates_before_live_matches():
    """A retrospective rescan must not close an episode a *different*
    signature is still matching: ``ended_at`` before ``last_matched``
    fabricates negative durations in the Figure 15/16 analyses."""
    store, detector = _detector()
    s1 = _page("v.foo.com", T0, {"slot", "judi", "gacor"})
    s2 = _page("v.foo.com", T0 + WEEK, {"products"})
    s3 = _page("v.foo.com", T0 + 2 * WEEK, {"daftar", "pulsa", "bola"})
    for state in (s1, s2, s3):
        store.record(state)
    sig_b = Signature("sig-b", created_at=T0 + 2 * WEEK,
                      keywords=frozenset({"daftar", "pulsa", "bola"}))
    detector.signatures.append(sig_b)
    # Live matching kept the episode open through week 5.
    components = sig_b.match(s3)
    detector._record_match(s3, [(sig_b, components)], T0 + 2 * WEEK)
    detector._record_match(s3, [(sig_b, components)], T0 + 5 * WEEK,
                           observed_at=T0 + 5 * WEEK)
    record = detector.dataset.get("v.foo.com")
    assert record.episodes[-1].last_matched == T0 + 5 * WEEK
    # A new signature only matches the *old* state s1; its successor s2
    # (first seen week 1) predates the live matches and must not close
    # the episode.
    sig_a = Signature("sig-a", created_at=T0 + 5 * WEEK,
                      keywords=frozenset({"slot", "judi", "gacor"}))
    detector.signatures.append(sig_a)
    detector._rescan_history(sig_a)
    episode = record.episodes[-1]
    assert episode.ended_at is None
    assert episode.duration_days(now=T0 + 6 * WEEK) >= 0


def test_rescan_closes_remediated_episode():
    """The legitimate close still happens: when the successor postdates
    every live match, the reconstructed episode ends at its sighting."""
    store, detector = _detector()
    s1 = _page("v.foo.com", T0, {"slot", "judi", "gacor"})
    s2 = _page("v.foo.com", T0 + 3 * WEEK, {"products"})
    store.record(s1)
    store.record(s2)
    sig = Signature("sig-a", created_at=T0 + 4 * WEEK,
                    keywords=frozenset({"slot", "judi", "gacor"}))
    detector.signatures.append(sig)
    detector._rescan_history(sig)
    record = detector.dataset.get("v.foo.com")
    episode = record.episodes[-1]
    assert episode.ended_at == T0 + 3 * WEEK
    assert episode.ended_at >= episode.last_matched


def test_backlog_dedupes_identical_resightings():
    """The same (fqdn, state) re-queued across weeks is held once, with
    the newest sighting time — not piled into duplicate entries that
    double-count in cluster support."""
    store, detector = _detector()
    abuse = {"slot", "judi", "gacor", "unique_a"}
    page = _page("a.foo.com", T0, abuse, sitemap_count=500)
    store.record(page)
    detector.process_week([detect_changes(None, page)], T0)
    assert len(detector._backlog) == 1
    # The same observable state re-queued a week later (the store
    # dedups it into the existing state; the change stream replays it).
    resight = _page("a.foo.com", T0 + WEEK, abuse, sitemap_count=500)
    store.record(resight)
    detector.process_week([detect_changes(None, resight)], T0 + WEEK)
    assert len(detector._backlog) == 1
    ((queued_at, _),) = detector._backlog.values()
    assert queued_at == T0 + WEEK  # newest sighting wins
    # A partner page now forms a 2-cluster; with the duplicate gone,
    # tokens only the re-sighted page carried stay below support and
    # out of the signature.
    partner = _page("b.bar.com", T0 + 2 * WEEK,
                    {"slot", "judi", "gacor", "bola"}, sitemap_count=700)
    store.record(partner)
    flagged = detector.process_week([detect_changes(None, partner)],
                                    T0 + 2 * WEEK)
    assert set(flagged) == {"a.foo.com", "b.bar.com"}
    assert len(detector.signatures) == 1
    assert "unique_a" not in detector.signatures[0].keywords


def test_kept_keywords_truncate_in_sorted_order():
    """The per-record keyword cap keeps the lexicographically first 40,
    not a hash-ordered subset that varies across PYTHONHASHSEED."""
    store, detector = _detector()
    many = {f"kw{i:03d}" for i in range(60)} | {"slot", "judi", "gacor"}
    page = _page("a.foo.com", T0, many)
    sig = Signature("sig-x", created_at=T0,
                    keywords=frozenset({"slot", "judi", "gacor"}))
    detector._record_match(page, [(sig, sig.components)], T0)
    record = detector.dataset.get("a.foo.com")
    assert record.keywords == set(sorted(many)[:40])


def test_monthly_cumulative_tracked():
    store, detector = _detector()
    abuse = {"slot", "judi", "gacor"}
    _feed(store, detector, [
        _page("a.foo.com", T0, abuse, sitemap_count=500),
        _page("b.bar.com", T0, abuse, sitemap_count=500),
    ], T0)
    assert detector.dataset.monthly_cumulative.get("2020-03") == 2
