"""Tests for the Section 2 liveness comparison."""

from datetime import datetime

from repro.core.liveness import compare_liveness
from repro.dns.records import RRType, ResourceRecord
from repro.net.network import Network
from repro.dns.resolver import Resolver
from repro.dns.zone import ZoneRegistry
from repro.web.client import HttpClient
from repro.web.server import VirtualHostServer
from repro.web.site import StaticSite

T0 = datetime(2020, 1, 6)


def _world():
    zones = ZoneRegistry()
    zone = zones.create_zone("example.com")
    network = Network()
    resolver = Resolver(zones)
    client = HttpClient(resolver, network)
    return zones, zone, network, resolver, client


def test_icmp_underestimates_tcp_overestimates():
    zones, zone, network, resolver, client = _world()
    # Edge 1 answers ping; edge 2 drops ICMP (both serve their host).
    edge1 = VirtualHostServer("Azure", icmp=True)
    edge2 = VirtualHostServer("Azure", icmp=False)
    network.bind("40.0.0.1", edge1)
    network.bind("40.0.0.2", edge2)
    for index, (host, edge, ip) in enumerate(
        (("a.example.com", edge1, "40.0.0.1"), ("b.example.com", edge2, "40.0.0.2"))
    ):
        site = StaticSite()
        site.put_index("live")
        edge.route(host, site)
        zone.add(ResourceRecord(host, RRType.A, ip), T0)
    # c.example.com: record resolves to edge1 but the resource is gone —
    # TCP answers, the FQDN does not.
    zone.add(ResourceRecord("c.example.com", RRType.A, "40.0.0.1"), T0)

    report = compare_liveness(
        ["a.example.com", "b.example.com", "c.example.com"],
        resolver, network, client, at=T0,
    )
    assert report.total == 3
    assert report.dns_resolved == 3
    assert report.tcp_responsive == 3  # the edges always accept TCP
    assert report.icmp_responsive == 2  # one edge drops ping
    assert report.http_responsive == 2  # the released resource 404s


def test_dead_names_count_as_unresponsive_everywhere():
    zones, zone, network, resolver, client = _world()
    report = compare_liveness(["ghost.example.com"], resolver, network, client, at=T0)
    assert report.dns_resolved == 0
    assert report.icmp_rate == report.tcp_rate == report.http_rate == 0.0


def test_rates_and_rows():
    zones, zone, network, resolver, client = _world()
    edge = VirtualHostServer("AWS")
    network.bind("52.0.0.1", edge)
    site = StaticSite()
    site.put_index("x")
    edge.route("a.example.com", site)
    zone.add(ResourceRecord("a.example.com", RRType.A, "52.0.0.1"), T0)
    report = compare_liveness(["a.example.com"], resolver, network, client, at=T0)
    rows = dict((method, rate) for method, _, rate in report.rows())
    assert rows["icmp"] == 1.0
    assert rows["http-fqdn"] == 1.0
