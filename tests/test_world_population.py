"""Tests for world population generation."""

from datetime import datetime

import pytest

from repro.dns.names import registered_domain
from repro.world.organizations import AssetKind, OrgKind
from repro.world.population import PopulationBuilder, PopulationConfig

T0 = datetime(2020, 1, 6)


@pytest.fixture(scope="module")
def world():
    from repro.sim.rng import RngStreams
    from repro.world.internet import Internet

    internet = Internet(RngStreams(21))
    builder = PopulationBuilder(internet)
    config = PopulationConfig(
        n_enterprises=20, n_universities=8, n_government=6, n_popular=16
    )
    organizations = builder.build(config, T0)
    return internet, builder, config, organizations


def test_population_counts(world):
    _, _, config, orgs = world
    kinds = [org.kind for org in orgs]
    assert kinds.count(OrgKind.ENTERPRISE) == 20
    assert kinds.count(OrgKind.UNIVERSITY) == 8
    assert kinds.count(OrgKind.GOVERNMENT) == 6
    assert kinds.count(OrgKind.POPULAR_SITE) == 16


def test_every_org_is_registered_and_zoned(world):
    internet, _, _, orgs = world
    for org in orgs:
        assert internet.whois.lookup(org.domain) is not None
        assert internet.zones.get_zone(org.domain) is not None
        assert registered_domain(f"www.{org.domain}") == org.domain


def test_apex_resolves_and_serves(world):
    internet, _, _, orgs = world
    outcome = internet.client.fetch(orgs[0].domain, at=T0)
    assert outcome.ok
    assert orgs[0].display_name.split()[0] in outcome.response.body


def test_cloud_assets_resolve_through_cname(world):
    internet, _, _, orgs = world
    cname_assets = [
        a for org in orgs for a in org.assets if a.kind == AssetKind.CLOUD_CNAME
    ]
    assert cname_assets, "expected some cloud CNAME assets"
    sample = cname_assets[0]
    result = internet.resolver.resolve_a_with_chain(sample.fqdn)
    assert result.ok
    assert sample.resource.generated_fqdn in result.cname_chain


def test_cloud_a_assets_resolve_directly(world):
    internet, _, _, orgs = world
    a_assets = [a for org in orgs for a in org.assets if a.kind == AssetKind.CLOUD_A]
    if not a_assets:
        pytest.skip("no dedicated-IP assets in this draw")
    result = internet.resolver.resolve_a_with_chain(a_assets[0].fqdn)
    assert result.ok
    assert result.addresses == [a_assets[0].resource.ip]


def test_domain_ages_skew_old(world):
    internet, _, _, orgs = world
    ages = [internet.whois.lookup(o.domain).age_years(T0) for o in orgs]
    old = sum(1 for age in ages if age > 1.0)
    assert old / len(ages) > 0.9


def test_fortune_and_tranco_ranks_assigned(world):
    _, _, _, orgs = world
    assert any(org.is_fortune500 for org in orgs)
    ranked = [org for org in orgs if org.tranco_rank is not None]
    assert len(ranked) >= len(orgs) // 3
    assert len({org.tranco_rank for org in ranked}) == len(ranked)


def test_parked_popular_sites_share_parking_registrar(world):
    internet, _, _, orgs = world
    parked = [org for org in orgs if org.is_parked]
    for org in parked:
        record = internet.whois.lookup(org.domain)
        assert record.registrar == "SedoPark Domains"
        assert record.owner == "SedoPark Parking Services"


def test_passive_dns_warmed(world):
    internet, _, _, orgs = world
    org_with_assets = next(org for org in orgs if org.assets)
    subs = internet.passive_dns.subdomains_of(org_with_assets.domain)
    assert any(a.fqdn in subs for a in org_with_assets.assets)


def test_add_asset_growth(world):
    internet, builder, config, orgs = world
    org = orgs[0]
    before = len(org.assets)
    asset = builder.add_asset(org, config, T0)
    assert len(org.assets) == before + 1
    assert asset.fqdn.endswith(org.domain)
