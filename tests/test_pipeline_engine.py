"""Unit tests for the stage-based pipeline engine."""

import pytest

from repro.core.export import dataset_to_json
from repro.core.scenario import ScenarioConfig, build_scenario
from repro.pipeline import (
    FunctionStage,
    MissingOutputError,
    PipelineEngine,
    PipelineMetrics,
    Stage,
    StageGraphError,
    WeekContext,
)
from repro.sim.clock import DEFAULT_START, SimClock
from repro.sim.rng import RngStreams
from datetime import timedelta


def _clock(weeks: int) -> SimClock:
    return SimClock(DEFAULT_START, DEFAULT_START + timedelta(weeks=weeks))


def _engine(stages, weeks=3):
    return PipelineEngine(stages, _clock(weeks), RngStreams(1))


# -- composition validation ---------------------------------------------------


def test_stages_run_in_declared_order_every_week():
    calls = []
    stages = [
        FunctionStage("alpha", lambda ctx: calls.append(("alpha", ctx.week_index))),
        FunctionStage("beta", lambda ctx: calls.append(("beta", ctx.week_index))),
    ]
    engine = _engine(stages, weeks=2)
    assert engine.run() == 2
    assert calls == [
        ("alpha", 0), ("beta", 0),
        ("alpha", 1), ("beta", 1),
    ]


def test_duplicate_stage_names_rejected():
    stages = [
        FunctionStage("same", lambda ctx: None),
        FunctionStage("same", lambda ctx: None),
    ]
    with pytest.raises(StageGraphError, match="duplicate"):
        _engine(stages)


def test_unnamed_stage_rejected():
    class Nameless(Stage):
        def tick(self, ctx):
            return None

    with pytest.raises(StageGraphError, match="no name"):
        _engine([Nameless()])


def test_unmet_dependency_rejected_at_construction():
    consumer = FunctionStage(
        "consumer", lambda ctx: ctx.get("missing"), requires=("missing",)
    )
    with pytest.raises(StageGraphError, match="requires.*missing"):
        _engine([consumer])


def test_dependency_satisfied_by_earlier_stage_is_accepted():
    producer = FunctionStage(
        "producer", lambda ctx: ctx.put("x", ctx.week_index), provides=("x",)
    )
    seen = []
    consumer = FunctionStage(
        "consumer", lambda ctx: seen.append(ctx.get("x")), requires=("x",)
    )
    _engine([producer, consumer], weeks=3).run()
    assert seen == [0, 1, 2]


def test_dependency_on_later_stage_rejected():
    producer = FunctionStage("producer", lambda ctx: ctx.put("x", 1), provides=("x",))
    consumer = FunctionStage("consumer", lambda ctx: ctx.get("x"), requires=("x",))
    with pytest.raises(StageGraphError):
        _engine([consumer, producer])


# -- context ------------------------------------------------------------------


def test_outputs_cleared_between_weeks():
    def sometimes_put(ctx):
        if ctx.week_index == 0:
            ctx.put("x", "stale")

    observed = []
    stages = [
        FunctionStage("producer", sometimes_put, provides=("x",)),
        FunctionStage("reader", lambda ctx: observed.append(ctx.has("x"))),
    ]
    _engine(stages, weeks=2).run()
    assert observed == [True, False]


def test_missing_output_names_reader_stage():
    ctx = WeekContext(at=DEFAULT_START, week_index=0, streams=RngStreams(1))
    ctx.current_stage = "reader"
    with pytest.raises(MissingOutputError, match="reader"):
        ctx.get("never-published")


# -- metrics ------------------------------------------------------------------


def test_metrics_count_ticks_and_items():
    stages = [
        FunctionStage("counted", lambda ctx: 5),
        FunctionStage("uncounted", lambda ctx: None),
    ]
    engine = _engine(stages, weeks=4)
    engine.run()
    counted = engine.metrics.stage("counted")
    assert counted.ticks == 4
    assert counted.items_processed == 20
    assert counted.wall_time >= 0.0
    assert engine.metrics.stage("uncounted").items_processed == 0
    # Rows come back in pipeline order.
    assert [row[0] for row in engine.metrics.rows()] == ["counted", "uncounted"]


def test_metrics_record_setup_and_finish():
    events = []
    stage = FunctionStage(
        "lifecycle",
        lambda ctx: events.append("tick"),
        setup=lambda ctx: events.append("setup"),
        finish=lambda ctx: events.append("finish"),
    )
    engine = _engine([stage], weeks=2)
    engine.run()
    assert events == ["setup", "tick", "tick", "finish"]
    row = engine.metrics.stage("lifecycle")
    assert row.setup_time >= 0.0 and row.finish_time >= 0.0
    assert row.total_time >= row.wall_time


def test_partial_run_does_not_finish_stages():
    events = []
    stage = FunctionStage(
        "lifecycle",
        lambda ctx: None,
        finish=lambda ctx: events.append("finish"),
    )
    engine = _engine([stage], weeks=5)
    engine.run(max_weeks=2)
    assert events == []
    engine.run()
    assert events == ["finish"]


def test_metrics_registry_reusable_standalone():
    metrics = PipelineMetrics()
    metrics.record_tick("solo", 0.5, items=10)
    metrics.record_tick("solo", 0.5, items=30)
    row = metrics.stage("solo")
    assert row.ticks == 2
    assert row.items_processed == 40
    assert row.mean_tick_ms == pytest.approx(500.0)
    assert row.items_per_second == pytest.approx(40.0)


# -- checkpoint / resume ------------------------------------------------------


def test_checkpoint_resume_roundtrip_on_tiny_scenario():
    config = ScenarioConfig.tiny()
    config.weeks = 12

    engine = build_scenario(config)
    engine.run(max_weeks=6)
    checkpoint = engine.checkpoint()
    assert checkpoint.week_index == 6
    engine.run()
    full = dataset_to_json(engine.payload.dataset, indent=2)

    resumed = PipelineEngine.restore(checkpoint)
    assert resumed.week_index == 6
    resumed.run()
    assert resumed.week_index == 12
    assert dataset_to_json(resumed.payload.dataset, indent=2) == full
    assert (
        resumed.payload.ground_truth.hijacked_fqdns()
        == engine.payload.ground_truth.hijacked_fqdns()
    )


class _NoopStage(Stage):
    """Module-level (hence picklable) stage for checkpoint tests."""

    name = "noop"

    def tick(self, ctx):
        return None


def test_run_emits_periodic_checkpoints():
    checkpoints = []
    engine = _engine([_NoopStage()], weeks=10)
    engine.run(checkpoint_every=3, on_checkpoint=checkpoints.append)
    # Snapshots after weeks 3, 6 and 9 — never after the final week.
    assert [cp.week_index for cp in checkpoints] == [3, 6, 9]
    assert all(cp.size_bytes() > 0 for cp in checkpoints)
