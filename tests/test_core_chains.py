"""Tests for resolution-chain classification and the attack surface."""

from datetime import datetime, timedelta

from repro.core.chains import (
    ChainStatus,
    analyze_chain,
    survey_attack_surface,
)
from repro.dns.records import RRType, ResourceRecord

T0 = datetime(2020, 1, 6)
T1 = datetime(2020, 5, 4)


def _victim(internet, service, provider_name, label, fqdn, region=None):
    provider = internet.catalog.provider(provider_name)
    zone = internet.zones.get_zone("acme.com") or internet.zones.create_zone("acme.com")
    resource = provider.provision(service, label, owner="org:acme", at=T0, region=region)
    zone.add(ResourceRecord(fqdn, RRType.CNAME, resource.generated_fqdn), T0)
    provider.add_custom_domain(resource, fqdn, T0)
    resource.site.put_index("<html><body>live</body></html>")
    return provider, resource


def test_healthy_chain(internet):
    _victim(internet, "azure-web-app", "Azure", "h1", "a.acme.com")
    report = analyze_chain(internet, "a.acme.com", T0)
    assert report.status == ChainStatus.HEALTHY
    assert report.service_key == "azure-web-app"
    assert not report.hijackable


def test_dangling_cname_is_hijackable(internet):
    provider, resource = _victim(internet, "azure-web-app", "Azure", "h2", "b.acme.com")
    provider.release(resource, T1)
    report = analyze_chain(internet, "b.acme.com", T1)
    assert report.status == ChainStatus.DANGLING_CNAME
    assert report.hijackable
    assert report.resource_name == "h2"


def test_dangling_wildcard_s3(internet):
    provider, resource = _victim(
        internet, "aws-s3-static", "AWS", "bucket-x", "files.acme.com",
        region="us-east-1",
    )
    provider.release(resource, T1)
    report = analyze_chain(internet, "files.acme.com", T1)
    # S3's wildcard keeps the name resolving; the provider 404 is the tell.
    assert report.status == ChainStatus.DANGLING_WILDCARD
    assert report.hijackable


def test_random_name_dangling_not_hijackable(internet):
    provider, resource = _victim(internet, "gcp-appspot", "Google Cloud", "x", "g.acme.com")
    provider.release(resource, T1)
    report = analyze_chain(internet, "g.acme.com", T1)
    assert report.status == ChainStatus.DANGLING_CNAME
    assert not report.hijackable  # random identifier: not replicable


def test_dangling_address(internet):
    zone = internet.zones.create_zone("acme.com")
    # Points into AWS space where nothing is bound.
    zone.add(ResourceRecord("dark.acme.com", RRType.A, "52.1.2.3"), T0)
    report = analyze_chain(internet, "dark.acme.com", T0)
    assert report.status == ChainStatus.DANGLING_ADDRESS


def test_broken_chain(internet):
    internet.zones.create_zone("acme.com")
    report = analyze_chain(internet, "ghost.acme.com", T0)
    assert report.status == ChainStatus.BROKEN


def test_attack_surface_survey(internet):
    provider, live = _victim(internet, "azure-web-app", "Azure", "s1", "one.acme.com")
    _, released = _victim(internet, "azure-web-app", "Azure", "s2", "two.acme.com")
    provider.release(released, T1)
    survey = survey_attack_surface(
        internet, ["one.acme.com", "two.acme.com", "ghost.acme.com"], T1
    )
    assert survey.total == 3
    assert survey.by_status[ChainStatus.HEALTHY] == 1
    assert survey.by_status[ChainStatus.DANGLING_CNAME] == 1
    assert survey.by_status[ChainStatus.BROKEN] == 1
    assert survey.hijackable == 1
    assert survey.hijackable_by_service["azure-web-app"] == 1
    assert survey.dangling_total == 1


def test_survey_on_finished_world(tiny_result):
    fqdns = sorted(tiny_result.collector.monitored)[:300]
    survey = survey_attack_surface(tiny_result.internet, fqdns, tiny_result.end)
    assert survey.total == len(fqdns)
    assert survey.by_status[ChainStatus.HEALTHY] > 0
    # Hijackable leftovers are exactly what the scanner would grab next.
    assert survey.hijackable >= 0
