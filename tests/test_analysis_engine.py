"""Tests for the analysis engine (registry, pool, parity) and the
analysis-layer bugfix regressions that shipped with it."""

from __future__ import annotations

import dataclasses
import json
import os
import random
from collections import Counter
from datetime import datetime, timedelta, timezone
from types import SimpleNamespace

import pytest

from repro.analysis import (
    AnalysisRegistry,
    AnalysisTask,
    default_registry,
    default_tasks,
    DEFAULT_SECTIONS,
    report_json,
    run_analyses,
)
from repro.core.clustering import (
    cluster_identifiers,
    cooccurrence_edges,
    cooccurrence_edges_naive,
)
from repro.core.duration import concurrent_hijacks
from repro.core.identifiers import IdentifierMap
from repro.core.paper_report import build_report
from repro.core.scenario import ScenarioConfig, run_scenario
from repro.core.seo_analysis import (
    SiteSeoProfile,
    _classify_from_store,
    _classify_page,
    _referral_code,
)
from repro.obs import OBS, MetricsRegistry
from repro.web.html import parse_html

T0 = datetime(2020, 3, 2)


@pytest.fixture(scope="module")
def second_result():
    """A second, differently seeded world for cross-seed parity."""
    config = ScenarioConfig.tiny(seed=7)
    config.weeks = 12
    return run_scenario(config)


# -- registry --------------------------------------------------------------


def test_registry_rejects_duplicate_names():
    task = AnalysisTask("a", lambda result, deps: 1)
    registry = AnalysisRegistry([task])
    with pytest.raises(ValueError, match="duplicate"):
        registry.register(AnalysisTask("a", lambda result, deps: 2))


def test_registry_rejects_unregistered_dependency():
    with pytest.raises(ValueError, match="not\n?.*registered|registered"):
        AnalysisRegistry([AnalysisTask("b", lambda result, deps: 1, deps=("a",))])


def test_registry_preserves_order_and_topology():
    registry = default_registry()
    names = registry.names()
    assert len(names) == len(set(names))
    seen = set()
    for task in registry:
        assert all(dep in seen for dep in task.deps), task.name
        seen.add(task.name)


def test_sections_reference_registered_tasks_only():
    registry = default_registry()
    for section in DEFAULT_SECTIONS:
        for name in section.tasks:
            assert name in registry, (section.name, name)


# -- engine execution ------------------------------------------------------


def _stub_registry():
    return AnalysisRegistry([
        AnalysisTask("base", lambda result, deps: 10),
        AnalysisTask("double", lambda result, deps: deps["base"] * 2,
                     deps=("base",), cost=5.0),
        AnalysisTask("other", lambda result, deps: result.tag),
    ])


def test_engine_serial_passes_dependency_payloads():
    run = run_analyses(SimpleNamespace(tag="x"), registry=_stub_registry())
    assert [o.task for o in run.outcomes] == ["base", "double", "other"]
    assert run.payload("double") == 20
    assert run.payload("other") == "x"
    assert not run.failed


def test_engine_pool_matches_serial_outcomes():
    result = SimpleNamespace(tag="x")
    serial = run_analyses(result, registry=_stub_registry(), workers=1)
    pooled = run_analyses(result, registry=_stub_registry(), workers=3)
    assert [o.task for o in pooled.outcomes] == [o.task for o in serial.outcomes]
    assert [o.payload for o in pooled.outcomes] == [o.payload for o in serial.outcomes]
    assert pooled.workers == 3


@pytest.mark.parametrize("workers", [1, 3])
def test_engine_isolates_task_failure_and_skips_downstream(workers):
    def explode(result, deps):
        raise RuntimeError("boom")

    registry = AnalysisRegistry([
        AnalysisTask("base", explode),
        AnalysisTask("double", lambda result, deps: deps["base"] * 2,
                     deps=("base",)),
        AnalysisTask("other", lambda result, deps: 42),
    ])
    run = run_analyses(SimpleNamespace(), registry=registry, workers=workers)
    base = run.outcome("base")
    assert not base.ok and base.error == "RuntimeError: boom"
    skipped = run.outcome("double")
    assert not skipped.ok and "upstream" in skipped.error
    assert run.payload("other") == 42


def test_engine_pool_survives_worker_death():
    registry = AnalysisRegistry([
        AnalysisTask("die", lambda result, deps: os._exit(3)),
        AnalysisTask("live", lambda result, deps: "ok"),
    ])
    run = run_analyses(SimpleNamespace(), registry=registry, workers=2)
    dead = run.outcome("die")
    assert not dead.ok and "AnalysisWorkerDied" in dead.error
    assert run.payload("live") == "ok"


def test_engine_pool_degrades_unpicklable_payload():
    registry = AnalysisRegistry([
        AnalysisTask("bad", lambda result, deps: (lambda: None)),
        AnalysisTask("good", lambda result, deps: 1),
    ])
    run = run_analyses(SimpleNamespace(), registry=registry, workers=2)
    outcome = run.outcome("bad")
    assert not outcome.ok and "UnpicklablePayload" in outcome.error


# -- report parity ---------------------------------------------------------


@pytest.mark.parametrize("workers", [2, 5])
def test_report_byte_parity_seed42(tiny_result, workers):
    assert build_report(tiny_result) == build_report(tiny_result, workers=workers)


def test_report_byte_parity_second_seed(second_result):
    serial = build_report(second_result)
    assert serial == build_report(second_result, workers=4)


def test_report_json_parity_and_schema(tiny_result):
    serial = report_json(run_analyses(tiny_result), tiny_result)
    pooled = report_json(run_analyses(tiny_result, workers=4), tiny_result)
    assert serial == pooled
    exported = json.loads(serial)
    assert exported["schema"] == "repro.analysis.report/1"
    assert exported["seed"] == tiny_result.config.seed
    assert set(exported["analyses"]) == set(default_registry().names())
    assert all(entry["ok"] for entry in exported["analyses"].values())


def test_failed_analysis_degrades_to_error_section(tiny_result):
    def explode(result, deps):
        raise ValueError("synthetic failure")

    tasks = [
        dataclasses.replace(task, run=explode)
        if task.name == "certificates" else task
        for task in default_tasks()
    ]
    run = run_analyses(tiny_result, registry=AnalysisRegistry(tasks), workers=2)
    report = build_report(tiny_result, run=run)
    assert "[analysis failed: task 'certificates' — ValueError: synthetic failure]" in report
    # Every other section still renders.
    assert "Victimology (Section 4.1" in report
    assert "Attribution (Section 6" in report
    assert "Reputation & certificates" in report  # the error stanza's title


def test_engine_metrics_identical_serial_vs_pool(tiny_result):
    def counters(workers):
        registry = MetricsRegistry()
        OBS.configure(metrics=registry)
        try:
            run_analyses(tiny_result, workers=workers)
        finally:
            OBS.reset()
        return registry.counters()

    serial = counters(1)
    pooled = counters(3)
    assert serial == pooled
    assert serial.get("analysis.tasks_ok") == len(default_registry())
    assert serial.get("analysis.clustering.ok") == 1


# -- cooccurrence postings rewrite -----------------------------------------


def _random_identifier_map(rng: random.Random) -> IdentifierMap:
    imap = IdentifierMap()
    domains = [f"d{i:02d}.x.com" for i in range(rng.randint(4, 40))]
    buckets = [imap.phones, imap.socials, imap.short_links, imap.ips]
    for serial in range(rng.randint(2, 60)):
        bucket = rng.choice(buckets)
        count = rng.randint(1, min(6, len(domains)))
        bucket[f"id{serial:03d}"] = set(rng.sample(domains, count))
    return imap


def test_cooccurrence_postings_equal_naive_on_random_maps():
    for seed in range(10):
        imap = _random_identifier_map(random.Random(seed))
        assert cooccurrence_edges(imap) == cooccurrence_edges_naive(imap), seed


def test_cooccurrence_postings_equal_naive_on_real_world(tiny_result):
    from repro.core.identifiers import extract_identifiers

    imap = extract_identifiers(tiny_result.dataset, tiny_result.monitor.store)
    assert cooccurrence_edges(imap) == cooccurrence_edges_naive(imap)


# -- bugfix regressions ----------------------------------------------------


def test_referral_code_reads_the_actual_ref_parameter():
    assert _referral_code("https://aff.example/lp?ref=abc&href=/x") == "abc"
    assert _referral_code("/go?utm=1&ref=zz77") == "zz77"
    # pref=/href= used to poison the split("ref=") extraction.
    assert _referral_code("https://aff.example/lp?pref=nope") is None
    assert _referral_code("https://aff.example/lp?href=/x") is None
    assert _referral_code("https://aff.example/plain") is None
    assert _referral_code("https://aff.example/lp?ref=") is None


def test_store_path_extracts_clean_referral_codes():
    features = SimpleNamespace(
        reachable=True, has_meta_keywords=False, meta_keywords=(),
        onclick_count=0, lang="en",
        external_urls=[
            "https://aff.example/lp?ref=CODE1&href=/landing",
            "https://aff.example/lp?pref=NOISE",
        ],
    )
    state = SimpleNamespace(first_seen=T0 + timedelta(days=1), features=features)
    record = SimpleNamespace(
        fqdn="shop.victim.example",
        episodes=[SimpleNamespace(started_at=T0, ended_at=None)],
    )
    store = SimpleNamespace(history=lambda fqdn: [state])
    profile = SiteSeoProfile(fqdn=record.fqdn)
    _classify_from_store(profile, store, record, Counter())
    assert profile.doorway
    assert profile.referral_codes == {"CODE1"}


def test_crawl_path_extracts_clean_referral_codes():
    document = parse_html(
        '<html><body>'
        '<a href="https://aff.example/lp?ref=abc&href=/x">deal</a>'
        '</body></html>'
    )
    profile = SiteSeoProfile(fqdn="shop.victim.example")
    _classify_page(profile, document, Counter())
    assert profile.doorway
    assert profile.referral_codes == {"abc"}


def test_relative_links_count_toward_link_network():
    anchors = "".join(f'<a href="/doorway/{i}.html">p{i}</a>' for i in range(5))
    document = parse_html(f"<html><body>{anchors}</body></html>")
    profile = SiteSeoProfile(fqdn="farm.victim.example")
    _classify_page(profile, document, Counter())
    assert profile.link_network


def test_offsite_absolute_links_do_not_count_as_internal():
    anchors = "".join(
        f'<a href="https://other{i}.example/x">o{i}</a>' for i in range(5)
    )
    document = parse_html(f"<html><body>{anchors}</body></html>")
    profile = SiteSeoProfile(fqdn="farm.victim.example")
    _classify_page(profile, document, Counter())
    assert not profile.link_network


def test_concurrent_hijacks_empty_and_validation():
    dataset = SimpleNamespace(records=lambda: [])
    assert concurrent_hijacks(dataset, []) == []
    with pytest.raises(ValueError, match="naive"):
        concurrent_hijacks(dataset, [datetime(2020, 3, 2, tzinfo=timezone.utc)])


def test_concurrent_hijacks_accepts_unsorted_instants():
    record = SimpleNamespace(
        fqdn="a.x.com",
        episodes=[SimpleNamespace(
            started_at=T0, ended_at=T0 + timedelta(days=50),
        )],
    )
    dataset = SimpleNamespace(records=lambda: [record])
    instants = [T0 + timedelta(days=d) for d in (70, 10, 30)]  # unsorted
    counts = concurrent_hijacks(dataset, instants)
    assert [instant for instant, _ in counts] == sorted(instants)
    assert dict(counts) == {
        T0 + timedelta(days=10): 1,
        T0 + timedelta(days=30): 1,
        T0 + timedelta(days=70): 0,
    }


def test_dendrogram_merges_record_canonical_representatives():
    imap = IdentifierMap()
    # Sorted names map to indices 0..5.  Distances force the merge
    # order (0,5) then (3,5) then (1,3); the third merge joins index 1
    # to the {0,3,5} component whose union-find root is 3 but whose
    # canonical representative is 0.
    imap.phones["id0"] = {"d01", "d02"}
    imap.phones["id5"] = {"d01", "d02", "d03"}
    imap.socials["id3"] = {"d03", "d04", "d05", "d06"}
    imap.ips["id1"] = {"d06", "d07", "d08", "d09", "d10", "d11"}
    imap.short_links["id2"] = {"lonely-a"}
    imap.short_links["id4"] = {"lonely-b"}
    report = cluster_identifiers(imap)
    shape = [(m.left, m.right, m.size) for m in report.merges]
    assert shape == [(0, 5, 2), (3, 0, 3), (1, 0, 4)]
    # Every recorded label is the smallest member of its component at
    # merge time — never a bare union-find root.
    assert all(m.left != 3 for m in report.merges[2:])
    big = max(report.clusters, key=lambda c: c.identifier_count)
    assert set(big.identifiers) == {"id0", "id1", "id3", "id5"}


def test_dendrogram_merge_sequence_deterministic(tiny_result):
    from repro.core.identifiers import extract_identifiers

    imap = extract_identifiers(tiny_result.dataset, tiny_result.monitor.store)
    first = cluster_identifiers(imap)
    second = cluster_identifiers(imap)
    assert first.merges == second.merges


# -- CLI wiring ------------------------------------------------------------


def test_report_cli_with_workers_and_json(tmp_path, capsys):
    from repro.cli import main

    json_path = tmp_path / "report.json"
    code = main([
        "report", "--scale", "tiny", "--weeks", "2",
        "--analysis-workers", "2", "--report-json", str(json_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "ABUSE MEASUREMENT REPORT" in out
    exported = json.loads(json_path.read_text())
    assert exported["schema"] == "repro.analysis.report/1"
