"""Tests for CIDR sets and the random-allocation IP pool."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.addresses import CidrSet, IPv4Pool, PoolExhaustedError, takeover_attempts_expected


def test_cidrset_membership():
    cidrs = CidrSet(["20.40.0.0/13", "52.0.0.0/11"])
    assert "20.40.1.1" in cidrs
    assert "52.31.255.255" in cidrs
    assert "8.8.8.8" not in cidrs
    assert "not-an-ip" not in cidrs
    assert len(cidrs) == 2
    assert cidrs.total_addresses() == 2**19 + 2**21


def test_pool_allocates_unique_members():
    pool = IPv4Pool(["10.0.0.0/24"])
    rng = random.Random(1)
    seen = {pool.allocate(rng) for _ in range(50)}
    assert len(seen) == 50
    assert all(ip in pool for ip in seen)
    assert pool.allocated_count == 50


def test_pool_exhaustion():
    pool = IPv4Pool(["10.0.0.0/30"])  # 4 addresses
    rng = random.Random(1)
    for _ in range(4):
        pool.allocate(rng)
    with pytest.raises(PoolExhaustedError):
        pool.allocate(rng)


def test_release_and_reuse():
    pool = IPv4Pool(["10.0.0.0/24"])
    rng = random.Random(2)
    ip = pool.allocate(rng)
    pool.release(ip)
    assert not pool.is_allocated(ip)
    with pytest.raises(ValueError):
        pool.release(ip)


def test_allocate_specific():
    pool = IPv4Pool(["10.0.0.0/24"])
    pool.allocate_specific("10.0.0.7")
    assert pool.is_allocated("10.0.0.7")
    with pytest.raises(ValueError):
        pool.allocate_specific("10.0.0.7")
    with pytest.raises(ValueError):
        pool.allocate_specific("192.168.0.1")


def test_reuse_bias_prefers_recent_releases():
    pool = IPv4Pool(["10.0.0.0/16"], reuse_bias=1.0)
    rng = random.Random(3)
    ip = pool.allocate(rng)
    pool.release(ip)
    assert pool.allocate(rng) == ip


def test_zero_bias_is_a_lottery():
    """With no warm reuse, winning a specific address back is ~1/free."""
    pool = IPv4Pool(["10.0.0.0/16"])
    assert takeover_attempts_expected(pool) == 2**16
    assert takeover_attempts_expected(pool, warm_fraction=0.99) < 2**16 * 0.02


def test_invalid_reuse_bias():
    with pytest.raises(ValueError):
        IPv4Pool(["10.0.0.0/24"], reuse_bias=1.5)


def test_empty_pool_rejected():
    with pytest.raises(ValueError):
        IPv4Pool([])


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=1, max_value=30))
def test_pool_invariant_allocated_subset_of_pool(seed, count):
    """Property: every allocated address stays inside the pool and the
    allocated count matches allocations minus releases."""
    pool = IPv4Pool(["172.16.0.0/20"])
    rng = random.Random(seed)
    allocated = []
    for _ in range(count):
        ip = pool.allocate(rng)
        assert ip in pool
        allocated.append(ip)
    releases = allocated[: len(allocated) // 2]
    for ip in releases:
        pool.release(ip)
    assert pool.allocated_count == len(allocated) - len(releases)
