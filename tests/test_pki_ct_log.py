"""Tests for the CT log."""

from datetime import datetime, timedelta

from repro.pki.certificate import Certificate
from repro.pki.ct_log import CTLog

T0 = datetime(2020, 1, 6)


def _cert(serial, sans):
    return Certificate(
        serial=serial, sans=tuple(sans), issuer="CA",
        not_before=T0, not_after=T0 + timedelta(days=90),
    )


def test_submit_and_query():
    log = CTLog()
    log.submit(_cert(1, ["a.example.com"]), T0)
    log.submit(_cert(2, ["*.example.com", "example.com"]), T0 + timedelta(days=1))
    assert len(log) == 2
    assert len(log.single_san_entries()) == 1
    assert len(log.multi_san_entries()) == 1


def test_entries_for_name_and_subdomains():
    log = CTLog()
    log.submit(_cert(1, ["a.example.com"]), T0)
    log.submit(_cert(2, ["b.example.com"]), T0)
    assert len(log.entries_for("a.example.com")) == 1
    assert len(log.entries_for("example.com", include_subdomains=True)) == 2


def test_first_issuance():
    log = CTLog()
    assert log.first_issuance_for("a.example.com") is None
    log.submit(_cert(1, ["a.example.com"]), T0 + timedelta(days=9))
    log.submit(_cert(2, ["a.example.com"]), T0)
    assert log.first_issuance_for("a.example.com") == T0


def test_monitor_fires_on_covered_names_only():
    log = CTLog()
    seen = []
    log.monitor("example.com", seen.append)
    log.submit(_cert(1, ["x.example.com"]), T0)
    log.submit(_cert(2, ["other.com"]), T0)
    log.submit(_cert(3, ["*.example.com"]), T0)
    assert len(seen) == 2


def test_wildcard_entry_covers_apex_monitoring():
    log = CTLog()
    seen = []
    log.monitor("example.com", seen.append)
    log.submit(_cert(1, ["*.sub.example.com"]), T0)
    assert len(seen) == 1
