"""Tests for the analysis modules against the shared tiny scenario."""

from repro.cloud.specs import NamingPolicy
from repro.core import (
    abuse_volume,
    cert_analysis,
    clustering,
    cookie_analysis,
    duration,
    growth,
    identifiers as identifiers_mod,
    malware_analysis,
    provider_analysis,
    registrar_analysis,
    reputation,
    scoring,
    seo_analysis,
    victimology,
)
from repro.world.organizations import OrgKind


def test_ground_truth_exists(tiny_result):
    assert len(tiny_result.ground_truth) > 5
    assert len(tiny_result.dataset) > 5


def test_scoring_high_quality(tiny_result):
    score = scoring.score_detector(tiny_result.dataset, tiny_result.ground_truth)
    assert score.precision >= 0.9
    assert score.recall >= 0.7
    assert score.f1 > 0.8


def test_growth_series_monotonic(tiny_result):
    points = growth.growth_series(tiny_result.collector, tiny_result.dataset)
    monitored = [p.monitored for p in points]
    assert monitored == sorted(monitored)
    cumulative = [p.cumulative_abused for p in points]
    assert cumulative == sorted(cumulative)
    assert growth.growth_factor(points) >= 1.0


def test_victimology_consistency(tiny_result):
    report = victimology.analyze_victims(tiny_result.dataset, tiny_result.organizations)
    assert report.abused_fqdns == len(tiny_result.dataset)
    assert report.sld_level_abuses + report.subdomain_abuses == report.abused_fqdns
    assert report.abused_slds <= report.abused_fqdns
    assert report.affected_tlds >= 1
    assert sum(c for _, c in report.tld_counts) <= report.abused_fqdns
    assert 0.0 <= report.fortune500_share <= 1.0


def test_top_victims_sorted(tiny_result):
    top = victimology.top_victims(tiny_result.dataset, tiny_result.organizations, limit=5)
    counts = [count for _, count in top]
    assert counts == sorted(counts, reverse=True)
    enterprises = victimology.top_victims(
        tiny_result.dataset, tiny_result.organizations, kind=OrgKind.ENTERPRISE
    )
    assert all(org.kind == OrgKind.ENTERPRISE for org, _ in enterprises)


def test_provider_analysis_nameable_invariant(tiny_result):
    """The paper's core structural finding: no IP or random-name abuse."""
    report = provider_analysis.analyze_providers(
        tiny_result.dataset, tiny_result.organizations, tiny_result.ground_truth
    )
    assert report.all_abuses_user_nameable
    assert report.freetext_abuses == len(tiny_result.ground_truth)
    assert report.dedicated_ip_abuses == 0
    assert report.random_name_abuses == 0
    table3 = report.table3_rows()
    assert table3
    assert all(row.naming == NamingPolicy.FREETEXT.value for row in table3)
    assert [r.abused for r in table3] == sorted((r.abused for r in table3), reverse=True)


def test_monitored_ge_abused_per_service(tiny_result):
    report = provider_analysis.analyze_providers(
        tiny_result.dataset, tiny_result.organizations
    )
    for row in report.rows:
        assert row.abused <= row.monitored


def test_duration_report(tiny_result):
    report = duration.analyze_durations(tiny_result.dataset, tiny_result.end)
    assert report.total >= len(tiny_result.dataset)
    assert report.short_lived + report.medium + report.long_lived == report.total
    bins = report.histogram()
    assert sum(count for _, count in bins) == report.total


def test_time_frames_sorted(tiny_result):
    frames = duration.hijack_time_frames(tiny_result.dataset, tiny_result.end)
    starts = [start for _, start, _ in frames]
    assert starts == sorted(starts)


def test_registrar_diversity(tiny_result):
    report = registrar_analysis.analyze_registrar_diversity(
        tiny_result.dataset, tiny_result.internet.whois
    )
    if report.multi_domain_clusters:
        assert report.share_spanning_2plus > 0.5
        curve = report.curve()
        shares = [share for _, share in curve]
        assert shares == sorted(shares, reverse=True)


def test_abuse_volume(tiny_result):
    report = abuse_volume.analyze_volume(tiny_result.dataset)
    if report.sites_with_sitemaps:
        assert report.min_files >= 2
        assert report.max_files >= report.average_files
        assert report.estimated_total_kb > 0


def test_identifier_extraction_and_geo(tiny_result):
    imap = identifiers_mod.extract_identifiers(
        tiny_result.dataset, tiny_result.monitor.store
    )
    counts = imap.unique_counts
    assert counts["phones"] > 0
    assert counts["short_links"] > 0
    geo = dict(identifiers_mod.phone_geo_distribution(imap))
    assert geo
    assert max(geo, key=geo.get) == "ID"  # Indonesia dominates (Fig 21)
    orgs = identifiers_mod.ip_organizations(imap, tiny_result.internet.geoip)
    assert all(name != "(unknown)" for name, _ in orgs)


def test_clustering_shape(tiny_result):
    imap = identifiers_mod.extract_identifiers(
        tiny_result.dataset, tiny_result.monitor.store
    )
    report = clustering.cluster_identifiers(imap)
    assert report.cluster_count >= 1
    largest = report.largest
    assert largest.identifier_count >= 2
    sizes = [c.domain_count for c in report.top_by_domains()]
    assert sizes == sorted(sizes, reverse=True)
    # Every clustered domain is an abused domain.
    assert report.covered_domains() <= set(tiny_result.dataset.abused_fqdns())


def test_certificate_analysis(tiny_result):
    report = cert_analysis.analyze_certificates(
        tiny_result.dataset, tiny_result.internet.ct_log
    )
    assert report.single_san_total >= 0
    if report.single_san_total:
        assert report.free_ca_share > 0.5  # free ACME CAs dominate


def test_caa_analysis_bounds(tiny_result):
    report = cert_analysis.analyze_caa(
        tiny_result.dataset, tiny_result.internet.zones, tiny_result.internet.ct_log
    )
    assert 0 <= report.parents_with_caa <= report.parent_domains
    assert report.parents_paid_only <= report.parents_with_caa


def test_malware_report(tiny_result):
    report = tiny_result.harvester.report()
    assert report.predominantly_benign
    assert report.apk_count + report.exe_count == report.total


def test_blacklisting_is_sparse(tiny_result):
    report = malware_analysis.analyze_blacklisting(
        tiny_result.dataset, tiny_result.internet.virustotal, tiny_result.internet.ct_log
    )
    assert report.flagged_share < 0.2  # blacklists barely notice (Fig 19)


def test_cookie_correlation(tiny_result):
    report = cookie_analysis.correlate_cookie_leaks(
        tiny_result.dataset, tiny_result.internet.darknet
    )
    assert report.total == len(report.matched_leaks)
    for leak in report.matched_leaks:
        assert leak.cookie.is_authentication


def test_reputation_report(tiny_result):
    report = reputation.analyze_reputation(
        tiny_result.dataset, tiny_result.internet.whois,
        tiny_result.internet.ct_log, tiny_result.internet.client, tiny_result.end,
    )
    assert report.older_than_year_share > 0.8  # Figure 18's shape
    assert 0.0 <= report.certified_share <= 1.0
    assert report.age_histogram()


def test_seo_analysis(tiny_result):
    report = seo_analysis.analyze_seo(
        tiny_result.dataset, tiny_result.monitor.store,
        tiny_result.internet.client, tiny_result.end,
    )
    assert report.total_sites == len(tiny_result.dataset)
    assert report.seo_share > 0.5  # SEO dominates (Section 5.2)
    assert 0.0 <= report.keyword_stuffing_page_rate <= 1.0
    assert report.top_meta_keywords
