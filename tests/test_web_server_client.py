"""Tests for virtual hosting and the application-layer HTTP client."""

from datetime import datetime, timedelta

from repro.dns.records import RRType, ResourceRecord
from repro.dns.resolver import Resolver
from repro.dns.zone import ZoneRegistry
from repro.net.network import Network
from repro.pki.certificate import Certificate
from repro.web.client import FetchStatus, HttpClient
from repro.web.cookies import Cookie, CookieJar
from repro.web.http import HttpRequest
from repro.web.server import VirtualHostServer, dedicated_server
from repro.web.site import StaticSite

T0 = datetime(2020, 1, 6)


def _wire(routes):
    """Build zones/network with one edge serving the given host->body map."""
    zones = ZoneRegistry()
    zone = zones.create_zone("example.com")
    network = Network()
    edge = VirtualHostServer("Azure")
    network.bind("40.0.0.1", edge)
    for host, body in routes.items():
        site = StaticSite()
        site.put_index(body)
        edge.route(host, site)
        zone.add(ResourceRecord(host, RRType.A, "40.0.0.1"), T0)
    client = HttpClient(Resolver(zones), network)
    return zones, network, edge, client


def test_routing_by_host_header():
    _, _, edge, _ = _wire({"a.example.com": "AAA", "b.example.com": "BBB"})
    assert edge.serve(HttpRequest(host="a.example.com")).body == "AAA"
    assert edge.serve(HttpRequest(host="B.EXAMPLE.COM")).body == "BBB"


def test_unrouted_host_gets_provider_404():
    _, _, edge, _ = _wire({"a.example.com": "AAA"})
    response = edge.serve(HttpRequest(host="gone.example.com"))
    assert response.status == 404
    assert "Azure" in response.body


def test_dedicated_server_answers_any_host():
    site = StaticSite()
    site.put_index("VM")
    server = dedicated_server("AWS", site)
    assert server.serve(HttpRequest(host="whatever.example")).body == "VM"


def test_client_fetch_ok():
    _, _, _, client = _wire({"a.example.com": "hello"})
    outcome = client.fetch("a.example.com", at=T0)
    assert outcome.ok
    assert outcome.response.body == "hello"
    assert outcome.ip == "40.0.0.1"


def test_client_fetch_nxdomain():
    _, _, _, client = _wire({})
    outcome = client.fetch("missing.example.com", at=T0)
    assert outcome.status == FetchStatus.DNS_NXDOMAIN


def test_client_fetch_dark_ip():
    zones = ZoneRegistry()
    zone = zones.create_zone("example.com")
    zone.add(ResourceRecord("dead.example.com", RRType.A, "10.9.9.9"), T0)
    client = HttpClient(Resolver(zones), Network())
    assert client.fetch("dead.example.com").status == FetchStatus.CONNECTION_FAILED


def test_https_requires_matching_valid_certificate():
    _, _, edge, client = _wire({"a.example.com": "secure"})
    outcome = client.fetch("a.example.com", scheme="https", at=T0)
    assert outcome.status == FetchStatus.TLS_ERROR
    certificate = Certificate(
        serial=1, sans=("a.example.com",), issuer="Let's Encrypt",
        not_before=T0, not_after=T0 + timedelta(days=90),
    )
    edge.install_certificate("a.example.com", certificate)
    assert client.fetch("a.example.com", scheme="https", at=T0).ok
    # Expired later:
    late = T0 + timedelta(days=200)
    # Re-add DNS era: certificate expired by then.
    assert client.fetch("a.example.com", scheme="https", at=late).status == FetchStatus.TLS_ERROR


def test_cookie_jar_roundtrip_through_client():
    _, _, _, client = _wire({"a.example.com": "hi"})
    jar = CookieJar()
    jar.set(Cookie(name="session", value="tok", domain="example.com", is_authentication=True))
    outcome = client.fetch("a.example.com", at=T0, cookie_jar=jar)
    assert outcome.ok
    # The server-side request carried the cookie (header view).
    # (Verified indirectly through a capturing site below.)
    captured = {}

    class Capture(StaticSite):
        def handle(self, request):
            captured.update(request.cookies)
            return super().handle(request)

    zones, network, edge, client2 = _wire({})
    zone = zones.get_zone("example.com")
    site = Capture()
    site.put_index("x")
    edge.route("c.example.com", site)
    zone.add(ResourceRecord("c.example.com", RRType.A, "40.0.0.1"), T0)
    client2.fetch("c.example.com", at=T0, cookie_jar=jar)
    assert captured == {"session": "tok"}


def test_unroute_removes_certificates_too():
    _, _, edge, _ = _wire({"a.example.com": "x"})
    certificate = Certificate(
        serial=1, sans=("a.example.com",), issuer="CA",
        not_before=T0, not_after=T0 + timedelta(days=1),
    )
    edge.install_certificate("a.example.com", certificate)
    edge.unroute("a.example.com")
    assert edge.certificate_for("a.example.com") is None
