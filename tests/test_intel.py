"""Tests for the threat-intel substrates."""

import random
from datetime import datetime, timedelta

import pytest

from repro.intel.darknet import CookieLeak, DarknetFeed
from repro.intel.shorteners import SHORTENER_DOMAINS, UrlShortener
from repro.intel.virustotal import BinarySample, VirusTotalService
from repro.web.cookies import Cookie

T0 = datetime(2020, 1, 6)


def test_virustotal_flags_accumulate_slowly():
    vt = VirusTotalService(random.Random(1))
    for week in range(150):
        vt.observe_abuse("bad.example.com", T0 + timedelta(weeks=week))
    report = vt.domain_report("bad.example.com")
    # With ~0.5% combined weekly probability most domains stay unflagged
    # for years; three years of exposure yields at most a few flags.
    assert report.flag_count <= 3


def test_virustotal_most_domains_never_flagged():
    vt = VirusTotalService(random.Random(2))
    for index in range(200):
        for week in range(30):
            vt.observe_abuse(f"d{index}.example.com", T0 + timedelta(weeks=week))
    flagged = vt.flagged_domains()
    assert len(flagged) < 60  # far fewer than the 200 observed


def test_virustotal_binary_scanning_memoised():
    vt = VirusTotalService(random.Random(3))
    trojan = BinarySample(filename="x.exe", platform="windows", sha256="a" * 64,
                          is_trojan=True, family="SpyLoader")
    benign = BinarySample(filename="slot.apk", platform="android", sha256="b" * 64)
    assert vt.scan_binary(trojan)  # detected by most vendors
    assert vt.scan_binary(benign) == []
    assert vt.scan_binary(trojan) == vt.scan_binary(trojan)


def test_binary_extension():
    assert BinarySample(filename="slot.APK", platform="android", sha256="x").extension == "apk"
    assert BinarySample(filename="noext", platform="android", sha256="x").extension == ""


def test_darknet_feed_queries():
    feed = DarknetFeed()
    auth = Cookie(name="session", value="tok", domain="victim.com", is_authentication=True)
    tracking = Cookie(name="visitor", value="v", domain="victim.com")
    feed.post(CookieLeak(cookie=auth, domain="app.victim.com", victim_ip="1.1.1.1", leaked_at=T0))
    feed.post(CookieLeak(cookie=tracking, domain="app.victim.com", victim_ip="1.1.1.1", leaked_at=T0))
    feed.post(CookieLeak(cookie=auth, domain="other.com", victim_ip="2.2.2.2", leaked_at=T0))
    assert len(feed) == 3
    leaks = feed.leaks_for_domain("victim.com")
    assert len(leaks) == 1  # auth-only by default, domain-scoped
    assert len(feed.leaks_for_domain("victim.com", authentication_only=False)) == 2


def test_darknet_time_window():
    feed = DarknetFeed()
    auth = Cookie(name="s", value="t", domain="v.com", is_authentication=True)
    feed.post(CookieLeak(cookie=auth, domain="a.v.com", victim_ip="1.1.1.1", leaked_at=T0))
    assert feed.leaks_for_domain("v.com", since=T0 + timedelta(days=1)) == []
    assert len(feed.leaks_for_domain("v.com", until=T0 + timedelta(days=1))) == 1


def test_shortener_roundtrip_and_stability():
    shortener = UrlShortener(random.Random(4))
    short = shortener.shorten("https://mega-gacor.bet/play?src=x")
    assert short.split("//")[1].split("/")[0] in SHORTENER_DOMAINS
    assert shortener.expand(short) == "https://mega-gacor.bet/play?src=x"
    assert shortener.shorten("https://mega-gacor.bet/play?src=x") == short
    assert len(shortener) == 1
    with pytest.raises(KeyError):
        shortener.expand("https://sh.rt/unknown")
