"""Tests for S3-style wildcard DNS and Internet assembly."""

from datetime import datetime, timedelta

from repro.dns.records import RRType
from repro.sim.rng import RngStreams
from repro.world.internet import ATTACKER_HOSTING_RANGES, Internet

T0 = datetime(2020, 1, 6)
T1 = datetime(2020, 4, 6)


def test_wildcard_resolves_unprovisioned_bucket_names(internet):
    """Any name under the S3 website suffix resolves — provisioned or not."""
    result = internet.resolver.resolve_a_with_chain(
        "never-created.s3-website.us-east-1.amazonaws.com"
    )
    assert result.ok
    # ...but HTTP answers with the provider 404 fingerprint.
    outcome = internet.client.fetch(
        "never-created.s3-website.us-east-1.amazonaws.com", at=T0
    )
    assert outcome.ok
    assert outcome.response.status == 404
    assert outcome.response.headers.get("X-Provider") == "AWS"


def test_deleted_bucket_keeps_resolving(internet):
    aws = internet.catalog.provider("AWS")
    bucket = aws.provision("aws-s3-static", "my-bucket", owner="org:x", at=T0,
                           region="us-east-1")
    bucket.site.put_index("<html><body>bucket</body></html>")
    assert internet.client.fetch(bucket.generated_fqdn, at=T0).response.ok
    aws.release(bucket, T1)
    result = internet.resolver.resolve_a_with_chain(bucket.generated_fqdn)
    assert result.ok  # wildcard still answers
    outcome = internet.client.fetch(bucket.generated_fqdn, at=T1)
    assert outcome.response.status == 404


def test_wildcard_does_not_leak_into_other_suffixes(internet):
    result = internet.resolver.resolve_a_with_chain("ghost.azurewebsites.net")
    assert not result.ok  # azurewebsites has no wildcard


def test_exact_record_shadows_wildcard(internet):
    aws = internet.catalog.provider("AWS")
    bucket = aws.provision("aws-s3-static", "real-bucket", owner="org:x", at=T0,
                           region="eu-west-1")
    # The provisioned name resolves to the same regional wildcard edge.
    result = internet.resolver.resolve_a_with_chain(bucket.generated_fqdn)
    assert result.addresses == [bucket.ip]


def test_internet_has_five_cas(internet):
    names = set(internet.cas)
    assert {"Let's Encrypt", "ZeroSSL", "DigiCert"} <= names
    assert internet.cas["DigiCert"].free is False
    assert internet.cas["Let's Encrypt"].free is True


def test_attacker_hosting_ranges_annotated(internet):
    for organization, country, cidr in ATTACKER_HOSTING_RANGES:
        sample_ip = cidr.split("/")[0].rsplit(".", 1)[0] + ".7"
        assert internet.geoip.organization_of(sample_ip) == organization
        assert internet.geoip.country_of(sample_ip) == country


def test_two_internets_are_independent():
    a = Internet(RngStreams(1))
    b = Internet(RngStreams(1))
    azure_a = a.catalog.provider("Azure")
    azure_a.provision("azure-web-app", "only-in-a", owner="x", at=T0)
    assert azure_a.get_active("azure-web-app", "only-in-a") is not None
    assert b.catalog.provider("Azure").get_active("azure-web-app", "only-in-a") is None
