"""Tests for the HTML document model and parser."""

from hypothesis import given, strategies as st

from repro.web.html import HtmlDocument, Link, Script, parse_html


def _sample_doc() -> HtmlDocument:
    doc = HtmlDocument(
        title="Slot Gacor & Friends",
        lang="id",
        meta={"keywords": "slot, judi, gacor", "description": "situs judi",
              "generator": "WordPress 5.8.1", "og:title": "slot online"},
    )
    doc.headings = ["Daftar slot"]
    doc.paragraphs = ["judi slot online terpercaya"]
    doc.links = [
        Link(href="https://wa.me/+628123", text="WhatsApp"),
        Link(href="/page-1.html", text="more", onclick="window.open('x')"),
    ]
    doc.scripts = [Script(src="http://141.98.1.1/js/popunder.js"), Script(body="var x=1;")]
    doc.images = ["http://141.98.1.1/banner.gif"]
    return doc


def test_render_parse_roundtrip_preserves_features():
    doc = _sample_doc()
    parsed = parse_html(doc.render())
    assert parsed.title == doc.title
    assert parsed.lang == "id"
    assert parsed.meta["keywords"] == "slot, judi, gacor"
    assert parsed.meta["generator"] == "WordPress 5.8.1"
    assert parsed.meta["og:title"] == "slot online"
    assert [l.href for l in parsed.links] == [l.href for l in doc.links]
    assert parsed.links[1].onclick == "window.open('x')"
    assert parsed.scripts[0].src == "http://141.98.1.1/js/popunder.js"
    assert any(s.body == "var x=1;" for s in parsed.scripts)
    assert parsed.images == doc.images
    assert parsed.headings == doc.headings
    assert parsed.paragraphs == doc.paragraphs


def test_meta_keywords_splitting():
    doc = _sample_doc()
    assert doc.meta_keywords == ["slot", "judi", "gacor"]
    assert doc.generator.startswith("WordPress")


def test_visible_text_includes_anchor_text():
    text = _sample_doc().visible_text()
    assert "Daftar slot" in text
    assert "WhatsApp" in text


def test_external_hosts_and_all_urls():
    doc = _sample_doc()
    assert "wa.me" in doc.external_hosts()
    assert "141.98.1.1" in doc.external_hosts()
    assert "/page-1.html" in doc.all_urls()


def test_parse_tolerates_garbage():
    doc = parse_html("<<<not <html at all >>>")
    assert doc.title == ""
    assert doc.links == []


def test_escaping_attributes_roundtrip():
    doc = HtmlDocument(title='He said "hi" <now>')
    parsed = parse_html(doc.render())
    assert parsed.title == 'He said "hi" <now>'


TEXT = st.text(
    alphabet=st.characters(blacklist_characters="<>&\"'", blacklist_categories=("Cs",)),
    min_size=1, max_size=30,
).map(lambda s: " ".join(s.split())).filter(bool)


@given(TEXT, TEXT, st.lists(TEXT, max_size=3))
def test_roundtrip_property(title, paragraph, headings):
    doc = HtmlDocument(title=title, paragraphs=[paragraph], headings=list(headings))
    parsed = parse_html(doc.render())
    assert parsed.title == title.strip() or parsed.title == title
    assert parsed.paragraphs == [paragraph.strip() or paragraph]
    assert parsed.headings == [h.strip() or h for h in headings]


def test_size_bytes_positive():
    assert _sample_doc().size_bytes() > 100
