"""Tests for recursive resolution semantics."""

from datetime import datetime

from repro.dns.passive_dns import PassiveDNS
from repro.dns.records import RRType, ResourceRecord
from repro.dns.resolver import ResolutionStatus, Resolver
from repro.dns.zone import ZoneRegistry

T0 = datetime(2020, 1, 6)


def _world():
    zones = ZoneRegistry()
    org = zones.create_zone("example.com")
    cloud = zones.create_zone("azurewebsites.net")
    return zones, org, cloud


def test_direct_a_lookup():
    zones, org, _ = _world()
    org.add(ResourceRecord("app.example.com", RRType.A, "1.2.3.4"), T0)
    result = Resolver(zones).resolve("app.example.com")
    assert result.status == ResolutionStatus.NOERROR
    assert result.addresses == ["1.2.3.4"]
    assert result.cname_chain == []


def test_cname_chain_across_zones():
    zones, org, cloud = _world()
    org.add(ResourceRecord("app.example.com", RRType.CNAME, "res.azurewebsites.net"), T0)
    cloud.add(ResourceRecord("res.azurewebsites.net", RRType.A, "40.1.2.3"), T0)
    result = Resolver(zones).resolve("app.example.com")
    assert result.ok
    assert result.cname_chain == ["res.azurewebsites.net"]
    assert result.addresses == ["40.1.2.3"]


def test_dangling_cname_yields_nxdomain_with_chain():
    zones, org, _cloud = _world()
    org.add(ResourceRecord("app.example.com", RRType.CNAME, "gone.azurewebsites.net"), T0)
    result = Resolver(zones).resolve("app.example.com")
    assert result.status == ResolutionStatus.NXDOMAIN
    # The chain is preserved: this is what Algorithm 1 matches suffixes on.
    assert result.cname_chain == ["gone.azurewebsites.net"]


def test_unknown_name_nxdomain():
    zones, _, _ = _world()
    result = Resolver(zones).resolve("nothing.example.com")
    assert result.status == ResolutionStatus.NXDOMAIN


def test_nodata_when_name_has_other_types():
    zones, org, _ = _world()
    org.add(ResourceRecord("txt.example.com", RRType.TXT, "hello"), T0)
    result = Resolver(zones).resolve("txt.example.com", RRType.A)
    assert result.status == ResolutionStatus.NODATA


def test_cname_loop_servfail():
    zones, org, _ = _world()
    org.add(ResourceRecord("a.example.com", RRType.CNAME, "b.example.com"), T0)
    org.add(ResourceRecord("b.example.com", RRType.CNAME, "a.example.com"), T0)
    result = Resolver(zones).resolve("a.example.com")
    assert result.status == ResolutionStatus.SERVFAIL


def test_cname_query_returns_cname_without_chasing():
    zones, org, _ = _world()
    org.add(ResourceRecord("a.example.com", RRType.CNAME, "x.azurewebsites.net"), T0)
    result = Resolver(zones).resolve("a.example.com", RRType.CNAME)
    assert result.status == ResolutionStatus.NOERROR
    assert result.records[0].rdata == "x.azurewebsites.net"


def test_resolution_feeds_passive_dns():
    zones, org, cloud = _world()
    org.add(ResourceRecord("app.example.com", RRType.CNAME, "res.azurewebsites.net"), T0)
    cloud.add(ResourceRecord("res.azurewebsites.net", RRType.A, "40.1.2.3"), T0)
    pdns = PassiveDNS()
    Resolver(zones, pdns).resolve("app.example.com", at=T0)
    assert "app.example.com" in pdns.subdomains_of("example.com")
    assert pdns.names_pointing_to("res.azurewebsites.net") == ["app.example.com"]


def test_no_passive_observation_without_timestamp():
    zones, org, _ = _world()
    org.add(ResourceRecord("a.example.com", RRType.A, "1.1.1.1"), T0)
    pdns = PassiveDNS()
    Resolver(zones, pdns).resolve("a.example.com")  # no at=
    assert len(pdns) == 0
