"""Tests for HTTP messages and static sites."""

import pytest

from repro.web.http import HttpRequest, HttpResponse, not_found, provider_404
from repro.web.site import CallableSite, StaticSite
from repro.web.sitemap import Sitemap


def test_request_crawler_detection():
    assert HttpRequest(host="x.com", headers={"User-Agent": "Googlebot/2.1"}).is_crawler
    assert HttpRequest(host="x.com", headers={"User-Agent": "research crawler"}).is_crawler
    assert not HttpRequest(host="x.com", headers={"User-Agent": "Chrome"}).is_crawler


def test_response_ok_and_size():
    assert HttpResponse(status=204).ok
    assert not HttpResponse(status=404).ok
    assert HttpResponse(body="abcd").body_size() == 4


def test_provider_404_fingerprint():
    response = provider_404("Azure", resource_hint="gone.azurewebsites.net")
    assert response.status == 404
    assert "Azure" in response.body
    assert response.headers["X-Provider"] == "Azure"


def test_static_site_serving():
    site = StaticSite()
    site.put_index("<html>hi</html>")
    site.put("/a.html", "<html>a</html>")
    assert site.handle(HttpRequest(host="x.com", path="/")).body == "<html>hi</html>"
    assert site.handle(HttpRequest(host="x.com", path="/a.html")).ok
    assert site.handle(HttpRequest(host="x.com", path="/nope")).status == 404


def test_static_site_paths_and_counts():
    site = StaticSite()
    site.put_index("<html></html>")
    site.put("/x.bin", "MZ...", content_type="application/octet-stream")
    assert site.paths() == ["/", "/x.bin"]
    assert site.page_count() == 1
    assert site.total_bytes() > 0
    assert site.get("/x.bin") == "MZ..."


def test_static_site_put_requires_absolute_path():
    with pytest.raises(ValueError):
        StaticSite().put("relative", "x")


def test_static_site_remove():
    site = StaticSite()
    site.put("/a", "x")
    site.remove("/a")
    assert not site.has_path("/a")
    with pytest.raises(KeyError):
        site.remove("/a")


def test_put_sitemap():
    site = StaticSite()
    sitemap = Sitemap()
    sitemap.add("http://x.com/a")
    site.put_sitemap(sitemap)
    response = site.handle(HttpRequest(host="x.com", path="/sitemap.xml"))
    assert response.content_type == "application/xml"
    assert "http://x.com/a" in response.body


def test_default_headers_applied():
    site = StaticSite(default_headers={"Strict-Transport-Security": "max-age=1"})
    site.put_index("x")
    response = site.handle(HttpRequest(host="x.com"))
    assert response.headers["Strict-Transport-Security"] == "max-age=1"


def test_callable_site():
    site = CallableSite(lambda request: HttpResponse(body=request.path))
    assert site.handle(HttpRequest(host="x", path="/echo")).body == "/echo"


def test_not_found_helper():
    assert not_found().status == 404
