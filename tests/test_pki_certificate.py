"""Tests for certificate objects."""

from datetime import datetime, timedelta

import pytest

from repro.pki.certificate import Certificate

T0 = datetime(2020, 1, 6)


def _cert(sans, days=90):
    return Certificate(
        serial=1, sans=tuple(sans), issuer="Test CA",
        not_before=T0, not_after=T0 + timedelta(days=days),
    )


def test_requires_sans_and_sane_window():
    with pytest.raises(ValueError):
        _cert([])
    with pytest.raises(ValueError):
        Certificate(serial=1, sans=("a.com",), issuer="x", not_before=T0, not_after=T0)


def test_single_san_detection():
    assert _cert(["app.example.com"]).is_single_san
    assert not _cert(["a.com", "b.com"]).is_single_san
    assert not _cert(["*.example.com"]).is_single_san


def test_exact_name_matching():
    cert = _cert(["app.example.com"])
    assert cert.matches("APP.example.com")
    assert not cert.matches("other.example.com")
    assert not cert.matches("sub.app.example.com")


def test_wildcard_matches_one_level():
    cert = _cert(["*.example.com", "example.com"])
    assert cert.is_wildcard
    assert cert.matches("foo.example.com")
    assert cert.matches("example.com")
    assert not cert.matches("a.b.example.com")


def test_validity_window():
    cert = _cert(["a.com"], days=10)
    assert cert.valid_at(T0 + timedelta(days=5))
    assert not cert.valid_at(T0 + timedelta(days=11))
    assert not cert.valid_at(T0 - timedelta(days=1))


def test_validity_problem_strings():
    cert = _cert(["a.com"], days=10)
    assert cert.validity_problem("a.com", T0) == ""
    assert "does not cover" in cert.validity_problem("b.com", T0)
    assert "expired" in cert.validity_problem("a.com", T0 + timedelta(days=20))


def test_subject_is_first_san():
    assert _cert(["x.com", "y.com"]).subject == "x.com"
