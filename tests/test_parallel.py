"""Tests for the sharded sweep executor (`repro.parallel`).

Covers the determinism contract (a fault-free sharded run is
byte-identical to the serial baseline, fork or no fork), the fused
sampling path's feature parity with ``WeeklyMonitor.sample``, the
partition/merge algebra, and the extraction cache.
"""

from datetime import datetime, timedelta

import pytest

from repro.core.export import dataset_to_json
from repro.core.monitoring import (
    ExtractionCache,
    MonitorConfig,
    SnapshotFeatures,
    WeeklyMonitor,
)
from repro.core.scenario import ScenarioConfig, run_scenario
from repro.core.stages import MonitorSweepStage
from repro.dns.records import RRType, ResourceRecord
from repro.faults.plan import FaultConfig, FaultPlan
from repro.faults.retry import CircuitBreaker, RetryPolicy
from repro.parallel import (
    ProcessExecutor,
    SerialExecutor,
    SweepReport,
    fast_path_eligible,
    partition,
)
from repro.parallel.shard import _sample_fused, run_shard
from repro.pipeline.metrics import PipelineMetrics, StageMetrics
from repro.sim.clock import SimClock
from repro.sim.rng import RngStreams
from repro.world.internet import Internet

T0 = datetime(2020, 1, 6)
WEEK = timedelta(weeks=1)


# -- partition -------------------------------------------------------------


def test_partition_is_contiguous_balanced_and_order_preserving():
    items = list(range(10))
    shards = partition(items, 3)
    assert [len(s) for s in shards] == [4, 3, 3]
    assert [x for shard in shards for x in shard] == items


def test_partition_with_more_shards_than_items():
    assert partition([1, 2], 5) == [[1], [2]]
    assert partition([], 4) == []


def test_partition_rejects_bad_shard_count():
    with pytest.raises(ValueError):
        partition([1], 0)


# -- merge algebra ---------------------------------------------------------


def _report(n):
    return SweepReport(
        failures=[(f"f{n}.example.com", "timeout")],
        samples_taken=n,
        sitemap_fetches=n * 2,
        retries=n,
        backoff_seconds=float(n),
        breaker_trips=1,
        injected={"dns_servfail": n},
        cache_hits=n,
        cache_misses=1,
        workers=n,
        mode="inline",
        shard_sizes=[n],
        shard_walls=[0.1 * n],
    )


def test_sweep_report_merge_is_associative():
    a, b, c = _report(1), _report(2), _report(3)
    left = a.merge(b).merge(c)
    right = a.merge(b.merge(c))
    assert left == right
    assert left.samples_taken == 6
    assert left.injected == {"dns_servfail": 6}
    assert left.failures == a.failures + b.failures + c.failures
    assert left.workers == 3


def test_sweep_report_merge_wall_is_max_and_cpu_is_sum():
    # Regression: merge used to sum wall_seconds, so an N-shard sweep
    # reported N-fold "elapsed" time.  Wall is elapsed (max under
    # merge); cpu is the summed per-shard sampling time.
    a, b = _report(1), _report(2)
    a.wall_seconds, a.cpu_seconds = 2.0, 2.0
    b.wall_seconds, b.cpu_seconds = 3.0, 3.0
    merged = a.merge(b)
    assert merged.wall_seconds == 3.0
    assert merged.cpu_seconds == 5.0
    # Still associative with the third report in either bracketing.
    c = _report(3)
    c.wall_seconds, c.cpu_seconds = 1.0, 1.0
    left, right = a.merge(b).merge(c), a.merge(b.merge(c))
    assert (left.wall_seconds, left.cpu_seconds) == (3.0, 6.0)
    assert (right.wall_seconds, right.cpu_seconds) == (3.0, 6.0)


def test_sweep_report_merge_marks_mixed_modes():
    a = _report(1)
    b = _report(2)
    b.mode = "fork"
    assert a.merge(b).mode == "mixed"
    assert a.merge(_report(3)).mode == "inline"


def test_stage_metrics_merge_sums_and_rejects_name_mismatch():
    a = StageMetrics(name="sweep", ticks=2, wall_time=1.0, items_processed=10)
    b = StageMetrics(name="sweep", ticks=3, wall_time=0.5, retries=1)
    merged = a.merge(b)
    assert (merged.ticks, merged.wall_time, merged.items_processed) == (5, 1.5, 10)
    assert merged.retries == 1
    with pytest.raises(ValueError):
        a.merge(StageMetrics(name="other"))


def test_pipeline_metrics_merge_is_associative():
    def registry(n):
        metrics = PipelineMetrics()
        metrics.record_tick("sweep", 1.0 * n, items=n)
        metrics.record_tick("detect", 0.5, items=1)
        return metrics

    a, b, c = registry(1), registry(2), registry(3)
    left = a.merge(b).merge(c)
    right = a.merge(b.merge(c))
    assert [
        (r.name, r.ticks, r.wall_time, r.items_processed) for r in left.stages()
    ] == [
        (r.name, r.ticks, r.wall_time, r.items_processed) for r in right.stages()
    ]
    assert left.stage("sweep").items_processed == 6


def test_extraction_cache_merge_folds_entries_and_counters():
    a = ExtractionCache(html={"h1": {"title": "x"}}, hits=2, misses=1)
    b = ExtractionCache(
        html={"h2": {"title": "y"}}, sitemap={"s1": (10, 2, ("/a",))},
        hits=1, misses=3,
    )
    a.merge(b)
    assert set(a.html) == {"h1", "h2"}
    assert a.sitemap == {"s1": (10, 2, ("/a",))}
    assert (a.hits, a.misses) == (3, 4)


# -- fused path parity -----------------------------------------------------


def _internet():
    return Internet(RngStreams(7), SimClock())


def _victim(internet, name="shop", body="<html><head><title>Portal</title></head><body>hi</body></html>"):
    azure = internet.catalog.provider("Azure")
    zone = internet.zones.get_zone("acme.com") or internet.zones.create_zone("acme.com")
    resource = azure.provision("azure-web-app", f"acme-{name}", owner="org:acme", at=T0)
    fqdn = f"{name}.acme.com"
    zone.add(ResourceRecord(fqdn, RRType.CNAME, resource.generated_fqdn), T0)
    azure.add_custom_domain(resource, fqdn, T0)
    resource.site.put_index(body)
    return azure, resource, fqdn


def test_fast_path_requires_quiescent_client_knobs():
    internet = _internet()
    monitor = WeeklyMonitor(internet.client)
    assert fast_path_eligible(monitor)
    monitor.config.prefer_https = True
    assert not fast_path_eligible(monitor)
    monitor.config.prefer_https = False
    monitor.config.retry = RetryPolicy.standard(3)
    assert not fast_path_eligible(monitor)


def test_fast_path_ineligible_under_breaker_or_active_faults():
    internet = _internet()
    internet.client.breaker = CircuitBreaker()
    assert not fast_path_eligible(WeeklyMonitor(internet.client))
    chaotic = _internet()
    chaotic.client.fault_plan = FaultPlan.from_seed(FaultConfig.chaos(0.3), 7)
    assert not fast_path_eligible(WeeklyMonitor(chaotic.client))


def test_fused_sample_matches_generic_sample_feature_for_feature():
    internet = _internet()
    azure, resource, fqdn = _victim(internet)
    missing = "gone.acme.com"
    internet.zones.get_zone("acme.com").add(
        ResourceRecord(missing, RRType.CNAME, "nosuch.azurewebsites.net"), T0
    )
    generic = WeeklyMonitor(internet.client)
    fused = WeeklyMonitor(internet.client)
    headers = {"User-Agent": fused.config.user_agent}
    for name in (fqdn, missing):
        expected = generic.sample(name, T0)
        actual = _sample_fused(fused, name, T0, headers)
        assert isinstance(actual, SnapshotFeatures)
        assert actual == expected


def test_fused_sample_returns_touch_marker_only_when_state_is_unchanged():
    internet = _internet()
    _, resource, fqdn = _victim(internet)
    monitor = WeeklyMonitor(internet.client)
    headers = {"User-Agent": monitor.config.user_agent}
    first = _sample_fused(monitor, fqdn, T0, headers)
    assert isinstance(first, SnapshotFeatures)
    monitor.store.record(first)
    # Unchanged world: the fused path proves the state equal and ships
    # only the name.
    assert _sample_fused(monitor, fqdn, T0 + WEEK, headers) == fqdn
    # Content change: a full sample again.
    resource.site.put_index("<html><head><title>slot gacor</title></head></html>")
    second = _sample_fused(monitor, fqdn, T0 + 2 * WEEK, headers)
    assert isinstance(second, SnapshotFeatures)
    assert second.title == "slot gacor"


def test_store_touch_equals_recording_a_duplicate_state():
    def run(use_touch):
        internet = _internet()
        _, _, fqdn = _victim(internet)
        monitor = WeeklyMonitor(internet.client)
        monitor.store.record(monitor.sample(fqdn, T0))
        if use_touch:
            monitor.store.touch(fqdn, T0 + WEEK)
        else:
            monitor.store.record(monitor.sample(fqdn, T0 + WEEK))
        return [
            (s.features, s.first_seen, s.last_seen, s.observations)
            for s in monitor.store.history(fqdn)
        ]

    assert run(use_touch=True) == run(use_touch=False)


def test_store_touch_extends_observation_window():
    internet = _internet()
    _, _, fqdn = _victim(internet)
    monitor = WeeklyMonitor(internet.client)
    monitor.store.record(monitor.sample(fqdn, T0))
    monitor.store.touch(fqdn, T0 + WEEK)
    (state,) = monitor.store.history(fqdn)
    assert state.observations == 2
    assert state.first_seen == T0
    assert state.last_seen == T0 + WEEK


# -- executor parity -------------------------------------------------------


def _monitored_world(n=6):
    internet = _internet()
    fqdns = []
    for i in range(n):
        _, _, fqdn = _victim(
            internet, name=f"svc{i}",
            body=f"<html><head><title>Site {i % 2}</title></head><body>s{i % 2}</body></html>",
        )
        fqdns.append(fqdn)
    return internet, sorted(fqdns)


def _sweep_all(executor, weeks=3, mutate=None):
    internet, fqdns = _monitored_world()
    monitor = WeeklyMonitor(internet.client)
    reports = []
    at = T0
    for week in range(weeks):
        if mutate is not None:
            mutate(week, internet, fqdns)
        reports.append(executor.sweep(monitor, fqdns, at))
        at += WEEK
    histories = {
        fqdn: [
            (s.features, s.first_seen, s.last_seen, s.observations)
            for s in monitor.store.history(fqdn)
        ]
        for fqdn in fqdns
    }
    return reports, histories


@pytest.mark.parametrize("workers,use_fork", [(1, False), (3, False), (3, True)])
def test_process_executor_matches_serial_store_and_changes(workers, use_fork):
    serial_reports, serial_hist = _sweep_all(SerialExecutor())
    proc = ProcessExecutor(workers=workers, use_fork=use_fork)
    proc_reports, proc_hist = _sweep_all(proc)
    assert proc_hist == serial_hist
    for ours, theirs in zip(proc_reports, serial_reports):
        assert [(c[0], c[1]) for c in ours.changed] == [
            (c[0], c[1]) for c in theirs.changed
        ]
        assert ours.failures == theirs.failures
        assert ours.samples_taken == theirs.samples_taken
        assert ours.sitemap_fetches == theirs.sitemap_fetches


def test_forked_sweep_replays_counters_and_observations(tmp_path):
    internet, fqdns = _monitored_world()
    monitor = WeeklyMonitor(internet.client)
    feed = internet.resolver.passive_dns
    before = len(feed) if feed is not None else None
    executor = ProcessExecutor(workers=3, use_fork=True)
    report = executor.sweep(monitor, fqdns, T0)
    assert executor.last_mode == "fork"
    assert report.samples_taken == len(fqdns)
    assert monitor.samples_taken == len(fqdns)
    if before is not None:
        # Index + sitemap resolutions were replayed into the parent feed.
        assert len(feed) >= before


def test_extraction_cache_persists_across_sweeps():
    executor = ProcessExecutor(workers=2, use_fork=False)
    internet, fqdns = _monitored_world()
    monitor = WeeklyMonitor(internet.client)
    executor.sweep(monitor, fqdns, T0)
    misses_after_first = executor.extraction_cache.misses
    assert misses_after_first > 0
    # Same bodies reused across FQDNs: the shared-template pages hit.
    assert executor.extraction_cache.hits > 0
    executor.sweep(monitor, fqdns, T0 + WEEK)
    # Steady state: nothing new to extract.
    assert executor.extraction_cache.misses == misses_after_first


def test_process_executor_rejects_bad_worker_count():
    with pytest.raises(ValueError):
        ProcessExecutor(workers=0)


# -- end-to-end determinism ------------------------------------------------


def test_sharded_scenario_exports_byte_identical_dataset(tiny_result):
    baseline = dataset_to_json(tiny_result.dataset, indent=2)
    config = ScenarioConfig.tiny()
    config.workers = 4
    result = run_scenario(config)
    assert isinstance(result.executor, ProcessExecutor)
    assert dataset_to_json(result.dataset, indent=2) == baseline


def test_monitor_stage_defaults_to_serial_executor():
    internet, fqdns = _monitored_world(2)
    monitor = WeeklyMonitor(internet.client)

    class Collector:
        monitored_sorted = fqdns

    stage = MonitorSweepStage(monitor, Collector())
    assert isinstance(stage._executor, SerialExecutor)
