"""Tests for the deterministic fault-injection and resilience layer."""

import random
from datetime import datetime, timedelta

import pytest

from repro.dns.records import RRType, ResourceRecord
from repro.dns.resolver import ResolutionStatus, Resolver
from repro.dns.zone import ZoneRegistry
from repro.faults.plan import (
    DNS_SERVFAIL,
    FaultConfig,
    FaultPlan,
    HTTP_503,
)
from repro.faults.retry import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    RetryPolicy,
)
from repro.net.network import Network
from repro.net.probing import icmp_ping, tcp_probe
from repro.sim.rng import RngStreams
from repro.web.client import FetchStatus, HttpClient
from repro.web.http import HttpRequest
from repro.web.server import VirtualHostServer
from repro.web.site import StaticSite

T0 = datetime(2020, 1, 6)


# -- FaultPlan ------------------------------------------------------------


def _chaos_plan(seed: int = 7, level: float = 0.3) -> FaultPlan:
    return FaultPlan.from_seed(FaultConfig.chaos(level), seed)


def _decision_trace(plan: FaultPlan, n: int = 200):
    return [
        (
            plan.dns_fault(f"host{i}.example.com"),
            plan.connection_reset(f"10.0.0.{i % 250}"),
            plan.http_fault("Azure", f"host{i}.example.com"),
            plan.truncated_body(f"host{i}.example.com"),
        )
        for i in range(n)
    ]


def test_same_seed_replays_identical_decisions():
    a, b = _chaos_plan(seed=11), _chaos_plan(seed=11)
    assert _decision_trace(a) == _decision_trace(b)
    assert a.stats.injected == b.stats.injected
    assert a.stats.total > 0  # at 30% intensity something must fire


def test_different_seeds_diverge():
    assert _decision_trace(_chaos_plan(seed=1)) != _decision_trace(_chaos_plan(seed=2))


def test_disabled_plan_never_injects_and_never_draws():
    plan = FaultPlan.from_seed(FaultConfig(), 3)
    state = plan._dns.getstate(), plan._net.getstate(), plan._http.getstate()
    assert all(
        decision == (None, False, None, False) for decision in _decision_trace(plan)
    )
    assert plan.stats.total == 0
    # No stream advanced: a disabled plan is invisible to determinism.
    assert state == (plan._dns.getstate(), plan._net.getstate(), plan._http.getstate())


def test_suppression_disables_injection_without_draws():
    plan = _chaos_plan(level=1.0)
    with plan.suppressed():
        assert not plan.active
        assert all(
            decision == (None, False, None, False)
            for decision in _decision_trace(plan, n=20)
        )
    assert plan.active
    assert plan.stats.total == 0
    # Back outside, a level-1.0 plan fires on every call.
    assert plan.dns_fault("x.example.com") is not None


def test_per_layer_streams_are_independent():
    # Turning the HTTP layer off must not shift the DNS decision stream.
    full = FaultConfig.chaos(0.3)
    dns_only = FaultConfig.chaos(0.3)
    dns_only.http_503_rate = dns_only.http_429_rate = 0.0
    dns_only.truncated_body_rate = 0.0
    dns_only.connection_reset_rate = dns_only.icmp_blackout_rate = 0.0
    a = FaultPlan.from_seed(full, 5)
    b = FaultPlan.from_seed(dns_only, 5)
    trace_a = []
    trace_b = []
    for i in range(200):
        name = f"h{i}.example.com"
        trace_a.append(a.dns_fault(name))
        a.http_fault("Azure", name)  # interleave draws on other layers
        a.connection_reset("10.0.0.1")
        trace_b.append(b.dns_fault(name))
        b.http_fault("Azure", name)
        b.connection_reset("10.0.0.1")
    assert trace_a == trace_b


def test_chaos_level_validation():
    with pytest.raises(ValueError):
        FaultConfig.chaos(1.5)


def test_stats_rows_sorted():
    plan = _chaos_plan(level=1.0)
    plan.dns_fault("a.example.com")
    plan.http_fault("Azure", "a.example.com")
    kinds = [kind for kind, _ in plan.stats.rows()]
    assert kinds == sorted(kinds)
    assert plan.stats.injected[DNS_SERVFAIL] == 1
    assert plan.stats.injected[HTTP_503] == 1


# -- RetryPolicy ----------------------------------------------------------


def test_backoff_doubles_then_caps():
    policy = RetryPolicy(max_attempts=5, base_delay_s=2.0, max_delay_s=8.0, jitter=0.0)
    assert [policy.backoff_delay(n) for n in (1, 2, 3, 4)] == [2.0, 4.0, 8.0, 8.0]
    assert policy.backoff_budget() == 22.0


def test_backoff_jitter_is_deterministic_and_bounded():
    policy = RetryPolicy(max_attempts=4, base_delay_s=10.0, jitter=0.25)
    a = [policy.backoff_delay(n, random.Random(9)) for n in (1, 2, 3)]
    b = [policy.backoff_delay(n, random.Random(9)) for n in (1, 2, 3)]
    assert a == b
    for n, delay in zip((1, 2, 3), a):
        nominal = min(policy.max_delay_s, 10.0 * 2.0 ** (n - 1))
        assert 0.75 * nominal <= delay <= 1.25 * nominal


def test_policy_presets_and_validation():
    assert not RetryPolicy.none().retries_enabled
    assert RetryPolicy.standard(3).max_attempts == 3
    assert RetryPolicy.standard(3).retries_enabled
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy.none().backoff_delay(0)


# -- CircuitBreaker -------------------------------------------------------


def test_breaker_trips_after_consecutive_failures():
    breaker = CircuitBreaker(failure_threshold=3)
    for i in range(2):
        breaker.record_failure("1.2.3.4", T0)
        assert breaker.state_of("1.2.3.4") == CLOSED
    breaker.record_failure("1.2.3.4", T0)
    assert breaker.state_of("1.2.3.4") == OPEN
    assert breaker.trips == 1
    assert not breaker.allow("1.2.3.4", T0 + timedelta(days=3))
    assert breaker.open_edges() == ["1.2.3.4"]
    # A different edge is unaffected.
    assert breaker.allow("5.6.7.8", T0)


def test_breaker_success_resets_failure_streak():
    breaker = CircuitBreaker(failure_threshold=2)
    breaker.record_failure("1.2.3.4", T0)
    breaker.record_success("1.2.3.4")
    breaker.record_failure("1.2.3.4", T0)
    assert breaker.state_of("1.2.3.4") == CLOSED


def test_breaker_half_opens_after_cooldown_then_closes_on_success():
    breaker = CircuitBreaker(failure_threshold=1, cooldown=timedelta(weeks=1))
    breaker.record_failure("1.2.3.4", T0)
    assert breaker.state_of("1.2.3.4") == OPEN
    assert breaker.allow("1.2.3.4", T0 + timedelta(weeks=1))
    assert breaker.state_of("1.2.3.4") == HALF_OPEN
    breaker.record_success("1.2.3.4")
    assert breaker.state_of("1.2.3.4") == CLOSED
    assert breaker.allow("1.2.3.4", T0 + timedelta(weeks=1, days=1))


def test_breaker_half_open_failure_reopens():
    breaker = CircuitBreaker(failure_threshold=1, cooldown=timedelta(weeks=1))
    breaker.record_failure("1.2.3.4", T0)
    trial_at = T0 + timedelta(weeks=1)
    assert breaker.allow("1.2.3.4", trial_at)
    breaker.record_failure("1.2.3.4", trial_at)
    assert breaker.state_of("1.2.3.4") == OPEN
    assert breaker.trips == 2
    # The cooldown restarts from the failed trial.
    assert not breaker.allow("1.2.3.4", trial_at + timedelta(days=6))
    assert breaker.allow("1.2.3.4", trial_at + timedelta(weeks=1))


def test_breaker_rows_report_only_unhealthy_edges():
    breaker = CircuitBreaker(failure_threshold=2)
    breaker.record_failure("b", T0)
    breaker.record_failure("a", T0)
    breaker.record_failure("a", T0)
    breaker.record_success("c")
    assert breaker.rows() == [("a", OPEN, 2), ("b", CLOSED, 1)]


# -- layer wiring ---------------------------------------------------------


def _dns_plan(**rates) -> FaultPlan:
    return FaultPlan.from_seed(FaultConfig(enabled=True, **rates), 1)


def test_resolver_injects_servfail_and_timeout():
    zones = ZoneRegistry()
    zones.create_zone("example.com").add(
        ResourceRecord("a.example.com", RRType.A, "40.0.0.1"), T0
    )
    servfail = Resolver(zones, fault_plan=_dns_plan(dns_servfail_rate=1.0))
    assert servfail.resolve("a.example.com", at=T0).status == ResolutionStatus.SERVFAIL
    timeout = Resolver(zones, fault_plan=_dns_plan(dns_timeout_rate=1.0))
    assert timeout.resolve("a.example.com", at=T0).status == ResolutionStatus.TIMEOUT
    healthy = Resolver(zones, fault_plan=_dns_plan())
    assert healthy.resolve("a.example.com", at=T0).ok


def test_probing_injects_blackout_and_reset():
    network = Network(fault_plan=_dns_plan(icmp_blackout_rate=1.0,
                                           connection_reset_rate=1.0))
    network.bind("40.0.0.1", VirtualHostServer("Azure"))
    ping = icmp_ping(network, "40.0.0.1")
    assert not ping.responsive
    assert "injected" in ping.detail
    probe = tcp_probe(network, "40.0.0.1", 80)
    assert not probe.responsive
    assert "injected" in probe.detail


def test_edge_injects_http_faults():
    plan = _dns_plan(http_503_rate=1.0)
    edge = VirtualHostServer("Azure", fault_plan=plan)
    site = StaticSite()
    site.put_index("hello")
    edge.route("a.example.com", site)
    response = edge.serve(HttpRequest(host="a.example.com"))
    assert response.status == 503
    assert response.headers.get("Retry-After")
    edge429 = VirtualHostServer("Azure", fault_plan=_dns_plan(http_429_rate=1.0))
    edge429.route("a.example.com", site)
    assert edge429.serve(HttpRequest(host="a.example.com")).status == 429


# -- HttpClient resilience ------------------------------------------------


def _wire_client(body="hello", fault_plan=None, breaker=None, status_5xx=False):
    zones = ZoneRegistry()
    zone = zones.create_zone("example.com")
    network = Network(fault_plan=fault_plan)
    edge = VirtualHostServer("Azure", fault_plan=fault_plan)
    network.bind("40.0.0.1", edge)
    site = StaticSite()
    site.put_index(body)
    edge.route("a.example.com", site)
    zone.add(ResourceRecord("a.example.com", RRType.A, "40.0.0.1"), T0)
    resolver = Resolver(zones, fault_plan=fault_plan)
    return HttpClient(resolver, network, fault_plan=fault_plan, breaker=breaker)


def test_client_reports_http_error_with_response():
    client = _wire_client(fault_plan=_dns_plan(http_503_rate=1.0))
    outcome = client.fetch("a.example.com", at=T0)
    assert outcome.status == FetchStatus.HTTP_ERROR
    assert outcome.http_status == 503
    assert outcome.transient
    assert outcome.attempts == 1


def test_client_reports_truncated_body_as_timeout():
    client = _wire_client(fault_plan=_dns_plan(truncated_body_rate=1.0))
    outcome = client.fetch("a.example.com", at=T0)
    assert outcome.status == FetchStatus.TIMEOUT
    assert "truncated" in outcome.detail


def test_client_reports_connection_reset():
    client = _wire_client(fault_plan=_dns_plan(connection_reset_rate=1.0))
    outcome = client.fetch("a.example.com", at=T0)
    assert outcome.status == FetchStatus.CONNECTION_RESET
    assert outcome.transient


def test_dark_ip_is_not_transient():
    # CONNECTION_FAILED is the dangling-record signal: never retried,
    # never fed to the breaker.
    client = _wire_client()
    zones = ZoneRegistry()
    zones.create_zone("example.com").add(
        ResourceRecord("dead.example.com", RRType.A, "10.9.9.9"), T0
    )
    dark = HttpClient(Resolver(zones), Network())
    outcome = dark.fetch(
        "dead.example.com", at=T0, retry=RetryPolicy.standard(3)
    )
    assert outcome.status == FetchStatus.CONNECTION_FAILED
    assert not outcome.transient
    assert outcome.attempts == 1


class _FlakyOncePlan:
    """Stub plan: resets the first connection, then behaves."""

    def __init__(self):
        self.calls = 0
        self.retry_rng = random.Random(0)
        self.active = True

    def dns_fault(self, qname):
        return None

    def connection_reset(self, ip):
        self.calls += 1
        return self.calls == 1

    def icmp_blackout(self, ip):
        return False

    def http_fault(self, provider, host):
        return None

    def truncated_body(self, host):
        return False


def test_retry_recovers_from_transient_failure():
    client = _wire_client(fault_plan=_FlakyOncePlan())
    outcome = client.fetch("a.example.com", at=T0, retry=RetryPolicy.standard(3))
    assert outcome.ok
    assert outcome.attempts == 2
    assert client.retries_total == 1
    assert client.backoff_seconds_total > 0


def test_retry_exhaustion_returns_last_failure():
    client = _wire_client(fault_plan=_dns_plan(connection_reset_rate=1.0))
    outcome = client.fetch("a.example.com", at=T0, retry=RetryPolicy.standard(3))
    assert outcome.status == FetchStatus.CONNECTION_RESET
    assert outcome.attempts == 3
    assert client.retries_total == 2


def test_breaker_short_circuits_failing_edge():
    breaker = CircuitBreaker(failure_threshold=2)
    client = _wire_client(
        fault_plan=_dns_plan(http_503_rate=1.0), breaker=breaker
    )
    assert client.fetch("a.example.com", at=T0).status == FetchStatus.HTTP_ERROR
    assert client.fetch("a.example.com", at=T0).status == FetchStatus.HTTP_ERROR
    assert breaker.state_of("40.0.0.1") == OPEN
    blocked = client.fetch("a.example.com", at=T0 + timedelta(days=1))
    assert blocked.status == FetchStatus.CIRCUIT_OPEN
    assert blocked.response is None


def test_breaker_retries_under_one_fetch_count_once_per_attempt():
    # Per-attempt accounting: the failed first attempt counts against
    # the edge's streak, and the successful retry resets it to zero.
    breaker = CircuitBreaker(failure_threshold=2)
    client = _wire_client(fault_plan=_FlakyOncePlan(), breaker=breaker)
    outcome = client.fetch("a.example.com", at=T0, retry=RetryPolicy.standard(3))
    assert outcome.ok
    assert breaker.state_of("40.0.0.1") == CLOSED


def test_suppressed_plan_bypasses_breaker():
    breaker = CircuitBreaker(failure_threshold=1)
    plan = _dns_plan(http_503_rate=1.0)
    client = _wire_client(fault_plan=plan, breaker=breaker)
    client.fetch("a.example.com", at=T0)
    assert breaker.state_of("40.0.0.1") == OPEN
    with plan.suppressed():
        outcome = client.fetch("a.example.com", at=T0)
    assert outcome.ok  # no injection, no circuit check
    assert breaker.state_of("40.0.0.1") == OPEN  # and no state change


def test_fault_streams_fork_deterministically_from_master():
    streams_a = RngStreams(42).fork("faults")
    streams_b = RngStreams(42).fork("faults")
    a = FaultPlan(FaultConfig.chaos(0.3), streams_a)
    b = FaultPlan(FaultConfig.chaos(0.3), streams_b)
    assert _decision_trace(a) == _decision_trace(b)


# -- breaker edge cases (regressions) -------------------------------------


def test_breaker_open_with_lost_instant_fails_open_to_trial():
    # Regression: an OPEN circuit whose ``opened_at`` was lost (e.g. a
    # pre-upgrade checkpoint) used to short-circuit its edge forever;
    # it must fail open into a single half-open trial instead.
    breaker = CircuitBreaker(failure_threshold=1, cooldown=timedelta(weeks=1))
    breaker.record_failure("1.2.3.4", T0)
    assert breaker.state_of("1.2.3.4") == OPEN
    breaker._circuits["1.2.3.4"].opened_at = None
    assert breaker.allow("1.2.3.4", T0)  # no cooldown arithmetic possible
    assert breaker.state_of("1.2.3.4") == HALF_OPEN
    breaker.record_success("1.2.3.4")
    assert breaker.state_of("1.2.3.4") == CLOSED


def test_breaker_half_open_admits_exactly_one_probe():
    # Regression: HALF_OPEN used to admit every caller until an outcome
    # landed; only one trial probe may be in flight at a time.
    breaker = CircuitBreaker(failure_threshold=1, cooldown=timedelta(weeks=1))
    breaker.record_failure("1.2.3.4", T0)
    trial_at = T0 + timedelta(weeks=1)
    assert breaker.allow("1.2.3.4", trial_at)
    assert breaker.state_of("1.2.3.4") == HALF_OPEN
    # The trial is pending: everyone else keeps short-circuiting.
    assert not breaker.allow("1.2.3.4", trial_at)
    assert not breaker.allow("1.2.3.4", trial_at + timedelta(hours=1))
    breaker.record_failure("1.2.3.4", trial_at)
    assert breaker.state_of("1.2.3.4") == OPEN
    # Next cooldown: a fresh trial becomes available again.
    assert breaker.allow("1.2.3.4", trial_at + timedelta(weeks=1))


def test_breaker_counts_intermediate_retry_attempts():
    # Regression: only the *final* outcome of a multi-attempt fetch used
    # to reach the breaker, so an edge failing every first try never
    # accumulated a streak.  Every attempt must count: with a threshold
    # of 1, the first failed attempt trips the circuit and the very next
    # retry attempt short-circuits mid-fetch.
    breaker = CircuitBreaker(failure_threshold=1)
    client = _wire_client(fault_plan=_dns_plan(http_503_rate=1.0), breaker=breaker)
    outcome = client.fetch("a.example.com", at=T0, retry=RetryPolicy.standard(3))
    assert outcome.status == FetchStatus.CIRCUIT_OPEN
    assert outcome.attempts == 2  # first try failed, retry short-circuited
    assert breaker.trips == 1
