"""Tests for domain-name utilities, including property-based checks."""

import pytest
from hypothesis import given, strategies as st

from repro.dns.names import (
    InvalidNameError,
    ends_with_any,
    is_subdomain_of,
    normalize_name,
    parent_name,
    public_suffix,
    registered_domain,
    split_name,
    subdomain_labels,
    tld_of,
)

LABEL = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=10).filter(
    lambda s: not s.startswith("-") and not s.endswith("-")
)
NAME = st.lists(LABEL, min_size=1, max_size=5).map(".".join)


def test_normalize_lowercases_and_strips_dot():
    assert normalize_name("App.Example.COM.") == "app.example.com"


def test_normalize_rejects_empty():
    with pytest.raises(InvalidNameError):
        normalize_name("")
    with pytest.raises(InvalidNameError):
        normalize_name("a..b")


def test_parent_name_chain():
    assert parent_name("a.b.c") == "b.c"
    assert parent_name("b.c") == "c"
    assert parent_name("c") is None


def test_is_subdomain_of():
    assert is_subdomain_of("a.b.example.com", "example.com")
    assert is_subdomain_of("example.com", "example.com")
    assert not is_subdomain_of("badexample.com", "example.com")
    assert not is_subdomain_of("example.com", "a.example.com")


def test_ends_with_any_matches_cloud_suffixes():
    suffixes = ("azurewebsites.net", "amazonaws.com")
    assert ends_with_any("foo.azurewebsites.net", suffixes) == "azurewebsites.net"
    assert ends_with_any("x.s3-website.eu-west-1.amazonaws.com", suffixes) == "amazonaws.com"
    assert ends_with_any("foo.example.com", suffixes) is None


def test_public_suffix_handles_multi_label():
    assert public_suffix("shop.foo.co.uk") == "co.uk"
    assert public_suffix("foo.com") == "com"
    assert public_suffix("x.y.edu.au") == "edu.au"


def test_registered_domain():
    assert registered_domain("a.b.foo.com") == "foo.com"
    assert registered_domain("a.foo.co.uk") == "foo.co.uk"
    assert registered_domain("com") is None
    assert registered_domain("co.uk") is None


def test_tld_of():
    assert tld_of("a.b.foo.de") == "de"


def test_subdomain_labels():
    assert subdomain_labels("a.b.foo.com") == ["a", "b"]
    assert subdomain_labels("foo.com") == []


@given(NAME)
def test_normalize_is_idempotent(name):
    once = normalize_name(name)
    assert normalize_name(once) == once


@given(NAME)
def test_split_join_roundtrip(name):
    assert ".".join(split_name(name)) == normalize_name(name)


@given(NAME, LABEL)
def test_child_is_subdomain_of_parent(name, label):
    child = f"{label}.{name}"
    assert is_subdomain_of(child, name)
    assert parent_name(child) == normalize_name(name)


@given(NAME)
def test_registered_domain_is_suffix(name):
    base = registered_domain(name)
    if base is not None:
        assert is_subdomain_of(name, base)
        # The registered domain has exactly one label more than its suffix.
        assert len(split_name(base)) == len(split_name(public_suffix(name))) + 1
