"""Tests for signature extraction, validation and matching."""

from datetime import datetime

from repro.core.monitoring import SnapshotFeatures
from repro.core.signatures import (
    BenignCorpus,
    ExtractorConfig,
    Signature,
    SignatureExtractor,
    external_hosts,
    facade_markers,
    page_tokens,
)
from repro.whois.registry import DomainRegistry

T0 = datetime(2020, 6, 1)


def _page(fqdn, keywords, urls=(), title="", sitemap_count=-1, meta=()):
    return SnapshotFeatures(
        fqdn=fqdn, at=T0, dns_status="NOERROR", cname_chain=(), addresses=("1.1.1.1",),
        fetch_status="ok", http_status=200, html_hash=f"h-{fqdn}", html_size=10,
        title=title, lang="id", keywords=frozenset(keywords),
        meta_keywords=tuple(meta), external_urls=tuple(urls),
        sitemap_count=sitemap_count, sitemap_size=sitemap_count * 80,
    )


GAMBLING_A = _page("a.foo.com", {"slot gacor", "judi", "daftar"},
                   urls=("https://mega-gacor.bet/play?ref=1",), sitemap_count=900)
GAMBLING_B = _page("b.bar.com", {"slot", "judi online", "daftar", "gacor"},
                   urls=("https://mega-gacor.bet/play?ref=1",), sitemap_count=700)
BENIGN = _page("ok.corp.com", {"products", "careers", "support"}, sitemap_count=20)


def _whois():
    registry = DomainRegistry()
    registry.register("foo.com", owner="Foo", registrar="GoDaddy", created_at=T0)
    registry.register("bar.com", owner="Bar", registrar="Tucows", created_at=T0)
    registry.register("corp.com", owner="Corp", registrar="Gandi", created_at=T0)
    registry.register("park1.com", owner="Parker", registrar="SedoPark", created_at=T0)
    registry.register("park2.com", owner="Parker", registrar="SedoPark", created_at=T0)
    return registry


def test_page_tokens_and_hosts_helpers():
    tokens = page_tokens(GAMBLING_A)
    assert {"slot", "gacor", "judi", "daftar"} <= tokens
    assert external_hosts(GAMBLING_A) == frozenset({"mega-gacor.bet"})


def test_facade_marker_detection():
    facade = _page("f.foo.com", set(), title="Comming soon ...")
    assert "comming soon" in facade_markers(facade)
    assert facade_markers(GAMBLING_A) == frozenset()


def test_extractor_derives_signature_from_cluster():
    corpus = BenignCorpus()
    corpus.add(BENIGN)
    extractor = SignatureExtractor(corpus, whois=_whois())
    signatures = extractor.extract([GAMBLING_A, GAMBLING_B], T0)
    assert len(signatures) == 1
    signature = signatures[0]
    assert {"slot", "judi", "daftar", "gacor"} <= signature.keywords
    assert "mega-gacor.bet" in signature.infrastructure
    assert signature.sitemap_min_count > 0
    assert signature.match(GAMBLING_A) is not None
    assert signature.match(BENIGN) is None


def test_single_page_does_not_create_signature():
    extractor = SignatureExtractor(BenignCorpus(), whois=_whois())
    assert extractor.extract([GAMBLING_A], T0) == []


def test_benign_collision_discards_signature():
    corpus = BenignCorpus()
    # The "abuse" vocabulary is all present on a benign page.
    corpus.add(_page("n.corp.com", {"slot", "judi", "daftar", "gacor"}))
    extractor = SignatureExtractor(corpus, whois=_whois())
    weak_a = _page("a.foo.com", {"slot", "judi", "daftar", "gacor"})
    weak_b = _page("b.bar.com", {"slot", "judi", "daftar", "gacor"})
    assert extractor.extract([weak_a, weak_b], T0) == []


def test_registrar_rule_out_blocks_parking_cluster():
    """Identical change across one registrar+owner = benign rollout."""
    extractor = SignatureExtractor(BenignCorpus(), whois=_whois())
    parked_a = _page("park1.com", {"situs", "judi", "slot", "gacor"})
    parked_b = _page("park2.com", {"situs", "judi", "slot", "gacor"})
    assert extractor.extract([parked_a, parked_b], T0) == []
    # Same content across *different* registrars is extracted fine.
    diverse = extractor.extract(
        [_page("a.foo.com", {"situs", "judi", "slot", "gacor"}),
         _page("b.bar.com", {"situs", "judi", "slot", "gacor"})],
        T0,
    )
    assert len(diverse) == 1


def test_analyst_rejects_clusters_without_malicious_look():
    extractor = SignatureExtractor(BenignCorpus(), whois=_whois())
    bland_a = _page("a.foo.com", {"zzqx", "wwvv", "qqpp"})
    bland_b = _page("b.bar.com", {"zzqx", "wwvv", "qqpp"})
    assert extractor.extract([bland_a, bland_b], T0) == []


def test_signature_components_and_matching_semantics():
    signature = Signature(
        signature_id="s1", created_at=T0,
        keywords=frozenset({"slot", "judi", "gacor"}),
        sitemap_min_count=100,
    )
    assert signature.components == frozenset({"keywords", "sitemap"})
    # Both components must hit.
    small_sitemap = _page("x.foo.com", {"slot", "judi"}, sitemap_count=5)
    assert signature.match(small_sitemap) is None
    full = _page("x.foo.com", {"slot", "judi"}, sitemap_count=500)
    assert signature.match(full) == frozenset({"keywords", "sitemap"})


def test_template_signature_matches_facades():
    signature = Signature(
        signature_id="s2", created_at=T0,
        template_markers=frozenset({"comming soon"}),
    )
    facade = _page("f.foo.com", set(), title="Comming Soon ...")
    assert signature.match(facade) == frozenset({"template"})
    assert signature.match(GAMBLING_A) is None


def test_unreachable_page_never_matches():
    signature = Signature(
        signature_id="s3", created_at=T0, keywords=frozenset({"slot", "judi"})
    )
    dead = SnapshotFeatures(
        fqdn="d.foo.com", at=T0, dns_status="NXDOMAIN", cname_chain=(), addresses=(),
        fetch_status="dns-nxdomain", keywords=frozenset({"slot", "judi"}),
    )
    assert signature.match(dead) is None
