"""Tests for campaign orchestration: end-to-end takeover mechanics."""

from datetime import datetime, timedelta

import pytest

from repro.attacker.campaign import CampaignOrchestrator
from repro.attacker.groups import AttackerGroup, GroupBehavior
from repro.attacker.identifiers import build_pool
from repro.content.vocab import Topic
from repro.sim.rng import RngStreams
from repro.world.ground_truth import GroundTruthLog
from repro.world.internet import Internet
from repro.world.population import PopulationBuilder, PopulationConfig

T0 = datetime(2020, 1, 6)


def _group(internet, name="g1", **behavior_kwargs):
    rng = internet.streams.get(f"test-attacker:{name}")
    pool = build_pool(rng, internet.shortener, ["https://mega-gacor.bet/play"])
    return AttackerGroup(
        name=name, rng=rng, identifier_pool=pool,
        monetized_urls=["https://mega-gacor.bet/play"],
        referral_code="ref77",
        behavior=GroupBehavior(weekly_capacity=5, **behavior_kwargs),
        active_from=T0,
    )


@pytest.fixture()
def staged():
    """A world with a handful of dangling records ready for takeover."""
    internet = Internet(RngStreams(61))
    builder = PopulationBuilder(internet)
    orgs = builder.build(
        PopulationConfig(n_enterprises=12, n_universities=0, n_government=0, n_popular=0),
        T0,
    )
    released = 0
    at = T0 + timedelta(weeks=1)
    for org in orgs:
        for asset in org.assets:
            resource = asset.resource
            if resource is None or not resource.active or not resource.is_user_nameable:
                continue
            provider = internet.catalog.provider(resource.provider)
            provider.release(resource, at)
            asset.dangling_since = at
            released += 1
            break  # one release per org is plenty
    assert released >= 5
    return internet, orgs, at


def test_takeovers_happen_and_are_recorded(staged):
    internet, orgs, at = staged
    ground_truth = GroundTruthLog()
    group = _group(internet)
    orchestrator = CampaignOrchestrator(internet, [group], ground_truth, orgs)
    takeovers = orchestrator.step(at + timedelta(weeks=1))
    assert takeovers >= 3
    assert len(ground_truth) >= 3
    for record in ground_truth.all_records():
        assert record.attacker_group == "g1"
        assert record.resource.owner == "attacker:g1"


def test_victim_domain_serves_abuse_after_takeover(staged):
    internet, orgs, at = staged
    ground_truth = GroundTruthLog()
    orchestrator = CampaignOrchestrator(internet, [_group(internet)], ground_truth, orgs)
    orchestrator.step(at + timedelta(weeks=1))
    record = ground_truth.all_records()[0]
    outcome = internet.client.fetch(record.fqdn, at=at + timedelta(weeks=1))
    assert outcome.ok
    body = outcome.response.body.lower()
    assert any(word in body for word in ("slot", "judi", "comming", "sorry", "adult", "porn",
                                         "videos", "bonus", "daftar"))


def test_inactive_group_does_nothing(staged):
    internet, orgs, at = staged
    ground_truth = GroundTruthLog()
    group = _group(internet)
    group.active_from = at + timedelta(weeks=100)
    orchestrator = CampaignOrchestrator(internet, [group], ground_truth, orgs)
    assert orchestrator.step(at + timedelta(weeks=1)) == 0
    assert len(ground_truth) == 0


def test_capacity_bounds_weekly_takeovers(staged):
    internet, orgs, at = staged
    ground_truth = GroundTruthLog()
    group = _group(internet)
    group.behavior.weekly_capacity = 2
    orchestrator = CampaignOrchestrator(internet, [group], ground_truth, orgs)
    assert orchestrator.step(at + timedelta(weeks=1)) <= 2


def test_cookie_stealing_sites_feed_darknet(staged):
    internet, orgs, at = staged
    ground_truth = GroundTruthLog()
    group = _group(internet, steals_cookies=True)
    orchestrator = CampaignOrchestrator(internet, [group], ground_truth, orgs)
    week = at + timedelta(weeks=1)
    orchestrator.step(week)
    # A victim user visits a hijacked subdomain with a parent auth cookie.
    from repro.web.cookies import Cookie, CookieJar

    record = ground_truth.all_records()[0]
    parent = ".".join(record.fqdn.split(".")[1:])
    jar = CookieJar()
    jar.set(Cookie(name="session", value="tok", domain=parent, is_authentication=True))
    internet.client.fetch(record.fqdn, at=week,
                          headers={"X-Client-IP": "203.0.113.9"}, cookie_jar=jar)
    orchestrator.step(week + timedelta(weeks=1))
    leaks = internet.darknet.leaks_for_domain(parent)
    assert leaks
    assert leaks[0].victim_ip == "203.0.113.9"


def test_certificates_issued_for_some_hijacks(staged):
    internet, orgs, at = staged
    ground_truth = GroundTruthLog()
    group = _group(internet, certificate_rate=1.0)
    orchestrator = CampaignOrchestrator(internet, [group], ground_truth, orgs)
    orchestrator.step(at + timedelta(weeks=1))
    single_san = internet.ct_log.single_san_entries()
    hijacked = set(ground_truth.hijacked_fqdns())
    fraudulent = [
        e for e in single_san
        if any(e.certificate.matches(f) for f in hijacked)
        and e.logged_at >= at
    ]
    assert fraudulent
