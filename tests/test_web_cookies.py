"""Tests for cookie scope rules — the Section 5.5 browser semantics."""

from repro.web.cookies import Cookie, CookieJar


def _auth(domain="example.com", secure=False, http_only=False):
    return Cookie(
        name="session", value="tok", domain=domain,
        secure=secure, http_only=http_only, is_authentication=True,
    )


def test_cookie_sent_to_subdomain_of_setting_domain():
    cookie = _auth("example.com")
    assert cookie.applies_to("hijacked.example.com")
    assert cookie.applies_to("example.com")
    assert not cookie.applies_to("other.com")


def test_secure_cookie_requires_https():
    cookie = _auth(secure=True)
    assert not cookie.sendable("a.example.com", "http")
    assert cookie.sendable("a.example.com", "https")


def test_httponly_hides_from_javascript_but_not_headers():
    cookie = _auth(http_only=True)
    assert not cookie.javascript_accessible()
    assert cookie.sendable("a.example.com", "http")


def test_jar_scopes_by_host_and_scheme():
    jar = CookieJar()
    jar.set(_auth("example.com", secure=True))
    jar.set(_auth("other.com"))
    jar.set(Cookie(name="visitor", value="1", domain="example.com"))
    http_cookies = jar.cookies_for("sub.example.com", "http")
    assert [c.name for c in http_cookies] == ["visitor"]
    https_cookies = jar.cookies_for("sub.example.com", "https")
    assert {c.name for c in https_cookies} == {"session", "visitor"}


def test_jar_header_and_js_views():
    jar = CookieJar()
    jar.set(_auth("example.com", http_only=True))
    jar.set(Cookie(name="visitor", value="9", domain="example.com"))
    header = jar.header_for("x.example.com")
    assert header == {"session": "tok", "visitor": "9"}
    js = jar.javascript_visible("x.example.com")
    assert [c.name for c in js] == ["visitor"]


def test_jar_overwrites_same_key():
    jar = CookieJar()
    jar.set(Cookie(name="a", value="1", domain="x.com"))
    jar.set(Cookie(name="a", value="2", domain="x.com"))
    assert len(jar) == 1
    assert jar.header_for("x.com")["a"] == "2"


def test_hijacked_subdomain_receives_parent_cookies():
    """The attack premise: parent-scoped auth cookies flow to any
    subdomain, including one serving attacker content."""
    jar = CookieJar()
    jar.set(_auth("victim.com"))
    assert jar.header_for("forgotten.victim.com") == {"session": "tok"}
