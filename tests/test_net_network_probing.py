"""Tests for the routing table and transport probing."""

import pytest

from repro.net.network import Network
from repro.net.probing import LIU_2016_PORTS, icmp_ping, tcp_probe, tcp_probe_any
from repro.web.server import VirtualHostServer


def test_bind_and_host_at():
    network = Network()
    host = VirtualHostServer("Azure")
    network.bind("40.0.0.1", host)
    assert network.host_at("40.0.0.1") is host
    assert network.is_bound("40.0.0.1")
    assert len(network) == 1


def test_rebind_rejected_and_unbind():
    network = Network()
    host = VirtualHostServer("Azure")
    network.bind("40.0.0.1", host)
    with pytest.raises(ValueError):
        network.bind("40.0.0.1", host)
    assert network.unbind("40.0.0.1") is host
    with pytest.raises(KeyError):
        network.unbind("40.0.0.1")


def test_icmp_ping_dark_address():
    network = Network()
    result = icmp_ping(network, "1.2.3.4")
    assert not result.responsive
    assert result.method == "icmp"


def test_icmp_respects_host_policy():
    network = Network()
    network.bind("40.0.0.1", VirtualHostServer("Azure", icmp=True))
    network.bind("40.0.0.2", VirtualHostServer("Azure", icmp=False))
    assert icmp_ping(network, "40.0.0.1").responsive
    assert not icmp_ping(network, "40.0.0.2").responsive


def test_tcp_probe_standard_ports_only():
    network = Network()
    network.bind("40.0.0.1", VirtualHostServer("AWS"))
    assert tcp_probe(network, "40.0.0.1", 80).responsive
    assert tcp_probe(network, "40.0.0.1", 443).responsive
    assert not tcp_probe(network, "40.0.0.1", 22).responsive


def test_tcp_probe_any_reports_open_port():
    network = Network()
    network.bind("40.0.0.1", VirtualHostServer("AWS"))
    result = tcp_probe_any(network, "40.0.0.1", LIU_2016_PORTS)
    assert result.responsive
    result_dark = tcp_probe_any(network, "9.9.9.9", LIU_2016_PORTS)
    assert not result_dark.responsive


def test_edge_answers_for_released_resources_too():
    """The Section 2 point: transport probes hit the *server*, so a
    released resource behind a live edge still looks alive."""
    network = Network()
    edge = VirtualHostServer("Azure")
    network.bind("40.0.0.1", edge)
    # No routes at all — every resource released — yet:
    assert icmp_ping(network, "40.0.0.1").responsive
    assert tcp_probe(network, "40.0.0.1", 443).responsive
