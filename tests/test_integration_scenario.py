"""End-to-end integration tests over a finished world."""

from repro.core.scenario import ScenarioConfig, run_scenario
from repro.core import scoring
from repro.dns.resolver import ResolutionStatus


def test_scenario_is_deterministic():
    a = run_scenario(ScenarioConfig.tiny(seed=5))
    b = run_scenario(ScenarioConfig.tiny(seed=5))
    assert a.dataset.abused_fqdns() == b.dataset.abused_fqdns()
    assert a.ground_truth.hijacked_fqdns() == b.ground_truth.hijacked_fqdns()
    assert a.collector.monitored_count() == b.collector.monitored_count()


def test_different_seeds_differ():
    a = run_scenario(ScenarioConfig.tiny(seed=5))
    b = run_scenario(ScenarioConfig.tiny(seed=6))
    assert a.dataset.abused_fqdns() != b.dataset.abused_fqdns()


def test_monitored_set_grows(tiny_result):
    growth = tiny_result.collector.monthly_growth()
    assert growth[-1][1] > growth[0][1]


def test_all_detections_correspond_to_monitored_names(tiny_result):
    monitored = tiny_result.collector.monitored
    for fqdn in tiny_result.dataset.abused_fqdns():
        assert fqdn in monitored


def test_hijacked_domains_serve_attacker_content_while_active(tiny_result):
    internet = tiny_result.internet
    active = [r for r in tiny_result.ground_truth.active_records()]
    for record in active[:5]:
        outcome = internet.client.fetch(record.fqdn, at=tiny_result.end)
        assert outcome.ok
        assert record.resource.owner.startswith("attacker:")


def test_remediated_domains_are_dark(tiny_result):
    internet = tiny_result.internet
    remediated = [
        r for r in tiny_result.ground_truth.all_records() if not r.active
    ]
    for record in remediated[:5]:
        result = internet.resolver.resolve_a_with_chain(record.fqdn)
        assert result.status in (ResolutionStatus.NXDOMAIN, ResolutionStatus.NODATA)


def test_detection_latency_reasonable(tiny_result):
    score = scoring.score_detector(tiny_result.dataset, tiny_result.ground_truth)
    assert score.median_latency_days is not None
    # Weekly sampling + clustering should flag within a few weeks.
    assert score.median_latency_days <= 28


def test_weeks_run_matches_config(tiny_result):
    assert tiny_result.weeks_run == tiny_result.config.weeks


def test_event_log_tells_the_story(tiny_result):
    kinds = tiny_result.internet.events.counts_by_kind()
    assert kinds["cloud.provision"] > kinds["cloud.release"]
    assert kinds.get("attacker.takeover", 0) == len(tiny_result.ground_truth)
    assert kinds.get("world.dangling", 0) >= kinds.get("attacker.takeover", 0)
