"""Tests for cookie-stealing and cloaking site wrappers."""

from repro.attacker.cloaking import CloakingSite
from repro.attacker.stealing import CookieStealingSite
from repro.cloud.capabilities import AccessLevel
from repro.web.cookies import Cookie
from repro.web.http import HttpRequest


def _request(path="/", ua="Chrome", cookies=None):
    objects = cookies or []
    return HttpRequest(
        host="victim.com", path=path,
        headers={"User-Agent": ua, "X-Client-IP": "198.51.100.7"},
        cookies={c.name: c.value for c in objects},
        cookie_objects=objects,
    )


def _cookies():
    return [
        Cookie(name="session", value="t", domain="victim.com",
               http_only=True, is_authentication=True),
        Cookie(name="visitor", value="v", domain="victim.com"),
    ]


def test_full_webserver_captures_all_cookies():
    site = CookieStealingSite(AccessLevel.FULL_WEBSERVER)
    site.put_index("x")
    site.handle(_request(cookies=_cookies()))
    names = {c.cookie.name for c in site.captured}
    assert names == {"session", "visitor"}
    assert site.captured[0].client_ip == "198.51.100.7"


def test_static_content_captures_js_visible_only():
    """Table 4 / Section 5.5: content-only control misses HttpOnly."""
    site = CookieStealingSite(AccessLevel.STATIC_CONTENT)
    site.put_index("x")
    site.handle(_request(cookies=_cookies()))
    names = {c.cookie.name for c in site.captured}
    assert names == {"visitor"}


def test_drain_clears_capture_buffer():
    site = CookieStealingSite(AccessLevel.FULL_WEBSERVER)
    site.put_index("x")
    site.handle(_request(cookies=_cookies()))
    drained = site.drain()
    assert len(drained) == 2
    assert site.drain() == []


def test_stealing_site_still_serves_content():
    site = CookieStealingSite(AccessLevel.FULL_WEBSERVER)
    site.put_index("hello")
    assert site.handle(_request()).body == "hello"


def test_cloaking_hides_spam_pages_from_humans():
    site = CloakingSite()
    site.put_index("facade")
    site.put("/spam-page.html", "日本の spam")
    human = site.handle(_request(path="/spam-page.html", ua="Chrome"))
    crawler = site.handle(_request(path="/spam-page.html", ua="Googlebot/2.1"))
    assert human.status == 404
    assert crawler.ok and "spam" in crawler.body


def test_cloaking_serves_index_robots_sitemap_to_everyone():
    site = CloakingSite()
    site.put_index("facade")
    site.put("/robots.txt", "User-agent: *", content_type="text/plain")
    for path in ("/", "/robots.txt"):
        assert site.handle(_request(path=path, ua="Chrome")).ok


def test_cloaking_allows_acme_challenges():
    """Certificate validation fetches must pass, or hijackers couldn't
    obtain certificates from cloaked sites."""
    site = CloakingSite()
    site.put("/.well-known/acme-challenge/tok", "tok.auth", content_type="text/plain")
    assert site.handle(_request(path="/.well-known/acme-challenge/tok")).ok
