"""Tests for Algorithm 1 and the longitudinal collector."""

from datetime import datetime, timedelta

from repro.core.collection import FqdnCollector, collect_fqdns
from repro.dns.records import RRType, ResourceRecord

T0 = datetime(2020, 1, 6)


def _seeded(internet):
    """One cloud CNAME, one cloud A, one self-hosted A, one NXDOMAIN."""
    azure = internet.catalog.provider("Azure")
    aws = internet.catalog.provider("AWS")
    zone = internet.zones.create_zone("acme.com")
    web = azure.provision("azure-web-app", "acme-web", owner="org:acme", at=T0)
    zone.add(ResourceRecord("web.acme.com", RRType.CNAME, web.generated_fqdn), T0)
    vm = aws.provision("aws-ec2-ip", "acme-vm", owner="org:acme", at=T0)
    zone.add(ResourceRecord("vm.acme.com", RRType.A, vm.ip), T0)
    zone.add(ResourceRecord("self.acme.com", RRType.A, "198.18.0.50"), T0)
    return ["web.acme.com", "vm.acme.com", "self.acme.com", "ghost.acme.com"]


def test_algorithm1_selects_cloud_pointing_only(internet):
    candidates = _seeded(internet)
    selected = collect_fqdns(
        candidates, internet.catalog.suffixes, internet.catalog.cloud_ips,
        internet.resolver, at=T0,
    )
    assert selected == {"web.acme.com", "vm.acme.com"}


def test_algorithm1_matches_anywhere_in_chain(internet):
    azure = internet.catalog.provider("Azure")
    zone = internet.zones.create_zone("acme.com")
    web = azure.provision("azure-web-app", "chained", owner="org:acme", at=T0)
    zone.add(ResourceRecord("alias.acme.com", RRType.CNAME, "indirect.acme.com"), T0)
    zone.add(ResourceRecord("indirect.acme.com", RRType.CNAME, web.generated_fqdn), T0)
    selected = collect_fqdns(
        ["alias.acme.com"], internet.catalog.suffixes, internet.catalog.cloud_ips,
        internet.resolver, at=T0,
    )
    assert selected == {"alias.acme.com"}


def test_dangling_record_still_admitted(internet):
    """A CNAME to a released resource has a cloud suffix in its chain —
    dangling names must be collected, they're the whole point."""
    azure = internet.catalog.provider("Azure")
    zone = internet.zones.create_zone("acme.com")
    web = azure.provision("azure-web-app", "gone-soon", owner="org:acme", at=T0)
    zone.add(ResourceRecord("d.acme.com", RRType.CNAME, web.generated_fqdn), T0)
    azure.release(web, T0 + timedelta(days=1))
    selected = collect_fqdns(
        ["d.acme.com"], internet.catalog.suffixes, internet.catalog.cloud_ips,
        internet.resolver, at=T0 + timedelta(days=2),
    )
    assert selected == {"d.acme.com"}


def test_collector_growth_and_monthly_stats(internet):
    candidates = _seeded(internet)
    collector = FqdnCollector(
        internet.resolver, internet.catalog.suffixes, internet.catalog.cloud_ips
    )
    admitted = collector.ingest(candidates, T0)
    assert admitted == 2
    assert collector.monitored_count() == 2
    # Re-ingesting the same names is a no-op.
    assert collector.ingest(candidates, T0 + timedelta(weeks=4)) == 0
    growth = collector.monthly_growth()
    assert growth[0][1] == 2


def test_collector_reconsider_rejected(internet):
    candidates = _seeded(internet)
    collector = FqdnCollector(
        internet.resolver, internet.catalog.suffixes, internet.catalog.cloud_ips
    )
    collector.ingest(candidates, T0)
    # self.acme.com moves into the cloud afterwards.
    azure = internet.catalog.provider("Azure")
    moved = azure.provision("azure-web-app", "acme-moved", owner="org:acme", at=T0)
    zone = internet.zones.get_zone("acme.com")
    zone.remove_all("self.acme.com", RRType.A, T0)
    zone.add(ResourceRecord("self.acme.com", RRType.CNAME, moved.generated_fqdn), T0)
    assert collector.reconsider(T0 + timedelta(weeks=1)) == 1
    assert "self.acme.com" in collector.monitored


def test_admitted_names_never_dropped(internet):
    """Monitored names persist even after their DNS breaks entirely."""
    candidates = _seeded(internet)
    collector = FqdnCollector(
        internet.resolver, internet.catalog.suffixes, internet.catalog.cloud_ips
    )
    collector.ingest(candidates, T0)
    internet.zones.get_zone("acme.com").remove_all("web.acme.com", RRType.CNAME, T0)
    collector.ingest(["new.acme.com"], T0 + timedelta(weeks=1))
    assert "web.acme.com" in collector.monitored


def test_sorted_view_tracks_ingest(internet):
    """``monitored_sorted`` stays equal to ``sorted(monitored)``."""
    candidates = _seeded(internet)
    collector = FqdnCollector(
        internet.resolver, internet.catalog.suffixes, internet.catalog.cloud_ips
    )
    assert list(collector.monitored_sorted) == []
    collector.ingest(candidates, T0)
    assert list(collector.monitored_sorted) == sorted(collector.monitored)
    azure = internet.catalog.provider("Azure")
    extra = azure.provision("azure-web-app", "acme-extra", owner="org:acme", at=T0)
    zone = internet.zones.get_zone("acme.com")
    zone.add(ResourceRecord("aaa.acme.com", RRType.CNAME, extra.generated_fqdn), T0)
    collector.ingest(["aaa.acme.com"], T0 + timedelta(weeks=1))
    assert list(collector.monitored_sorted) == sorted(collector.monitored)
    assert collector.monitored_sorted[0] == "aaa.acme.com"


def test_sorted_view_tracks_reconsider(internet):
    candidates = _seeded(internet)
    collector = FqdnCollector(
        internet.resolver, internet.catalog.suffixes, internet.catalog.cloud_ips
    )
    collector.ingest(candidates, T0)
    azure = internet.catalog.provider("Azure")
    moved = azure.provision("azure-web-app", "acme-moved2", owner="org:acme", at=T0)
    zone = internet.zones.get_zone("acme.com")
    zone.remove_all("self.acme.com", RRType.A, T0)
    zone.add(ResourceRecord("self.acme.com", RRType.CNAME, moved.generated_fqdn), T0)
    collector.reconsider(T0 + timedelta(weeks=1))
    assert list(collector.monitored_sorted) == sorted(collector.monitored)
