"""Tests for keyword extraction and topic classification."""

from repro.content.vocab import Topic
from repro.core.keywords import (
    abuse_vocabulary_hits,
    classify_topic,
    extract_keywords,
    keyword_frequency_table,
    tokenize,
    topic_scores,
)
from repro.web.html import HtmlDocument


def test_tokenize_unicode_aware():
    assert tokenize("Slot Gacor 77!") == ["slot", "gacor", "77"]
    assert tokenize("現在 メンテナンス中 です") == ["現在", "メンテナンス中", "です"]
    assert tokenize("สล็อตออนไลน์")  # Thai tokens survive


def test_extract_keywords_prefers_frequent_terms():
    doc = HtmlDocument(
        title="slot gacor",
        paragraphs=["slot gacor slot judi online slot terpercaya"],
    )
    keywords = extract_keywords(doc)
    assert "slot" in keywords
    assert any(" " in k for k in keywords)  # bigrams present


def test_meta_keywords_weighted():
    doc = HtmlDocument(meta={"keywords": "joker123, pulsa"}, paragraphs=["nothing here"])
    keywords = extract_keywords(doc)
    assert "joker123" in keywords
    assert "pulsa" in keywords


def test_stopwords_and_digits_dropped():
    doc = HtmlDocument(paragraphs=["the and 12345 of slot"])
    keywords = extract_keywords(doc)
    assert "the" not in keywords
    assert "12345" not in keywords


def test_classify_gambling():
    assert classify_topic({"slot", "judi", "gacor"}) == Topic.GAMBLING


def test_classify_adult():
    assert classify_topic({"porn", "sex", "videos"}) == Topic.ADULT


def test_classify_japanese():
    assert classify_topic({"激安", "ブランド", "時計"}) == Topic.JAPANESE_SEO


def test_benign_content_classifies_none():
    assert classify_topic({"products", "careers", "university"}) is None
    assert abuse_vocabulary_hits({"products", "careers"}) == 0


def test_benign_dominance_vetoes_weak_abuse_signal():
    keywords = {"products", "services", "solutions", "enterprise",
                "customers", "innovation", "game"}
    assert classify_topic(keywords) is None


def test_topic_scores_counts_token_overlap():
    scores = topic_scores({"slot gacor", "judi"})
    assert scores[Topic.GAMBLING] >= 3


def test_keyword_frequency_table():
    table = keyword_frequency_table([{"slot", "judi"}, {"slot"}, {"porn"}], top=2)
    assert table[0] == ("slot", 2)
    assert len(table) == 2
