"""Tests for attacker identifier pools."""

import random

from repro.attacker.identifiers import (
    BACKEND_HOSTING_CIDRS,
    build_pool,
    phone_country,
)
from repro.intel.shorteners import UrlShortener
from repro.net.addresses import CidrSet


def _pool(seed=1):
    rng = random.Random(seed)
    shortener = UrlShortener(random.Random(seed + 1))
    return build_pool(rng, shortener, ["https://mega-gacor.bet/play"])


def test_pool_has_all_families():
    pool = _pool()
    assert len(pool.phones) == 3
    assert len(pool.social_handles) == 4
    assert len(pool.short_links) == 4
    assert len(pool.backend_ips) == 3
    assert len(pool.all_identifiers()) == 14


def test_phones_are_asian_prefixed():
    pool = _pool()
    for phone in pool.phones:
        assert phone_country(phone) in {"ID", "KH", "TH", "VN", "MY", "PH"}


def test_phone_geo_is_indonesia_heavy():
    rng = random.Random(0)
    shortener = UrlShortener(random.Random(1))
    phones = []
    for seed in range(60):
        phones += build_pool(random.Random(seed), shortener, ["https://x.bet"]).phones
    indonesian = sum(1 for p in phones if phone_country(p) == "ID")
    assert indonesian / len(phones) > 0.5


def test_backend_ips_inside_hosting_ranges():
    ranges = CidrSet(BACKEND_HOSTING_CIDRS)
    for ip in _pool().backend_ips:
        assert ip in ranges


def test_sample_bounded():
    pool = _pool()
    rng = random.Random(9)
    assert len(pool.sample(rng, 3)) == 3
    assert len(pool.sample(rng, 100)) == len(pool.all_identifiers())


def test_phone_country_unknown():
    assert phone_country("+19995550100") == "??"
