"""Tests for the weekly monitor and snapshot store."""

from datetime import datetime, timedelta

from repro.core.monitoring import SnapshotStore, WeeklyMonitor
from repro.dns.records import RRType, ResourceRecord
from repro.web.sitemap import Sitemap

T0 = datetime(2020, 1, 6)


def _victim(internet, name="shop"):
    azure = internet.catalog.provider("Azure")
    zone = internet.zones.get_zone("acme.com") or internet.zones.create_zone("acme.com")
    resource = azure.provision("azure-web-app", f"acme-{name}", owner="org:acme", at=T0)
    fqdn = f"{name}.acme.com"
    zone.add(ResourceRecord(fqdn, RRType.CNAME, resource.generated_fqdn), T0)
    azure.add_custom_domain(resource, fqdn, T0)
    resource.site.put_index("<html><head><title>Portal</title></head><body><p>hi</p></body></html>")
    return azure, resource, fqdn


def test_sample_captures_dns_and_html_features(internet):
    _, resource, fqdn = _victim(internet)
    monitor = WeeklyMonitor(internet.client)
    features = monitor.sample(fqdn, T0)
    assert features.reachable
    assert features.title == "Portal"
    assert resource.generated_fqdn in features.cname_chain
    assert features.html_size > 0
    assert features.dns_status == "NOERROR"


def test_sample_of_dangling_name(internet):
    azure, resource, fqdn = _victim(internet)
    azure.release(resource, T0 + timedelta(days=1))
    monitor = WeeklyMonitor(internet.client)
    features = monitor.sample(fqdn, T0 + timedelta(days=2))
    assert not features.reachable
    assert features.dns_status == "NXDOMAIN"
    assert features.cname_chain  # the dangling chain is preserved


def test_store_dedups_identical_states(internet):
    _, _, fqdn = _victim(internet)
    monitor = WeeklyMonitor(internet.client)
    at = T0
    for week in range(5):
        changed = monitor.sweep([fqdn], at)
        at += timedelta(weeks=1)
        if week == 0:
            assert len(changed) == 1
        else:
            assert changed == []
    history = monitor.store.history(fqdn)
    assert len(history) == 1
    assert history[0].observations == 5
    assert history[0].first_seen == T0


def test_content_change_creates_new_state(internet):
    _, resource, fqdn = _victim(internet)
    monitor = WeeklyMonitor(internet.client)
    monitor.sweep([fqdn], T0)
    resource.site.put_index("<html><head><title>slot gacor</title></head><body><p>judi</p></body></html>")
    changed = monitor.sweep([fqdn], T0 + timedelta(weeks=1))
    assert len(changed) == 1
    current, previous = changed[0]
    assert previous is not None
    assert previous.title == "Portal"
    assert current.title == "slot gacor"
    assert monitor.store.state_count() == 2


def test_sitemap_fetched_on_change_only(internet):
    _, resource, fqdn = _victim(internet)
    sitemap = Sitemap()
    for index in range(20):
        sitemap.add(f"http://{fqdn}/p{index}")
    resource.site.put_sitemap(sitemap)
    monitor = WeeklyMonitor(internet.client)
    monitor.sweep([fqdn], T0)
    assert monitor.sitemap_fetches == 1
    monitor.sweep([fqdn], T0 + timedelta(weeks=1))  # unchanged
    assert monitor.sitemap_fetches == 1
    features = monitor.store.latest(fqdn)
    assert features.sitemap_count == 20
    assert features.sitemap_sample


def test_ethics_bound_two_requests_per_fqdn(internet):
    """At most two HTTP requests per FQDN per weekly sample."""
    _, resource, fqdn = _victim(internet)
    calls = []
    original = internet.client.fetch

    def counting_fetch(*args, **kwargs):
        calls.append(kwargs.get("path") or (args[1] if len(args) > 1 else "/"))
        return original(*args, **kwargs)

    internet.client.fetch = counting_fetch
    monitor = WeeklyMonitor(internet.client)
    monitor.sample(fqdn, T0)
    assert len(calls) <= 2


def test_meta_and_script_features(internet):
    _, resource, fqdn = _victim(internet)
    resource.site.put_index(
        '<html lang="id"><head><title>x</title>'
        '<meta name="keywords" content="slot, judi">'
        '<meta name="generator" content="WordPress 5.8">'
        '<script src="http://141.98.1.1/js/popunder.js"></script></head>'
        '<body><a href="/download/app.apk">app</a>'
        '<a href="https://wa.me/+628123">wa</a></body></html>'
    )
    features = WeeklyMonitor(internet.client).sample(fqdn, T0)
    assert features.has_meta_keywords
    assert features.meta_keywords == ("slot", "judi")
    assert features.generator.startswith("WordPress")
    assert features.lang == "id"
    assert "http://141.98.1.1/js/popunder.js" in features.script_srcs
    assert "https://wa.me/+628123" in features.external_urls
    assert features.download_paths == ("/download/app.apk",)


def test_sweep_iter_batches_cover_all_fqdns(internet):
    fqdns = [
        _victim(internet, name=f"batch{i}")[2]
        for i in range(5)
    ]
    monitor = WeeklyMonitor(internet.client)
    batches = list(monitor.sweep_iter(fqdns, T0, batch_size=2))
    assert len(batches) == 3  # 2 + 2 + 1
    assert monitor.samples_taken == 5
    # First sweep: every FQDN is a new state, one pair per name in order.
    changed = [pair for batch in batches for pair in batch]
    assert [pair[0].fqdn for pair in changed] == fqdns


def test_sweep_iter_equivalent_to_sweep(internet):
    fqdns = [
        _victim(internet, name=f"equiv{i}")[2]
        for i in range(4)
    ]
    batched_monitor = WeeklyMonitor(internet.client)
    flat = [
        pair
        for batch in batched_monitor.sweep_iter(fqdns, T0, batch_size=3)
        for pair in batch
    ]
    plain_monitor = WeeklyMonitor(internet.client)
    swept = plain_monitor.sweep(fqdns, T0)
    assert [p[0].state_key() for p in flat] == [p[0].state_key() for p in swept]
    assert batched_monitor.samples_taken == plain_monitor.samples_taken


def test_sweep_iter_rejects_bad_batch_size(internet):
    monitor = WeeklyMonitor(internet.client)
    try:
        list(monitor.sweep_iter([], T0, batch_size=0))
    except ValueError as error:
        assert "batch_size" in str(error)
    else:  # pragma: no cover
        raise AssertionError("expected ValueError")
