"""Tests for the weekly monitor and snapshot store."""

import random
from datetime import datetime, timedelta

import pytest

from repro.core.monitoring import MonitorConfig, SnapshotStore, WeeklyMonitor
from repro.dns.records import RRType, ResourceRecord
from repro.faults.plan import FaultConfig, FaultPlan
from repro.faults.retry import RetryPolicy
from repro.sim.clock import SimClock
from repro.sim.rng import RngStreams
from repro.web.sitemap import Sitemap
from repro.world.internet import Internet

T0 = datetime(2020, 1, 6)


def _victim(internet, name="shop"):
    azure = internet.catalog.provider("Azure")
    zone = internet.zones.get_zone("acme.com") or internet.zones.create_zone("acme.com")
    resource = azure.provision("azure-web-app", f"acme-{name}", owner="org:acme", at=T0)
    fqdn = f"{name}.acme.com"
    zone.add(ResourceRecord(fqdn, RRType.CNAME, resource.generated_fqdn), T0)
    azure.add_custom_domain(resource, fqdn, T0)
    resource.site.put_index("<html><head><title>Portal</title></head><body><p>hi</p></body></html>")
    return azure, resource, fqdn


def test_sample_captures_dns_and_html_features(internet):
    _, resource, fqdn = _victim(internet)
    monitor = WeeklyMonitor(internet.client)
    features = monitor.sample(fqdn, T0)
    assert features.reachable
    assert features.title == "Portal"
    assert resource.generated_fqdn in features.cname_chain
    assert features.html_size > 0
    assert features.dns_status == "NOERROR"


def test_sample_of_dangling_name(internet):
    azure, resource, fqdn = _victim(internet)
    azure.release(resource, T0 + timedelta(days=1))
    monitor = WeeklyMonitor(internet.client)
    features = monitor.sample(fqdn, T0 + timedelta(days=2))
    assert not features.reachable
    assert features.dns_status == "NXDOMAIN"
    assert features.cname_chain  # the dangling chain is preserved


def test_store_dedups_identical_states(internet):
    _, _, fqdn = _victim(internet)
    monitor = WeeklyMonitor(internet.client)
    at = T0
    for week in range(5):
        changed = monitor.sweep([fqdn], at)
        at += timedelta(weeks=1)
        if week == 0:
            assert len(changed) == 1
        else:
            assert changed == []
    history = monitor.store.history(fqdn)
    assert len(history) == 1
    assert history[0].observations == 5
    assert history[0].first_seen == T0


def test_content_change_creates_new_state(internet):
    _, resource, fqdn = _victim(internet)
    monitor = WeeklyMonitor(internet.client)
    monitor.sweep([fqdn], T0)
    resource.site.put_index("<html><head><title>slot gacor</title></head><body><p>judi</p></body></html>")
    changed = monitor.sweep([fqdn], T0 + timedelta(weeks=1))
    assert len(changed) == 1
    current, previous = changed[0]
    assert previous is not None
    assert previous.title == "Portal"
    assert current.title == "slot gacor"
    assert monitor.store.state_count() == 2


def test_sitemap_fetched_on_change_only(internet):
    _, resource, fqdn = _victim(internet)
    sitemap = Sitemap()
    for index in range(20):
        sitemap.add(f"http://{fqdn}/p{index}")
    resource.site.put_sitemap(sitemap)
    monitor = WeeklyMonitor(internet.client)
    monitor.sweep([fqdn], T0)
    assert monitor.sitemap_fetches == 1
    monitor.sweep([fqdn], T0 + timedelta(weeks=1))  # unchanged
    assert monitor.sitemap_fetches == 1
    features = monitor.store.latest(fqdn)
    assert features.sitemap_count == 20
    assert features.sitemap_sample


def test_ethics_bound_two_requests_per_fqdn(internet):
    """At most two HTTP requests per FQDN per weekly sample."""
    _, resource, fqdn = _victim(internet)
    calls = []
    original = internet.client.fetch

    def counting_fetch(*args, **kwargs):
        calls.append(kwargs.get("path") or (args[1] if len(args) > 1 else "/"))
        return original(*args, **kwargs)

    internet.client.fetch = counting_fetch
    monitor = WeeklyMonitor(internet.client)
    monitor.sample(fqdn, T0)
    assert len(calls) <= 2


def test_meta_and_script_features(internet):
    _, resource, fqdn = _victim(internet)
    resource.site.put_index(
        '<html lang="id"><head><title>x</title>'
        '<meta name="keywords" content="slot, judi">'
        '<meta name="generator" content="WordPress 5.8">'
        '<script src="http://141.98.1.1/js/popunder.js"></script></head>'
        '<body><a href="/download/app.apk">app</a>'
        '<a href="https://wa.me/+628123">wa</a></body></html>'
    )
    features = WeeklyMonitor(internet.client).sample(fqdn, T0)
    assert features.has_meta_keywords
    assert features.meta_keywords == ("slot", "judi")
    assert features.generator.startswith("WordPress")
    assert features.lang == "id"
    assert "http://141.98.1.1/js/popunder.js" in features.script_srcs
    assert "https://wa.me/+628123" in features.external_urls
    assert features.download_paths == ("/download/app.apk",)


def test_sweep_iter_batches_cover_all_fqdns(internet):
    fqdns = [
        _victim(internet, name=f"batch{i}")[2]
        for i in range(5)
    ]
    monitor = WeeklyMonitor(internet.client)
    batches = list(monitor.sweep_iter(fqdns, T0, batch_size=2))
    assert len(batches) == 3  # 2 + 2 + 1
    assert monitor.samples_taken == 5
    # First sweep: every FQDN is a new state, one pair per name in order.
    changed = [pair for batch in batches for pair in batch]
    assert [pair[0].fqdn for pair in changed] == fqdns


def test_sweep_iter_equivalent_to_sweep(internet):
    fqdns = [
        _victim(internet, name=f"equiv{i}")[2]
        for i in range(4)
    ]
    batched_monitor = WeeklyMonitor(internet.client)
    flat = [
        pair
        for batch in batched_monitor.sweep_iter(fqdns, T0, batch_size=3)
        for pair in batch
    ]
    plain_monitor = WeeklyMonitor(internet.client)
    swept = plain_monitor.sweep(fqdns, T0)
    assert [p[0].state_key() for p in flat] == [p[0].state_key() for p in swept]
    assert batched_monitor.samples_taken == plain_monitor.samples_taken


def test_sweep_iter_rejects_bad_batch_size(internet):
    monitor = WeeklyMonitor(internet.client)
    try:
        list(monitor.sweep_iter([], T0, batch_size=0))
    except ValueError as error:
        assert "batch_size" in str(error)
    else:  # pragma: no cover
        raise AssertionError("expected ValueError")


def test_sweep_iter_batch_size_one(internet):
    fqdns = [_victim(internet, name=f"one{i}")[2] for i in range(3)]
    monitor = WeeklyMonitor(internet.client)
    batches = list(monitor.sweep_iter(fqdns, T0, batch_size=1))
    assert len(batches) == 3
    assert all(len(batch) == 1 for batch in batches)
    assert monitor.samples_taken == 3


def test_sweep_iter_exact_multiple_has_no_ragged_batch(internet):
    fqdns = [_victim(internet, name=f"mult{i}")[2] for i in range(6)]
    monitor = WeeklyMonitor(internet.client)
    batches = list(monitor.sweep_iter(fqdns, T0, batch_size=3))
    assert [len(batch) for batch in batches] == [3, 3]


def test_sweep_iter_batch_larger_than_input(internet):
    fqdns = [_victim(internet, name=f"big{i}")[2] for i in range(2)]
    monitor = WeeklyMonitor(internet.client)
    batches = list(monitor.sweep_iter(fqdns, T0, batch_size=100))
    assert len(batches) == 1
    assert len(batches[0]) == 2


def test_sweep_iter_empty_input_yields_nothing(internet):
    monitor = WeeklyMonitor(internet.client)
    assert list(monitor.sweep_iter([], T0, batch_size=4)) == []
    assert monitor.samples_taken == 0


# -- sampling under injected faults ---------------------------------------


def _chaos_internet(**rates) -> Internet:
    plan = FaultPlan.from_seed(FaultConfig(enabled=True, **rates), 1)
    return Internet(RngStreams(7), SimClock(), fault_plan=plan)


def test_sample_under_injected_servfail_loses_chain(internet):
    # A SERVFAIL injected at the resolver fires before the zone walk:
    # the sample carries no CNAME chain and an unreachable status.
    chaos = _chaos_internet(dns_servfail_rate=1.0)
    _, resource, fqdn = _victim(chaos)  # provisioning is suppressed chaos
    features = WeeklyMonitor(chaos.client).sample(fqdn, T0)
    assert features.dns_status == "SERVFAIL"
    assert features.fetch_status == "dns-error"
    assert not features.reachable
    assert features.cname_chain == ()


class _ServfailOncePlan:
    """Stub plan: SERVFAILs the first resolution, then behaves."""

    def __init__(self):
        self.calls = 0
        self.retry_rng = random.Random(0)
        self.active = True

    def dns_fault(self, qname):
        self.calls += 1
        return "servfail" if self.calls == 1 else None

    def connection_reset(self, ip):
        return False

    def icmp_blackout(self, ip):
        return False

    def http_fault(self, provider, host):
        return None

    def truncated_body(self, host):
        return False

    def suppressed(self):
        from contextlib import nullcontext
        return nullcontext()


def test_retry_rides_out_injected_servfail_and_keeps_chain(internet):
    _, resource, fqdn = _victim(internet, name="flaky")
    internet.resolver.fault_plan = _ServfailOncePlan()
    internet.client.fault_plan = internet.resolver.fault_plan
    monitor = WeeklyMonitor(
        internet.client, config=MonitorConfig(retry=RetryPolicy.standard(3))
    )
    features = monitor.sample(fqdn, T0)
    # The second attempt resolved cleanly: full chain, reachable, and
    # the attempt count is preserved on the snapshot.
    assert features.reachable
    assert resource.generated_fqdn in features.cname_chain
    assert features.attempts == 2


def test_sweep_quarantines_exhausted_transient_failures():
    chaos = _chaos_internet(connection_reset_rate=1.0)
    _, _, bad = _victim(chaos)
    monitor = WeeklyMonitor(
        chaos.client, config=MonitorConfig(retry=RetryPolicy.standard(2))
    )
    failures: list = []
    batches = list(monitor.sweep_iter([bad], T0, batch_size=2, failures=failures))
    # The reset-forever FQDN never enters the store: no phantom state.
    assert batches == [[]]
    assert failures == [(bad, "connection-reset")]
    assert monitor.store.latest(bad) is None


# -- sweep_iter call-time state (regressions) ------------------------------


def test_sweep_iter_validates_eagerly_at_call_time(internet):
    monitor = WeeklyMonitor(internet.client)
    # The ValueError must fire at the call, not at the first next():
    # a lazily-raising generator silently validates nothing if dropped.
    with pytest.raises(ValueError):
        monitor.sweep_iter([], T0, batch_size=0)


def test_sweep_iter_failure_sink_is_per_call():
    chaos = _chaos_internet(connection_reset_rate=1.0)
    _, _, bad = _victim(chaos)
    monitor = WeeklyMonitor(chaos.client)
    mine: list = []
    batches = list(monitor.sweep_iter([bad], T0, failures=mine))
    assert batches == [[]]
    assert mine == [(bad, "connection-reset")]
    # The compat view still aliases the caller's sink, but using it now
    # warns: the per-call sink is the supported interface.
    with pytest.warns(DeprecationWarning):
        assert monitor.last_sweep_failures is mine


def test_interleaved_sweeps_do_not_clobber_failure_lists():
    # Regression: the failure list used to be reset lazily inside the
    # generator body, so starting a second sweep before finishing the
    # first wiped the first sweep's quarantine list mid-flight.
    chaos = _chaos_internet(connection_reset_rate=1.0)
    _, _, bad = _victim(chaos)
    _, _, bad2 = _victim(chaos, name="shop2")
    monitor = WeeklyMonitor(chaos.client)
    first_sink: list = []
    second_sink: list = []
    first = monitor.sweep_iter([bad], T0, batch_size=1, failures=first_sink)
    second = monitor.sweep_iter([bad2], T0, batch_size=1, failures=second_sink)
    next(second)  # start the second sweep before draining the first
    list(first)
    list(second)
    assert first_sink == [(bad, "connection-reset")]
    assert second_sink == [(bad2, "connection-reset")]


# -- prefer_https (regression: the knob used to be dead) -------------------


def test_prefer_https_records_https_scheme_when_cert_is_valid(internet):
    _, resource, fqdn = _victim(internet)
    internet.issue_certificate(resource, fqdn, T0)
    monitor = WeeklyMonitor(
        internet.client, config=MonitorConfig(prefer_https=True)
    )
    features = monitor.sample(fqdn, T0)
    assert features.reachable
    assert features.scheme == "https"
    assert features.title == "Portal"


def test_prefer_https_falls_back_to_http_without_certificate(internet):
    _, _, fqdn = _victim(internet)
    monitor = WeeklyMonitor(
        internet.client, config=MonitorConfig(prefer_https=True)
    )
    features = monitor.sample(fqdn, T0)
    # TLS failed (no cert), the HTTP fallback carried the sample.
    assert features.reachable
    assert features.scheme == "http"


def test_scheme_is_not_part_of_state_identity(internet):
    _, resource, fqdn = _victim(internet)
    http_monitor = WeeklyMonitor(internet.client)
    first = http_monitor.sample(fqdn, T0)
    http_monitor.store.record(first)
    internet.issue_certificate(resource, fqdn, T0)
    https_monitor = WeeklyMonitor(
        internet.client, store=http_monitor.store,
        config=MonitorConfig(prefer_https=True),
    )
    second = https_monitor.sample(fqdn, T0 + timedelta(weeks=1))
    assert second.scheme == "https"
    # Same content over a different scheme is the same observed state.
    assert second.state_key() == first.state_key()
