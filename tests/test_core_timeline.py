"""Tests for incident-timeline reconstruction."""

from datetime import datetime

from repro.core.timeline import build_all_timelines, build_timeline


def test_timelines_cover_every_detection(tiny_result):
    timelines = build_all_timelines(tiny_result)
    assert len(timelines) == len(tiny_result.dataset)


def test_timeline_stage_ordering(tiny_result):
    record = tiny_result.dataset.records()[0]
    timeline = build_timeline(tiny_result, record.fqdn)
    stages = timeline.stages
    assert "taken-over" in stages
    assert "detected" in stages
    # Chronology is sorted.
    times = [entry.at for entry in timeline.entries]
    assert times == sorted(times)
    # Causality: the record dangled before it was taken over, and the
    # takeover happened no later than detection.
    dangled = timeline.stage_at("record-dangled")
    taken = timeline.stage_at("taken-over")
    detected = timeline.stage_at("detected")
    if dangled is not None:
        assert dangled <= taken
    assert taken <= detected or (detected - taken).days <= 0


def test_detection_gap_is_small(tiny_result):
    gaps = []
    for timeline in build_all_timelines(tiny_result):
        gap = timeline.gap_days("taken-over", "detected")
        if gap is not None:
            gaps.append(gap)
    assert gaps
    assert sorted(gaps)[len(gaps) // 2] <= 28  # weekly sampling + clustering


def test_remediated_incidents_end_after_takeover(tiny_result):
    for timeline in build_all_timelines(tiny_result):
        remediated = timeline.stage_at("remediated")
        taken = timeline.stage_at("taken-over")
        if remediated is not None and taken is not None:
            assert remediated >= taken


def test_render_contains_stages(tiny_result):
    record = tiny_result.dataset.records()[0]
    text = build_timeline(tiny_result, record.fqdn).render()
    assert record.fqdn in text
    assert "taken-over" in text


def test_unknown_fqdn_gives_empty_timeline(tiny_result):
    timeline = build_timeline(tiny_result, "nothing.example.com")
    assert timeline.entries == []
    assert timeline.stage_at("detected") is None
    assert timeline.gap_days("taken-over", "detected") is None
