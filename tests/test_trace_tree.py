"""Tests for causal trace trees, week series, and the Chrome export.

Covers the deterministic span-id assignment rules (path ids from
per-parent sequence counters, explicit ``seq=`` pinning), context-var
parenting, the tracer's context-manager close-on-error contract, the
metric-key label escaping and per-series histogram bounds fixes, the
week-series delta math, and the two cross-run contracts the ISSUE
gates on: same-seed sim projections (ids included) byte-identical
across worker counts / incremental modes, and the Chrome trace-event
export loading as valid, monotonic trace JSON.
"""

import json
from datetime import datetime

import pytest

from repro.core.scenario import ScenarioConfig, build_scenario
from repro.obs import (
    MS_BOUNDS,
    OBS,
    BufferTracer,
    MetricsRegistry,
    TimeSeriesRecorder,
    Tracer,
    current_span_id,
    deterministic_view,
    metric_key,
    parity_projection,
    sim_projection,
)
from repro.obs.chrome import chrome_trace, render_chrome
from repro.parallel.executor import ProcessExecutor

T0 = datetime(2020, 1, 6)


# -- span id assignment ----------------------------------------------------


def test_root_spans_get_per_name_sequence_ids():
    tracer = BufferTracer()
    with tracer.span("a"):
        pass
    with tracer.span("a"):
        pass
    with tracer.span("b"):
        pass
    ids = [e["id"] for e in tracer.events]
    assert ids == ["a#0", "a#1", "b#0"]
    assert all("parent" not in e for e in tracer.events)


def test_nested_spans_build_path_ids_and_record_parents():
    tracer = BufferTracer()
    with tracer.span("outer"):
        assert current_span_id() == "outer#0"
        with tracer.span("inner"):
            assert current_span_id() == "outer#0/inner#0"
        with tracer.span("inner"):
            pass
    assert current_span_id() is None
    # Events are emitted at span *exit*: inner spans first.
    by_name = {e["id"]: e for e in tracer.events}
    assert by_name["outer#0/inner#0"]["parent"] == "outer#0"
    assert by_name["outer#0/inner#1"]["parent"] == "outer#0"
    assert "parent" not in by_name["outer#0"]


def test_explicit_seq_pins_the_id_regardless_of_open_order():
    # Shard spans pass seq=shard_index so the id reflects simulation
    # structure, not dispatch order.
    tracer = BufferTracer()
    with tracer.span("sweep"):
        with tracer.span("sweep.shard", seq=3, shard=3):
            pass
        with tracer.span("sweep.shard", seq=0, shard=0):
            pass
    ids = sorted(e["id"] for e in tracer.events if e["name"] == "sweep.shard")
    assert ids == ["sweep#0/sweep.shard#0", "sweep#0/sweep.shard#3"]


def test_child_sequence_counters_die_with_the_parent_span():
    # A fresh parent restarts its children's numbering — counters live
    # on the span object, not in tracer-global state.
    tracer = BufferTracer()
    for _ in range(2):
        with tracer.span("week"):
            with tracer.span("stage"):
                pass
    stage_ids = [e["id"] for e in tracer.events if e["name"] == "stage"]
    assert stage_ids == ["week#0/stage#0", "week#1/stage#0"]


def test_events_record_the_enclosing_span_as_parent():
    tracer = BufferTracer()
    with tracer.span("outer"):
        tracer.event("ping", detail=1)
    tracer.event("pong")
    ping = next(e for e in tracer.events if e["name"] == "ping")
    pong = next(e for e in tracer.events if e["name"] == "pong")
    assert ping["parent"] == "outer#0"
    assert "parent" not in pong


def test_replayed_buffer_events_keep_their_child_assigned_ids():
    # Forked shard flow: child buffers under the inherited context,
    # parent replays verbatim — ids survive untouched.
    parent = BufferTracer()
    with parent.span("sweep"):
        child = parent.fork_buffer()
        with child.span("sweep.shard", seq=2, shard=2):
            pass
    parent.replay(child.events)
    replayed = [e for e in parent.events if e["name"] == "sweep.shard"]
    assert replayed[0]["id"] == "sweep#0/sweep.shard#2"
    assert replayed[0]["parent"] == "sweep#0"
    # Replay also folds the shard span into the aggregates.
    assert parent.aggregates()["sweep.shard"]["count"] == 1


# -- satellite fixes -------------------------------------------------------


def test_tracer_is_a_context_manager_that_closes_on_error(tmp_path):
    path = tmp_path / "t.jsonl"
    with pytest.raises(RuntimeError):
        with Tracer(path=str(path)) as tracer:
            with tracer.span("s", sim=T0):
                pass
            raise RuntimeError("mid-run crash")
    # The handle was flushed and closed: the span line is on disk.
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 1 and json.loads(lines[0])["name"] == "s"
    # Close is idempotent; writes after close are impossible.
    tracer.close()


def test_metric_key_escapes_label_metacharacters():
    # These two label sets collided into one key before the escaping.
    collided_a = metric_key("x", {"a": "1,b=2"})
    collided_b = metric_key("x", {"a": "1", "b": "2"})
    assert collided_a != collided_b
    assert collided_a == "x{a=1\\,b\\=2}"
    assert metric_key("x", {"a": "v{w}"}) == "x{a=v\\{w\\}}"
    # Backslashes escape first so escapes cannot double-apply.
    assert metric_key("x", {"a": "\\,"}) == "x{a=\\\\\\,}"


def test_registry_counters_stay_distinct_under_hostile_labels():
    registry = MetricsRegistry()
    registry.inc("x", a="1,b=2")
    registry.inc("x", a="1", b="2")
    assert len(registry.counters()) == 2


def test_observe_accepts_per_series_bounds():
    registry = MetricsRegistry()
    registry.observe("tick_ms", 150.0, bounds=MS_BOUNDS)
    registry.observe("tick_ms", 150.0)  # existing series keeps its bounds
    hist = registry.histogram("tick_ms")
    assert hist.bounds == MS_BOUNDS
    assert hist.count == 2
    # 150ms lands in a real bucket, not the overflow tail.
    assert hist.counts[-1] == 0
    # Default-bounds series saturate immediately at this scale — the
    # motivating bug.
    registry.observe("bad_ms", 150.0)
    assert registry.histogram("bad_ms").counts[-1] == 1


# -- week series -----------------------------------------------------------


def test_week_series_records_per_week_deltas():
    registry = MetricsRegistry()
    series = TimeSeriesRecorder()
    registry.inc("samples", 10)
    registry.inc("matches", 2)
    series.snapshot(0, T0, registry)
    registry.inc("samples", 7)
    series.snapshot(1, None, registry)
    series.snapshot(2, None, registry)  # quiet week: no deltas at all
    weeks = series.weeks()
    assert [w["week"] for w in weeks] == [0, 1, 2]
    assert weeks[0]["deltas"] == {"matches": 2, "samples": 10}
    assert weeks[0]["sim"] == T0.isoformat()
    assert weeks[1]["deltas"] == {"samples": 7}
    assert weeks[2]["deltas"] == {}


def test_series_export_and_deterministic_view(tmp_path):
    registry = MetricsRegistry()
    series = TimeSeriesRecorder()
    registry.inc("c", 3)
    series.snapshot(0, T0, registry)
    series.record_stage("monitor-sweep", cpu_s=0.5, wall_s=0.6)
    series.record_shard(0, items=100, cpu_s=0.4, wall_s=0.4, peak_rss_kb=512)
    export = series.export(registry, run={"seed": 7})
    assert export["schema"] == "repro.metrics/1"
    assert export["counters"] == {"c": 3}
    assert export["resources"]["stages"]["monitor-sweep"]["calls"] == 1
    assert export["resources"]["shards"]["0"]["peak_rss_kb"] == 512
    # The deterministic view drops run metadata, resources and sim
    # stamps — only seed-determined content survives.
    view = deterministic_view(export)
    assert set(view) == {"schema", "weeks", "counters"}
    assert view["weeks"] == [{"week": 0, "deltas": {"c": 3}}]
    # And it round-trips through JSON (what perf --check loads).
    assert deterministic_view(json.loads(json.dumps(export))) == view


def test_stage_rows_accumulate_and_shard_rss_takes_the_max():
    series = TimeSeriesRecorder()
    series.record_stage("detect", 0.1, 0.2)
    series.record_stage("detect", 0.3, 0.4)
    row = series.stage_rows()["detect"]
    assert row["calls"] == 2
    assert row["cpu_s"] == pytest.approx(0.4)
    series.record_shard(1, 10, 0.1, 0.1, peak_rss_kb=100)
    series.record_shard(1, 10, 0.1, 0.1, peak_rss_kb=80)
    assert series.shard_rows()[1]["peak_rss_kb"] == 100
    assert series.shard_rows()[1]["runs"] == 2


# -- cross-topology projection parity --------------------------------------


def _traced_scenario(workers, weeks=4, incremental=False):
    config = ScenarioConfig.tiny()
    config.weeks = weeks
    config.workers = workers
    config.incremental = incremental
    engine = build_scenario(config)
    executor = engine.payload.executor
    if isinstance(executor, ProcessExecutor):
        executor.use_fork = True  # pin fork mode on single-CPU runners
    registry = MetricsRegistry()
    tracer = BufferTracer()
    OBS.configure(metrics=registry, tracer=tracer,
                  series=TimeSeriesRecorder())
    try:
        engine.run()
    finally:
        OBS.reset()
    tracer.emit_metrics(registry)
    return tracer.events


def test_same_config_rerun_is_identical_including_ids():
    a = _traced_scenario(workers=4)
    b = _traced_scenario(workers=4)
    assert a and sim_projection(a) == sim_projection(b)
    span_ids = [e["id"] for e in a if e["type"] == "span"]
    assert len(span_ids) == len(set(span_ids))  # ids are unique
    assert any(e.get("parent") for e in a)  # and the tree is real


def test_parity_projection_is_topology_invariant():
    serial = _traced_scenario(workers=1)
    forked = _traced_scenario(workers=4)
    incremental = _traced_scenario(workers=4, incremental=True)
    assert parity_projection(serial) == parity_projection(forked)
    assert parity_projection(forked) == parity_projection(incremental)
    # The full projections legitimately differ (per-shard spans exist
    # only where shards do) — that's exactly what parity_projection
    # factors out.
    assert sim_projection(serial) != sim_projection(forked)


def test_forked_shard_spans_nest_under_the_sweep_stage():
    events = _traced_scenario(workers=4)
    shard_spans = [e for e in events if e["name"] == "sweep.shard"]
    assert shard_spans
    for span in shard_spans:
        assert span["parent"].startswith("stage.monitor-sweep#")
        assert span["id"] == f"{span['parent']}/sweep.shard#{span['shard']}"


# -- chrome export ---------------------------------------------------------


def test_chrome_export_is_valid_trace_event_json():
    events = _traced_scenario(workers=4)
    doc = json.loads(render_chrome(events))
    assert doc["displayTimeUnit"] == "ms"
    trace_events = doc["traceEvents"]
    assert trace_events
    for entry in trace_events:
        assert entry["ph"] in ("X", "i", "M")
        assert isinstance(entry["pid"], int) and isinstance(entry["tid"], int)
        if entry["ph"] != "M":
            assert isinstance(entry["ts"], int) and entry["ts"] >= 0
        if entry["ph"] == "X":
            assert entry["dur"] >= 0
    # Timestamps are monotonic within each (pid, tid) lane.
    lanes = {}
    for entry in trace_events:
        if entry["ph"] == "M":
            continue
        key = (entry["pid"], entry["tid"])
        assert entry["ts"] >= lanes.get(key, 0), key
        lanes[key] = entry["ts"]


def test_chrome_export_maps_shards_to_their_own_lanes():
    events = _traced_scenario(workers=4)
    doc = chrome_trace(events)
    shard_tids = {
        entry["tid"]
        for entry in doc["traceEvents"]
        if entry["ph"] == "X" and entry["name"] == "sweep.shard"
    }
    assert shard_tids == {10, 11, 12, 13}
    thread_names = {
        (entry["pid"], entry["tid"]): entry["args"]["name"]
        for entry in doc["traceEvents"]
        if entry["ph"] == "M" and entry["name"] == "thread_name"
    }
    assert thread_names[(1, 10)] == "shard 0"
    assert thread_names[(1, 1)] == "pipeline"


def test_chrome_export_of_an_empty_trace_is_well_formed():
    doc = chrome_trace([])
    assert doc["traceEvents"] == [
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": "repro pipeline"}},
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": 1,
         "args": {"name": "pipeline"}},
    ]
