"""Tests for resource records and CAA rdata handling."""

import pytest

from repro.dns.records import RRType, ResourceRecord, caa_rdata, parse_caa_rdata


def test_record_normalizes_name():
    record = ResourceRecord(name="APP.Example.com.", rtype=RRType.A, rdata="1.2.3.4")
    assert record.name == "app.example.com"
    assert record.rdata == "1.2.3.4"


def test_name_valued_rdata_is_normalized():
    record = ResourceRecord(name="a.example.com", rtype=RRType.CNAME, rdata="Foo.AzureWebsites.NET")
    assert record.rdata == "foo.azurewebsites.net"


def test_key_identity_and_str():
    record = ResourceRecord(name="a.example.com", rtype=RRType.A, rdata="1.1.1.1")
    assert record.key == "a.example.com A 1.1.1.1"
    assert str(record) == record.key


def test_records_are_hashable_value_objects():
    a = ResourceRecord(name="x.com", rtype=RRType.TXT, rdata="hello")
    b = ResourceRecord(name="x.com", rtype=RRType.TXT, rdata="hello")
    assert a == b
    assert len({a, b}) == 1


def test_caa_rdata_roundtrip():
    rdata = caa_rdata("issue", "letsencrypt.org")
    assert parse_caa_rdata(rdata) == (0, "issue", "letsencrypt.org")


def test_caa_rdata_rejects_unknown_tag():
    with pytest.raises(ValueError):
        caa_rdata("frobnicate", "x")


def test_parse_caa_rdata_garbage_returns_none():
    assert parse_caa_rdata("not valid") is None
    assert parse_caa_rdata("x issue y") is None
