"""Tests for JSON export/import and the CLI."""

import io
import json

from repro.cli import main
from repro.core.export import (
    dataset_from_json,
    dataset_to_json,
    ground_truth_to_json,
    record_from_dict,
    record_to_dict,
)


def test_dataset_json_roundtrip(tiny_result):
    text = dataset_to_json(tiny_result.dataset)
    restored = dataset_from_json(text)
    assert restored.abused_fqdns() == tiny_result.dataset.abused_fqdns()
    original = tiny_result.dataset.records()[0]
    copy = restored.get(original.fqdn)
    assert copy.first_detected == original.first_detected
    assert copy.topics == original.topics
    assert copy.signature_ids == original.signature_ids
    assert copy.indicator_combinations == original.indicator_combinations
    assert len(copy.episodes) == len(original.episodes)
    assert copy.episodes[0].started_at == original.episodes[0].started_at
    assert restored.monthly_cumulative == tiny_result.dataset.monthly_cumulative


def test_record_dict_roundtrip(tiny_result):
    record = tiny_result.dataset.records()[0]
    restored = record_from_dict(record_to_dict(record))
    assert restored.fqdn == record.fqdn
    assert restored.keywords == record.keywords
    assert restored.max_sitemap_count == record.max_sitemap_count


def test_ground_truth_export(tiny_result):
    payload = json.loads(ground_truth_to_json(tiny_result.ground_truth))
    assert len(payload["hijacks"]) == len(tiny_result.ground_truth)
    row = payload["hijacks"][0]
    assert set(row) == {"fqdn", "attacker_group", "service", "provider",
                        "taken_over_at", "remediated_at"}


def test_cli_run(tmp_path):
    out = io.StringIO()
    export_path = tmp_path / "dataset.json"
    code = main(
        ["run", "--scale", "tiny", "--seed", "3", "--export", str(export_path)],
        out=out,
    )
    assert code == 0
    text = out.getvalue()
    assert "Scenario summary" in text
    assert "abused FQDNs detected" in text
    restored = dataset_from_json(export_path.read_text(encoding="utf-8"))
    assert len(restored) > 0


def test_cli_report():
    out = io.StringIO()
    assert main(["report", "--scale", "tiny", "--seed", "3"], out=out) == 0
    text = out.getvalue()
    assert "Figure 2" in text
    assert "Figure 3" in text


def test_cli_audit():
    out = io.StringIO()
    assert main(["audit", "--scale", "tiny", "--seed", "3"], out=out) == 0
    assert "Attack surface" in out.getvalue()


def test_cli_countermeasure_flag():
    out = io.StringIO()
    assert main(
        ["run", "--scale", "tiny", "--seed", "3", "--randomize-names"], out=out
    ) == 0
    takeover_line = next(
        line for line in out.getvalue().splitlines() if "actual takeovers" in line
    )
    assert takeover_line.split()[-1] == "0"
