"""Tests for the ground-truth hijack log."""

from datetime import datetime, timedelta

import pytest

from repro.cloud.specs import spec_by_key
from repro.cloud.resources import CloudResource
from repro.world.ground_truth import GroundTruthLog
from repro.world.organizations import Asset, AssetKind

T0 = datetime(2020, 1, 6)
T1 = datetime(2020, 4, 6)


def _asset(fqdn="app.acme.com"):
    return Asset(fqdn=fqdn, kind=AssetKind.CLOUD_CNAME, org_key="acme", created_at=T0)


def _resource():
    return CloudResource(
        spec=spec_by_key("azure-web-app"), name="app", owner="attacker:g1", created_at=T0
    )


def test_record_and_query():
    log = GroundTruthLog()
    record = log.record_takeover(_asset(), "g1", _resource(), T0)
    assert log.was_hijacked("app.acme.com")
    assert log.hijacked_fqdns() == ["app.acme.com"]
    assert log.active_records() == [record]
    assert len(log) == 1


def test_remediation_closes_record():
    log = GroundTruthLog()
    log.record_takeover(_asset(), "g1", _resource(), T0)
    log.mark_remediated("app.acme.com", T1)
    assert log.active_records() == []
    record = log.records_for("app.acme.com")[0]
    assert record.remediated_at == T1
    assert record.duration_days() == pytest.approx(91.0, abs=1.0)


def test_duration_of_open_record_requires_now():
    log = GroundTruthLog()
    record = log.record_takeover(_asset(), "g1", _resource(), T0)
    with pytest.raises(ValueError):
        record.duration_days()
    assert record.duration_days(now=T0 + timedelta(days=10)) == pytest.approx(10.0)


def test_repeat_hijack_of_same_fqdn():
    log = GroundTruthLog()
    log.record_takeover(_asset(), "g1", _resource(), T0)
    log.mark_remediated("app.acme.com", T1)
    log.record_takeover(_asset(), "g2", _resource(), T1 + timedelta(days=30))
    assert len(log.records_for("app.acme.com")) == 2
    assert len(log.active_records()) == 1
