"""Tests for the search-engine substrate and poisoning measurement."""

from datetime import datetime, timedelta

import pytest

from repro.core.search_poisoning import measure_poisoning
from repro.dns.records import RRType, ResourceRecord
from repro.search.crawler import Crawler
from repro.search.engine import SearchEngine
from repro.search.index import SearchIndex

T0 = datetime(2020, 1, 6)


def _engine(internet, pages_per_host=5):
    return SearchEngine(
        Crawler(internet.client, pages_per_host=pages_per_host),
        internet.whois,
        internet.ct_log,
    )


def _host(internet, fqdn, body, extra_pages=(), age_days=4000, registered=True):
    azure = internet.catalog.provider("Azure")
    edge = azure.edges[0]
    from repro.web.site import StaticSite

    site = StaticSite()
    site.put_index(body)
    for path, page_body in extra_pages:
        site.put(path, page_body)
    edge.route(fqdn, site)
    sld = ".".join(fqdn.split(".")[-2:])
    zone = internet.zones.get_zone(sld) or internet.zones.create_zone(sld)
    if registered and internet.whois.lookup(sld) is None:
        internet.whois.register(sld, owner=sld, registrar="GoDaddy",
                                created_at=T0 - timedelta(days=age_days))
    zone.add(ResourceRecord(fqdn, RRType.A, edge.ip), T0)
    return site


GAMBLING = ('<html lang="id"><head><title>slot gacor</title></head><body>'
            '<p>slot gacor judi online daftar</p>'
            '<a href="/p1.html">slot</a></body></html>')
CORPORATE = ('<html><head><title>Acme products</title></head><body>'
             '<p>products services enterprise</p></body></html>')


def test_crawler_fetches_index_and_linked_pages(internet):
    _host(internet, "spam.foo.com", GAMBLING,
          extra_pages=[("/p1.html", GAMBLING)])
    crawler = Crawler(internet.client)
    pages = crawler.crawl_host("spam.foo.com", T0)
    assert {p.path for p in pages} == {"/", "/p1.html"}
    assert crawler.stats.pages_fetched == 2


def test_crawler_respects_page_budget(internet):
    extra = [(f"/p{i}.html", GAMBLING) for i in range(20)]
    body = GAMBLING.replace("</body>", "".join(
        f'<a href="/p{i}.html">x</a>' for i in range(20)) + "</body>")
    _host(internet, "many.foo.com", body, extra_pages=extra)
    pages = Crawler(internet.client, pages_per_host=4).crawl_host("many.foo.com", T0)
    assert len(pages) == 4


def test_crawler_skips_dead_hosts(internet):
    crawler = Crawler(internet.client)
    assert crawler.crawl(["ghost.nowhere.com"], T0) == []
    assert crawler.stats.fetch_failures == 1


def test_crawler_sees_cloaked_content(internet):
    from repro.attacker.cloaking import CloakingSite

    azure = internet.catalog.provider("Azure")
    edge = azure.edges[0]
    site = CloakingSite()
    site.put_index("<html><body>facade</body></html>")
    site.put("/spam.html", GAMBLING)
    sitemap_body = ('<?xml version="1.0"?><urlset><url>'
                    "<loc>http://cloak.foo.com/spam.html</loc></url></urlset>")
    site.put("/sitemap.xml", sitemap_body, content_type="application/xml")
    edge.route("cloak.foo.com", site)
    zone = internet.zones.create_zone("foo.com")
    internet.whois.register("foo.com", owner="Foo", registrar="R", created_at=T0)
    zone.add(ResourceRecord("cloak.foo.com", RRType.A, edge.ip), T0)
    pages = Crawler(internet.client).crawl_host("cloak.foo.com", T0)
    # The bot got the parasite page a human would never see.
    assert any(p.path == "/spam.html" for p in pages)


def test_index_and_backlinks(internet):
    index = SearchIndex()
    _host(internet, "a.foo.com", GAMBLING.replace(
        "</body>", '<a href="http://b.bar.com/x">link</a></body>'))
    pages = Crawler(internet.client).crawl_host("a.foo.com", T0)
    index.add_pages(pages)
    assert index.page_count >= 1
    assert index.pages_for_token("slot")
    assert index.backlink_count("b.bar.com") == 1
    assert index.backlink_count("a.foo.com") == 0


def test_ranking_prefers_relevance_and_age(internet):
    engine = _engine(internet)
    _host(internet, "old.foo.com", GAMBLING, age_days=6000)
    _host(internet, "young.bar.net", GAMBLING, age_days=30)
    engine.crawl(["old.foo.com", "young.bar.net"], T0)
    results = engine.search("slot gacor", T0)
    assert [r.fqdn for r in results[:2]] == ["old.foo.com", "young.bar.net"]
    # Irrelevant pages don't rank at all.
    assert all("slot" in r.title or r.score > 0 for r in results)


def test_corporate_pages_dont_rank_for_gambling(internet):
    engine = _engine(internet)
    _host(internet, "corp.foo.com", CORPORATE)
    engine.crawl(["corp.foo.com"], T0)
    assert engine.search("slot gacor", T0) == []
    assert engine.search("enterprise products", T0)


def test_backlinks_boost_authority(internet):
    engine = _engine(internet)
    farm_body = GAMBLING.replace(
        "</body>", '<a href="http://boosted.foo.com/">slot</a></body>'
    )
    _host(internet, "boosted.foo.com", GAMBLING, age_days=1000)
    _host(internet, "plain.bar.net", GAMBLING, age_days=1000)
    for i in range(4):
        _host(internet, f"farm{i}.baz.org", farm_body, age_days=1000)
    engine.crawl(
        ["boosted.foo.com", "plain.bar.net"] + [f"farm{i}.baz.org" for i in range(4)],
        T0,
    )
    assert engine.authority("boosted.foo.com", T0) > engine.authority("plain.bar.net", T0)


def test_poisoning_on_finished_world(small_result):
    engine = SearchEngine(
        Crawler(small_result.internet.client, pages_per_host=3),
        small_result.internet.whois,
        small_result.internet.ct_log,
    )
    hosts = sorted(small_result.collector.monitored)
    engine.crawl(hosts, small_result.end)
    report = measure_poisoning(engine, small_result.dataset, small_result.end)
    assert report.indexed_hosts > 50
    gambling = next(q for q in report.queries if q.query == "slot gacor")
    # Hijacked domains dominate the gambling results — the SEO worked.
    assert gambling.poisoned_share > 0.5
    assert gambling.best_poisoned_rank in (1, 2, 3)
