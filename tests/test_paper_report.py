"""Tests for the one-call paper-style report."""

from repro.core.paper_report import build_report


def test_report_contains_every_section(tiny_result):
    report = build_report(tiny_result)
    for marker in (
        "ABUSE MEASUREMENT REPORT",
        "Pipeline (Section 3, Figure 1)",
        "Detections by indicator type (Figure 2)",
        "Content topics (Figure 3)",
        "Top index keywords (Table 1)",
        "Victimology (Section 4.1",
        "Providers (Section 4.2",
        "Hijack durations (Section 4.4",
        "SEO & volume (Section 5.2",
        "Reputation & certificates",
        "Malware, blacklists & cookies",
        "Attribution (Section 6",
    ):
        assert marker in report, marker


def test_report_reflects_dataset_size(tiny_result):
    report = build_report(tiny_result)
    assert str(len(tiny_result.dataset)) in report
    assert f"seed {tiny_result.config.seed}" in report


def test_report_is_deterministic(tiny_result):
    assert build_report(tiny_result) == build_report(tiny_result)


def test_report_includes_monetization_when_present(tiny_result):
    report = build_report(tiny_result)
    if tiny_result.monetization is not None and len(tiny_result.monetization.ledger):
        assert "Monetization (Section 5.3" in report
