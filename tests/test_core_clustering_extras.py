"""Tests for clustering helpers: co-occurrence edges and DOT export."""

from repro.core.clustering import (
    cluster_identifiers,
    cooccurrence_edges,
    cooccurrence_to_dot,
)
from repro.core.identifiers import IdentifierMap


def _map():
    imap = IdentifierMap()
    imap.phones["+62812000111"] = {"a.x.com", "b.y.com"}
    imap.socials["t.me/slotwin1"] = {"a.x.com", "b.y.com", "c.z.com"}
    imap.short_links["https://sh.rt/abc"] = {"c.z.com"}
    imap.ips["141.98.1.1"] = {"d.q.com"}
    return imap


def test_cooccurrence_edges_count_shared_domains():
    edges = cooccurrence_edges(_map())
    lookup = {(a, b): n for a, b, n in edges}
    assert lookup[("+62812000111", "t.me/slotwin1")] == 2
    assert ("141.98.1.1", "+62812000111") not in lookup  # disjoint pair


def test_clustering_isolates_disconnected_identifier():
    report = cluster_identifiers(_map())
    singleton = [c for c in report.clusters if c.identifiers == ("141.98.1.1",)]
    assert singleton
    assert report.singleton_share > 0


def test_dot_export_structure():
    dot = cooccurrence_to_dot(_map())
    assert dot.startswith("graph attacker_infrastructure {")
    assert dot.rstrip().endswith("}")
    assert '"+62812000111" [color=green' in dot
    assert '"141.98.1.1" [color=red' in dot
    assert '"https://sh.rt/abc" [color=blue' in dot
    assert '"+62812000111" -- "t.me/slotwin1" [penwidth=2]' in dot


def test_dot_export_on_real_world(tiny_result):
    from repro.core.identifiers import extract_identifiers

    imap = extract_identifiers(tiny_result.dataset, tiny_result.monitor.store)
    dot = cooccurrence_to_dot(imap)
    assert dot.count("--") == len(cooccurrence_edges(imap))
