"""Tests for deterministic named RNG streams."""

from repro.sim.rng import RngStreams, _derive_seed


def test_same_name_returns_same_stream():
    streams = RngStreams(1)
    assert streams.get("a") is streams.get("a")


def test_streams_are_deterministic_across_instances():
    first = RngStreams(99).get("world").random()
    second = RngStreams(99).get("world").random()
    assert first == second


def test_different_names_are_independent():
    streams = RngStreams(5)
    a = [streams.get("a").random() for _ in range(5)]
    b = [RngStreams(5).get("b").random() for _ in range(5)]
    assert a != b


def test_different_master_seeds_differ():
    assert RngStreams(1).get("x").random() != RngStreams(2).get("x").random()


def test_fork_is_deterministic_and_independent():
    parent = RngStreams(3)
    child_a = parent.fork("attackers").get("g1").random()
    child_b = RngStreams(3).fork("attackers").get("g1").random()
    assert child_a == child_b
    assert parent.fork("attackers").master_seed != parent.master_seed


def test_derived_seed_is_stable():
    assert _derive_seed(42, "abc") == _derive_seed(42, "abc")
    assert _derive_seed(42, "abc") != _derive_seed(42, "abd")
