"""Tests for CAA tree climbing (RFC 8659)."""

from datetime import datetime

from repro.dns.records import RRType, ResourceRecord, caa_rdata
from repro.dns.zone import ZoneRegistry
from repro.pki.caa import authorized_issuers, caa_authorizes, effective_caa_set

T0 = datetime(2020, 1, 6)


def _zones_with_caa(value="letsencrypt.org"):
    zones = ZoneRegistry()
    zone = zones.create_zone("example.com")
    zone.add(ResourceRecord("example.com", RRType.CAA, caa_rdata("issue", value)), T0)
    return zones


def test_no_caa_means_anyone_may_issue():
    zones = ZoneRegistry()
    zones.create_zone("example.com")
    assert effective_caa_set(zones, "a.example.com") is None
    assert caa_authorizes(zones, "a.example.com", "anyca.example")


def test_caa_restricts_to_listed_issuer():
    zones = _zones_with_caa("digicert.com")
    assert caa_authorizes(zones, "example.com", "digicert.com")
    assert not caa_authorizes(zones, "example.com", "letsencrypt.org")


def test_tree_climbing_from_subdomain():
    zones = _zones_with_caa()
    assert caa_authorizes(zones, "deep.sub.example.com", "letsencrypt.org")
    assert not caa_authorizes(zones, "deep.sub.example.com", "evilca.example")


def test_subdomain_caa_overrides_parent():
    zones = _zones_with_caa("digicert.com")
    zone = zones.get_zone("example.com")
    zone.add(
        ResourceRecord("sub.example.com", RRType.CAA, caa_rdata("issue", "letsencrypt.org")),
        T0,
    )
    assert caa_authorizes(zones, "x.sub.example.com", "letsencrypt.org")
    assert not caa_authorizes(zones, "x.sub.example.com", "digicert.com")
    assert caa_authorizes(zones, "example.com", "digicert.com")


def test_deny_all_caa():
    zones = ZoneRegistry()
    zone = zones.create_zone("example.com")
    zone.add(ResourceRecord("example.com", RRType.CAA, caa_rdata("issue", ";")), T0)
    issuers = authorized_issuers(zones, "example.com")
    assert issuers == set()
    assert not caa_authorizes(zones, "example.com", "letsencrypt.org")


def test_multiple_issue_records_accumulate():
    zones = _zones_with_caa()
    zone = zones.get_zone("example.com")
    zone.add(
        ResourceRecord("example.com", RRType.CAA, caa_rdata("issue", "digicert.com")),
        T0,
    )
    assert authorized_issuers(zones, "example.com") == {"letsencrypt.org", "digicert.com"}
