"""Tests for zones, change history and the zone registry."""

from datetime import datetime

import pytest

from repro.dns.records import RRType, ResourceRecord
from repro.dns.zone import Zone, ZoneRegistry

T0 = datetime(2020, 1, 6)
T1 = datetime(2020, 2, 3)


def _a(name, ip="1.2.3.4"):
    return ResourceRecord(name=name, rtype=RRType.A, rdata=ip)


def test_add_and_lookup():
    zone = Zone("example.com")
    zone.add(_a("app.example.com"), T0)
    assert [r.rdata for r in zone.lookup("app.example.com", RRType.A)] == ["1.2.3.4"]
    assert zone.lookup("app.example.com", RRType.CNAME) == []


def test_add_outside_zone_rejected():
    zone = Zone("example.com")
    with pytest.raises(ValueError):
        zone.add(_a("app.other.com"), T0)


def test_duplicate_record_rejected():
    zone = Zone("example.com")
    zone.add(_a("a.example.com"), T0)
    with pytest.raises(ValueError):
        zone.add(_a("a.example.com"), T0)


def test_cname_exclusivity():
    zone = Zone("example.com")
    zone.add(ResourceRecord("a.example.com", RRType.CNAME, "x.cloud.net"), T0)
    with pytest.raises(ValueError):
        zone.add(ResourceRecord("a.example.com", RRType.CNAME, "y.cloud.net"), T0)


def test_remove_and_name_exists():
    zone = Zone("example.com")
    record = zone.add(_a("a.example.com"), T0)
    assert zone.name_exists("a.example.com")
    zone.remove(record, T1)
    assert not zone.name_exists("a.example.com")
    with pytest.raises(ValueError):
        zone.remove(record, T1)


def test_remove_all_counts():
    zone = Zone("example.com")
    zone.add(_a("a.example.com", "1.1.1.1"), T0)
    zone.add(_a("a.example.com", "2.2.2.2"), T0)
    assert zone.remove_all("a.example.com", RRType.A, T1) == 2
    assert zone.lookup("a.example.com", RRType.A) == []


def test_replace_swaps_records():
    zone = Zone("example.com")
    zone.add(_a("a.example.com", "1.1.1.1"), T0)
    zone.replace("a.example.com", RRType.A, "9.9.9.9", T1)
    assert [r.rdata for r in zone.lookup("a.example.com", RRType.A)] == ["9.9.9.9"]


def test_history_records_adds_and_removes_with_timestamps():
    zone = Zone("example.com")
    record = zone.add(_a("a.example.com"), T0)
    zone.remove(record, T1)
    history = zone.history_for("a.example.com")
    assert [(c.action, c.at) for c in history] == [("add", T0), ("remove", T1)]


def test_names_lists_current_owners():
    zone = Zone("example.com")
    zone.add(_a("a.example.com"), T0)
    zone.add(_a("b.example.com"), T0)
    assert zone.names() == {"a.example.com", "b.example.com"}


def test_registry_longest_match():
    registry = ZoneRegistry()
    registry.create_zone("azure-dns.com")
    inner = registry.create_zone("cloudapp.azure.com")
    outer = registry.create_zone("azure.com")
    assert registry.zone_for("vm1.cloudapp.azure.com") is inner
    assert registry.zone_for("portal.azure.com") is outer
    assert registry.zone_for("unrelated.net") is None


def test_registry_rejects_duplicate_apex():
    registry = ZoneRegistry()
    registry.create_zone("example.com")
    with pytest.raises(ValueError):
        registry.create_zone("Example.COM")


def test_registry_get_zone_exact():
    registry = ZoneRegistry()
    zone = registry.create_zone("example.com")
    assert registry.get_zone("example.com") is zone
    assert registry.get_zone("sub.example.com") is None
    assert len(registry) == 1
