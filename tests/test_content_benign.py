"""Tests for benign content generation and vocabularies."""

import random
from datetime import datetime

from repro.content.benign import BenignContentFactory
from repro.content.vocab import (
    ABUSE_TOPIC_WEIGHTS,
    GAMBLING_KEYWORDS,
    MAINTENANCE_PHRASES,
    STOPWORDS,
    Topic,
    keywords_for_topic,
)
from repro.core.keywords import abuse_vocabulary_hits, extract_keywords
from repro.web.html import parse_html

T0 = datetime(2020, 1, 6)


def _factory(seed=1):
    return BenignContentFactory(random.Random(seed))


def test_corporate_index_mentions_org_and_sector():
    doc = _factory().corporate_index("Velnor Industries", "Energy")
    assert "Velnor Industries" in doc.title or "Velnor Industries" in doc.visible_text()
    assert "energy" in doc.visible_text().lower()
    assert parse_html(doc.render()).title == doc.title


def test_corporate_revisions_differ():
    factory = _factory()
    a = factory.corporate_index("Acme", "Retailing", revision=0).render()
    b = factory.corporate_index("Acme", "Retailing", revision=1).render()
    assert a != b


def test_university_and_service_pages():
    factory = _factory()
    university = factory.university_index("University of Ashford")
    assert "Admissions" in [l.text for l in university.links]
    service = factory.service_page("Acme", "portal")
    assert "portal" in service.title.lower()


def test_parked_page_rotates_by_campaign():
    factory = _factory()
    first = factory.parked_page("x.com", campaign=0).render()
    second = factory.parked_page("x.com", campaign=1).render()
    assert first != second
    # Same campaign = same offer for every domain (collective change).
    assert "insurance" in factory.parked_page("a.com", 0).render()
    assert "insurance" in factory.parked_page("b.com", 0).render()


def test_benign_sitemap_is_human_scale():
    sitemap = _factory().benign_sitemap("www.acme.com", 500, at=T0)
    assert len(sitemap) <= 200
    assert sitemap.size_bytes() < 50 * 1024


def test_benign_pages_carry_no_abuse_vocabulary():
    factory = _factory()
    for doc in (
        factory.corporate_index("Acme", "Technology"),
        factory.university_index("University of Jasper"),
        factory.service_page("Acme", "api"),
    ):
        keywords = extract_keywords(doc)
        assert abuse_vocabulary_hits(keywords) == 0, sorted(keywords)


def test_vocab_pools_are_disjoint_enough():
    benign = set(keywords_for_topic(Topic.BENIGN))
    gambling = set(GAMBLING_KEYWORDS)
    assert not benign & gambling


def test_abuse_topic_weights_sum_to_one():
    assert abs(sum(w for _, w in ABUSE_TOPIC_WEIGHTS) - 1.0) < 1e-9
    assert ABUSE_TOPIC_WEIGHTS[0][0] == Topic.GAMBLING  # dominant


def test_maintenance_phrases_include_the_typo():
    assert any("Comming" in phrase for phrase in MAINTENANCE_PHRASES)


def test_stopwords_lowercase():
    assert all(word == word.lower() for word in STOPWORDS)
