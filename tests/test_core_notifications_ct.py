"""Tests for the notification campaign and CT-monitoring evaluation."""

from datetime import timedelta

import pytest

from repro.core.ct_monitoring import evaluate_ct_monitoring
from repro.core.duration import analyze_durations
from repro.core.scenario import ScenarioConfig, run_scenario


@pytest.fixture(scope="module")
def notified_result():
    config = ScenarioConfig.tiny(seed=13)
    config.notify_owners = True
    return run_scenario(config)


@pytest.fixture(scope="module")
def silent_result():
    return run_scenario(ScenarioConfig.tiny(seed=13))


def test_notifications_sent_and_confirmed(notified_result):
    campaign = notified_result.notifications
    assert campaign is not None
    assert len(campaign.sent) > 0
    # True detections are confirmed by victims, as in the paper.
    assert campaign.confirmation_rate > 0.8
    assert campaign.notified_organizations > 0


def test_notifications_shorten_hijack_durations(notified_result, silent_result):
    """Same seed, same world: the campaign must cut abuse lifetimes."""
    notified = analyze_durations(notified_result.dataset, notified_result.end)
    silent = analyze_durations(silent_result.dataset, silent_result.end)
    assert notified.total > 0 and silent.total > 0
    mean_notified = sum(notified.durations_days) / notified.total
    mean_silent = sum(silent.durations_days) / silent.total
    assert mean_notified < mean_silent
    assert notified.long_lived_share < silent.long_lived_share + 0.05


def test_notification_events_logged(notified_result):
    kinds = notified_result.internet.events.counts_by_kind()
    assert kinds.get("research.notified", 0) == len(notified_result.notifications.sent)


def test_no_duplicate_notifications(notified_result):
    fqdns = [record.fqdn for record in notified_result.notifications.sent]
    assert len(fqdns) == len(set(fqdns))


def test_ct_monitoring_evaluation(silent_result):
    report = evaluate_ct_monitoring(
        silent_result.ground_truth, silent_result.internet.ct_log
    )
    assert report.total_hijacks == len(silent_result.ground_truth)
    # Coverage is bounded by attacker certificate appetite (only some
    # hijacks issue certificates — Section 5.6.3's caveat).
    assert 0.0 < report.coverage < 0.9
    # But where a certificate was issued, the alert is nearly immediate.
    assert report.median_latency_days is not None
    assert report.median_latency_days <= 7.0
    for alert in report.alerted:
        assert alert.latency_days >= 0.0
