"""Ablations of the Section 7 countermeasures.

The paper recommends (a) not exposing user-chosen resource names /
randomizing them, and (b) quarantining released names.  With the
simulator both can be measured: each should collapse the hijack count.
"""

from datetime import timedelta

import pytest

from repro.core.scenario import ScenarioConfig, run_scenario


@pytest.fixture(scope="module")
def baseline():
    return run_scenario(ScenarioConfig.tiny(seed=9))


def test_randomized_names_eliminate_takeovers(baseline):
    config = ScenarioConfig.tiny(seed=9)
    config.randomize_names = True
    hardened = run_scenario(config)
    assert len(baseline.ground_truth) > 0
    assert len(hardened.ground_truth) == 0


def test_reregistration_cooldown_reduces_takeovers(baseline):
    config = ScenarioConfig.tiny(seed=9)
    config.reregistration_cooldown = timedelta(days=3650)
    quarantined = run_scenario(config)
    assert len(quarantined.ground_truth) == 0


def test_short_cooldown_only_delays(baseline):
    config = ScenarioConfig.tiny(seed=9)
    config.reregistration_cooldown = timedelta(days=14)
    delayed = run_scenario(config)
    # Some takeovers still happen — a short quarantine is not a fix.
    # (Exact counts shift with the RNG stream divergence; the point is
    # that exposure is not eliminated, unlike the long quarantine.)
    assert len(delayed.ground_truth) > 0
    assert len(delayed.ground_truth) <= int(len(baseline.ground_truth) * 1.4)
