"""Tests for text rendering helpers."""

from repro.core.reporting import percent, render_histogram, render_series, render_table


def test_render_table_alignment():
    text = render_table(
        ["service", "abused"], [["azure-web-app", 6288], ["aws-s3", 2227]],
        title="Table 3",
    )
    lines = text.splitlines()
    assert lines[0] == "Table 3"
    assert "service" in lines[1]
    assert "azure-web-app" in lines[3]
    # Columns align: every row has the same separator positions.
    assert len(lines[3].split("  ")[0]) == len("azure-web-app")


def test_render_table_formats_floats():
    text = render_table(["x"], [[1234.5678]])
    assert "1,234.57" in text


def test_render_histogram_scales_bars():
    text = render_histogram([("0-15", 10), ("15-30", 5), ("30-45", 0)])
    lines = text.splitlines()
    assert lines[0].count("#") == 40
    assert lines[1].count("#") == 20
    assert lines[2].count("#") == 0


def test_render_histogram_empty():
    assert render_histogram([]) == ""


def test_render_series():
    text = render_series([("2020-01", 1.0), ("2020-02", 2.5)], title="growth")
    assert text.splitlines()[0] == "growth"
    assert "2020-02" in text


def test_percent():
    assert percent(0.755) == "75.5%"
    assert percent(1 / 3, digits=0) == "33%"
