"""Tests for the referral-traffic monetization ecosystem (Section 5.3)."""

import random
from datetime import datetime

import pytest

from repro.attacker.monetization import (
    GamblingSiteOperator,
    MonetizationEcosystem,
    MonetizationLedger,
    parse_referral,
)

T0 = datetime(2020, 6, 1)


def test_parse_referral():
    assert parse_referral("https://x.bet/play?ref=ref1000") == ("https://x.bet/play", "ref1000")
    assert parse_referral("https://x.bet/p?a=1&ref=r2") == ("https://x.bet/p?a=1", "r2")
    assert parse_referral("https://x.bet/play") is None
    assert parse_referral("https://x.bet/play?ref=") is None


def test_ledger_payouts_and_counts():
    ledger = MonetizationLedger()
    ledger.record("refA", "view", T0, "a.victim.com")
    ledger.record("refA", "signup", T0, "a.victim.com")
    ledger.record("refB", "view", T0, "b.victim.com")
    assert ledger.payout_for("refA") == pytest.approx(5.002)
    assert ledger.payouts()[0][0] == "refA"
    assert ledger.event_counts() == {"view": 2, "signup": 1}
    assert ledger.event_counts("refB") == {"view": 1}
    assert ledger.top_referring_domains()[0] == ("a.victim.com", 2)


def test_ledger_rejects_unknown_kind():
    with pytest.raises(ValueError):
        MonetizationLedger().record("r", "bribery", T0)


def test_operator_conversion_funnel():
    ledger = MonetizationLedger()
    operator = GamblingSiteOperator(ledger, random.Random(5), signup_rate=0.5,
                                    deposit_rate=0.5)
    for _ in range(400):
        operator.receive_visit("refX", T0)
    counts = ledger.event_counts("refX")
    # Strict funnel: every visit pays a view; signups a fraction of
    # views; deposits a fraction of signups.
    assert counts["view"] == 400
    assert 0 < counts["signup"] < counts["view"]
    assert 0 < counts["deposit"] < counts["signup"]


def test_ecosystem_routes_by_base_url():
    ecosystem = MonetizationEcosystem(random.Random(6))
    assert ecosystem.handle_click("https://a.bet/p?ref=r1", T0, "x.com")
    assert ecosystem.handle_click("https://b.win/p?ref=r2", T0, "y.com")
    assert not ecosystem.handle_click("https://plain.example/", T0)
    assert ecosystem.operator_count == 2
    assert len(ecosystem.ledger) >= 2


def test_scenario_generates_revenue(tiny_result):
    """Users clicking through hijacked pages produce referral income."""
    ledger = tiny_result.monetization.ledger
    assert len(ledger) > 0
    payouts = ledger.payouts()
    assert payouts[0][1] > 0
    # Referral codes match the attacker groups' codes.
    group_codes = {g.referral_code for g in tiny_result.groups if g.referral_code}
    assert {code for code, _ in payouts} <= group_codes
    # The traffic sources are hijacked domains.
    sources = {fqdn for fqdn, _ in ledger.top_referring_domains(100)}
    assert sources <= set(tiny_result.ground_truth.hijacked_fqdns())
