"""Tests for CA issuance: HTTP-01, DNS-01, CAA enforcement."""

from datetime import datetime

import pytest

from repro.dns.records import RRType, ResourceRecord, caa_rdata
from repro.pki.ca import IssuanceError

T0 = datetime(2020, 1, 6)
T1 = datetime(2020, 3, 1)
T2 = datetime(2020, 3, 8)


def _provisioned(internet, name="shop"):
    azure = internet.catalog.provider("Azure")
    zone = internet.zones.create_zone("acme.com")
    resource = azure.provision("azure-web-app", name, owner="org:acme", at=T0)
    zone.add(
        ResourceRecord(f"{name}.acme.com", RRType.CNAME, resource.generated_fqdn), T0
    )
    azure.add_custom_domain(resource, f"{name}.acme.com", T0)
    return azure, zone, resource


def test_owner_can_issue_via_http01(internet):
    _, _, resource = _provisioned(internet)
    cert = internet.issue_certificate(resource, "shop.acme.com", T0)
    assert cert.is_single_san
    assert cert.matches("shop.acme.com")
    assert len(internet.ct_log) >= 1


def test_https_works_after_issuance(internet):
    _, _, resource = _provisioned(internet)
    internet.issue_certificate(resource, "shop.acme.com", T0)
    outcome = internet.client.fetch("shop.acme.com", scheme="https", at=T0)
    assert outcome.ok


def test_hijacker_can_issue_fraudulent_certificate(internet):
    """Section 5.6: whoever controls the content passes validation."""
    azure, zone, victim = _provisioned(internet)
    azure.release(victim, T1)
    hijack = azure.provision("azure-web-app", "shop", owner="attacker:g1", at=T2)
    azure.add_custom_domain(hijack, "shop.acme.com", T2)
    cert = internet.issue_certificate(hijack, "shop.acme.com", T2)
    assert cert.is_single_san
    # The fraudulent certificate is publicly visible in CT.
    assert internet.ct_log.first_issuance_for("shop.acme.com") == T2


def test_issuance_fails_without_content_control(internet):
    _, _, resource = _provisioned(internet)
    ca = internet.cas["Let's Encrypt"]
    with pytest.raises(IssuanceError):
        ca.issue(["unrelated.acme.com"], lambda host, path, body: False, T0)


def test_caa_blocks_unauthorized_ca(internet):
    _, zone, resource = _provisioned(internet)
    zone.add(ResourceRecord("acme.com", RRType.CAA, caa_rdata("issue", "digicert.com")), T0)
    with pytest.raises(IssuanceError) as error:
        internet.issue_certificate(resource, "shop.acme.com", T0, ca_name="Let's Encrypt")
    assert "CAA" in str(error.value)


def test_caa_does_not_block_listed_free_ca(internet):
    """Section 5.6.2: CAA allowing a free CA stops nothing."""
    _, zone, resource = _provisioned(internet)
    zone.add(
        ResourceRecord("acme.com", RRType.CAA, caa_rdata("issue", "letsencrypt.org")), T0
    )
    cert = internet.issue_certificate(resource, "shop.acme.com", T0)
    assert cert.issuer == "Let's Encrypt"


def test_wildcard_refused_over_http01(internet):
    _, _, resource = _provisioned(internet)
    ca = internet.cas["Let's Encrypt"]
    provider = internet.catalog.provider("Azure")
    with pytest.raises(IssuanceError):
        ca.issue(["*.acme.com"], provider.challenge_installer(resource), T0)


def test_dns_validated_multi_san_requires_zone_control(internet):
    internet.zones.create_zone("acme.com")
    internet.whois.register("acme.com", owner="Acme Corp", registrar="GoDaddy", created_at=T0)
    ca = internet.cas["DigiCert"]
    cert = ca.issue_dns_validated(
        ["*.acme.com", "acme.com"], "Acme Corp", internet.whois.owner_of, T0
    )
    assert cert.is_wildcard
    with pytest.raises(IssuanceError):
        ca.issue_dns_validated(
            ["*.acme.com"], "Mallory", internet.whois.owner_of, T0
        )


def test_ct_monitoring_countermeasure(internet):
    """Section 5.6.3: a CT monitor alerts on hijacker issuance."""
    alerts = []
    internet.ct_log.monitor("acme.com", alerts.append)
    azure, zone, victim = _provisioned(internet)
    azure.release(victim, T1)
    hijack = azure.provision("azure-web-app", "shop", owner="attacker:g1", at=T2)
    azure.add_custom_domain(hijack, "shop.acme.com", T2)
    internet.issue_certificate(hijack, "shop.acme.com", T2)
    hijack_alerts = [
        a for a in alerts if a.certificate.matches("shop.acme.com")
    ]
    assert hijack_alerts, "domain owner should have been alerted"
