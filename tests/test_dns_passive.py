"""Tests for the passive DNS corpus."""

from datetime import datetime

from repro.dns.passive_dns import PassiveDNS
from repro.dns.records import RRType, ResourceRecord

T0 = datetime(2020, 1, 6)
T1 = datetime(2020, 6, 1)


def _cname(name, target):
    return ResourceRecord(name, RRType.CNAME, target)


def test_observation_aggregates_first_last_and_count():
    pdns = PassiveDNS()
    record = _cname("a.example.com", "x.cloud.net")
    pdns.observe(record, T1)
    obs = pdns.observe(record, T0)
    assert obs.first_seen == T0
    assert obs.last_seen == T1
    assert obs.count == 2
    assert len(pdns) == 1


def test_observations_never_expire():
    """A purged record's observation history remains queryable."""
    pdns = PassiveDNS()
    pdns.observe(_cname("old.example.com", "gone.azurewebsites.net"), T0)
    # Years later the name is still in the corpus — the property both
    # researchers and attackers rely on.
    assert pdns.subdomains_of("example.com") == ["old.example.com"]


def test_subdomains_of_scopes_to_apex():
    pdns = PassiveDNS()
    pdns.observe(_cname("a.foo.com", "x.cloud.net"), T0)
    pdns.observe(_cname("b.bar.com", "y.cloud.net"), T0)
    assert pdns.subdomains_of("foo.com") == ["a.foo.com"]


def test_names_pointing_to():
    pdns = PassiveDNS()
    pdns.observe(_cname("a.foo.com", "shared.cloud.net"), T0)
    pdns.observe(_cname("b.bar.com", "shared.cloud.net"), T0)
    pdns.observe(_cname("c.baz.com", "other.cloud.net"), T0)
    assert pdns.names_pointing_to("shared.cloud.net") == ["a.foo.com", "b.bar.com"]


def test_cname_targets_filtered_by_suffix():
    pdns = PassiveDNS()
    pdns.observe(_cname("a.foo.com", "x.azurewebsites.net"), T0)
    pdns.observe(_cname("b.foo.com", "y.herokuapp.com"), T0)
    assert pdns.cname_targets("azurewebsites.net") == ["x.azurewebsites.net"]
    assert len(pdns.cname_targets()) == 2


def test_observations_for_name():
    pdns = PassiveDNS()
    pdns.observe(_cname("a.foo.com", "x.cloud.net"), T0)
    pdns.observe(ResourceRecord("a.foo.com", RRType.A, "1.1.1.1"), T0)
    assert len(pdns.observations_for("a.foo.com")) == 2
