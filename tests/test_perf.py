"""Tests for the ``repro perf`` regression gate.

Covers input classification (metrics exports, JSONL traces, Chrome
exports, bench results, and the malformed rejects), the threshold +
noise-floor comparison math, the ``--check`` deterministic-view diff,
and the CLI exit-code contract the CI job builds on: 0 pass, 1
regression/mismatch, 2 malformed input.
"""

import json

import pytest

from repro.cli import main
from repro.obs.perf import (
    DEFAULT_MIN_MS,
    EXIT_MALFORMED,
    EXIT_OK,
    EXIT_REGRESSION,
    PerfInputError,
    compare,
    compare_timings,
    load_export,
)


def _metrics_export(stage_wall_s=1.0, counters=None, weeks=None):
    return {
        "schema": "repro.metrics/1",
        "run": {"seed": 7},
        "weeks": weeks if weeks is not None else [
            {"week": 0, "sim": "2020-01-06T00:00:00", "deltas": {"c": 3}},
            {"week": 1, "deltas": {"c": 2}},
        ],
        "counters": counters if counters is not None else {"c": 5},
        "resources": {
            "process": {"cpu_s": 2.0, "peak_rss_kb": 1000},
            "stages": {
                "monitor-sweep": {
                    "calls": 2, "cpu_s": stage_wall_s, "wall_s": stage_wall_s,
                }
            },
            "shards": {},
        },
    }


def _write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc) if not isinstance(doc, str) else doc)
    return str(path)


# -- classification --------------------------------------------------------


def test_load_export_classifies_every_kind(tmp_path):
    metrics = _write(tmp_path, "m.json", _metrics_export())
    chrome = _write(tmp_path, "c.json", {"traceEvents": [], "displayTimeUnit": "ms"})
    bench = _write(tmp_path, "b.json", {"runs": [{"workers": 1, "wall_s": 1.0}]})
    trace = _write(
        tmp_path, "t.jsonl",
        '{"type": "span", "name": "s", "dur_ms": 2.0}\n'
        '{"type": "metrics", "name": "metrics"}\n',
    )
    assert load_export(metrics)[0] == "metrics"
    assert load_export(chrome)[0] == "chrome"
    assert load_export(bench)[0] == "bench"
    kind, events = load_export(trace)
    assert kind == "trace" and len(events) == 2


def test_load_export_rejects_malformed_inputs(tmp_path):
    with pytest.raises(PerfInputError, match="cannot read"):
        load_export(str(tmp_path / "absent.json"))
    with pytest.raises(PerfInputError, match="empty"):
        load_export(_write(tmp_path, "empty.json", ""))
    with pytest.raises(PerfInputError, match="unrecognised"):
        load_export(_write(tmp_path, "other.json", {"foo": 1}))
    with pytest.raises(PerfInputError, match="not JSON"):
        load_export(_write(tmp_path, "junk.txt", "just some text\n"))
    with pytest.raises(PerfInputError, match="not a trace event"):
        load_export(_write(tmp_path, "l.jsonl", '{"no_type": 1}\n{"x": 2}\n'))


# -- comparison math -------------------------------------------------------


def test_compare_timings_needs_both_ratio_and_absolute_growth():
    base = {"fast": 2.0, "slow": 1000.0, "gone": 5.0}
    cand = {"fast": 4.0, "slow": 1500.0, "new": 9.0}
    regressions = compare_timings(base, cand, threshold=1.2, min_ms=25.0)
    # "fast" doubled but grew 2ms — under the noise floor, not flagged.
    # "slow" grew 500ms at 1.5x — flagged.  One-sided series never are.
    assert [r["series"] for r in regressions] == ["slow"]
    assert regressions[0]["ratio"] == 1.5


def test_compare_timings_respects_the_threshold():
    base = {"s": 1000.0}
    assert compare_timings(base, {"s": 1150.0}) == []  # +15% < 1.20x
    assert compare_timings(base, {"s": 1300.0})  # +30% regresses
    assert DEFAULT_MIN_MS == 25.0


# -- end-to-end compare ----------------------------------------------------


def test_compare_passes_identical_metrics_exports(tmp_path):
    a = _write(tmp_path, "a.json", _metrics_export())
    b = _write(tmp_path, "b.json", _metrics_export())
    report = compare(a, b)
    assert report["exit_code"] == EXIT_OK
    assert report["regressions"] == []


def test_compare_flags_an_injected_20pct_regression(tmp_path):
    a = _write(tmp_path, "a.json", _metrics_export(stage_wall_s=1.0))
    b = _write(tmp_path, "b.json", _metrics_export(stage_wall_s=1.25))
    report = compare(a, b, threshold=1.20, min_ms=10.0)
    assert report["exit_code"] == EXIT_REGRESSION
    assert report["regressions"][0]["series"] == "stage.monitor-sweep"


def test_compare_rejects_mismatched_kinds(tmp_path):
    metrics = _write(tmp_path, "m.json", _metrics_export())
    bench = _write(tmp_path, "b.json", {"runs": []})
    with pytest.raises(PerfInputError, match="cannot compare"):
        compare(metrics, bench)


def test_check_mode_passes_equal_and_fails_divergent_views(tmp_path):
    a = _write(tmp_path, "a.json", _metrics_export())
    # Same deterministic content, wildly different timings: still OK.
    b = _write(tmp_path, "b.json", _metrics_export(stage_wall_s=99.0))
    assert compare(a, b, check=True)["exit_code"] == EXIT_OK
    # One counter off by one: determinism mismatch.
    c = _write(tmp_path, "c.json", _metrics_export(counters={"c": 6}))
    report = compare(a, c, check=True)
    assert report["exit_code"] == EXIT_REGRESSION
    assert any("counter c" in line for line in report["mismatches"])
    # Divergent week deltas are named by week.
    d = _write(
        tmp_path, "d.json",
        _metrics_export(weeks=[
            {"week": 0, "deltas": {"c": 4}}, {"week": 1, "deltas": {"c": 2}},
        ]),
    )
    report = compare(a, d, check=True)
    assert report["exit_code"] == EXIT_REGRESSION
    assert any("week 0" in m for m in report["mismatches"])


def test_check_mode_requires_metrics_exports(tmp_path):
    t = _write(tmp_path, "t.jsonl", '{"type": "span", "name": "s", "dur_ms": 1}\n')
    with pytest.raises(PerfInputError, match="--check needs metrics"):
        compare(t, t, check=True)


def test_compare_bench_results_by_configuration(tmp_path):
    base = {"runs": [
        {"workers": 1, "mode": "serial", "wall_s": 10.0},
        {"workers": 4, "mode": "fork", "wall_s": 3.0},
    ]}
    cand = json.loads(json.dumps(base))
    cand["runs"][1]["wall_s"] = 4.5  # 1.5x on the parallel config
    a = _write(tmp_path, "a.json", base)
    b = _write(tmp_path, "b.json", cand)
    report = compare(a, b, min_ms=10.0)
    assert report["exit_code"] == EXIT_REGRESSION
    assert report["regressions"][0]["series"] == "workers=4,mode=fork"


# -- CLI exit codes --------------------------------------------------------


def test_cli_perf_exit_codes(tmp_path, capsys):
    a = _write(tmp_path, "a.json", _metrics_export())
    b = _write(tmp_path, "b.json", _metrics_export())
    slow = _write(tmp_path, "slow.json", _metrics_export(stage_wall_s=2.0))
    bad = _write(tmp_path, "bad.json", "not json")
    assert main(["perf", a, b]) == 0
    assert main(["perf", a, b, "--check"]) == 0
    assert main(["perf", a, slow, "--min-ms", "10"]) == 1
    assert main(["perf", a, bad]) == 2
    err = capsys.readouterr().err
    assert "perf:" in err  # malformed inputs explain themselves


def test_cli_perf_check_catches_counter_drift(tmp_path, capsys):
    a = _write(tmp_path, "a.json", _metrics_export())
    c = _write(tmp_path, "c.json", _metrics_export(counters={"c": 7}))
    assert main(["perf", a, c, "--check"]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out and "counter c" in out
