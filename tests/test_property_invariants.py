"""Property-based tests on core data-structure invariants."""

import random
from datetime import datetime, timedelta

from hypothesis import given, settings, strategies as st

from repro.core.clustering import jaccard_distance
from repro.core.economics import simulate_lottery
from repro.core.monitoring import SnapshotFeatures, SnapshotStore
from repro.core.signatures import Signature
from repro.dns.records import RRType, ResourceRecord
from repro.dns.zone import Zone
from repro.net.addresses import IPv4Pool
from repro.web.cookies import Cookie, CookieJar

T0 = datetime(2020, 1, 6)

LABEL = st.text(alphabet="abcdefghij", min_size=1, max_size=6)
DOMAIN_SETS = st.sets(LABEL, max_size=8)


@given(DOMAIN_SETS, DOMAIN_SETS, DOMAIN_SETS)
def test_jaccard_distance_is_a_semimetric(a, b, c):
    """Symmetry, identity, boundedness of the clustering distance."""
    a = {f"{x}.com" for x in a}
    b = {f"{x}.com" for x in b}
    c = {f"{x}.com" for x in c}
    assert jaccard_distance(a, b) == jaccard_distance(b, a)
    assert 0.0 <= jaccard_distance(a, b) <= 1.0
    if a:
        assert jaccard_distance(a, a) == 0.0
    if a and b and not (a & b):
        assert jaccard_distance(a, b) == 1.0


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(LABEL, st.sampled_from(["A", "TXT"])), max_size=20),
       st.data())
def test_zone_add_remove_roundtrip(operations, data):
    """Adding then removing every record leaves an empty zone (modulo
    history, which only grows)."""
    zone = Zone("example.com")
    added = []
    for label, rtype_name in operations:
        record = ResourceRecord(
            f"{label}.example.com", RRType[rtype_name], f"value-{len(added)}"
        )
        try:
            zone.add(record, T0)
        except ValueError:
            continue  # duplicate draws are fine
        added.append(record)
    assert len(zone.all_records()) == len(added)
    for record in added:
        zone.remove(record, T0)
    assert zone.all_records() == []
    assert zone.names() == set()
    assert len(zone.history) == 2 * len(added)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_lottery_simulation_matches_pool_size_order(seed):
    """Winning a specific address out of N takes ~N tries, not ~1."""
    pool = IPv4Pool(["10.0.0.0/26"])  # 64 addresses
    rng = random.Random(seed)
    target = pool.allocate(rng)
    pool.release(target)
    attempts = simulate_lottery(pool, target, rng, max_attempts=5_000)
    assert 1 <= attempts <= 5_000
    # With 64 addresses the win virtually always lands well before the cap.
    assert attempts < 5_000


@given(st.booleans(), st.booleans(), st.sampled_from(["http", "https"]))
def test_cookie_flag_semantics_are_total(secure, http_only, scheme):
    """Every flag combination has well-defined send/JS visibility."""
    cookie = Cookie(name="c", value="v", domain="example.com",
                    secure=secure, http_only=http_only)
    sendable = cookie.sendable("sub.example.com", scheme)
    if secure and scheme == "http":
        assert not sendable
    else:
        assert sendable
    assert cookie.javascript_accessible() == (not http_only)
    jar = CookieJar()
    jar.set(cookie)
    js_visible = jar.javascript_visible("sub.example.com", scheme)
    assert (cookie in js_visible) == (sendable and not http_only)


def _features(fqdn, at, hash_):
    return SnapshotFeatures(
        fqdn=fqdn, at=at, dns_status="NOERROR", cname_chain=(), addresses=("1.1.1.1",),
        fetch_status="ok", http_status=200, html_hash=hash_,
    )


@settings(max_examples=30, deadline=None)
@given(st.lists(st.sampled_from(["h1", "h2", "h3"]), min_size=1, max_size=25))
def test_snapshot_store_state_compression(hashes):
    """State count equals the number of hash *transitions*, and
    observation counts always sum to the number of samples."""
    store = SnapshotStore()
    at = T0
    for hash_ in hashes:
        store.record(_features("a.example.com", at, hash_))
        at += timedelta(weeks=1)
    history = store.history("a.example.com")
    transitions = 1 + sum(1 for x, y in zip(hashes, hashes[1:]) if x != y)
    assert len(history) == transitions
    assert sum(state.observations for state in history) == len(hashes)
    # Windows are contiguous and ordered.
    for earlier, later in zip(history, history[1:]):
        assert earlier.last_seen < later.first_seen


@given(st.sets(st.sampled_from(["slot", "judi", "gacor", "bola", "agen"]),
               min_size=3, max_size=5),
       st.sets(st.sampled_from(["slot", "judi", "gacor", "bola", "agen",
                                "products", "careers"]), max_size=7))
def test_signature_matching_is_monotone_in_page_tokens(sig_keywords, page_tokens_set):
    """Adding tokens to a page can only turn a non-match into a match,
    never the reverse."""
    signature = Signature(
        signature_id="s", created_at=T0, keywords=frozenset(sig_keywords)
    )
    base = SnapshotFeatures(
        fqdn="x.example.com", at=T0, dns_status="NOERROR", cname_chain=(),
        addresses=("1.1.1.1",), fetch_status="ok", http_status=200,
        html_hash="h", keywords=frozenset(page_tokens_set),
    )
    richer = SnapshotFeatures(
        fqdn="x.example.com", at=T0, dns_status="NOERROR", cname_chain=(),
        addresses=("1.1.1.1",), fetch_status="ok", http_status=200,
        html_hash="h", keywords=frozenset(page_tokens_set | sig_keywords),
    )
    if signature.match(base) is not None:
        assert signature.match(richer) is not None
