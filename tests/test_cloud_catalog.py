"""Tests for multi-provider catalog assembly."""

from repro.cloud.specs import NamingPolicy


def test_catalog_has_all_providers(internet):
    catalog = internet.catalog
    for name in ("Azure", "AWS", "Heroku", "Pantheon", "Netlify",
                 "Google Cloud", "Cloudflare"):
        assert catalog.provider(name).name == name


def test_cloud_ip_union_covers_provider_pools(internet):
    catalog = internet.catalog
    for provider in catalog.providers.values():
        for edge in provider.edges:
            assert edge.ip in catalog.cloud_ips


def test_suffix_list_matches_specs(internet):
    assert "azurewebsites.net" in internet.catalog.suffixes
    assert "netlify.app" in internet.catalog.suffixes


def test_geoip_annotates_provider_space(internet):
    azure_edge_ip = internet.catalog.provider("Azure").edges[0].ip
    assert internet.catalog.geoip.organization_of(azure_edge_ip) == "Azure"


def test_find_service_owner(internet):
    assert internet.catalog.find_service_owner("heroku-app").name == "Heroku"


def test_some_edges_drop_icmp(internet):
    """edge_icmp_drop_rate=0.28 should leave a mix of edge behaviours."""
    edges = []
    for provider in internet.catalog.providers.values():
        edges.extend(provider.edges)
    behaviours = {edge.responds_to_icmp() for edge in edges}
    assert behaviours == {True, False}
