"""Tests for sitemap rendering and parsing."""

from datetime import datetime

from hypothesis import given, strategies as st

from repro.web.sitemap import Sitemap, parse_sitemap


def test_add_and_urls():
    sitemap = Sitemap()
    sitemap.add("http://x.com/a", lastmod=datetime(2020, 5, 1))
    sitemap.add("http://x.com/b")
    assert len(sitemap) == 2
    assert sitemap.urls() == ["http://x.com/a", "http://x.com/b"]


def test_render_parse_roundtrip():
    sitemap = Sitemap()
    sitemap.add("http://x.com/a", lastmod=datetime(2020, 5, 1))
    sitemap.add("http://x.com/b")
    parsed = parse_sitemap(sitemap.render())
    assert parsed.urls() == sitemap.urls()
    assert parsed.entries[0].lastmod == "2020-05-01"
    assert parsed.entries[1].lastmod is None


def test_parse_tolerates_garbage():
    assert parse_sitemap("<urlset><url>no loc</url></urlset>").urls() == []
    assert parse_sitemap("not xml").urls() == []


def test_size_grows_with_entries():
    """The 100 KB-jump signal relies on size scaling with bulk uploads."""
    small = Sitemap()
    big = Sitemap()
    for index in range(10):
        small.add(f"http://x.com/page-{index}")
    for index in range(2000):
        big.add(f"http://x.com/slot-gacor-{index}.html")
    assert big.size_bytes() > small.size_bytes() * 50
    assert big.size_bytes() > 100 * 1024


@given(st.lists(st.integers(min_value=0, max_value=10**6), max_size=50))
def test_roundtrip_property(page_ids):
    sitemap = Sitemap()
    for page_id in page_ids:
        sitemap.add(f"http://example.com/p{page_id}")
    parsed = parse_sitemap(sitemap.render())
    assert parsed.urls() == sitemap.urls()
