"""Tests for the observability layer (`repro.obs`).

Covers the registry merge algebra (counters sum, gauges max,
histograms add bucket-wise — associatively and commutatively), the
tracer's sampling and determinism contracts, the disabled-mode no-op
path, shard registry parity across worker counts, and regressions for
the three bugfixes that rode along: the SweepReport wall/cpu merge
(in test_parallel), the IssuanceError-only exception handling in the
world builders, and the `duration_days` wall-clock footgun.
"""

import pickle
from datetime import datetime, timezone

import pytest

from repro.core.detection import AbuseEpisode
from repro.core.duration import require_sim_now
from repro.core.scenario import ScenarioConfig, build_scenario, run_scenario
from repro.obs import (
    NULL_METRICS,
    NULL_SPAN,
    NULL_TRACER,
    OBS,
    BufferTracer,
    HistogramData,
    MetricsRegistry,
    Tracer,
    metric_key,
    sim_projection,
)
from repro.parallel.executor import ProcessExecutor
from repro.pki.ca import IssuanceError
from repro.sim.clock import SimClock
from repro.sim.rng import RngStreams
from repro.world.internet import Internet
from repro.world.population import PopulationBuilder, PopulationConfig

T0 = datetime(2020, 1, 6)


# -- metric keys -----------------------------------------------------------


def test_metric_key_is_canonical_under_kwarg_order():
    assert metric_key("http.retries", {"edge": "1.2.3.4"}) == "http.retries{edge=1.2.3.4}"
    assert (
        metric_key("x", {"b": 2, "a": 1})
        == metric_key("x", {"a": 1, "b": 2})
        == "x{a=1,b=2}"
    )
    assert metric_key("plain", {}) == "plain"


def test_labelled_series_are_order_independent_at_the_call_site():
    registry = MetricsRegistry()
    registry.inc("x", a=1, b=2)
    registry.inc("x", b=2, a=1)
    assert registry.counter("x", a=1, b=2) == 2


# -- merge algebra ---------------------------------------------------------


def _registry(n):
    registry = MetricsRegistry()
    registry.inc("hits", n)
    registry.inc("misses", 1)
    registry.inc("retries", n, edge=f"10.0.0.{n}")
    registry.gauge("depth.max", float(n))
    for value in range(1, n + 2):
        registry.observe("chain_depth", float(value))
    return registry


def test_registry_merge_is_associative_and_commutative():
    a, b, c = _registry(1), _registry(2), _registry(3)
    left = a.merge(b).merge(c)
    right = a.merge(b.merge(c))
    flipped = c.merge(a.merge(b))
    assert left == right == flipped
    assert left.counter("hits") == 6
    assert left.counter("misses") == 3
    assert left.counter("retries", edge="10.0.0.2") == 2
    assert left.gauges()["depth.max"] == 3.0  # max, not sum
    assert left.histogram("chain_depth").count == 2 + 3 + 4
    # merge() leaves its operands untouched.
    assert a.counter("hits") == 1


def test_registry_merge_matches_single_registry_recording():
    # Recording split across shards then merged == recording serially.
    serial = MetricsRegistry()
    for n in (1, 2, 3):
        serial.merge_from(_registry(n))
    one = _registry(1).merge(_registry(2)).merge(_registry(3))
    assert serial == one


def test_histogram_observe_and_merge():
    a, b = HistogramData(), HistogramData()
    a.observe(1.0)
    a.observe(5.0)
    b.observe(100.0)  # overflow bucket
    a.merge_from(b)
    assert a.count == 3
    assert a.total == 106.0
    assert (a.min, a.max) == (1.0, 100.0)
    assert a.counts[0] == 1 and a.counts[-1] == 1
    assert a.mean == pytest.approx(106.0 / 3)
    with pytest.raises(ValueError):
        a.merge_from(HistogramData(bounds=(1.0, 2.0)))


def test_registry_pickles_for_the_shard_pipe():
    registry = _registry(2)
    clone = pickle.loads(pickle.dumps(registry))
    assert clone == registry
    clone.inc("hits")
    assert clone.counter("hits") == registry.counter("hits") + 1


def test_hit_rate():
    registry = MetricsRegistry()
    assert registry.hit_rate("h", "m") == 0.0
    registry.inc("h", 3)
    registry.inc("m", 1)
    assert registry.hit_rate("h", "m") == 0.75


# -- disabled-mode no-op path ---------------------------------------------


def test_obs_is_disabled_by_default_and_costs_nothing():
    assert OBS.enabled is False
    assert OBS.metrics is NULL_METRICS
    assert OBS.tracer is NULL_TRACER
    # The null span is a shared singleton: nothing allocates per span.
    span = OBS.tracer.span("anything", sim=T0, week=3, attr="x")
    assert span is NULL_SPAN
    with span:
        pass
    # Null metrics swallow every recording and stay empty.
    NULL_METRICS.inc("x", 5, edge="e")
    NULL_METRICS.gauge("g", 1.0)
    NULL_METRICS.observe("h", 2.0)
    NULL_METRICS.merge_from(MetricsRegistry())
    assert NULL_METRICS.is_empty()
    assert NULL_METRICS.counters() == {}
    assert NULL_METRICS.rows() == []


def test_configure_and_reset_flip_the_enabled_flag():
    registry = MetricsRegistry()
    try:
        OBS.configure(metrics=registry)
        assert OBS.enabled is True
        assert OBS.metrics is registry
        assert OBS.tracer is NULL_TRACER  # None leaves the slot alone
    finally:
        OBS.reset()
    assert OBS.enabled is False and OBS.metrics is NULL_METRICS


# -- tracer ----------------------------------------------------------------


def test_tracer_samples_every_nth_span_per_name_but_aggregates_all():
    tracer = BufferTracer(sample_every=3)
    for _ in range(7):
        with tracer.span("sweep.shard", sim=T0):
            pass
    with tracer.span("other", sim=T0):
        pass
    written = [e["name"] for e in tracer.events if e["type"] == "span"]
    # Spans 1, 4 and 7 of "sweep.shard" survive; "other" starts its own
    # per-name counter so its first span is kept too.
    assert written == ["sweep.shard", "sweep.shard", "sweep.shard", "other"]
    assert tracer.aggregates()["sweep.shard"]["count"] == 7
    assert tracer.aggregates()["other"]["count"] == 1


def test_span_records_exception_and_reraises():
    tracer = BufferTracer()
    with pytest.raises(KeyError):
        with tracer.span("boom", sim=T0):
            raise KeyError("x")
    event = tracer.events[-1]
    assert event["type"] == "span" and event["error"] == "KeyError"


def test_tracer_rejects_bad_sampling():
    with pytest.raises(ValueError):
        Tracer(sample_every=0)


def test_trace_file_round_trips(tmp_path):
    from repro.obs import load_events

    path = tmp_path / "t.jsonl"
    tracer = Tracer(path=str(path))
    with tracer.span("s", sim=T0, week=0, shard=1):
        pass
    registry = MetricsRegistry()
    registry.inc("c", 2)
    tracer.emit_metrics(registry, sim=T0)
    tracer.close()
    events = load_events(str(path))
    assert [e["type"] for e in events] == ["span", "metrics"]
    assert events[0]["shard"] == 1 and "dur_ms" in events[0]
    assert events[1]["counters"] == {"c": 2}


def _traced_run(workers=1, weeks=4):
    config = ScenarioConfig.tiny()
    config.weeks = weeks
    config.workers = workers
    registry = MetricsRegistry()
    tracer = BufferTracer()
    OBS.configure(metrics=registry, tracer=tracer)
    try:
        result = run_scenario(config)
    finally:
        OBS.reset()
    return result, registry, tracer.events


def test_same_seed_traces_have_identical_sim_projections():
    _, reg_a, events_a = _traced_run()
    _, reg_b, events_b = _traced_run()
    assert events_a and sim_projection(events_a) == sim_projection(events_b)
    # The wall fields are present in the raw events — only the
    # projection strips them.
    assert all("wall" in e for e in events_a)
    assert all("dur_ms" in e for e in events_a if e["type"] == "span")
    assert reg_a == reg_b
    assert reg_a.counter("monitor.samples") > 0
    assert reg_a.counter("resolver.queries") > 0


# -- shard registry parity -------------------------------------------------

#: Counter prefixes whose *split* (not total) depends on shard
#: topology: shard-count bookkeeping, and the content-addressed
#: extraction cache that forked children duplicate before the parent
#: merge.
TOPOLOGY_PREFIXES = ("sweep.shards.", "extraction.")


def _forked_run(workers, weeks=4):
    config = ScenarioConfig.tiny()
    config.weeks = weeks
    config.workers = workers
    engine = build_scenario(config)
    executor = engine.payload.executor
    if isinstance(executor, ProcessExecutor):
        executor.use_fork = True  # pin fork mode on single-CPU runners
    registry = MetricsRegistry()
    OBS.configure(metrics=registry, tracer=BufferTracer())
    try:
        engine.run()
    finally:
        OBS.reset()
    return registry


def _invariant_counters(registry):
    return {
        key: value
        for key, value in registry.counters().items()
        if not key.startswith(TOPOLOGY_PREFIXES)
    }


def test_shard_registries_merge_to_the_same_totals_across_worker_counts():
    two = _forked_run(2)
    four = _forked_run(4)
    assert _invariant_counters(two) == _invariant_counters(four)
    # The extraction-cache split varies with shard count, but the
    # total lookups must not.
    for series in ("extraction.html", "extraction.sitemap"):
        total_two = two.counter(f"{series}.hits") + two.counter(f"{series}.misses")
        total_four = four.counter(f"{series}.hits") + four.counter(f"{series}.misses")
        assert total_two == total_four


def test_forked_registry_matches_serial_on_shared_series():
    serial_reg = _traced_run(workers=1)[1]
    forked = _forked_run(2)
    # The serial baseline sweeps through WeeklyMonitor.sample, not the
    # fused shard path (which skips redundant DNS work), so only series
    # both paths record identically compare: sample totals and the
    # detector, which runs in the parent either way.
    for series in ("monitor.samples", "detector.signature_matches",
                   "detector.signatures_extracted"):
        assert serial_reg.counter(series) == forked.counter(series), series


# -- bugfix regressions: exception handling in the world builders ----------


def _tiny_population_config():
    return PopulationConfig(
        n_enterprises=6, n_universities=2, n_government=2, n_popular=4,
        certificate_rate=1.0, managed_cert_rate=1.0,
    )


def test_issuance_refusals_are_counted_not_swallowed(monkeypatch):
    def refuse(*args, **kwargs):
        raise IssuanceError("CAA forbids this CA")

    monkeypatch.setattr(
        "repro.pki.ca.CertificateAuthority.issue_dns_validated", refuse
    )
    monkeypatch.setattr(Internet, "issue_certificate", refuse)
    internet = Internet(RngStreams(7), SimClock())
    registry = MetricsRegistry()
    OBS.configure(metrics=registry)
    try:
        organizations = PopulationBuilder(internet).build(
            _tiny_population_config(), internet.clock.now
        )
    finally:
        OBS.reset()
    assert organizations  # the build survives a refusing CA
    assert not any(org.managed_cert_sans for org in organizations)
    refused = registry.counters("pki.issuance_refused")
    assert sum(refused.values()) > 0
    assert any("path=asset" in key for key in refused)
    assert any("path=managed" in key for key in refused)


def test_non_issuance_bugs_propagate_from_population_build(monkeypatch):
    # The old blanket `except Exception: pass` hid real bugs.  Use a
    # non-RuntimeError: IssuanceError subclasses RuntimeError, so a
    # RuntimeError probe could not tell the handlers apart.
    def explode(*args, **kwargs):
        raise ZeroDivisionError("real bug")

    monkeypatch.setattr(Internet, "issue_certificate", explode)
    internet = Internet(RngStreams(7), SimClock())
    with pytest.raises(ZeroDivisionError):
        PopulationBuilder(internet).build(
            _tiny_population_config(), internet.clock.now
        )


# -- bugfix regressions: duration_days wall-clock footgun ------------------


def test_open_episode_requires_an_explicit_sim_clock_now():
    episode = AbuseEpisode(started_at=T0, last_matched=T0)
    with pytest.raises(ValueError, match="pass now="):
        episode.duration_days()
    assert episode.duration_days(now=datetime(2020, 1, 20)) == 14.0


def test_duration_days_rejects_tz_aware_wall_clock():
    episode = AbuseEpisode(started_at=T0, last_matched=T0)
    with pytest.raises(ValueError, match="wall-clock"):
        episode.duration_days(now=datetime.now(timezone.utc))


def test_closed_episode_needs_no_now():
    episode = AbuseEpisode(
        started_at=T0, last_matched=T0, ended_at=datetime(2020, 1, 13)
    )
    assert episode.duration_days() == 7.0


def test_require_sim_now_validation():
    with pytest.raises(ValueError, match="now is required"):
        require_sim_now(None)
    with pytest.raises(ValueError, match="wall-clock"):
        require_sim_now(datetime.now(timezone.utc))
    assert require_sim_now(T0) is T0


def test_hijack_record_duration_validates_now():
    from repro.world.ground_truth import HijackRecord

    record = HijackRecord.__new__(HijackRecord)
    record.taken_over_at = T0
    record.remediated_at = None
    with pytest.raises(ValueError, match="still active"):
        record.duration_days()
    with pytest.raises(ValueError, match="wall-clock"):
        record.duration_days(now=datetime.now(timezone.utc))
    assert record.duration_days(now=datetime(2020, 1, 13)) == 7.0
