"""Tests for attacker-side dangling-record reconnaissance."""

from datetime import datetime, timedelta

import pytest

from repro.attacker.scanner import DanglingScanner
from repro.dns.records import RRType, ResourceRecord

T0 = datetime(2020, 1, 6)
T1 = datetime(2020, 3, 2)


def _setup_victim(internet, org="acme.com", sub="shop", service="azure-web-app"):
    provider_name = {"azure-web-app": "Azure"}[service]
    provider = internet.catalog.provider(provider_name)
    zone = internet.zones.create_zone(org)
    internet.whois.register(org, owner="Acme", registrar="GoDaddy",
                            created_at=T0 - timedelta(days=3650))
    resource = provider.provision(service, f"acme-{sub}", owner="org:acme", at=T0)
    fqdn = f"{sub}.{org}"
    zone.add(ResourceRecord(fqdn, RRType.CNAME, resource.generated_fqdn), T0)
    provider.add_custom_domain(resource, fqdn, T0)
    # Warm passive DNS the way real resolution traffic would.
    internet.resolver.resolve_a_with_chain(fqdn, at=T0)
    return provider, resource, fqdn


def test_no_candidates_while_resource_lives(internet):
    _setup_victim(internet)
    scanner = DanglingScanner(internet)
    assert scanner.find_candidates(T0) == []


def test_candidate_appears_after_release(internet):
    provider, resource, fqdn = _setup_victim(internet)
    provider.release(resource, T1)
    candidates = DanglingScanner(internet).find_candidates(T1)
    assert len(candidates) == 1
    candidate = candidates[0]
    assert candidate.generated_fqdn == resource.generated_fqdn
    assert candidate.victim_fqdns == [fqdn]
    assert candidate.service_key == "azure-web-app"
    assert candidate.reputation > 1.0


def test_candidate_disappears_after_purge(internet):
    provider, resource, fqdn = _setup_victim(internet)
    provider.release(resource, T1)
    internet.zones.get_zone("acme.com").remove_all(fqdn, RRType.CNAME, T1)
    assert DanglingScanner(internet).find_candidates(T1) == []


def test_random_name_targets_are_skipped(internet):
    gcp = internet.catalog.provider("Google Cloud")
    zone = internet.zones.create_zone("acme.com")
    internet.whois.register("acme.com", owner="A", registrar="R", created_at=T0)
    resource = gcp.provision("gcp-appspot", "x", owner="org:acme", at=T0)
    zone.add(ResourceRecord("app.acme.com", RRType.CNAME, resource.generated_fqdn), T0)
    internet.resolver.resolve_a_with_chain("app.acme.com", at=T0)
    gcp.release(resource, T1)
    # The name dangles, but it cannot be deterministically re-registered.
    assert DanglingScanner(internet).find_candidates(T1) == []


def test_ct_only_victims_are_discovered(internet):
    """A victim absent from passive DNS is still found via the
    hostname leaked by its certificate in CT (Section 1's second
    recon channel)."""
    provider = internet.catalog.provider("Azure")
    zone = internet.zones.create_zone("quiet.com")
    internet.whois.register("quiet.com", owner="Quiet", registrar="R",
                            created_at=T0 - timedelta(days=2000))
    resource = provider.provision("azure-web-app", "quiet-shop", owner="org:quiet", at=T0)
    fqdn = "shop.quiet.com"
    zone.add(ResourceRecord(fqdn, RRType.CNAME, resource.generated_fqdn), T0)
    # (No custom-domain verification, no browsing: nothing resolves the
    # name with a timestamp, so passive DNS stays blind to it.)
    # The owner gets a DNS-validated certificate — the hostname lands
    # in CT without any HTTP fetch having populated passive DNS.
    internet.cas["DigiCert"].issue_dns_validated(
        [fqdn], "Quiet", internet.whois.owner_of, T0
    )
    # Note: no resolution with a timestamp -> passive DNS never saw it.
    assert internet.passive_dns.names_pointing_to(resource.generated_fqdn) == []
    provider.release(resource, T1)
    candidates = DanglingScanner(internet).find_candidates(T1)
    assert any(fqdn in c.victim_fqdns for c in candidates)


def test_dns_zone_resources_are_never_candidates(internet):
    """Hosted-DNS (stale NS) takeovers are a lottery — attackers skip
    them, and so does the scanner (Figure 13, purple)."""
    azure = internet.catalog.provider("Azure")
    resource = azure.provision("azure-dns-zone", "acme-zone", owner="org:acme", at=T0)
    assert resource.nameservers  # randomly assigned NS set
    azure.release(resource, T1)
    assert DanglingScanner(internet).find_candidates(T1) == []


def test_candidates_ranked_by_reputation(internet):
    provider_a, resource_a, _ = _setup_victim(internet, org="young.com", sub="a")
    provider_b, resource_b, _ = _setup_victim(internet, org="old.com", sub="b")
    # Make young.com actually young.
    internet.whois._records["young.com"] = internet.whois._records["young.com"].__class__(
        domain="young.com", owner="Y", registrar="R", created_at=T0 - timedelta(days=40)
    )
    provider_a.release(resource_a, T1)
    provider_b.release(resource_b, T1)
    candidates = DanglingScanner(internet).find_candidates(T1)
    assert [c.victim_fqdns[0] for c in candidates] == ["b.old.com", "a.young.com"]
