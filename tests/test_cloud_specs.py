"""Tests for the cloud service catalog and generated-domain parsing."""

import pytest

from repro.cloud.specs import (
    DEFAULT_SERVICE_SPECS,
    NamingPolicy,
    cloud_suffixes,
    parse_generated_fqdn,
    spec_by_key,
)


def test_spec_lookup():
    spec = spec_by_key("azure-web-app")
    assert spec.provider == "Azure"
    assert spec.naming == NamingPolicy.FREETEXT
    with pytest.raises(KeyError):
        spec_by_key("nope")


def test_generated_fqdn_simple():
    spec = spec_by_key("azure-web-app")
    assert spec.generated_fqdn("example") == "example.azurewebsites.net"


def test_generated_fqdn_with_region():
    spec = spec_by_key("aws-s3-static")
    fqdn = spec.generated_fqdn("bucket1", "eu-west-1")
    assert fqdn == "bucket1.s3-website.eu-west-1.amazonaws.com"
    with pytest.raises(ValueError):
        spec.generated_fqdn("bucket1")  # region required
    with pytest.raises(ValueError):
        spec.generated_fqdn("bucket1", "mars-central-1")


def test_generated_fqdn_without_template():
    with pytest.raises(ValueError):
        spec_by_key("aws-ec2-ip").generated_fqdn("x")


def test_cloud_suffixes_cover_every_templated_service():
    suffixes = cloud_suffixes()
    assert "azurewebsites.net" in suffixes
    assert "amazonaws.com" in suffixes
    assert "herokuapp.com" in suffixes
    assert len(suffixes) == len(set(suffixes))


def test_parse_generated_fqdn_roundtrip():
    for spec in DEFAULT_SERVICE_SPECS:
        if not spec.suffix_template:
            continue
        region = spec.regions[0] if spec.regions else None
        fqdn = spec.generated_fqdn("myres-01", region)
        parsed = parse_generated_fqdn(fqdn)
        assert parsed is not None, fqdn
        assert parsed.spec.key == spec.key
        assert parsed.name == "myres-01"
        assert parsed.region == region


def test_parse_generated_fqdn_rejects_unknown():
    assert parse_generated_fqdn("foo.example.com") is None
    assert parse_generated_fqdn("a.b.azurewebsites.net") is None


def test_twelve_plus_services_across_paper_providers():
    providers = {spec.provider for spec in DEFAULT_SERVICE_SPECS}
    assert {"Azure", "AWS", "Heroku", "Pantheon", "Netlify",
            "Google Cloud", "Cloudflare"} <= providers
    assert len(DEFAULT_SERVICE_SPECS) >= 12
