"""Tests for the event log."""

from datetime import datetime

from repro.sim.events import EventLog


def _at(day: int) -> datetime:
    return datetime(2020, 1, day)


def test_record_and_len():
    log = EventLog()
    log.record(_at(1), "cloud.release", "a.example.com", provider="Azure")
    assert len(log) == 1
    event = list(log)[0]
    assert event.kind == "cloud.release"
    assert event.data["provider"] == "Azure"


def test_query_by_kind_prefix():
    log = EventLog()
    log.record(_at(1), "cloud.release", "x")
    log.record(_at(2), "cloud.provision", "y")
    log.record(_at(3), "attacker.takeover", "z")
    assert len(log.query(kind="cloud")) == 2
    assert len(log.query(kind="cloud.release")) == 1
    # Prefix match is per dotted component, not per substring.
    assert log.query(kind="cloud.rel") == []


def test_query_by_subject_and_time():
    log = EventLog()
    log.record(_at(1), "k", "a")
    log.record(_at(5), "k", "a")
    log.record(_at(9), "k", "b")
    assert len(log.query(subject="a")) == 2
    assert len(log.query(since=_at(4))) == 2
    assert len(log.query(until=_at(4))) == 1
    assert len(log.query(subject="a", since=_at(2), until=_at(6))) == 1


def test_query_with_predicate():
    log = EventLog()
    log.record(_at(1), "k", "a", size=10)
    log.record(_at(2), "k", "b", size=99)
    big = log.query(predicate=lambda e: e.data.get("size", 0) > 50)
    assert [e.subject for e in big] == ["b"]


def test_first_and_last():
    log = EventLog()
    assert log.first() is None
    log.record(_at(1), "k", "a")
    log.record(_at(2), "k", "b")
    assert log.first().subject == "a"
    assert log.last().subject == "b"


def test_counts_by_kind():
    log = EventLog()
    log.record(_at(1), "x", "s")
    log.record(_at(1), "x", "s")
    log.record(_at(1), "y", "s")
    assert log.counts_by_kind() == {"x": 2, "y": 1}
