"""Tests for zone master-file rendering/parsing."""

from datetime import datetime

import pytest

from repro.dns.records import RRType, ResourceRecord, caa_rdata
from repro.dns.zone import Zone
from repro.dns.zonefile import ZoneFileError, parse_zone_text, render_zone

T0 = datetime(2020, 1, 6)

SAMPLE = """\
$ORIGIN example.com.
; a comment line
example.com.      A     198.18.0.10
www.example.com.  CNAME shop.azurewebsites.net.
example.com.      CAA   0 issue "letsencrypt.org"
"""


def test_parse_sample():
    zone = parse_zone_text(SAMPLE, at=T0)
    assert zone.apex == "example.com"
    assert zone.lookup("example.com", RRType.A)[0].rdata == "198.18.0.10"
    cname = zone.lookup("www.example.com", RRType.CNAME)[0]
    assert cname.rdata == "shop.azurewebsites.net"
    assert zone.lookup("example.com", RRType.CAA)


def test_roundtrip():
    zone = Zone("example.com")
    zone.add(ResourceRecord("example.com", RRType.A, "198.18.0.10"), T0)
    zone.add(ResourceRecord("a.example.com", RRType.CNAME, "x.herokuapp.com"), T0)
    zone.add(ResourceRecord("example.com", RRType.CAA, caa_rdata("issue", "digicert.com")), T0)
    zone.add(ResourceRecord("example.com", RRType.TXT, "v=spf1 -all"), T0)
    restored = parse_zone_text(render_zone(zone), at=T0)
    original = {r.key for r in zone.all_records()}
    copied = {r.key for r in restored.all_records()}
    assert original == copied


def test_missing_origin_rejected():
    with pytest.raises(ZoneFileError):
        parse_zone_text("example.com. A 1.2.3.4")


def test_unknown_type_rejected():
    with pytest.raises(ZoneFileError):
        parse_zone_text("$ORIGIN example.com.\nexample.com. BOGUS x")


def test_malformed_line_rejected():
    with pytest.raises(ZoneFileError):
        parse_zone_text("$ORIGIN example.com.\njusttwo fields")


def test_record_outside_origin_rejected():
    with pytest.raises(ValueError):
        parse_zone_text("$ORIGIN example.com.\nother.net. A 1.2.3.4")
