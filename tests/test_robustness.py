"""Failure injection: the pipeline must survive a hostile web.

The measurement side cannot assume well-formed content, sane DNS, or
cooperative servers — attacker pages are arbitrary bytes and real zones
contain loops.  These tests feed the monitor/detector pathological
inputs and assert graceful degradation, never crashes.
"""

from datetime import datetime, timedelta

from repro.core.changes import detect_changes
from repro.core.detection import AbuseDetector
from repro.core.monitoring import WeeklyMonitor
from repro.dns.records import RRType, ResourceRecord
from repro.web.html import parse_html
from repro.web.site import CallableSite, StaticSite
from repro.web.http import HttpResponse

T0 = datetime(2020, 1, 6)
WEEK = timedelta(weeks=1)


def _route(internet, fqdn, site):
    azure = internet.catalog.provider("Azure")
    edge = azure.edges[0]
    edge.route(fqdn, site)
    zone = internet.zones.get_zone("acme.com") or internet.zones.create_zone("acme.com")
    zone.add(ResourceRecord(fqdn, RRType.A, edge.ip), T0)


def test_monitor_survives_malformed_html(internet):
    site = StaticSite()
    site.put_index("<html><<<<>>>< broken &&& <a href=>< title>nope</ti")
    _route(internet, "broken.acme.com", site)
    features = WeeklyMonitor(internet.client).sample("broken.acme.com", T0)
    assert features.reachable
    assert features.html_size > 0  # captured even though unparsable


def test_monitor_survives_binary_garbage():
    # The parser directly: NUL bytes, invalid nesting, huge attributes.
    garbage = "\x00\x01PK\x03\x04" + "<a " * 1000 + '"' * 500
    document = parse_html(garbage)
    assert document.links == [] or all(hasattr(l, "href") for l in document.links)


def test_monitor_survives_huge_page(internet):
    site = StaticSite()
    site.put_index("<html><body>" + ("<p>slot judi gacor</p>" * 20_000) + "</body></html>")
    _route(internet, "huge.acme.com", site)
    features = WeeklyMonitor(internet.client).sample("huge.acme.com", T0)
    assert features.reachable
    assert features.html_size > 400_000
    assert len(features.keywords) <= 12  # extraction stays bounded


def test_monitor_survives_cname_loop(internet):
    zone = internet.zones.create_zone("acme.com")
    zone.add(ResourceRecord("l1.acme.com", RRType.CNAME, "l2.acme.com"), T0)
    zone.add(ResourceRecord("l2.acme.com", RRType.CNAME, "l1.acme.com"), T0)
    features = WeeklyMonitor(internet.client).sample("l1.acme.com", T0)
    assert features.dns_status == "SERVFAIL"
    assert not features.reachable


def test_monitor_survives_server_5xx(internet):
    site = CallableSite(lambda request: HttpResponse(status=503, body="overloaded"))
    _route(internet, "flaky.acme.com", site)
    monitor = WeeklyMonitor(internet.client)
    features = monitor.sample("flaky.acme.com", T0)
    assert not features.reachable
    assert features.http_status == 503


def test_detector_survives_pathological_states(internet):
    """Garbage, loops and 5xx all flow through detection untouched."""
    garbage_site = StaticSite()
    garbage_site.put_index("<<<not html % \x00")
    _route(internet, "g.acme.com", garbage_site)
    zone = internet.zones.get_zone("acme.com")
    zone.add(ResourceRecord("loop.acme.com", RRType.CNAME, "loop.acme.com"), T0)
    monitor = WeeklyMonitor(internet.client)
    detector = AbuseDetector(monitor.store)
    at = T0
    for _ in range(3):
        changed = monitor.sweep(["g.acme.com", "loop.acme.com"], at)
        changes = [detect_changes(prev, cur) for cur, prev in changed]
        detector.process_week(changes, at)
        at += WEEK
    assert len(detector.dataset) == 0  # nothing flagged, nothing crashed


def test_sitemap_with_absurd_entries(internet):
    site = StaticSite()
    site.put_index("<html><body>x</body></html>")
    entry = "<url><loc>" + "x" * 5000 + "</loc></url>"
    site.put("/sitemap.xml", "<urlset>" + entry * 50, content_type="application/xml")
    _route(internet, "weird.acme.com", site)
    features = WeeklyMonitor(internet.client).sample("weird.acme.com", T0)
    assert features.sitemap_count == 50
    assert len(features.sitemap_sample) <= 10


def test_attacker_controlled_title_cannot_break_signatures(internet):
    """Hostile regex-looking content must not inject into matching."""
    site = StaticSite()
    site.put_index('<html><head><title>.*(\\d+)?[a-z]{1000,}</title></head>'
                   "<body><p>slot judi</p></body></html>")
    _route(internet, "regex.acme.com", site)
    features = WeeklyMonitor(internet.client).sample("regex.acme.com", T0)
    from repro.core.signatures import Signature, page_tokens

    signature = Signature(
        signature_id="s", created_at=T0, keywords=frozenset({"slot", "judi"})
    )
    assert signature.match(features) is not None
    assert all(isinstance(t, str) for t in page_tokens(features))


# -- worker-process robustness (fork plumbing) ------------------------------


def test_fork_failure_leaks_no_file_descriptors(monkeypatch):
    """Regression: a failing ``os.fork`` used to leak both pipe fds."""
    import os
    import pytest
    from repro.parallel.shard import fork_with_pipe

    def count_fds():
        return len(os.listdir("/proc/self/fd"))

    def no_fork():
        raise OSError("EAGAIN: simulated pid exhaustion")

    monkeypatch.setattr(os, "fork", no_fork)
    before = count_fds()
    for _ in range(5):
        with pytest.raises(OSError, match="EAGAIN"):
            fork_with_pipe()
    monkeypatch.undo()
    assert count_fds() == before


def test_worker_errors_carry_shard_identity(internet):
    """A dying worker's error names its shard index and slice bounds."""
    import pytest
    from repro.core.monitoring import WeeklyMonitor as Monitor
    from repro.parallel.shard import partition, run_shards_forked, shard_ident

    assert shard_ident(2, (10, 15)) == "shard 2 (names[10:15], 5 FQDNs)"

    monitor = Monitor(internet.client)
    # A non-string FQDN explodes inside the worker's sampling loop; the
    # surfaced error must say which shard (and which slice) died.
    fqdns = ["ok0.acme.com", "ok1.acme.com", None, "ok2.acme.com"]
    shards = partition(fqdns, 2)
    with pytest.raises(RuntimeError) as excinfo:
        run_shards_forked(monitor, shards, T0, None)
    assert "shard 1 (names[2:4], 2 FQDNs)" in str(excinfo.value)


def test_supervised_sweep_quarantines_unsampleable_name(internet):
    """The supervisor turns a poison input into a dead letter, not a crash."""
    from repro.core.monitoring import WeeklyMonitor as Monitor
    from repro.parallel import SupervisorConfig, run_shards_supervised
    from repro.parallel.shard import partition

    monitor = Monitor(internet.client)
    fqdns = ["ok0.acme.com", "ok1.acme.com", None, "ok2.acme.com"]
    shards = partition(fqdns, 2)
    outcome = run_shards_supervised(
        monitor, shards, T0, None, SupervisorConfig(), forked=True
    )
    assert [d.fqdn for d in outcome.quarantined] == [None]
    assert outcome.quarantined[0].shard_index == 1
    sampled = sum(len(r.sampled) + len(r.failures) for r in outcome.results)
    assert sampled == len(fqdns) - 1
