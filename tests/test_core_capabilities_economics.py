"""Tests for the Table 4 derivation and the attacker-economics model."""

from repro.cloud.specs import spec_by_key
from repro.core.capabilities_analysis import capability_table, cookie_theft_matrix
from repro.core.economics import cost_advantage, freetext_cost, ip_lottery_cost
from repro.net.addresses import IPv4Pool


def test_capability_table_matches_paper_rows():
    rows = {row.service_key: row for row in capability_table()}
    # Storage/CMS: content capabilities only.
    assert not rows["aws-s3-static"].has_https
    assert not rows["pantheon-site"].has_headers
    # Web apps / CDN / VMs: full server capabilities.
    for key in ("azure-web-app", "heroku-app", "aws-elastic-beanstalk",
                "azure-cdn", "azure-cloudapp-legacy", "netlify-app"):
        assert rows[key].has_https, key
        assert rows[key].has_headers, key


def test_capability_table_skips_dns_hosting():
    keys = {row.service_key for row in capability_table()}
    assert "azure-dns-zone" not in keys


def test_cookie_theft_matrix_shape():
    cells = cookie_theft_matrix()
    assert len(cells) == 8
    lookup = {(c.access, c.http_only, c.secure): c.stealable for c in cells}
    assert lookup[("static-content", False, False)]
    assert not lookup[("static-content", True, False)]
    assert not lookup[("static-content", False, True)]
    assert all(
        lookup[("full-webserver", h, s)] for h in (False, True) for s in (False, True)
    )


def test_freetext_vs_lottery_costs():
    pool = IPv4Pool(["52.0.0.0/16"])  # 65536 addresses
    freetext = freetext_cost()
    lottery = ip_lottery_cost(pool)
    assert freetext.expected_attempts == 1.0
    assert lottery.expected_attempts == 65536
    assert cost_advantage(freetext, lottery) == 65536
    assert lottery.expected_cost_usd > 100  # real money vs zero


def test_warm_reuse_discounts_but_does_not_eliminate_lottery():
    pool = IPv4Pool(["52.0.0.0/16"])
    warm = ip_lottery_cost(pool, warm_fraction=0.9)
    cold = ip_lottery_cost(pool)
    assert 1 < warm.expected_attempts < cold.expected_attempts
