"""Shared fixtures.

Scenario runs are expensive (seconds), so the full-pipeline results are
session-scoped: every test that needs a finished world shares the same
deterministic run.
"""

from __future__ import annotations

import pytest

from repro.core.scenario import ScenarioConfig, run_scenario
from repro.sim.clock import SimClock
from repro.sim.rng import RngStreams
from repro.world.internet import Internet


@pytest.fixture()
def internet() -> Internet:
    """A fresh, empty simulated Internet."""
    return Internet(RngStreams(7), SimClock())


@pytest.fixture(scope="session")
def tiny_result():
    """A finished ~30-week world shared across fast integration tests."""
    return run_scenario(ScenarioConfig.tiny())


@pytest.fixture(scope="session")
def small_result():
    """A finished ~52-week world for the heavier integration tests."""
    return run_scenario(ScenarioConfig.small())
