"""Tests for GeoIP / IP-WHOIS lookups."""

from repro.net.geoip import GeoIPDatabase


def test_lookup_most_specific():
    db = GeoIPDatabase()
    db.add("10.0.0.0/8", "US", "BigHoster")
    db.add("10.1.0.0/16", "FR", "OVH SAS")
    assert db.country_of("10.1.2.3") == "FR"
    assert db.organization_of("10.1.2.3") == "OVH SAS"
    assert db.country_of("10.2.0.1") == "US"


def test_lookup_miss_returns_none():
    db = GeoIPDatabase()
    db.add("10.0.0.0/8", "US", "BigHoster")
    assert db.lookup("192.168.1.1") is None
    assert db.country_of("not-an-ip") is None


def test_record_fields():
    db = GeoIPDatabase()
    record = db.add("51.38.0.0/16", "FR", "OVH SAS")
    assert record.cidr == "51.38.0.0/16"
    assert db.lookup("51.38.200.10") == record
    assert len(db) == 1
