"""Tests for the revision journal and churn-proportional sweeps.

Covers the `repro.sim.revisions` journal itself (bump/cursor/changed
semantics, event publication), the monitor's size-capped TouchLedger,
the journal wiring of every world-mutation path, and the tentpole
contract: incremental sweeps extend clean names' windows from ledger
proofs, pick up every kind of staleness (content mutation, resource
re-registration, new zone registration), and stay byte-identical to a
full sweep — serially and under a forked ProcessExecutor.
"""

from datetime import datetime, timedelta

import pytest

from repro.core.monitoring import TouchEntry, TouchLedger, WeeklyMonitor
from repro.dns.records import RRType, ResourceRecord
from repro.dns.zone import ZONE_SET_KEY
from repro.obs import OBS, MetricsRegistry
from repro.parallel import ProcessExecutor, SerialExecutor
from repro.sim.clock import SimClock
from repro.sim.events import EventLog
from repro.sim.revisions import RevisionJournal
from repro.sim.rng import RngStreams
from repro.world.internet import Internet

T0 = datetime(2020, 1, 6)
WEEK = timedelta(weeks=1)


# -- RevisionJournal -------------------------------------------------------


def test_bump_advances_monotonic_per_subject_counters():
    journal = RevisionJournal()
    assert journal.revision("dns", "a.example.com") == 0
    assert journal.bump("dns", "a.example.com") == 1
    assert journal.bump("dns", "a.example.com") == 2
    assert journal.bump("web", "a.example.com") == 1  # kinds never collide
    assert journal.revision("dns", "a.example.com") == 2
    assert journal.revision("web", "a.example.com") == 1


def test_changed_since_returns_only_the_suffix_of_the_change_log():
    journal = RevisionJournal()
    journal.bump("dns", "old.example.com")
    cursor = journal.cursor()
    assert journal.changed_since(cursor) == set()
    journal.bump("site", ("Azure", "web", "res-1"))
    journal.bump("dns", "new.example.com")
    journal.bump("dns", "new.example.com")
    assert journal.changed_since(cursor) == {
        ("site", ("Azure", "web", "res-1")),
        ("dns", "new.example.com"),
    }
    # A newer cursor forgets the older churn.
    assert journal.changed_since(journal.cursor()) == set()


def test_publish_records_the_event_and_bumps_the_kind_prefix():
    events = EventLog()
    journal = RevisionJournal(events)
    event = journal.publish(T0, "cloud.release", "app.azurewebsites.net", owner="org")
    assert event is not None and event.kind == "cloud.release"
    assert events.last(kind="cloud.release").subject == "app.azurewebsites.net"
    assert journal.revision("cloud", "app.azurewebsites.net") == 1


def test_revisions_for_reads_many_subjects_at_once():
    journal = RevisionJournal()
    journal.bump("dns", "a")
    journal.bump("dns", "a")
    journal.bump("net", "10.0.0.1")
    assert journal.revisions_for((("dns", "a"), ("net", "10.0.0.1"), ("web", "b"))) == (
        2, 1, 0,
    )


# -- TouchLedger -----------------------------------------------------------


def _entry(fqdn):
    return TouchEntry(fqdn=fqdn, deps=(("dns", fqdn),), state_key=("k",))


def test_touch_ledger_evicts_least_recently_refreshed_past_the_cap():
    ledger = TouchLedger(cap=2)
    ledger.put("a.example.com", _entry("a.example.com"))
    ledger.put("b.example.com", _entry("b.example.com"))
    ledger.put("a.example.com", _entry("a.example.com"))  # refresh: now newest
    ledger.put("c.example.com", _entry("c.example.com"))
    assert ledger.get("b.example.com") is None  # oldest put went first
    assert ledger.get("a.example.com") is not None
    assert ledger.get("c.example.com") is not None
    assert ledger.evictions == 1
    assert len(ledger) == 2


def test_touch_ledger_invalidate_and_cap_validation():
    ledger = TouchLedger(cap=4)
    ledger.put("a.example.com", _entry("a.example.com"))
    ledger.invalidate("a.example.com")
    ledger.invalidate("a.example.com")  # absent: no-op
    assert ledger.get("a.example.com") is None
    with pytest.raises(ValueError):
        TouchLedger(cap=0)


# -- publisher wiring ------------------------------------------------------


def _internet():
    return Internet(RngStreams(7), SimClock())


def _victim(internet, name="shop", body="<html><head><title>Portal</title></head><body>hi</body></html>"):
    azure = internet.catalog.provider("Azure")
    zone = internet.zones.get_zone("acme.com") or internet.zones.create_zone("acme.com")
    resource = azure.provision("azure-web-app", f"acme-{name}", owner="org:acme", at=T0)
    fqdn = f"{name}.acme.com"
    zone.add(ResourceRecord(fqdn, RRType.CNAME, resource.generated_fqdn), T0)
    azure.add_custom_domain(resource, fqdn, T0)
    resource.site.put_index(body)
    return azure, resource, fqdn


def test_zone_mutations_publish_per_name_dns_revisions():
    internet = _internet()
    zone = internet.zones.create_zone("acme.com")
    record = ResourceRecord("www.acme.com", RRType.A, "10.0.0.1")
    zone.add(record, T0)
    assert internet.revisions.revision("dns", "www.acme.com") == 1
    assert zone.name_version("www.acme.com") == 1
    zone.remove(record, T0 + WEEK)
    assert internet.revisions.revision("dns", "www.acme.com") == 2
    # Registering any zone bumps the global zone-set subject.
    assert ("dns", ZONE_SET_KEY) in internet.revisions.changed_since(0)


def test_provider_lifecycle_publishes_cloud_site_web_and_net_revisions():
    internet = _internet()
    journal = internet.revisions
    azure, resource, fqdn = _victim(internet)
    gen = resource.generated_fqdn
    assert journal.revision("cloud", gen) >= 1          # provision
    assert journal.revision("cloud", fqdn) >= 1         # custom domain
    assert journal.revision("web", gen) >= 1            # edge route
    assert journal.revision("web", fqdn) >= 1
    site_key = resource.site.journal_key
    assert site_key == ("Azure", "azure-web-app", "acme-shop")
    assert journal.revision("site", site_key) >= 1      # put_index
    cursor = journal.cursor()
    azure.release(resource, T0 + WEEK)
    changed = journal.changed_since(cursor)
    assert ("cloud", gen) in changed
    assert ("web", fqdn) in changed                     # custom route torn down
    assert ("dns", gen) in changed                      # provider record purged


def test_network_bind_unbind_publish_net_revisions():
    internet = _internet()
    cursor = internet.revisions.cursor()
    aws = internet.catalog.provider("AWS")
    resource = aws.provision("aws-ec2-ip", "box", owner="org:acme", at=T0)
    assert ("net", resource.ip) in internet.revisions.changed_since(cursor)
    aws.release(resource, T0 + WEEK)
    assert internet.revisions.revision("net", resource.ip) == 2


# -- incremental sweep contract --------------------------------------------


def _incremental_monitor(internet):
    return WeeklyMonitor(
        internet.client, journal=internet.revisions, incremental=True
    )


def _run_weeks(internet, monitor, executor, fqdns, schedule, weeks):
    """Sweep ``weeks`` times, applying ``schedule[week]`` mutations first."""
    reports = []
    at = T0
    for week in range(weeks):
        mutate = schedule.get(week)
        if mutate is not None:
            mutate(at)
        reports.append(executor.sweep(monitor, fqdns, at))
        at += WEEK
    histories = {
        fqdn: [
            (s.features, s.first_seen, s.last_seen, s.observations)
            for s in monitor.store.history(fqdn)
        ]
        for fqdn in fqdns
    }
    return reports, histories


def _executors():
    # "serially" = one inline shard; "parallel" = >= 4 forked workers.
    return [
        pytest.param(dict(workers=1, use_fork=False), id="serial"),
        pytest.param(dict(workers=4, use_fork=True), id="forked-4"),
    ]


def _parity_case(executor_kwargs, schedule_builder, weeks=6):
    """Run the same mutation schedule full vs incremental; assert equal."""
    baseline_net = _internet()
    _, baseline_resource, fqdn = _victim(baseline_net)
    incremental_net = _internet()
    _, incremental_resource, fqdn2 = _victim(incremental_net)
    assert fqdn == fqdn2

    base_reports, base_hist = _run_weeks(
        baseline_net,
        WeeklyMonitor(baseline_net.client),
        SerialExecutor(),
        [fqdn],
        schedule_builder(baseline_net, baseline_resource),
        weeks,
    )
    inc_reports, inc_hist = _run_weeks(
        incremental_net,
        _incremental_monitor(incremental_net),
        ProcessExecutor(**executor_kwargs),
        [fqdn],
        schedule_builder(incremental_net, incremental_resource),
        weeks,
    )
    assert inc_hist == base_hist
    for inc, base in zip(inc_reports, base_reports):
        assert [(c[0], c[1]) for c in inc.changed] == [
            (c[0], c[1]) for c in base.changed
        ]
        assert inc.samples_taken == base.samples_taken
    return inc_hist[fqdn]


@pytest.mark.parametrize("executor_kwargs", _executors())
def test_site_content_mutation_dirties_the_next_sweep(executor_kwargs):
    def schedule(internet, resource):
        def redeploy(at):
            resource.site.put_index(
                "<html><head><title>slot gacor</title></head></html>"
            )
        return {4: redeploy}

    history = _parity_case(executor_kwargs, schedule)
    # Two states: the original content (touched weeks 0-3) and the
    # redeploy — no phantom "unchanged" touch swallowed the change.
    assert len(history) == 2
    assert history[0][3] == 4  # observations of the first state
    assert history[1][0].title == "slot gacor"


@pytest.mark.parametrize("executor_kwargs", _executors())
def test_released_then_reregistered_resource_dirties_each_transition(executor_kwargs):
    def schedule(internet, resource):
        azure = internet.catalog.provider("Azure")

        def release(at):
            azure.release(resource, at)

        def reregister(at):
            hijack = azure.provision(
                "azure-web-app", "acme-shop", owner="attacker", at=at
            )
            azure.add_custom_domain(hijack, "shop.acme.com", at)
            hijack.site.put_index(
                "<html><head><title>hijacked</title></head></html>"
            )
        return {2: release, 4: reregister}

    history = _parity_case(executor_kwargs, schedule)
    # Three states: live original, dangling (provider 404), hijack.
    assert len(history) == 3
    assert history[2][0].title == "hijacked"


@pytest.mark.parametrize("executor_kwargs", _executors())
def test_new_provider_zone_registration_dirties_ledger_entries(executor_kwargs):
    def schedule(internet, resource):
        def register(at):
            internet.zones.create_zone("late-provider.example")
        return {4: register}

    history = _parity_case(executor_kwargs, schedule)
    # The zone-set bump forces a full re-proof, but the state did not
    # change: still one state, its window extended every week.
    assert len(history) == 1
    assert history[0][3] == 6


@pytest.mark.parametrize("executor_kwargs", _executors())
def test_clean_names_are_skipped_and_dirty_names_are_counted(executor_kwargs):
    internet = _internet()
    _, resource, fqdn = _victim(internet)
    monitor = _incremental_monitor(internet)
    executor = ProcessExecutor(**executor_kwargs)
    registry = MetricsRegistry()
    OBS.configure(metrics=registry)
    try:
        executor.sweep(monitor, [fqdn], T0)            # full sample
        executor.sweep(monitor, [fqdn], T0 + WEEK)     # touch: mints proof
        executor.sweep(monitor, [fqdn], T0 + 2 * WEEK)  # clean skip
        counters = registry.counters()
        assert counters.get("journal.clean_skips", 0) == 1
        assert counters.get("journal.dirty", 0) == 0
        resource.site.put_index("<html><head><title>new</title></head></html>")
        executor.sweep(monitor, [fqdn], T0 + 3 * WEEK)  # dirty: full sample
        counters = registry.counters()
        assert counters.get("journal.clean_skips", 0) == 1
        assert counters.get("journal.dirty", 0) == 1
    finally:
        OBS.reset()
    assert len(monitor.store.history(fqdn)) == 2


def test_ledger_cursor_advances_with_the_journal():
    internet = _internet()
    _, _, fqdn = _victim(internet)
    monitor = _incremental_monitor(internet)
    executor = ProcessExecutor(workers=1, use_fork=False)
    assert monitor.touch_ledger.cursor == 0
    executor.sweep(monitor, [fqdn], T0)
    assert monitor.touch_ledger.cursor == internet.revisions.cursor()
    executor.sweep(monitor, [fqdn], T0 + WEEK)
    assert len(monitor.touch_ledger) == 1  # proof minted by the touch


def test_ledger_entries_survive_the_fork_boundary():
    # The old identity memo lost every entry a forked child created;
    # ledger proofs are data and ship home through the result pipe.
    internet = _internet()
    _, _, shop = _victim(internet, "shop")
    _, _, mail = _victim(internet, "mail")
    monitor = _incremental_monitor(internet)
    executor = ProcessExecutor(workers=2, use_fork=True)
    executor.sweep(monitor, [shop, mail], T0)
    executor.sweep(monitor, [shop, mail], T0 + WEEK)
    assert executor.last_mode == "fork"
    assert monitor.touch_ledger.get(shop) is not None
    assert monitor.touch_ledger.get(mail) is not None