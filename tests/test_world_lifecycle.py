"""Tests for the world lifecycle engine."""

from datetime import datetime, timedelta

import pytest

from repro.sim.rng import RngStreams
from repro.world.ground_truth import GroundTruthLog
from repro.world.internet import Internet
from repro.world.lifecycle import LifecycleConfig, WorldEngine
from repro.world.population import PopulationBuilder, PopulationConfig

T0 = datetime(2020, 1, 6)


def _engine(seed=31, **lifecycle_kwargs):
    internet = Internet(RngStreams(seed))
    builder = PopulationBuilder(internet)
    config = PopulationConfig(n_enterprises=15, n_universities=4, n_government=3, n_popular=10)
    orgs = builder.build(config, T0)
    ground_truth = GroundTruthLog()
    engine = WorldEngine(
        internet, orgs, builder, config, ground_truth,
        LifecycleConfig(**lifecycle_kwargs),
    )
    return internet, orgs, ground_truth, engine


def test_growth_adds_assets():
    internet, orgs, _, engine = _engine(weekly_growth_rate=0.05, weekly_release_rate=0.0)
    before = sum(len(o.assets) for o in orgs)
    at = T0
    for _ in range(10):
        at += timedelta(weeks=1)
        engine.step(at)
    after = sum(len(o.assets) for o in orgs)
    assert after > before


def test_releases_create_dangling_records():
    internet, orgs, _, engine = _engine(
        weekly_release_rate=0.2, purge_on_release_rate=0.0, weekly_growth_rate=0.0
    )
    at = T0
    for _ in range(5):
        at += timedelta(weeks=1)
        engine.step(at)
    dangling = [a for org in orgs for a in org.dangling_assets()]
    assert dangling
    # A dangling record still resolves as a CNAME chain to nowhere.
    sample = next(a for a in dangling if a.kind.value == "cloud-cname")
    result = internet.resolver.resolve_a_with_chain(sample.fqdn)
    assert result.status.value == "NXDOMAIN"
    assert result.cname_chain


def test_purge_on_release_removes_record():
    internet, orgs, _, engine = _engine(
        weekly_release_rate=0.2, purge_on_release_rate=1.0, weekly_growth_rate=0.0
    )
    at = T0
    for _ in range(5):
        at += timedelta(weeks=1)
        engine.step(at)
    assert not [a for org in orgs for a in org.dangling_assets()]
    assert internet.events.counts_by_kind().get("world.dangling", 0) == 0


def test_remediation_follows_hijack():
    internet, orgs, ground_truth, engine = _engine(
        weekly_release_rate=0.3, purge_on_release_rate=0.0, weekly_growth_rate=0.0
    )
    at = T0 + timedelta(weeks=1)
    engine.step(at)
    dangling = [a for org in orgs for a in org.dangling_assets()
                if a.kind.value == "cloud-cname"]
    assert dangling
    asset = dangling[0]
    # Simulate an attacker takeover by registering the ground truth.
    from repro.cloud.specs import spec_by_key

    provider = internet.catalog.provider(spec_by_key(asset.service_key).provider)
    resource = provider.provision(
        asset.service_key, asset.resource.name, owner="attacker:test",
        at=at, region=asset.resource.region,
    )
    record = ground_truth.record_takeover(asset, "test", resource, at)
    # Step far enough for any remediation bucket to trigger.
    for _ in range(130):
        at += timedelta(weeks=1)
        engine.step(at)
    assert record.remediated_at is not None
    assert asset.purged_at is not None
    assert record.duration_days() > 0


def test_redesigns_change_content():
    internet, orgs, _, engine = _engine(
        weekly_redesign_rate=1.0, weekly_release_rate=0.0, weekly_growth_rate=0.0
    )
    target = next(
        (o, a) for o in orgs for a in o.assets
        if a.resource is not None and a.resource.active
    )
    org, asset = target
    before = asset.resource.site.get("/")
    engine.step(T0 + timedelta(weeks=1))
    after = asset.resource.site.get("/")
    assert before != after


def test_parked_rotation_is_collective():
    # Seed 33 is known to draw at least one parked popular site.
    internet, orgs, _, engine = _engine(
        seed=33, weekly_release_rate=0.0, weekly_growth_rate=0.0
    )
    parked = [o for o in orgs if o.is_parked]
    assert parked, "seed 33 should produce parked orgs"
    at = T0
    for _ in range(9):  # crosses one rotation boundary
        at += timedelta(weeks=1)
        engine.step(at)
    # All parked orgs' active resources show the same campaign content.
    bodies = set()
    for org in parked:
        for asset in org.assets:
            resource = asset.resource
            if resource is not None and resource.active:
                body = resource.site.get("/")
                if body:
                    bodies.add(body.split("Sponsored results:")[-1][:40])
    assert len(bodies) <= 1 or len(parked) <= 1
