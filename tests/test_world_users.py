"""Tests for the simulated user population."""

from datetime import datetime

from repro.sim.rng import RngStreams
from repro.world.internet import Internet
from repro.world.population import PopulationBuilder, PopulationConfig
from repro.world.users import UserPopulation

T0 = datetime(2020, 1, 6)


def _world():
    internet = Internet(RngStreams(41))
    builder = PopulationBuilder(internet)
    orgs = builder.build(
        PopulationConfig(n_enterprises=5, n_universities=0, n_government=0, n_popular=0),
        T0,
    )
    return internet, orgs


def test_users_get_parent_scoped_auth_cookies():
    internet, orgs = _world()
    users = UserPopulation(internet.client, internet.streams.get("users"))
    users.add_users_for_org(orgs[0], 3, T0)
    assert len(users.users()) == 3
    for user in users.users():
        cookies = user.jar.all()
        auth = [c for c in cookies if c.is_authentication]
        assert len(auth) == 1
        assert auth[0].domain == orgs[0].domain


def test_weekly_browse_loads_pages():
    internet, orgs = _world()
    users = UserPopulation(internet.client, internet.streams.get("users"))
    for org in orgs:
        users.add_users_for_org(org, 2, T0)
    loads = users.weekly_browse(T0)
    assert loads > 0


def test_cookie_flag_mix_is_varied():
    internet, orgs = _world()
    users = UserPopulation(internet.client, internet.streams.get("users"))
    users.add_users_for_org(orgs[0], 40, T0)
    auth = [
        c for u in users.users() for c in u.jar.all() if c.is_authentication
    ]
    assert any(c.secure for c in auth) and any(not c.secure for c in auth)
    assert any(c.http_only for c in auth) and any(not c.http_only for c in auth)
