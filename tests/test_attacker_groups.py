"""Tests for the default attacker roster (Figure 16 / Section 6 structure)."""

import random
from datetime import datetime

from repro.attacker.groups import AttackerGroup, GroupBehavior, make_default_groups
from repro.content.vocab import Topic
from repro.intel.shorteners import UrlShortener
from repro.sim.rng import RngStreams


def _groups(count=14, cells=4, seed=5):
    streams = RngStreams(seed)
    shortener = UrlShortener(streams.get("short"))
    return make_default_groups(streams, shortener, count=count, syndicate_cells=cells)


def test_roster_size_and_names():
    groups = _groups()
    assert len(groups) == 14
    assert len({g.name for g in groups}) == 14


def test_activity_windows_form_the_figure16_waves():
    groups = _groups()
    early = [g for g in groups if g.active_from.year == 2020]
    late = [g for g in groups if g.active_from >= datetime(2021, 8, 1)]
    assert early and late
    # The 2021 lull: early-wave groups (except the anchor) retire
    # around the start of 2021.
    retiring = [g for g in early if g.active_until is not None]
    assert all(g.active_until.year == 2021 for g in retiring)
    # The ramp keeps going to the end of the window.
    assert all(g.active_until is None for g in late)


def test_is_active_respects_window():
    groups = _groups()
    group = next(g for g in groups if g.active_until is not None)
    assert not group.is_active(group.active_from - _week())
    assert group.is_active(group.active_from)
    assert not group.is_active(group.active_until)


def test_syndicate_cells_share_identifiers_and_targets():
    groups = _groups()
    cells = groups[:4]
    independents = groups[4:]
    shared = set(cells[0].identifier_pool.all_identifiers())
    for cell in cells[1:]:
        assert shared & set(cell.identifier_pool.all_identifiers())
        assert set(cell.monetized_urls) == set(cells[0].monetized_urls)
    for group in independents:
        assert not (shared & set(group.identifier_pool.all_identifiers()))


def test_monetization_mix_includes_ads_groups():
    groups = _groups()
    referral = [g for g in groups if g.monetization == "referral"]
    ads = [g for g in groups if g.monetization == "ads"]
    assert referral and ads
    assert all(g.referral_code == "" for g in ads)
    assert all(g.referral_code for g in referral)


def test_topic_sampling_follows_weights():
    group = _groups()[0]
    topics = [group.pick_topic() for _ in range(500)]
    assert topics.count(Topic.GAMBLING) > topics.count(Topic.ADULT)
    assert topics.count(Topic.JAPANESE_SEO) < 25


def test_page_count_sampling_is_heavy_tailed_and_bounded():
    group = _groups()[0]
    counts = [group.sample_page_count() for _ in range(300)]
    assert min(counts) >= 2
    assert max(counts) <= group.behavior.max_pages_per_site
    ordered = sorted(counts)
    median = ordered[len(ordered) // 2]
    assert max(counts) > 4 * median  # heavy tail


def test_account_naming():
    group = _groups()[0]
    assert group.account == f"attacker:{group.name}"


def _week():
    from datetime import timedelta

    return timedelta(weeks=1)
