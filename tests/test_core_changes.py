"""Tests for change detection between snapshots."""

from datetime import datetime, timedelta

from repro.core.changes import SITEMAP_JUMP_BYTES, detect_changes
from repro.core.monitoring import SnapshotFeatures

T0 = datetime(2020, 1, 6)
T1 = T0 + timedelta(weeks=1)


def _features(**overrides):
    base = dict(
        fqdn="a.acme.com", at=T0, dns_status="NOERROR",
        cname_chain=("x.azurewebsites.net",), addresses=("40.0.0.1",),
        fetch_status="ok", http_status=200, html_hash="h1", html_size=100,
        title="t", lang="en", keywords=frozenset({"portal"}),
        sitemap_size=1000, sitemap_count=10,
    )
    base.update(overrides)
    return SnapshotFeatures(**base)


def test_first_observation():
    event = detect_changes(None, _features())
    assert event.first_observation
    assert not event.any_change


def test_no_change():
    event = detect_changes(_features(), _features(at=T1))
    assert not event.any_change


def test_dns_change_detected():
    event = detect_changes(_features(), _features(at=T1, addresses=("40.0.0.9",)))
    assert event.dns_changed
    assert "dns_changed" in event.change_kinds


def test_reactivation_detected():
    dead = _features(fetch_status="dns-nxdomain", http_status=0, html_hash="",
                     dns_status="NXDOMAIN", addresses=())
    alive = _features(at=T1, html_hash="h2")
    event = detect_changes(dead, alive)
    assert event.reactivated
    assert event.dns_changed


def test_went_dark_detected():
    alive = _features()
    dead = _features(at=T1, fetch_status="dns-nxdomain", http_status=0,
                     dns_status="NXDOMAIN", html_hash="", addresses=())
    event = detect_changes(alive, dead)
    assert event.went_dark
    assert not event.reactivated


def test_content_and_keyword_change():
    before = _features()
    after = _features(at=T1, html_hash="h2", keywords=frozenset({"slot", "judi"}))
    event = detect_changes(before, after)
    assert event.content_changed
    assert event.keywords_changed


def test_language_change():
    event = detect_changes(_features(), _features(at=T1, lang="id", html_hash="h2"))
    assert event.language_changed


def test_sitemap_appearance():
    before = _features(sitemap_count=-1, sitemap_size=-1)
    after = _features(at=T1, sitemap_count=500, sitemap_size=40_000, html_hash="h2")
    assert detect_changes(before, after).sitemap_appeared


def test_sitemap_jump_threshold():
    before = _features(sitemap_size=10_000, sitemap_count=50)
    small = _features(at=T1, sitemap_size=10_000 + SITEMAP_JUMP_BYTES - 1, sitemap_count=80)
    big = _features(at=T1, sitemap_size=10_000 + SITEMAP_JUMP_BYTES, sitemap_count=5000)
    assert not detect_changes(before, small).sitemap_jumped
    assert detect_changes(before, big).sitemap_jumped
