"""Tests for abuse content generation."""

import random

from repro.attacker.content import AbuseContentFactory
from repro.content.vocab import Topic
from repro.web.html import parse_html


def _factory(seed=5):
    return AbuseContentFactory(random.Random(seed), "group-test")


def test_maintenance_facade_has_the_typo():
    doc = _factory().maintenance_facade()
    assert doc.title == "Comming soon ..."
    assert any("soon" in p.lower() or "maint" in p.lower() or "wartet" in p.lower()
               or "メンテナンス" in p or "system" in p.lower() for p in doc.paragraphs)


def test_doorway_page_structure():
    factory = _factory()
    doc = factory.doorway_page(
        Topic.GAMBLING, "https://mega-gacor.bet/play", "ref1234",
        identifiers=["+628123456789", "https://t.me/slotwin77", "141.98.5.5"],
        sibling_urls=["http://victim.com/a.html"],
    )
    hrefs = [link.href for link in doc.links]
    assert any("?ref=ref1234" in h for h in hrefs)
    assert any(h.startswith("https://wa.me/") for h in hrefs)
    assert any("t.me" in h for h in hrefs)
    assert "http://victim.com/a.html" in hrefs
    assert doc.lang == "id"
    assert any("popunder.js" in s.src for s in doc.scripts)


def test_doorway_without_referral_code_links_plain():
    doc = _factory().doorway_page(
        Topic.GAMBLING, "https://ads.example/landing", "", identifiers=[]
    )
    hrefs = [link.href for link in doc.links]
    assert "https://ads.example/landing" in hrefs
    assert not any("?ref=" in h for h in hrefs)


def test_meta_keyword_stuffing_toggle():
    factory = _factory()
    stuffed = factory.doorway_page(Topic.GAMBLING, "https://x.bet", "r", [], stuff_meta_keywords=True)
    plain = factory.doorway_page(Topic.GAMBLING, "https://x.bet", "r", [], stuff_meta_keywords=False)
    assert "keywords" in stuffed.meta
    assert "keywords" not in plain.meta


def test_wordpress_generator_toggle():
    doc = _factory().doorway_page(
        Topic.GAMBLING, "https://x.bet", "r", [], wordpress_generator=True
    )
    assert doc.generator.startswith("WordPress")


def test_japanese_page():
    doc = _factory().japanese_page(["http://victim.com/b.html"])
    assert doc.lang == "ja"
    assert any("ページディレクトリ" in link.text for link in doc.links)


def test_clickjacking_page_has_onclick_interceptors():
    doc = _factory().clickjacking_page("https://adult-ads.example", "ref9")
    assert any(link.onclick for link in doc.links)
    assert doc.lang == "en"


def test_link_network_page_is_link_dominated():
    urls = [f"http://victim.com/p{i}.html" for i in range(6)]
    doc = _factory().link_network_page(urls)
    assert len(doc.links) == 6
    assert len(doc.visible_text()) < 300


def test_random_page_names_are_consistent_style():
    factory = _factory()
    names = {factory.random_page_name(Topic.GAMBLING) for _ in range(20)}
    assert len(names) >= 18
    assert all(name.startswith("/") and name.endswith(".html") for name in names)


def test_abuse_sitemap_counts_and_size():
    factory = _factory()
    paths = ["/a.html", "/b.html"]
    sitemap = factory.abuse_sitemap("victim.com", paths, total_page_count=500)
    assert len(sitemap) == 500
    assert sitemap.urls()[0] == "http://victim.com/a.html"
    assert sitemap.size_bytes() > 10_000


def test_rendered_pages_parse_back():
    doc = _factory().doorway_page(Topic.ADULT, "https://x.example", "r", ["+62812000"])
    parsed = parse_html(doc.render())
    assert parsed.title == doc.title
