"""Tests for the self-healing sweep supervisor and the checkpoint store.

Covers the failure model end to end: workers killed by SIGKILL
mid-shard, workers hung past the deadline, truncated result payloads,
poison-shard bisection down to the single offending FQDN, and the
determinism contract that a recovered sweep's results are identical to
a fault-free run's (modulo quarantined names).  The checkpoint half
covers the frame validation (torn, bad magic, checksum mismatch),
rotation, recovery past corrupt files, and full-scenario resume.
"""

import os
import pickle
from datetime import datetime, timedelta

import pytest

from repro.core.monitoring import WeeklyMonitor
from repro.core.scenario import ScenarioConfig, build_scenario, run_scenario
from repro.core.export import dataset_to_json
from repro.dns.records import RRType, ResourceRecord
from repro.faults.plan import FaultConfig, FaultPlan
from repro.parallel import (
    ProcessExecutor,
    SupervisorConfig,
    run_shards_supervised,
)
from repro.parallel.shard import partition, run_shards_forked
from repro.parallel import supervisor as supervisor_module
from repro.pipeline.engine import Checkpoint, PipelineEngine
from repro.pipeline.store import (
    CheckpointCorruptError,
    CheckpointStore,
    atomic_write_bytes,
    decode_checkpoint,
    encode_checkpoint,
)
from repro.sim.clock import SimClock
from repro.sim.rng import RngStreams
from repro.world.internet import Internet

T0 = datetime(2020, 1, 6)
WEEK = timedelta(weeks=1)


def _world(n=8, fault_config=None):
    internet = Internet(RngStreams(7), SimClock())
    azure = internet.catalog.provider("Azure")
    zone = internet.zones.create_zone("acme.com")
    fqdns = []
    for i in range(n):
        resource = azure.provision("azure-web-app", f"acme-svc{i}", owner="org:acme", at=T0)
        fqdn = f"svc{i}.acme.com"
        zone.add(ResourceRecord(fqdn, RRType.CNAME, resource.generated_fqdn), T0)
        azure.add_custom_domain(resource, fqdn, T0)
        resource.site.put_index(
            f"<html><head><title>Site {i}</title></head><body>s{i}</body></html>"
        )
        fqdns.append(fqdn)
    if fault_config is not None:
        internet.client.fault_plan = FaultPlan.from_seed(fault_config, 11)
    return internet, sorted(fqdns)


def _histories(monitor, fqdns):
    return {
        fqdn: [
            (s.features, s.first_seen, s.last_seen, s.observations)
            for s in monitor.store.history(fqdn)
        ]
        for fqdn in fqdns
    }


def _apply_sweep(monitor, fqdns, outcome, at):
    """Record a supervised sweep's results the way the executor does."""
    executor = ProcessExecutor(workers=1)
    executor._apply(monitor, outcome.results, True, at, outcome.quarantined)


# -- happy-path parity -----------------------------------------------------


@pytest.mark.parametrize("forked", [False, True])
def test_supervised_sweep_matches_unsupervised(forked):
    internet, fqdns = _world()
    monitor = WeeklyMonitor(internet.client)
    shards = partition(fqdns, 3)
    baseline = run_shards_forked(monitor, shards, T0, None)
    outcome = run_shards_supervised(
        monitor, shards, T0, None, SupervisorConfig(), forked=forked
    )
    assert not outcome.quarantined
    assert outcome.worker_crashes == outcome.worker_hangs == 0
    assert len(outcome.results) == len(baseline)
    for ours, theirs in zip(outcome.results, baseline):
        assert [s for s in ours.sampled] == [s for s in theirs.sampled]
        assert ours.failures == theirs.failures


# -- worker death (SIGKILL mid-shard) --------------------------------------


@pytest.mark.parametrize("forked", [False, True])
def test_crashed_workers_are_redispatched_never_quarantined(forked):
    # Rate 1.0: EVERY shard's first dispatch dies by SIGKILL (forked) or
    # a simulated crash (inline).  The fault is drawn only on the first
    # attempt, so one re-dispatch per shard always recovers — random
    # crashes must never reach quarantine.
    internet, fqdns = _world(
        fault_config=FaultConfig(enabled=True, worker_crash_rate=1.0)
    )
    monitor = WeeklyMonitor(internet.client)
    shards = partition(fqdns, 3)
    outcome = run_shards_supervised(
        monitor, shards, T0, None, SupervisorConfig(), forked=forked
    )
    assert not outcome.quarantined
    assert outcome.worker_crashes == len(shards)
    assert outcome.shard_retries == len(shards)
    assert sum(len(r.sampled) + len(r.failures) for r in outcome.results) == len(fqdns)


def test_crash_recovered_sweep_records_same_store_as_fault_free():
    healthy, fqdns = _world()
    clean = WeeklyMonitor(healthy.client)
    chaotic, _ = _world(
        fault_config=FaultConfig(enabled=True, worker_crash_rate=0.6)
    )
    stormy = WeeklyMonitor(chaotic.client)
    at = T0
    for _ in range(3):
        for monitor in (clean, stormy):
            shards = partition(fqdns, 4)
            forked = monitor is stormy
            outcome = run_shards_supervised(
                monitor, shards, at, None, SupervisorConfig(), forked=forked
            )
            assert not outcome.quarantined
            _apply_sweep(monitor, fqdns, outcome, at)
        at += WEEK
    assert _histories(stormy, fqdns) == _histories(clean, fqdns)


# -- hung workers reaped at the deadline -----------------------------------


@pytest.mark.parametrize("forked", [False, True])
def test_hung_workers_are_reaped_at_deadline_and_redispatched(forked):
    internet, fqdns = _world(
        fault_config=FaultConfig(enabled=True, worker_hang_rate=1.0)
    )
    monitor = WeeklyMonitor(internet.client)
    shards = partition(fqdns, 2)
    outcome = run_shards_supervised(
        monitor, shards, T0, None,
        SupervisorConfig(shard_deadline=0.3), forked=forked,
    )
    assert not outcome.quarantined
    assert outcome.worker_hangs == len(shards)
    assert sum(len(r.sampled) + len(r.failures) for r in outcome.results) == len(fqdns)


# -- truncated result payloads ---------------------------------------------


def test_truncated_payload_is_detected_and_retried(tmp_path, monkeypatch):
    internet, fqdns = _world()
    monitor = WeeklyMonitor(internet.client)
    shards = partition(fqdns, 2)
    latch = tmp_path / "truncated-once"
    real_send = supervisor_module._send_payload

    def flaky_send(write_fd, payload):
        # First worker to report ships half its pickle then dies; the
        # latch file makes the fault one-shot across forked children.
        try:
            fd = os.open(latch, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            real_send(write_fd, payload)
            return
        os.close(fd)
        supervisor_module._write_all(
            write_fd, supervisor_module._LENGTH.pack(len(payload)) + payload[: len(payload) // 2]
        )
        os.close(write_fd)
        os._exit(0)

    monkeypatch.setattr(supervisor_module, "_send_payload", flaky_send)
    outcome = run_shards_supervised(
        monitor, shards, T0, None, SupervisorConfig(), forked=True
    )
    assert latch.exists()
    assert not outcome.quarantined
    assert outcome.worker_crashes == 1
    assert outcome.shard_retries == 1
    assert sum(len(r.sampled) + len(r.failures) for r in outcome.results) == len(fqdns)


# -- poison isolation via bisection ----------------------------------------


@pytest.mark.parametrize("forked", [False, True])
def test_poison_fqdn_is_bisected_to_exact_quarantine(forked):
    internet, fqdns = _world(n=9)
    poison = fqdns[4]
    internet.client.fault_plan = FaultPlan.from_seed(
        FaultConfig(enabled=True, poison_fqdns=(poison,)), 11
    )
    monitor = WeeklyMonitor(internet.client)
    shards = partition(fqdns, 3)
    outcome = run_shards_supervised(
        monitor, shards, T0, None, SupervisorConfig(), forked=forked
    )
    assert [d.fqdn for d in outcome.quarantined] == [poison]
    letter = outcome.quarantined[0]
    assert letter.shard_index == 1
    # The dead-letter reason carries the shard identity of the failure.
    assert "names[" in letter.reason
    # Everything except the poison name was sampled, in order.
    sampled = [
        s if isinstance(s, str) else s.fqdn
        for r in outcome.results
        for s in r.sampled
    ]
    assert sampled == [f for f in fqdns if f != poison]


def test_poison_quarantine_survives_executor_and_stage(tmp_path):
    config = ScenarioConfig.tiny()
    config.weeks = 4
    config.workers = 2
    engine = build_scenario(config)
    engine.run(max_weeks=2)
    result = engine.payload
    poison = result.collector.monitored_sorted[3]
    result.fault_plan = result.monitor.client.fault_plan = FaultPlan.from_seed(
        FaultConfig(enabled=True, poison_fqdns=(poison,)), 11
    )
    engine.run(max_weeks=1)
    quarantined = [r for r in engine.dead_letters if r.item == poison]
    assert quarantined and "poison shard" in quarantined[0].reason


def test_worker_fault_draws_are_per_shard_deterministic():
    plan_a = FaultPlan.from_seed(
        FaultConfig(enabled=True, worker_crash_rate=0.4, worker_hang_rate=0.2), 5
    )
    plan_b = FaultPlan.from_seed(
        FaultConfig(enabled=True, worker_crash_rate=0.4, worker_hang_rate=0.2), 5
    )
    # Same seed, same per-shard streams: identical storms, even when one
    # plan draws its shards in a different order.
    draws_a = [plan_a.worker_fault(i) for i in range(6)]
    draws_b = [plan_b.worker_fault(i) for i in reversed(range(6))]
    assert draws_a == list(reversed(draws_b))


def test_supervisor_config_rejects_zero_retry_budget():
    with pytest.raises(ValueError):
        SupervisorConfig(max_shard_retries=0)


# -- checkpoint frame ------------------------------------------------------


def _checkpoint(week=3):
    return Checkpoint(week_index=week, at=T0, blob=b"engine-state-" * 64)


def test_checkpoint_frame_roundtrips():
    ckpt = _checkpoint()
    assert decode_checkpoint(encode_checkpoint(ckpt)) == ckpt


def test_checkpoint_frame_rejects_torn_and_corrupt_data():
    data = encode_checkpoint(_checkpoint())
    with pytest.raises(CheckpointCorruptError, match="torn header"):
        decode_checkpoint(data[:10])
    with pytest.raises(CheckpointCorruptError, match="bad magic"):
        decode_checkpoint(b"XXXX" + data[4:])
    with pytest.raises(CheckpointCorruptError, match="torn payload"):
        decode_checkpoint(data[:-7])
    flipped = bytearray(data)
    flipped[-1] ^= 0xFF
    with pytest.raises(CheckpointCorruptError, match="checksum mismatch"):
        decode_checkpoint(bytes(flipped))


def test_checkpoint_frame_rejects_wrong_payload_type():
    import hashlib
    import struct

    payload = pickle.dumps({"not": "a checkpoint"}, protocol=pickle.HIGHEST_PROTOCOL)
    framed = (
        struct.pack("<4sHQ", b"RCKP", 1, len(payload))
        + hashlib.sha256(payload).digest()
        + payload
    )
    with pytest.raises(CheckpointCorruptError, match="not Checkpoint"):
        decode_checkpoint(framed)


# -- checkpoint store ------------------------------------------------------


def test_store_save_load_latest_roundtrip(tmp_path):
    store = CheckpointStore(tmp_path)
    assert store.load_latest() is None
    assert store.last_recovery.loaded is None
    store.save(_checkpoint(week=1))
    store.save(_checkpoint(week=2))
    loaded = store.load_latest()
    assert loaded.week_index == 2
    assert store.last_recovery.loaded is not None
    assert store.last_recovery.skipped == []


def test_store_rotates_to_keep_last_n(tmp_path):
    store = CheckpointStore(tmp_path, keep=2)
    for week in range(5):
        store.save(_checkpoint(week=week))
    paths = store.paths()
    assert len(paths) == 2
    # Sequence numbers keep increasing across rotation.
    assert [os.path.basename(p)[:11] for p in paths] == ["ckpt-000003", "ckpt-000004"]
    assert store.load_latest().week_index == 4


def test_store_recovery_skips_torn_and_corrupt_files(tmp_path):
    store = CheckpointStore(tmp_path)
    store.save(_checkpoint(week=1))
    good = store.save(_checkpoint(week=2))
    torn = store.save(_checkpoint(week=3))
    with open(torn, "r+b") as handle:
        handle.truncate(os.path.getsize(torn) // 2)
    loaded = store.load_latest()
    assert loaded.week_index == 2
    report = store.last_recovery
    assert report.loaded == os.path.basename(good)
    assert [name for name, _ in report.skipped] == [os.path.basename(torn)]
    assert "torn payload" in report.skipped[0][1]
    # Corrupt files are evidence, not garbage: never deleted.
    assert os.path.exists(torn)


def test_store_recovery_reports_every_reason(tmp_path):
    store = CheckpointStore(tmp_path, keep=4)
    store.save(_checkpoint(week=1))
    bad_magic = store.save(_checkpoint(week=2))
    data = open(bad_magic, "rb").read()
    atomic_write_bytes(bad_magic, b"JUNK" + data[4:])
    empty = os.path.join(store.directory, "ckpt-999998-w0009.ckpt")
    open(empty, "wb").close()
    assert store.load_latest().week_index == 1
    reasons = dict(store.last_recovery.skipped)
    assert "bad magic" in reasons[os.path.basename(bad_magic)]
    assert "torn header" in reasons[os.path.basename(empty)]


def test_atomic_write_failure_leaves_target_and_no_tmp_litter(tmp_path, monkeypatch):
    target = tmp_path / "dataset.json"
    target.write_text("precious")
    # Temp file cannot even be created (parent directory gone).
    with pytest.raises(OSError):
        atomic_write_bytes(str(tmp_path / "nope" / "dataset.json"), b"x")
    # Crash between the temp write and the rename: the old target stays
    # whole and the temp file is cleaned up.
    monkeypatch.setattr(
        os, "replace",
        lambda src, dst: (_ for _ in ()).throw(OSError("simulated crash at rename")),
    )
    with pytest.raises(OSError, match="simulated crash"):
        atomic_write_bytes(str(target), b"half-written")
    monkeypatch.undo()
    assert target.read_text() == "precious"
    assert [p.name for p in tmp_path.iterdir()] == ["dataset.json"]


# -- full-scenario resume --------------------------------------------------


def test_resume_requires_a_store():
    with pytest.raises(ValueError, match="checkpoint_store"):
        run_scenario(ScenarioConfig.tiny(), resume=True)


def test_interrupted_run_resumes_past_corrupt_newest_checkpoint(tmp_path):
    config = ScenarioConfig.tiny()
    config.weeks = 6
    full = run_scenario(config)
    golden = dataset_to_json(full.dataset, indent=2)

    store = CheckpointStore(tmp_path)
    config2 = ScenarioConfig.tiny()
    config2.weeks = 6
    engine = build_scenario(config2)
    engine.run(max_weeks=4, checkpoint_every=2, on_checkpoint=store.save)
    newest = store.paths()[-1]
    with open(newest, "r+b") as handle:
        handle.truncate(os.path.getsize(newest) // 3)

    resumed = run_scenario(None, checkpoint_store=store, resume=True)
    assert resumed.weeks_run == 6
    report = store.last_recovery
    assert report.loaded is not None
    assert [name for name, _ in report.skipped] == [os.path.basename(newest)]
    assert dataset_to_json(resumed.dataset, indent=2) == golden
