"""Tests for the simulation clock."""

from datetime import datetime, timedelta

import pytest

from repro.sim.clock import DEFAULT_END, DEFAULT_START, ClockError, SimClock, month_key


def test_starts_at_configured_instant():
    clock = SimClock(datetime(2020, 3, 1))
    assert clock.now == datetime(2020, 3, 1)
    assert clock.elapsed == timedelta(0)


def test_default_window_is_three_years():
    clock = SimClock()
    assert clock.start == DEFAULT_START
    assert (DEFAULT_END - DEFAULT_START).days >= 156 * 7


def test_advance_moves_forward():
    clock = SimClock(datetime(2020, 1, 6))
    clock.advance(timedelta(days=3))
    assert clock.now == datetime(2020, 1, 9)
    clock.advance_days(4)
    assert clock.now == datetime(2020, 1, 13)


def test_advance_backwards_is_rejected():
    clock = SimClock()
    with pytest.raises(ClockError):
        clock.advance(timedelta(days=-1))
    with pytest.raises(ClockError):
        clock.advance_to(clock.now - timedelta(seconds=1))


def test_end_before_start_is_rejected():
    with pytest.raises(ClockError):
        SimClock(datetime(2021, 1, 1), datetime(2020, 1, 1))


def test_weekly_ticks_cover_the_window():
    clock = SimClock(datetime(2020, 1, 6), datetime(2020, 3, 2))
    ticks = list(clock.weekly())
    assert ticks[0] == datetime(2020, 1, 6)
    assert all((b - a) == timedelta(weeks=1) for a, b in zip(ticks, ticks[1:]))
    assert len(ticks) == 8
    assert clock.finished()


def test_ticks_requires_positive_step():
    clock = SimClock()
    with pytest.raises(ClockError):
        next(clock.ticks(timedelta(0)))


def test_advance_to_jumps():
    clock = SimClock(datetime(2020, 1, 6))
    clock.advance_to(datetime(2021, 6, 1))
    assert clock.now == datetime(2021, 6, 1)


def test_month_key_format():
    assert month_key(datetime(2021, 3, 9)) == "2021-03"
    assert month_key(datetime(2020, 12, 31)) == "2020-12"
