"""Command-line interface.

::

    python -m repro run        [--seed N] [--weeks N] [--scale tiny|small|full]
                               [--notify] [--randomize-names] [--export PATH]
                               [--faults [LEVEL]] [--fault-seed N] [--retries N]
                               [--workers N] [--incremental]
                               [--worker-faults [RATE]] [--shard-deadline S]
                               [--checkpoint-dir DIR] [--checkpoint-every N]
                               [--resume]
    python -m repro report     [--seed N] [--scale ...]
                               [--analysis-workers N] [--report-json PATH]
    python -m repro audit      [--seed N] [--scale ...]
    python -m repro pipeline   [--seed N] [--scale ...]
    python -m repro profile    [--seed N] [--scale ...]
    python -m repro perf       BASELINE CANDIDATE [--threshold X]
                               [--min-ms MS] [--check]

``run`` executes a scenario and prints the headline summary (optionally
exporting the abuse dataset to JSON); ``report`` adds the per-analysis
breakdowns — computed by the :mod:`repro.analysis` task graph, on
``--analysis-workers N`` forked workers (byte-identical output for any
worker count; a failed analysis degrades to an error stanza instead of
killing the report) and optionally exported as machine-readable JSON
with ``--report-json PATH``; ``audit`` plays the defender and surveys
the attack surface;
``pipeline`` prints the engine's per-stage timing/throughput table;
``profile`` runs with observability on and prints the top spans, cache
hit rates and retry heat.

Every subcommand accepts the observability knobs: ``--metrics`` prints
the deterministic counter registry after the run, ``--trace PATH``
streams span/metric events (``--trace-format jsonl`` — the default —
with sim-clock *and* wall-clock timestamps per event, or
``--trace-format chrome`` for a Perfetto/chrome://tracing-loadable
trace-event JSON with shard and analysis-pool lanes),
``--trace-sample N`` keeps every Nth span per span name, and
``--metrics-json PATH`` exports the week-by-week counter deltas plus
per-stage/per-shard resource accounting as JSON.  With none of them
given the observability layer stays null-object disabled and adds zero
cost.

``perf`` is the regression gate: it compares two telemetry files —
metrics exports, JSONL traces, Chrome exports or bench results — and
exits 1 when the candidate regressed past ``--threshold`` (default
1.20x, with a ``--min-ms`` absolute noise floor) or, with ``--check``,
when two same-seed metrics exports disagree on any deterministic value
(a determinism bug, not a slowdown).  Malformed input exits 2.

Every subcommand accepts the chaos knobs: ``--faults [LEVEL]`` turns on
deterministic fault injection (default level 0.05), ``--fault-seed N``
pins the fault streams independently of the world seed, and
``--retries N`` gives the weekly monitor a transient-failure retry
budget.  ``pipeline`` additionally prints the resilience summary —
injected-fault counts, client retries, breaker trips, quarantined
FQDNs.

``--workers N`` shards each weekly monitor sweep across N forked
workers, merged deterministically in shard order: a fault-free run
exports byte-identical datasets for any worker count.

``--incremental`` makes sweeps churn-proportional: each week the
monitor asks the world's revision journal what changed since its last
pass and extends unchanged names' observation windows from its touch
ledger instead of re-sampling them.  Exports stay byte-identical to a
full sweep's for any seed and worker count.

``--linear-detector`` turns the detector's inverted signature/posting
indexes off and matches with the paper-faithful linear scans; exports
are byte-identical either way (the indexes only skip signatures and
FQDNs that provably cannot match), so the flag exists as the
benchmark/parity baseline.

``--worker-faults [RATE]`` injects deterministic *process* faults into
the sweep workers — SIGKILL'd children at RATE per shard span, hung
children at RATE/2 — which the self-healing supervisor survives by
re-dispatching failed shards; exports stay byte-identical to the
fault-free run.  ``--shard-deadline S`` bounds each worker's wall
clock (auto-set when hang faults are on).

``--checkpoint-dir DIR`` durably snapshots the whole engine every
``--checkpoint-every N`` weeks (atomic, checksummed, keep-last-3);
``--resume`` restores the newest intact checkpoint from that directory
— skipping torn or corrupt files — and runs only the remaining weeks.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.chains import survey_attack_surface
from repro.core.export import dataset_to_json
from repro.core.reporting import percent, render_table
from repro.core.scenario import ScenarioConfig, ScenarioResult, run_scenario
from repro.core.scoring import score_detector
from repro.faults.plan import FaultConfig
from repro.faults.retry import RetryPolicy
from repro.obs import (
    BufferTracer,
    MetricsRegistry,
    OBS,
    TimeSeriesRecorder,
    Tracer,
)
from repro.obs.chrome import render_chrome
from repro.obs.perf import EXIT_MALFORMED, PerfInputError
from repro.obs.perf import compare as perf_compare
from repro.obs.profile import render_profile
from repro.pipeline.store import CheckpointStore, atomic_write_text


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Cloudy with a Chance of Cyberattacks' (NSDI 2024)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, help_text in (
        ("run", "run a scenario and print the summary"),
        ("report", "run a scenario and print analysis breakdowns"),
        ("audit", "run a scenario and survey the final attack surface"),
        ("pipeline", "run a scenario and print per-stage pipeline metrics"),
        ("profile", "run a scenario with observability on and print the "
                    "span/cache/retry profile"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--seed", type=int, default=42)
        cmd.add_argument("--scale", choices=("tiny", "small", "full"), default="small")
        cmd.add_argument("--weeks", type=int, default=None,
                         help="override the scale preset's week count")
        cmd.add_argument("--notify", action="store_true",
                         help="enable the notification campaign")
        cmd.add_argument("--randomize-names", action="store_true",
                         help="enable the provider-side countermeasure")
        cmd.add_argument("--faults", nargs="?", const=0.05, type=float,
                         default=None, metavar="LEVEL",
                         help="inject deterministic faults at LEVEL "
                              "intensity (default 0.05 when given bare)")
        cmd.add_argument("--fault-seed", type=int, default=None,
                         help="seed the fault streams independently of "
                              "the world seed")
        cmd.add_argument("--retries", type=int, default=None, metavar="N",
                         help="monitor retry budget for transient "
                              "failures (default: no retries)")
        cmd.add_argument("--workers", type=int, default=1, metavar="N",
                         help="sweep workers: shard the weekly monitor "
                              "sweep across N forked workers (default 1 "
                              "= serial baseline)")
        cmd.add_argument("--incremental", action="store_true",
                         help="churn-proportional sweeps: skip names whose "
                              "revision-journal dependencies are unchanged "
                              "since their last sample (byte-identical "
                              "exports to a full sweep)")
        cmd.add_argument("--linear-detector", action="store_true",
                         help="disable the detector's signature/posting "
                              "indexes and match with the paper-faithful "
                              "linear scans (byte-identical exports; the "
                              "benchmark baseline)")
        cmd.add_argument("--worker-faults", nargs="?", const=0.05, type=float,
                         default=None, metavar="RATE",
                         help="inject worker crash faults at RATE per shard "
                              "span (and hangs at RATE/2); the supervisor "
                              "recovers them (default 0.05 when given bare)")
        cmd.add_argument("--shard-deadline", type=float, default=None,
                         metavar="S",
                         help="wall-clock budget per sweep worker before "
                              "the supervisor reaps it (default: auto)")
        cmd.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                         help="durably checkpoint the engine into DIR "
                              "(atomic, checksummed, keep-last-3)")
        cmd.add_argument("--checkpoint-every", type=int, default=4,
                         metavar="N",
                         help="weeks between checkpoints (default 4)")
        cmd.add_argument("--resume", action="store_true",
                         help="resume from the newest intact checkpoint in "
                              "--checkpoint-dir (torn/corrupt files are "
                              "skipped)")
        cmd.add_argument("--metrics", action="store_true",
                         help="collect and print the deterministic "
                              "metrics registry after the run")
        cmd.add_argument("--trace", metavar="PATH", default=None,
                         help="write span/metric events to PATH "
                              "(sim-clock and wall-clock timestamps)")
        cmd.add_argument("--trace-format", choices=("jsonl", "chrome"),
                         default="jsonl",
                         help="trace file format: jsonl event lines "
                              "(default) or chrome trace-event JSON for "
                              "Perfetto / chrome://tracing")
        cmd.add_argument("--trace-sample", type=int, default=1, metavar="N",
                         help="keep every Nth span per span name in the "
                              "trace (default 1 = keep all)")
        cmd.add_argument("--metrics-json", metavar="PATH", default=None,
                         help="export week-by-week counter deltas and "
                              "per-stage/per-shard resource accounting "
                              "as JSON to PATH (atomic write)")
        if name == "run":
            cmd.add_argument("--export", metavar="PATH", default=None,
                             help="write the abuse dataset to a JSON file")
        if name == "report":
            cmd.add_argument("--analysis-workers", type=int, default=1,
                             metavar="N",
                             help="run the report's analysis task graph on "
                                  "N forked workers (default 1 = the serial "
                                  "parity path; output is byte-identical "
                                  "for any worker count)")
            cmd.add_argument("--report-json", metavar="PATH", default=None,
                             help="also export every analysis payload as "
                                  "machine-readable JSON to PATH (atomic "
                                  "write)")
    perf = sub.add_parser(
        "perf",
        help="compare two telemetry exports and exit nonzero on regression",
    )
    perf.add_argument("baseline", metavar="BASELINE",
                      help="baseline file: metrics export, JSONL trace, "
                           "chrome export or bench results")
    perf.add_argument("candidate", metavar="CANDIDATE",
                      help="candidate file of the same kind")
    perf.add_argument("--threshold", type=float, default=1.20, metavar="X",
                      help="fail when a series exceeds baseline by this "
                           "ratio (default 1.20 = +20%%)")
    perf.add_argument("--min-ms", type=float, default=25.0, metavar="MS",
                      help="ignore regressions smaller than MS absolute "
                           "(noise floor, default 25)")
    perf.add_argument("--check", action="store_true",
                      help="determinism check: fail on ANY divergence in "
                           "the deterministic view of two metrics exports "
                           "(week deltas and counters; timings ignored)")
    return parser


def _config_from_args(args: argparse.Namespace) -> ScenarioConfig:
    if args.scale == "tiny":
        config = ScenarioConfig.tiny(seed=args.seed)
    elif args.scale == "small":
        config = ScenarioConfig.small(seed=args.seed)
    else:
        config = ScenarioConfig(seed=args.seed)
    if args.weeks is not None:
        config.weeks = args.weeks
    config.notify_owners = args.notify
    config.randomize_names = args.randomize_names
    if getattr(args, "faults", None) is not None:
        config.faults = FaultConfig.chaos(
            level=args.faults, seed=getattr(args, "fault_seed", None)
        )
    worker_faults = getattr(args, "worker_faults", None)
    if worker_faults is not None:
        # Composes with --faults: worker faults ride the same FaultConfig
        # (and the same independent --fault-seed) as the data-plane storm.
        config.faults.enabled = True
        if config.faults.fault_seed is None:
            config.faults.fault_seed = getattr(args, "fault_seed", None)
        config.faults.worker_crash_rate = worker_faults
        config.faults.worker_hang_rate = worker_faults / 2
    if getattr(args, "shard_deadline", None) is not None:
        config.shard_deadline = args.shard_deadline
    if getattr(args, "retries", None) is not None:
        config.monitor.retry = RetryPolicy.standard(max(1, args.retries))
    config.workers = max(1, getattr(args, "workers", 1) or 1)
    config.incremental = bool(getattr(args, "incremental", False))
    config.detector.use_index = not getattr(args, "linear_detector", False)
    return config


def _print_summary(result: ScenarioResult, out) -> None:
    score = score_detector(result.dataset, result.ground_truth)
    print(
        render_table(
            ["metric", "value"],
            [
                ("weeks simulated", result.weeks_run),
                ("monitored cloud FQDNs", result.collector.monitored_count()),
                ("actual takeovers", len(result.ground_truth)),
                ("abused FQDNs detected", len(result.dataset)),
                ("signatures extracted", len(result.detector.signatures)),
                ("precision / recall", f"{percent(score.precision)} / {percent(score.recall)}"),
            ],
            title="Scenario summary",
        ),
        file=out,
    )


def _print_report(
    result: ScenarioResult, out, workers: int = 1, json_path: Optional[str] = None
) -> None:
    from repro.analysis import report_json, run_analyses
    from repro.core.paper_report import build_report

    run = run_analyses(result, workers=max(1, workers))
    print(build_report(result, run=run), file=out)
    if json_path:
        # Atomic for the same reason as --export: a crash mid-write must
        # never leave a torn report where a previous good one stood.
        atomic_write_text(json_path, report_json(run, result))
        print(f"analysis JSON exported to {json_path}", file=out)


def _print_pipeline(result: ScenarioResult, out) -> None:
    metrics = result.metrics
    assert metrics is not None, "run_scenario always attaches metrics"
    print(
        render_table(
            ["stage", "ticks", "wall s", "mean tick ms", "items", "items/s",
             "retries", "fail+skip", "quarantined"],
            metrics.rows(),
            title=f"Pipeline stage metrics ({result.weeks_run} weeks, "
                  f"{metrics.total_wall_time():.2f}s total)",
        ),
        file=out,
    )
    _print_resilience(result, out)


def _print_resilience(result: ScenarioResult, out) -> None:
    """The chaos-run scorecard: what was injected, what survived it."""
    if result.fault_plan is None:
        return
    client = result.internet.client
    rows = [(f"injected {kind}", count)
            for kind, count in result.fault_plan.stats.rows()]
    rows.extend(
        [
            ("client retries", client.retries_total),
            ("backoff simulated s", f"{client.backoff_seconds_total:.0f}"),
            ("breaker trips",
             client.breaker.trips if client.breaker is not None else 0),
            ("quarantined (dead letters)", len(result.dead_letters)),
        ]
    )
    print(render_table(["event", "count"], rows, title="\nResilience summary"),
          file=out)


def _print_audit(result: ScenarioResult, out) -> None:
    survey = survey_attack_surface(
        result.internet, result.collector.monitored_sorted, result.end
    )
    print(
        render_table(
            ["chain status", "FQDNs"], survey.rows(),
            title=f"Attack surface at {result.end.date()} "
                  f"({survey.hijackable} deterministically hijackable)",
        ),
        file=out,
    )
    exposed = [r for r in survey.reports if r.hijackable]
    if exposed:
        print(
            render_table(
                ["FQDN", "service", "re-registrable name"],
                [(r.fqdn, r.service_key, r.resource_name) for r in exposed],
                title="\nHijackable right now",
            ),
            file=out,
        )


def _print_metrics(registry: MetricsRegistry, out) -> None:
    rows = registry.rows()
    if not rows:
        rows = [("(no metrics recorded)", "-")]
    print(render_table(["series", "value"], rows, title="\nMetrics registry"),
          file=out)


def _run_perf(args: argparse.Namespace, out) -> int:
    """The ``perf`` subcommand: compare, print, map to an exit code."""
    try:
        report = perf_compare(
            args.baseline,
            args.candidate,
            threshold=args.threshold,
            min_ms=args.min_ms,
            check=args.check,
        )
    except PerfInputError as error:
        print(f"perf: {error}", file=sys.stderr)
        return EXIT_MALFORMED
    for line in report["lines"]:
        print(line, file=out)
    return report["exit_code"]


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = _build_parser().parse_args(argv)
    if args.command == "perf":
        # Pure file comparison: no scenario, no observability setup.
        return _run_perf(args, out)
    config = _config_from_args(args)
    # ``profile`` implies observability; otherwise any flag turns it
    # on.  Disabled, the OBS singleton stays null-object and free.
    obs_active = (
        args.command == "profile"
        or args.metrics
        or args.trace
        or args.metrics_json
    )
    registry: Optional[MetricsRegistry] = None
    tracer: Optional[Tracer] = None
    series: Optional[TimeSeriesRecorder] = None
    chrome_out: Optional[str] = None
    if obs_active:
        registry = MetricsRegistry()
        if args.trace and args.trace_format == "chrome":
            # Chrome export needs the whole event list to lay out lanes
            # and normalise timestamps: buffer the run, convert at exit.
            chrome_out = args.trace
            tracer = BufferTracer(sample_every=max(1, args.trace_sample))
        else:
            tracer = Tracer(
                path=args.trace, sample_every=max(1, args.trace_sample)
            )
        series = TimeSeriesRecorder()
        OBS.configure(metrics=registry, tracer=tracer, series=series)
    store: Optional[CheckpointStore] = None
    if args.checkpoint_dir:
        store = CheckpointStore(args.checkpoint_dir)
    elif args.resume:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    try:
        result = run_scenario(
            config,
            checkpoint_store=store,
            checkpoint_every=max(1, args.checkpoint_every),
            resume=args.resume,
        )
        if store is not None and args.resume and store.last_recovery is not None:
            recovery = store.last_recovery
            for name, reason in recovery.skipped:
                print(f"skipped corrupt checkpoint {name}: {reason}", file=out)
            if recovery.loaded is not None:
                print(f"resumed from checkpoint {recovery.loaded}", file=out)
            else:
                print("no intact checkpoint found; ran from scratch", file=out)
        if args.command == "run":
            _print_summary(result, out)
            if args.export:
                # Atomic: a crash mid-export must never leave a torn
                # dataset where a previous good one stood.
                atomic_write_text(args.export, dataset_to_json(result.dataset, indent=2))
                print(f"\ndataset exported to {args.export}", file=out)
        elif args.command == "report":
            _print_report(
                result, out,
                workers=getattr(args, "analysis_workers", 1),
                json_path=getattr(args, "report_json", None),
            )
        elif args.command == "audit":
            _print_audit(result, out)
        elif args.command == "pipeline":
            _print_pipeline(result, out)
        elif args.command == "profile":
            print(render_profile(result, registry, tracer, series), file=out)
        if args.metrics and args.command != "profile":
            _print_metrics(registry, out)
    finally:
        if obs_active:
            try:
                # The trailing metrics event makes the trace
                # self-contained: CI asserts counters straight off the
                # JSONL.  Exports run in the finally so a crashed run
                # still leaves whatever telemetry it accumulated.
                tracer.emit_metrics(registry)
                if chrome_out is not None:
                    atomic_write_text(chrome_out, render_chrome(tracer.events))
                if args.metrics_json:
                    atomic_write_text(
                        args.metrics_json,
                        json.dumps(
                            series.export(
                                registry,
                                run={
                                    "command": args.command,
                                    "seed": args.seed,
                                    "scale": args.scale,
                                    "workers": config.workers,
                                    "incremental": config.incremental,
                                },
                            ),
                            indent=2,
                        ),
                    )
            finally:
                # Whatever the export path did, the JSONL handle must
                # close (flushing it) and the singleton must reset.
                tracer.close()
                OBS.reset()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
