"""Cloud platform substrate.

Models the 12 platforms the paper monitors (Table 2): per-service
resource registries, the three allocation disciplines that decide
hijackability (Section 4.3) — user-chosen *freetext* names that an
attacker can deterministically re-register, provider-generated random
names, and lottery-assigned dedicated IPs — plus the virtual-hosting
edge layer, custom-domain aliasing with CNAME verification, and
provider-published IP ranges/suffix lists (Appendix A.1).
"""

from repro.cloud.capabilities import (
    AccessLevel,
    Capability,
    capabilities_for_access,
)
from repro.cloud.provider import (
    CloudProvider,
    CustomDomainError,
    ProvisioningError,
    ReleaseError,
)
from repro.cloud.resources import CloudResource, ResourceStatus
from repro.cloud.specs import (
    CloudServiceSpec,
    NamingPolicy,
    DEFAULT_SERVICE_SPECS,
    cloud_suffixes,
    spec_by_key,
)
from repro.cloud.catalog import CloudCatalog, build_catalog

__all__ = [
    "AccessLevel",
    "Capability",
    "capabilities_for_access",
    "CloudProvider",
    "CloudResource",
    "ResourceStatus",
    "CloudServiceSpec",
    "NamingPolicy",
    "DEFAULT_SERVICE_SPECS",
    "cloud_suffixes",
    "spec_by_key",
    "CloudCatalog",
    "build_catalog",
    "ProvisioningError",
    "ReleaseError",
    "CustomDomainError",
]
