"""Attacker-capability model (Table 4 / Figure 17).

What an attacker can do with a hijacked resource is a function of the
*degree of control* the resource grants:

* **static content** (S3 static hosting, a CMS): the provider's
  webserver reads and returns attacker files — file/content/html/
  javascript capabilities, but no response headers and no TLS
  configuration by default;
* **full webserver** (web apps, orchestration, CDN/LB endpoints,
  VMs): requests are processed by attacker-controlled logic — all of
  the above plus headers and https.

The cookie consequences (Section 5.5): javascript capability reads
non-HttpOnly cookies; headers capability reads *all* cookies; https
capability additionally receives Secure cookies.
"""

from __future__ import annotations

import enum
from typing import FrozenSet


class AccessLevel(enum.Enum):
    """Degree of control a resource type grants (Figure 17 columns)."""

    STATIC_CONTENT = "static-content"
    FULL_WEBSERVER = "full-webserver"
    DNS_ZONE = "dns-zone"


class Capability(enum.Enum):
    """Atomic attacker capabilities (Table 4's rightmost column)."""

    FILE = "file"
    CONTENT = "content"
    HTML = "html"
    JAVASCRIPT = "javascript"
    HEADERS = "headers"
    HTTPS = "https"
    DNS = "dns"


_CONTENT_CAPS = frozenset(
    {Capability.FILE, Capability.CONTENT, Capability.HTML, Capability.JAVASCRIPT}
)
_SERVER_CAPS = _CONTENT_CAPS | {Capability.HEADERS, Capability.HTTPS}
_DNS_CAPS = frozenset(
    {Capability.DNS, Capability.CONTENT, Capability.HTML, Capability.JAVASCRIPT,
     Capability.FILE, Capability.HEADERS, Capability.HTTPS}
)


def capabilities_for_access(access: AccessLevel) -> FrozenSet[Capability]:
    """The capability set granted by an access level."""
    if access == AccessLevel.STATIC_CONTENT:
        return _CONTENT_CAPS
    if access == AccessLevel.FULL_WEBSERVER:
        return _SERVER_CAPS
    return _DNS_CAPS


def can_steal_cookie(access: AccessLevel, http_only: bool, secure: bool) -> bool:
    """Whether a hijacker with ``access`` can obtain such a cookie.

    Implements Section 5.5's rules: HttpOnly cookies require header
    access (full webserver); Secure cookies additionally require the
    https capability (also full webserver, since configuring a
    certificate needs server control).
    """
    caps = capabilities_for_access(access)
    if http_only and Capability.HEADERS not in caps:
        return False
    if secure and Capability.HTTPS not in caps:
        return False
    return True
