"""The catalog of cloud services the paper monitors.

Each :class:`CloudServiceSpec` describes one row of Tables 2/3: which
provider, what the service does, the generated-domain template, and —
decisive for hijackability (Section 4.3) — the naming policy:

* ``FREETEXT``: the customer picks the label (``example`` →
  ``example.azurewebsites.net``); publicly visible via the CNAME and
  deterministically re-registrable → the resources actually abused.
* ``RANDOM_NAME``: the provider generates the label (Google's model);
  an attacker cannot replicate it → no abuse observed.
* ``DEDICATED_IP``: the customer gets a random address from the pool;
  re-acquiring a specific one is a lottery → no abuse observed.
* ``DNS_ZONE``: hosted DNS with randomly assigned nameserver sets
  (stale-NS takeover class of [1]).
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import Dict, NamedTuple, Optional, Tuple

from repro.cloud.capabilities import AccessLevel


class NamingPolicy(enum.Enum):
    """How a service assigns the identity an attacker would need."""

    FREETEXT = "freetext"
    RANDOM_NAME = "random-name"
    DEDICATED_IP = "dedicated-ip"
    DNS_ZONE = "dns-zone"


@dataclass(frozen=True)
class CloudServiceSpec:
    """One cloud service as monitored by the paper."""

    key: str
    provider: str
    function: str
    naming: NamingPolicy
    access: AccessLevel
    suffix_template: str = ""
    zone_apex: str = ""
    regions: Tuple[str, ...] = ()
    #: Services whose generated names resolve via a DNS wildcard even
    #: after the resource is deleted (S3's model): the name keeps
    #: resolving to the edge, which answers with the provider 404 —
    #: the fingerprint takeover scanners look for.
    wildcard_dns: bool = False

    def wildcard_base(self, region: Optional[str] = None) -> str:
        """The base name under which wildcard DNS answers (S3-style)."""
        if not self.wildcard_dns:
            raise ValueError(f"service {self.key} has no wildcard DNS")
        base = self.suffix_template.replace("{name}.", "", 1)
        if "{region}" in base:
            if region is None:
                raise ValueError(f"service {self.key} requires a region")
            base = base.format(region=region)
        return base

    def generated_fqdn(self, name: str, region: Optional[str] = None) -> str:
        """The provider-generated domain for a resource called ``name``."""
        if not self.suffix_template:
            raise ValueError(f"service {self.key} has no generated domains")
        if "{region}" in self.suffix_template:
            if region is None:
                raise ValueError(f"service {self.key} requires a region")
            if region not in self.regions:
                raise ValueError(f"unknown region {region!r} for {self.key}")
            return self.suffix_template.format(name=name, region=region)
        return self.suffix_template.format(name=name)


_AWS_REGIONS = ("us-east-1", "us-west-2", "eu-west-1", "ap-southeast-1")
_AZURE_REGIONS = ("eastus", "westeurope", "southeastasia")

#: Table 2/3's service list.  Ordering matters only for reporting.
DEFAULT_SERVICE_SPECS: Tuple[CloudServiceSpec, ...] = (
    # -- Azure: the majority of observed abuse -------------------------------
    CloudServiceSpec(
        key="azure-web-app", provider="Azure", function="Web App",
        naming=NamingPolicy.FREETEXT, access=AccessLevel.FULL_WEBSERVER,
        suffix_template="{name}.azurewebsites.net", zone_apex="azurewebsites.net",
    ),
    CloudServiceSpec(
        key="azure-traffic-manager", provider="Azure", function="Traffic Router",
        naming=NamingPolicy.FREETEXT, access=AccessLevel.FULL_WEBSERVER,
        suffix_template="{name}.trafficmanager.net", zone_apex="trafficmanager.net",
    ),
    CloudServiceSpec(
        key="azure-cloudapp-legacy", provider="Azure", function="VM",
        naming=NamingPolicy.FREETEXT, access=AccessLevel.FULL_WEBSERVER,
        suffix_template="{name}.cloudapp.net", zone_apex="cloudapp.net",
    ),
    CloudServiceSpec(
        key="azure-cdn", provider="Azure", function="CDN",
        naming=NamingPolicy.FREETEXT, access=AccessLevel.FULL_WEBSERVER,
        suffix_template="{name}.azureedge.net", zone_apex="azureedge.net",
    ),
    CloudServiceSpec(
        key="azure-cloudapp-regional", provider="Azure", function="VM",
        naming=NamingPolicy.FREETEXT, access=AccessLevel.FULL_WEBSERVER,
        suffix_template="{name}.{region}.cloudapp.azure.com",
        zone_apex="cloudapp.azure.com", regions=_AZURE_REGIONS,
    ),
    CloudServiceSpec(
        key="azure-sip-web-app", provider="Azure", function="Web App",
        naming=NamingPolicy.FREETEXT, access=AccessLevel.FULL_WEBSERVER,
        suffix_template="{name}.sip.azurewebsites.windows.net",
        zone_apex="sip.azurewebsites.windows.net",
    ),
    # -- AWS ---------------------------------------------------------------------
    CloudServiceSpec(
        key="aws-s3-static", provider="AWS", function="Static Hosting",
        naming=NamingPolicy.FREETEXT, access=AccessLevel.STATIC_CONTENT,
        suffix_template="{name}.s3-website.{region}.amazonaws.com",
        zone_apex="amazonaws.com", regions=_AWS_REGIONS,
        wildcard_dns=True,
    ),
    CloudServiceSpec(
        key="aws-elastic-beanstalk", provider="AWS", function="Orchestration",
        naming=NamingPolicy.FREETEXT, access=AccessLevel.FULL_WEBSERVER,
        suffix_template="{name}.{region}.elasticbeanstalk.com",
        zone_apex="elasticbeanstalk.com", regions=_AWS_REGIONS,
    ),
    CloudServiceSpec(
        key="aws-ec2-ip", provider="AWS", function="VM (dedicated IP)",
        naming=NamingPolicy.DEDICATED_IP, access=AccessLevel.FULL_WEBSERVER,
    ),
    # -- the long tail ----------------------------------------------------------------
    CloudServiceSpec(
        key="heroku-app", provider="Heroku", function="Web App",
        naming=NamingPolicy.FREETEXT, access=AccessLevel.FULL_WEBSERVER,
        suffix_template="{name}.herokuapp.com", zone_apex="herokuapp.com",
    ),
    CloudServiceSpec(
        key="pantheon-site", provider="Pantheon", function="CMS",
        naming=NamingPolicy.FREETEXT, access=AccessLevel.STATIC_CONTENT,
        suffix_template="live-{name}.pantheonsite.io", zone_apex="pantheonsite.io",
    ),
    CloudServiceSpec(
        key="netlify-app", provider="Netlify", function="Web App",
        naming=NamingPolicy.FREETEXT, access=AccessLevel.FULL_WEBSERVER,
        suffix_template="{name}.netlify.app", zone_apex="netlify.app",
    ),
    # -- platforms with no observed abuse (random identifiers) ---------------------------
    CloudServiceSpec(
        key="gcp-appspot", provider="Google Cloud", function="Web App",
        naming=NamingPolicy.RANDOM_NAME, access=AccessLevel.FULL_WEBSERVER,
        suffix_template="{name}.appspot.com", zone_apex="appspot.com",
    ),
    CloudServiceSpec(
        key="gcp-vm-ip", provider="Google Cloud", function="VM (dedicated IP)",
        naming=NamingPolicy.DEDICATED_IP, access=AccessLevel.FULL_WEBSERVER,
    ),
    CloudServiceSpec(
        key="cloudflare-lb", provider="Cloudflare", function="CDN & Load Balancing",
        naming=NamingPolicy.RANDOM_NAME, access=AccessLevel.FULL_WEBSERVER,
        suffix_template="{name}.cdn.cloudflare.net", zone_apex="cdn.cloudflare.net",
    ),
    CloudServiceSpec(
        key="azure-dns-zone", provider="Azure", function="DNS Hosting",
        naming=NamingPolicy.DNS_ZONE, access=AccessLevel.DNS_ZONE,
        suffix_template="ns{name}.azure-dns.com", zone_apex="azure-dns.com",
    ),
)

_SPEC_INDEX: Dict[str, CloudServiceSpec] = {s.key: s for s in DEFAULT_SERVICE_SPECS}


def spec_by_key(key: str) -> CloudServiceSpec:
    """Look up a service spec; unknown keys raise ``KeyError``."""
    return _SPEC_INDEX[key]


class ParsedGeneratedFqdn(NamedTuple):
    """Result of reverse-parsing a provider-generated domain."""

    spec: CloudServiceSpec
    name: str
    region: Optional[str]


def _template_regex(template: str) -> "re.Pattern":
    pattern = re.escape(template)
    pattern = pattern.replace(re.escape("{name}"), r"(?P<name>[a-z0-9-]+)")
    pattern = pattern.replace(re.escape("{region}"), r"(?P<region>[a-z0-9-]+)")
    return re.compile(rf"^{pattern}$")


_TEMPLATE_REGEXES: Tuple[Tuple[CloudServiceSpec, "re.Pattern"], ...] = tuple(
    (spec, _template_regex(spec.suffix_template))
    for spec in DEFAULT_SERVICE_SPECS
    if spec.suffix_template
)


def parse_generated_fqdn(fqdn: str) -> Optional[ParsedGeneratedFqdn]:
    """Recover (service, resource name, region) from a generated domain.

    This is the attacker's (and the analyst's) reverse step: seeing
    ``example.azurewebsites.net`` in a CNAME, recognise the service and
    the freely chosen label ``example`` that could be re-registered.
    Returns ``None`` for domains that match no known template.
    """
    lowered = fqdn.lower().rstrip(".")
    for spec, regex in _TEMPLATE_REGEXES:
        match = regex.match(lowered)
        if match:
            groups = match.groupdict()
            return ParsedGeneratedFqdn(
                spec=spec, name=groups["name"], region=groups.get("region")
            )
    return None


def cloud_suffixes(specs: Tuple[CloudServiceSpec, ...] = DEFAULT_SERVICE_SPECS) -> Tuple[str, ...]:
    """The suffix list fed to Algorithm 1 (Appendix A.1)."""
    suffixes = []
    for spec in specs:
        if spec.zone_apex and spec.zone_apex not in suffixes:
            suffixes.append(spec.zone_apex)
    return tuple(suffixes)


#: Provider-published IP ranges (Appendix A.1's range feeds), scaled to
#: simulation size.  Each provider's edges and VMs draw from these.
DEFAULT_PROVIDER_CIDRS: Dict[str, Tuple[str, ...]] = {
    "Azure": ("20.40.0.0/13", "40.64.0.0/13"),
    "AWS": ("52.0.0.0/11", "54.144.0.0/12"),
    "Heroku": ("34.192.0.0/16",),
    "Pantheon": ("23.185.0.0/16",),
    "Netlify": ("75.2.0.0/16",),
    "Google Cloud": ("34.64.0.0/13", "35.184.0.0/13"),
    "Cloudflare": ("104.16.0.0/13",),
}

#: Headquarters country per provider, used to seed GeoIP annotations.
DEFAULT_PROVIDER_COUNTRIES: Dict[str, str] = {
    "Azure": "US",
    "AWS": "US",
    "Heroku": "US",
    "Pantheon": "US",
    "Netlify": "US",
    "Google Cloud": "US",
    "Cloudflare": "US",
}
