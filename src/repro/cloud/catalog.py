"""Assembly of the full multi-provider cloud layer."""

from __future__ import annotations

from datetime import timedelta
from typing import Dict, List, Optional, Tuple

from repro.cloud.provider import CloudProvider
from repro.cloud.specs import (
    CloudServiceSpec,
    DEFAULT_PROVIDER_CIDRS,
    DEFAULT_PROVIDER_COUNTRIES,
    DEFAULT_SERVICE_SPECS,
    cloud_suffixes,
)
from repro.dns.resolver import Resolver
from repro.dns.zone import ZoneRegistry
from repro.net.addresses import CidrSet, IPv4Pool
from repro.net.geoip import GeoIPDatabase
from repro.net.network import Network
from repro.sim.events import EventLog
from repro.sim.rng import RngStreams


class CloudCatalog:
    """All cloud providers plus the inputs Algorithm 1 consumes.

    ``suffixes`` and ``cloud_ips`` correspond to the paper's
    ``cloud_suffixes`` / ``cloud_IPs`` arguments: the published suffix
    list and the union of published provider IP ranges (Appendix A.1).
    """

    def __init__(
        self,
        providers: Dict[str, CloudProvider],
        suffixes: Tuple[str, ...],
        cloud_ips: CidrSet,
        geoip: GeoIPDatabase,
    ):
        self.providers = providers
        self.suffixes = suffixes
        self.cloud_ips = cloud_ips
        self.geoip = geoip

    def provider(self, name: str) -> CloudProvider:
        """Look up a provider by display name."""
        return self.providers[name]

    def attach_resolver(self, resolver: Resolver) -> None:
        """Wire custom-domain verification on every provider."""
        for provider in self.providers.values():
            provider.attach_resolver(resolver)

    def all_resources(self) -> List:
        """Every resource across every provider, creation order per provider."""
        out = []
        for provider in self.providers.values():
            out.extend(provider.all_resources())
        return out

    def find_service_owner(self, service_key: str) -> CloudProvider:
        """The provider offering ``service_key``."""
        for provider in self.providers.values():
            if service_key in provider.specs:
                return provider
        raise KeyError(service_key)


def build_catalog(
    zones: ZoneRegistry,
    network: Network,
    streams: RngStreams,
    events: Optional[EventLog] = None,
    specs: Tuple[CloudServiceSpec, ...] = DEFAULT_SERVICE_SPECS,
    edge_count: int = 4,
    edge_icmp_drop_rate: float = 0.28,
    reregistration_cooldown: timedelta = timedelta(0),
    randomize_names: bool = False,
    journal=None,
) -> CloudCatalog:
    """Stand up every provider with its pools, edges, zones and GeoIP.

    ``edge_icmp_drop_rate`` defaults to 0.28 so that roughly 72% of
    cloud-hosted domains answer ping, matching the paper's Section 2
    measurement.
    """
    by_provider: Dict[str, List[CloudServiceSpec]] = {}
    for spec in specs:
        by_provider.setdefault(spec.provider, []).append(spec)

    geoip = GeoIPDatabase()
    providers: Dict[str, CloudProvider] = {}
    all_cidrs: List[str] = []
    for provider_name, provider_specs in by_provider.items():
        cidrs = DEFAULT_PROVIDER_CIDRS.get(provider_name)
        if cidrs is None:
            raise ValueError(f"no published CIDRs for provider {provider_name!r}")
        pool = IPv4Pool(cidrs, reuse_bias=0.0)
        provider = CloudProvider(
            name=provider_name,
            specs=provider_specs,
            pool=pool,
            zones=zones,
            network=network,
            rng=streams.get(f"cloud:{provider_name}"),
            events=events,
            edge_count=edge_count,
            edge_icmp_drop_rate=edge_icmp_drop_rate,
            reregistration_cooldown=reregistration_cooldown,
            randomize_names=randomize_names,
            journal=journal,
        )
        providers[provider_name] = provider
        country = DEFAULT_PROVIDER_COUNTRIES.get(provider_name, "US")
        for cidr in cidrs:
            geoip.add(cidr, country, provider_name)
            all_cidrs.append(cidr)

    return CloudCatalog(
        providers=providers,
        suffixes=cloud_suffixes(specs),
        cloud_ips=CidrSet(all_cidrs),
        geoip=geoip,
    )
