"""Cloud resource objects and their lifecycle states."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from datetime import datetime
from typing import List, Optional

from repro.cloud.capabilities import AccessLevel, Capability, capabilities_for_access
from repro.cloud.specs import CloudServiceSpec, NamingPolicy
from repro.web.site import StaticSite


class ResourceStatus(enum.Enum):
    """Lifecycle state of a cloud resource."""

    ACTIVE = "active"
    RELEASED = "released"


@dataclass
class CloudResource:
    """One provisioned resource (a web app, a bucket, a VM, ...).

    ``generated_fqdn`` is the provider-generated domain (empty for
    dedicated-IP resources, which are reached by address).  ``ip`` is
    the serving address: a shared edge for name-routed services, a
    dedicated address for VMs.  ``site`` is the content the resource
    serves.  ``owner`` is the controlling account name — the ground
    truth that lets the reproduction score the detector, which the
    paper could not do.
    """

    spec: CloudServiceSpec
    name: str
    owner: str
    created_at: datetime
    generated_fqdn: str = ""
    region: Optional[str] = None
    ip: str = ""
    site: StaticSite = field(default_factory=StaticSite)
    status: ResourceStatus = ResourceStatus.ACTIVE
    released_at: Optional[datetime] = None
    custom_domains: List[str] = field(default_factory=list)
    nameservers: List[str] = field(default_factory=list)

    @property
    def provider(self) -> str:
        return self.spec.provider

    @property
    def service_key(self) -> str:
        return self.spec.key

    @property
    def access(self) -> AccessLevel:
        return self.spec.access

    @property
    def is_user_nameable(self) -> bool:
        """Whether the identity was freely chosen (Section 4.3's target)."""
        return self.spec.naming == NamingPolicy.FREETEXT

    @property
    def active(self) -> bool:
        return self.status == ResourceStatus.ACTIVE

    def capabilities(self) -> frozenset:
        """Capabilities a controller of this resource has (Table 4)."""
        return capabilities_for_access(self.access)

    def has_capability(self, capability: Capability) -> bool:
        return capability in self.capabilities()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        where = self.generated_fqdn or self.ip
        return (
            f"CloudResource({self.spec.key}:{self.name} at {where}, "
            f"owner={self.owner}, {self.status.value})"
        )
