"""Cloud providers: provisioning, release, re-registration, aliasing.

This module implements the mechanics that create and enable the hijacks:

* provisioning a freetext resource publishes an A record for the
  generated domain and routes it on a shared virtual-hosting edge
  (Figure 14);
* releasing a resource purges the provider-side record and route — but
  of course cannot purge the *customer's* CNAME, which now dangles;
* the released freetext name becomes available again and anyone,
  including an attacker, can re-register it (Section 4.3's
  "deterministic re-registration");
* custom domains are attached after a CNAME-chain verification — which
  a dangling record passes by construction, so the attacker can alias
  the victim FQDN onto their resource.

An optional re-registration cooldown and name-randomization switch
implement the countermeasures the paper recommends in Section 7, so
their effect can be measured (see ``benchmarks/bench_countermeasures.py``).
"""

from __future__ import annotations

import random
from contextlib import nullcontext
from datetime import datetime, timedelta
from typing import Dict, List, Optional, Tuple

from repro.cloud.resources import CloudResource, ResourceStatus
from repro.cloud.specs import CloudServiceSpec, NamingPolicy
from repro.dns.names import is_subdomain_of, normalize_name
from repro.dns.records import RRType, ResourceRecord
from repro.dns.resolver import Resolver
from repro.dns.zone import ZoneRegistry
from repro.net.addresses import IPv4Pool
from repro.net.network import Network
from repro.sim.events import EventLog
from repro.sim.revisions import RevisionJournal
from repro.web.server import VirtualHostServer, dedicated_server


class ProvisioningError(RuntimeError):
    """Raised when a resource cannot be created (name taken, etc.)."""


class ReleaseError(RuntimeError):
    """Raised on invalid release operations."""


class CustomDomainError(RuntimeError):
    """Raised when custom-domain verification fails."""


class CloudProvider:
    """One cloud platform.

    Parameters
    ----------
    name:
        Provider display name ("Azure", "AWS", ...).
    specs:
        The service specs belonging to this provider.
    pool:
        The provider's published IP space.
    edge_count:
        Number of shared virtual-hosting edge servers to stand up.
    edge_icmp_drop_rate:
        Fraction of edges configured to drop ICMP (drives the paper's
        Section 2 liveness comparison).
    reregistration_cooldown:
        Quarantine on released freetext names (countermeasure knob;
        the paper's measured reality is zero).
    randomize_names:
        When true, freetext services behave like RANDOM_NAME services —
        the other recommended countermeasure.
    """

    def __init__(
        self,
        name: str,
        specs: List[CloudServiceSpec],
        pool: IPv4Pool,
        zones: ZoneRegistry,
        network: Network,
        rng: random.Random,
        events: Optional[EventLog] = None,
        edge_count: int = 4,
        edge_icmp_drop_rate: float = 0.0,
        reregistration_cooldown: timedelta = timedelta(0),
        randomize_names: bool = False,
        journal: Optional[RevisionJournal] = None,
    ):
        self.name = name
        self.specs = {spec.key: spec for spec in specs}
        self.pool = pool
        self._zones = zones
        self._network = network
        self._rng = rng
        if events is None and journal is not None and journal.events is not None:
            # A journal bound to a log implies that log is the world's.
            events = journal.events
        self._events = events if events is not None else EventLog()
        #: Revision journal every mutation (provision, release, routing,
        #: site content) publishes through; a private one bound to this
        #: provider's event log keeps standalone providers working.
        self.journal = journal if journal is not None else RevisionJournal(self._events)
        self.reregistration_cooldown = reregistration_cooldown
        self.randomize_names = randomize_names
        self._resolver: Optional[Resolver] = None
        #: Fault-injection plan shared with servers this provider stands
        #: up (set post-construction by the Internet when chaos is on).
        self.fault_plan = None

        self._active: Dict[Tuple[str, str], CloudResource] = {}
        self._released_at: Dict[Tuple[str, str], datetime] = {}
        self._all_resources: List[CloudResource] = []
        # Keyed by (service_key, name) — unique among *active* resources
        # and, unlike id(), stable across pickle round-trips (checkpoint
        # resume restores the engine in a fresh process).
        self._resource_edges: Dict[Tuple[str, str], VirtualHostServer] = {}

        self._ensure_zones()
        self._edges: List[VirtualHostServer] = []
        self._build_edges(edge_count, edge_icmp_drop_rate)
        self._wildcard_edges: Dict[Tuple[str, Optional[str]], VirtualHostServer] = {}
        self._publish_wildcards()

    # -- construction helpers -------------------------------------------------

    def _ensure_zones(self) -> None:
        for spec in self.specs.values():
            if spec.zone_apex and self._zones.get_zone(spec.zone_apex) is None:
                self._zones.create_zone(spec.zone_apex)

    def _build_edges(self, edge_count: int, icmp_drop_rate: float) -> None:
        for index in range(edge_count):
            drop_icmp = self._rng.random() < icmp_drop_rate
            edge = VirtualHostServer(self.name, icmp=not drop_icmp, journal=self.journal)
            ip = self.pool.allocate(self._rng)
            self._network.bind(ip, edge)
            edge.ip = ip  # annotate for routing bookkeeping
            self._edges.append(edge)

    def _publish_wildcards(self) -> None:
        """Install the permanent wildcard DNS of S3-style services.

        One designated edge per region answers for every name under the
        service base — deleted resources included, which then get the
        provider 404 (the takeover-scanner fingerprint).
        """
        from repro.sim.clock import DEFAULT_START

        for spec in self.specs.values():
            if not spec.wildcard_dns:
                continue
            zone = self._zones.get_zone(spec.zone_apex)
            for region in (spec.regions or (None,)):
                edge = self._rng.choice(self._edges)
                self._wildcard_edges[(spec.key, region)] = edge
                base = spec.wildcard_base(region)
                zone.add(
                    ResourceRecord(name=f"*.{base}", rtype=RRType.A, rdata=edge.ip),
                    DEFAULT_START,
                )

    def attach_resolver(self, resolver: Resolver) -> None:
        """Give the provider a resolver for custom-domain verification."""
        self._resolver = resolver

    # -- introspection -------------------------------------------------------------

    @property
    def events(self) -> EventLog:
        return self._events

    @property
    def edges(self) -> List[VirtualHostServer]:
        return list(self._edges)

    def active_resources(self) -> List[CloudResource]:
        """Currently provisioned resources."""
        return list(self._active.values())

    def all_resources(self) -> List[CloudResource]:
        """Every resource ever provisioned, in creation order."""
        return list(self._all_resources)

    def get_active(self, service_key: str, name: str) -> Optional[CloudResource]:
        """The active resource with this service/name, if any."""
        return self._active.get((service_key, name))

    def is_name_available(
        self, service_key: str, name: str, at: Optional[datetime] = None
    ) -> bool:
        """Whether a freetext name can currently be registered.

        This is the check an attacker performs before a takeover
        attempt; it honours the re-registration cooldown if one is
        configured.
        """
        key = (service_key, name)
        if key in self._active:
            return False
        if at is not None and self.reregistration_cooldown > timedelta(0):
            released = self._released_at.get(key)
            if released is not None and at < released + self.reregistration_cooldown:
                return False
        return True

    # -- provisioning --------------------------------------------------------------------

    def provision(
        self,
        service_key: str,
        name: str,
        owner: str,
        at: datetime,
        region: Optional[str] = None,
    ) -> CloudResource:
        """Create a resource; returns the :class:`CloudResource`.

        For FREETEXT services ``name`` is the customer's chosen label;
        for RANDOM_NAME services (and when ``randomize_names`` is on)
        the label is generated and ``name`` is only a hint recorded as
        the resource's display name.
        """
        spec = self._spec(service_key)
        if spec.naming == NamingPolicy.DEDICATED_IP:
            return self._provision_dedicated_ip(spec, name, owner, at)
        if spec.naming == NamingPolicy.DNS_ZONE:
            return self._provision_dns_zone(spec, name, owner, at)
        label = name
        if spec.naming == NamingPolicy.RANDOM_NAME or self.randomize_names:
            label = self._random_label()
        if not self.is_name_available(service_key, label, at):
            raise ProvisioningError(f"{service_key} name {label!r} is taken")
        if spec.regions and region is None:
            region = self._rng.choice(spec.regions)
        fqdn = spec.generated_fqdn(label, region)
        resource = CloudResource(
            spec=spec, name=label, owner=owner, created_at=at,
            generated_fqdn=fqdn, region=region,
        )
        if spec.wildcard_dns:
            # The wildcard already resolves the name; only routing is
            # per-resource state.
            edge = self._wildcard_edges[(spec.key, region)]
        else:
            edge = self._rng.choice(self._edges)
            zone = self._zones.get_zone(spec.zone_apex)
            zone.add(ResourceRecord(name=fqdn, rtype=RRType.A, rdata=edge.ip), at)
        resource.ip = edge.ip
        edge.route(fqdn, resource.site)
        self._register(resource, edge, at)
        return resource

    def _provision_dedicated_ip(
        self, spec: CloudServiceSpec, name: str, owner: str, at: datetime
    ) -> CloudResource:
        resource = CloudResource(spec=spec, name=name, owner=owner, created_at=at)
        server = dedicated_server(
            self.name, resource.site, fault_plan=self.fault_plan, journal=self.journal
        )
        ip = self.pool.allocate(self._rng)
        self._network.bind(ip, server)
        server.ip = ip
        resource.ip = ip
        self._register(resource, server, at)
        return resource

    def _provision_dns_zone(
        self, spec: CloudServiceSpec, name: str, owner: str, at: datetime
    ) -> CloudResource:
        # Hosted DNS: the customer's zone is served from a randomly
        # assigned nameserver set (purple in Figure 13).
        ns_set = sorted(
            spec.generated_fqdn(f"{self._rng.randrange(1, 100)}-{self._random_label(6)}")
            for _ in range(2)
        )
        resource = CloudResource(
            spec=spec, name=name, owner=owner, created_at=at,
            generated_fqdn=ns_set[0],
        )
        resource.nameservers = ns_set
        self._register(resource, None, at)
        return resource

    def _register(
        self, resource: CloudResource, edge: Optional[VirtualHostServer], at: datetime
    ) -> None:
        self._active[(resource.service_key, resource.name)] = resource
        self._all_resources.append(resource)
        if edge is not None:
            self._resource_edges[(resource.service_key, resource.name)] = edge
        self._adopt_site(resource)
        self.journal.bump("cloud", resource.generated_fqdn or resource.ip)
        self._events.record(
            at, "cloud.provision", resource.generated_fqdn or resource.ip,
            provider=self.name, service=resource.service_key,
            name=resource.name, owner=resource.owner,
        )

    def _adopt_site(self, resource: CloudResource) -> None:
        """Attach the resource's site to the journal under a stable key.

        The key survives site swaps (``replace_site``) and — on purpose
        — collides across re-registrations of the same freetext name,
        so a monitor that sampled the old tenant sees the new tenant's
        deploys as changes to the same subject.
        """
        site = resource.site
        if site is not None and hasattr(site, "bind_journal"):
            site.bind_journal(
                self.journal, (self.name, resource.service_key, resource.name)
            )

    # -- release -------------------------------------------------------------------------------

    def release(self, resource: CloudResource, at: datetime) -> None:
        """Tear down a resource.

        Provider-side state (records, routes, IP binding) is purged —
        the point is that nothing the provider does here can purge the
        *customer's* DNS, which is what dangles.
        """
        key = (resource.service_key, resource.name)
        if self._active.get(key) is not resource:
            raise ReleaseError(f"resource not active: {resource!r}")
        edge = self._resource_edges.pop((resource.service_key, resource.name), None)
        if resource.generated_fqdn and resource.spec.zone_apex:
            if not resource.spec.wildcard_dns:
                zone = self._zones.get_zone(resource.spec.zone_apex)
                zone.remove_all(resource.generated_fqdn, RRType.A, at)
            if edge is not None:
                edge.unroute(resource.generated_fqdn)
        if edge is not None:
            for custom in resource.custom_domains:
                if custom.lower() in [h.lower() for h in edge.routed_hosts()]:
                    edge.unroute(custom)
        if resource.spec.naming == NamingPolicy.DEDICATED_IP and resource.ip:
            self._network.unbind(resource.ip)
            self.pool.release(resource.ip)
        resource.status = ResourceStatus.RELEASED
        resource.released_at = at
        del self._active[key]
        self._released_at[key] = at
        self.journal.bump("cloud", resource.generated_fqdn or resource.ip)
        self._events.record(
            at, "cloud.release", resource.generated_fqdn or resource.ip,
            provider=self.name, service=resource.service_key,
            name=resource.name, owner=resource.owner,
        )

    # -- custom domains & certificates -------------------------------------------------------------

    def add_custom_domain(self, resource: CloudResource, fqdn: str, at: datetime) -> None:
        """Alias ``fqdn`` onto ``resource`` after CNAME verification.

        The provider checks that ``fqdn``'s CNAME chain reaches the
        resource's generated domain.  A dangling record passes this
        check *by definition* — which is exactly how attackers attach
        victim domains to re-registered resources.
        """
        if not resource.active:
            raise CustomDomainError("resource is not active")
        if not resource.generated_fqdn:
            raise CustomDomainError("resource has no generated domain to verify against")
        if self._resolver is None:
            raise CustomDomainError("provider has no resolver attached")
        fqdn = normalize_name(fqdn)
        # The provider verifies through its own resolvers, not the flaky
        # measurement path — chaos injection never fails this check.
        guard = (
            self.fault_plan.suppressed() if self.fault_plan is not None
            else nullcontext()
        )
        with guard:
            result = self._resolver.resolve_a_with_chain(fqdn, at=at)
        if resource.generated_fqdn not in result.cname_chain:
            raise CustomDomainError(
                f"{fqdn} does not CNAME to {resource.generated_fqdn}"
            )
        edge = self._resource_edges.get((resource.service_key, resource.name))
        if edge is None:
            raise CustomDomainError("resource has no edge (dedicated-IP resource?)")
        edge.route(fqdn, resource.site)
        resource.custom_domains.append(fqdn)
        self.journal.bump("cloud", fqdn)
        self._events.record(
            at, "cloud.custom_domain", fqdn,
            provider=self.name, service=resource.service_key,
            resource=resource.name, owner=resource.owner,
        )

    def replace_site(self, resource: CloudResource, site) -> None:
        """Swap the content implementation behind a resource.

        All existing routes (generated domain and custom domains) are
        re-pointed at ``site``.  Used e.g. when an attacker deploys an
        instrumented (cookie-harvesting) site onto a taken-over
        resource.
        """
        edge = self._resource_edges.get((resource.service_key, resource.name))
        if edge is None:
            raise ReleaseError("resource has no routable server")
        hostnames = [resource.generated_fqdn] + list(resource.custom_domains)
        for hostname in hostnames:
            if hostname:
                edge.unroute(hostname)
                edge.route(hostname, site)
        resource.site = site
        self._adopt_site(resource)
        # The swap itself is a content change for the site's subject,
        # even before the new tenant writes a single page.
        if hasattr(site, "journal_key") and site.journal_key is not None:
            self.journal.bump("site", site.journal_key)

    def install_certificate(self, resource: CloudResource, hostname: str, certificate) -> None:
        """Install a TLS certificate for ``hostname`` on the resource's server."""
        edge = self._resource_edges.get((resource.service_key, resource.name))
        if edge is None:
            raise ReleaseError("resource has no server to install a certificate on")
        edge.install_certificate(hostname, certificate)

    def challenge_installer(self, resource: CloudResource):
        """An ACME HTTP-01 installer bound to this resource's site.

        The returned callable serves challenge bytes from the resource
        for any hostname routed to it — the owner's *and* a hijacker's
        path to a valid certificate (Section 5.6).
        """

        def install(host: str, path: str, body: str) -> bool:
            served_hosts = [resource.generated_fqdn] + list(resource.custom_domains)
            if normalize_name(host) not in [normalize_name(h) for h in served_hosts if h]:
                return False
            resource.site.put(path, body, content_type="text/plain")
            return True

        return install

    # -- internals ----------------------------------------------------------------------------------

    def _spec(self, service_key: str) -> CloudServiceSpec:
        spec = self.specs.get(service_key)
        if spec is None:
            raise ProvisioningError(f"{self.name} has no service {service_key!r}")
        return spec

    def _random_label(self, length: int = 12) -> str:
        alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
        return "".join(self._rng.choice(alphabet) for _ in range(length))
