"""DNS substrate: names, records, zones, resolution and passive DNS.

The paper's collection methodology (Algorithm 1) is pure DNS: resolve
each candidate FQDN, inspect the CNAME chain for known cloud suffixes
and the A records for cloud IP ranges.  This package implements the
record semantics that methodology relies on — CNAME chain following,
NXDOMAIN, zone mutation with timestamps (needed for the hijack-duration
analysis of Section 4.4) — plus a FarSight-style passive DNS feed used
for subdomain discovery (Section 3.1).
"""

from repro.dns.names import (
    Name,
    is_subdomain_of,
    normalize_name,
    parent_name,
    registered_domain,
    split_name,
    tld_of,
)
from repro.dns.records import RRType, ResourceRecord
from repro.dns.resolver import Resolver, ResolutionResult, ResolutionStatus
from repro.dns.passive_dns import PassiveDNS, PassiveDNSObservation
from repro.dns.zone import Zone, ZoneRegistry

__all__ = [
    "Name",
    "normalize_name",
    "split_name",
    "parent_name",
    "is_subdomain_of",
    "registered_domain",
    "tld_of",
    "RRType",
    "ResourceRecord",
    "Resolver",
    "ResolutionResult",
    "ResolutionStatus",
    "PassiveDNS",
    "PassiveDNSObservation",
    "Zone",
    "ZoneRegistry",
]
