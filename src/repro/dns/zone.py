"""Authoritative zones with timestamped mutation history.

The hijack-duration analysis (Section 4.4) computes the lifespan of an
abuse as the time between the first abusive HTML snapshot and the DNS
change the owner eventually makes to fix the dangling record.  Zones
therefore keep a full change history, not just current state.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.dns.names import Name, is_subdomain_of, normalize_name, parent_name
from repro.dns.records import RRType, ResourceRecord
from repro.obs import OBS
from repro.sim.revisions import RevisionJournal


#: Journal key (under kind ``"dns"``) bumped whenever the zone *set*
#: changes — registering a new zone can re-route any name.
ZONE_SET_KEY = "__zones__"


@dataclass(frozen=True)
class ZoneChange:
    """One mutation of a zone: a record added or removed at a time."""

    at: datetime
    action: str  # "add" | "remove"
    record: ResourceRecord


class Zone:
    """All records at or below an apex name, with history."""

    def __init__(self, apex: Name, journal: Optional[RevisionJournal] = None):
        self.apex = normalize_name(apex)
        self._records: Dict[Tuple[Name, RRType], List[ResourceRecord]] = {}
        self._history: List[ZoneChange] = []
        self._record_counts: Dict[Name, int] = {}
        #: Memo of (name, rtype) → lookup result, cleared on mutation.
        #: Weekly sweeps re-query the same (mostly unchanged) names, and
        #: wildcard answers synthesize a record object per query without
        #: it; memoized, the same synthesized record is reused until the
        #: zone next changes.
        self._lookup_cache: Dict[Tuple[Name, RRType], List[ResourceRecord]] = {}
        #: Monotonic mutation counter.  Resolution memos snapshot it and
        #: revalidate on every hit, so a stale answer can never outlive
        #: the zone change that invalidated it.
        self.version = 0
        #: Per-name revisions live in the world-wide journal under
        #: ``("dns", name)``.  A ``lookup``/``name_exists`` outcome for
        #: ``name`` is fully pinned by the revisions of ``name`` itself
        #: and of its wildcard key ``*.parent(name)``, so memos
        #: validated at this granularity survive the weekly churn of
        #: *other* names in a big shared provider zone.  An unshared
        #: private journal keeps standalone zones self-contained.
        self.journal = journal if journal is not None else RevisionJournal()

    # -- queries ----------------------------------------------------------

    def covers(self, name: Name) -> bool:
        """Whether ``name`` falls inside this zone's namespace."""
        return is_subdomain_of(name, self.apex)

    def lookup(self, name: Name, rtype: RRType) -> List[ResourceRecord]:
        """Current records of ``rtype`` at ``name`` (possibly empty).

        Supports one-level DNS wildcards: with ``*.zone.example A x``
        present and no exact records at ``foo.zone.example``, the
        wildcard synthesizes an answer for the queried name.  Cloud
        services like S3 static hosting publish exactly such wildcards,
        which is why a deleted bucket's domain keeps resolving and
        serving the provider 404 page.
        """
        normalized = normalize_name(name)
        cached = self._lookup_cache.get((normalized, rtype))
        if cached is not None:
            if OBS.enabled:
                OBS.metrics.inc("zone.lookup.memo_hits")
            return list(cached)
        if OBS.enabled:
            OBS.metrics.inc("zone.lookup.memo_misses")
        result: List[ResourceRecord] = []
        exact = self._records.get((normalized, rtype))
        if exact:
            result = list(exact)
        elif self._record_counts.get(normalized, 0) > 0:
            pass  # name exists with other types: wildcard never applies
        else:
            parent = parent_name(normalized)
            if parent is not None and not normalized.startswith("*."):
                wildcard = self._records.get((f"*.{parent}", rtype))
                if wildcard:
                    result = [
                        ResourceRecord(name=normalized, rtype=rtype, rdata=record.rdata)
                        for record in wildcard
                    ]
        self._lookup_cache[(normalized, rtype)] = result
        return list(result)

    def name_version(self, name: Name) -> int:
        """Mutation counter for ``name`` alone (0 = never mutated)."""
        return self.journal.revision("dns", name)

    def name_exists(self, name: Name) -> bool:
        """Whether any record type currently exists at ``name``."""
        return self._record_counts.get(normalize_name(name), 0) > 0

    def names(self) -> Set[Name]:
        """All names that currently own at least one record."""
        return {name for name, count in self._record_counts.items() if count > 0}

    def all_records(self) -> List[ResourceRecord]:
        """Every current record in the zone."""
        out: List[ResourceRecord] = []
        for records in self._records.values():
            out.extend(records)
        return out

    @property
    def history(self) -> List[ZoneChange]:
        """The full mutation history, oldest first."""
        return list(self._history)

    def history_for(self, name: Name) -> List[ZoneChange]:
        """Mutations affecting ``name``, oldest first."""
        normalized = normalize_name(name)
        return [change for change in self._history if change.record.name == normalized]

    # -- mutation ----------------------------------------------------------

    def add(self, record: ResourceRecord, at: datetime) -> ResourceRecord:
        """Add ``record`` at simulated time ``at``.

        Adding an identical record twice is an error; CNAME records are
        exclusive at a name, as in real DNS.
        """
        if not self.covers(record.name):
            raise ValueError(f"{record.name} is outside zone {self.apex}")
        if record.rtype == RRType.CNAME and self.lookup(record.name, RRType.CNAME):
            raise ValueError(f"{record.name} already has a CNAME")
        bucket = self._records.setdefault((record.name, record.rtype), [])
        if record in bucket:
            raise ValueError(f"duplicate record {record}")
        bucket.append(record)
        self._record_counts[record.name] = self._record_counts.get(record.name, 0) + 1
        self._history.append(ZoneChange(at=at, action="add", record=record))
        self._lookup_cache.clear()
        self.version += 1
        self.journal.bump("dns", record.name)
        return record

    def remove(self, record: ResourceRecord, at: datetime) -> None:
        """Remove ``record`` at simulated time ``at``."""
        bucket = self._records.get((record.name, record.rtype))
        if not bucket or record not in bucket:
            raise ValueError(f"record not present: {record}")
        bucket.remove(record)
        self._record_counts[record.name] -= 1
        self._history.append(ZoneChange(at=at, action="remove", record=record))
        self._lookup_cache.clear()
        self.version += 1
        self.journal.bump("dns", record.name)

    def remove_all(self, name: Name, rtype: RRType, at: datetime) -> int:
        """Remove every ``rtype`` record at ``name``; returns the count."""
        removed = 0
        for record in self.lookup(name, rtype):
            self.remove(record, at)
            removed += 1
        return removed

    def replace(
        self, name: Name, rtype: RRType, rdata: str, at: datetime
    ) -> ResourceRecord:
        """Replace all ``rtype`` records at ``name`` with a single one."""
        self.remove_all(name, rtype, at)
        return self.add(ResourceRecord(name=name, rtype=rtype, rdata=rdata), at)


class ZoneRegistry:
    """The set of authoritative zones making up the simulated DNS.

    Lookup picks the zone with the longest matching apex, mirroring
    delegation: ``example.azurewebsites.net`` matches the provider zone
    ``azurewebsites.net`` rather than ``net``.
    """

    def __init__(self, journal: Optional[RevisionJournal] = None) -> None:
        #: Shared revision journal handed to every zone this registry
        #: creates; a private one keeps standalone registries working.
        self.journal = journal if journal is not None else RevisionJournal()
        self._zones: Dict[Name, Zone] = {}
        #: Memo of name → covering zone (``None`` = no zone covers it),
        #: invalidated whenever a zone is registered.  Zone *content*
        #: changes never move a name between zones, so registration is
        #: the only invalidation point.
        self._zone_for: Dict[Name, Optional[Zone]] = {}
        #: Monotonic registration counter — bumps when the zone *set*
        #: changes, which is the only event that can move a name between
        #: zones (or from "no covering zone" to covered).
        self.version = 0

    def create_zone(self, apex: Name) -> Zone:
        """Create and register an empty zone at ``apex``."""
        normalized = normalize_name(apex)
        if normalized in self._zones:
            raise ValueError(f"zone {normalized} already exists")
        zone = Zone(normalized, journal=self.journal)
        self._zones[normalized] = zone
        # A new zone may now be the most specific cover for previously
        # memoized names (including negative entries): drop the memo.
        self._zone_for.clear()
        self.version += 1
        # The zone *set* changing can re-route any name's resolution,
        # so it is a change signal of its own.
        self.journal.bump("dns", ZONE_SET_KEY)
        return zone

    def get_zone(self, apex: Name) -> Optional[Zone]:
        """The zone registered exactly at ``apex``, or ``None``."""
        return self._zones.get(normalize_name(apex))

    def zone_for(self, name: Name) -> Optional[Zone]:
        """The most specific zone whose namespace contains ``name``.

        Walks the suffixes of ``name`` from longest to shortest, so the
        cost is O(label count), not O(zone count).
        """
        normalized = normalize_name(name)
        if normalized in self._zone_for:
            if OBS.enabled:
                OBS.metrics.inc("zone.zone_for.memo_hits")
            return self._zone_for[normalized]
        if OBS.enabled:
            OBS.metrics.inc("zone.zone_for.memo_misses")
        labels = normalized.split(".")
        zone = None
        for start in range(len(labels)):
            zone = self._zones.get(".".join(labels[start:]))
            if zone is not None:
                break
        self._zone_for[normalized] = zone
        return zone

    def zones(self) -> Iterable[Zone]:
        """All registered zones."""
        return list(self._zones.values())

    def __len__(self) -> int:
        return len(self._zones)
