"""Zone master-file rendering and parsing.

A pragmatic subset of RFC 1035 master-file syntax (one record per line,
no ``$``-directives except ``$ORIGIN``), so simulated zones can be
exported for inspection and test fixtures can be written as zone text
rather than construction code::

    $ORIGIN example.com.
    example.com.      A     198.18.0.10
    www.example.com.  CNAME shop.azurewebsites.net.
    example.com.      CAA   0 issue "letsencrypt.org"
"""

from __future__ import annotations

from datetime import datetime
from typing import List, Optional

from repro.dns.names import normalize_name
from repro.dns.records import RRType, ResourceRecord
from repro.dns.zone import Zone


class ZoneFileError(ValueError):
    """Raised on unparsable zone text."""


def render_zone(zone: Zone) -> str:
    """Serialize a zone's current records as master-file text."""
    lines = [f"$ORIGIN {zone.apex}."]
    for record in sorted(zone.all_records(), key=lambda r: (r.name, r.rtype.value, r.rdata)):
        rdata = record.rdata
        if record.rtype in (RRType.CNAME, RRType.NS):
            rdata = f"{rdata}."
        lines.append(f"{record.name}.\t{record.rtype.value}\t{rdata}")
    return "\n".join(lines) + "\n"


def parse_zone_text(text: str, at: Optional[datetime] = None) -> Zone:
    """Parse master-file text into a fresh :class:`Zone`.

    ``at`` timestamps the record additions (defaults to epoch-of-zone
    semantics via ``datetime.min`` — callers building fixtures should
    pass a real simulated time).
    """
    at = at or datetime(1970, 1, 1)
    origin: Optional[str] = None
    records: List[ResourceRecord] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        if line.startswith("$ORIGIN"):
            parts = line.split()
            if len(parts) != 2:
                raise ZoneFileError(f"line {line_number}: malformed $ORIGIN")
            origin = normalize_name(parts[1])
            continue
        parts = line.split(None, 2)
        if len(parts) != 3:
            raise ZoneFileError(f"line {line_number}: expected 'name type rdata'")
        name, rtype_text, rdata = parts
        try:
            rtype = RRType(rtype_text.upper())
        except ValueError:
            raise ZoneFileError(
                f"line {line_number}: unknown record type {rtype_text!r}"
            ) from None
        if rtype in (RRType.CNAME, RRType.NS):
            rdata = rdata.rstrip(".")
        elif rtype in (RRType.CAA, RRType.TXT):
            rdata = rdata.strip()
        records.append(ResourceRecord(name=name, rtype=rtype, rdata=rdata))
    if origin is None:
        raise ZoneFileError("zone text lacks a $ORIGIN line")
    zone = Zone(origin)
    for record in records:
        zone.add(record, at)
    return zone
