"""DNS resource records."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.dns.names import Name, normalize_name


class RRType(enum.Enum):
    """The record types the reproduction needs.

    ``A``/``CNAME`` drive Algorithm 1, ``NS`` models the stale-NS
    takeover class of prior work [1], ``CAA`` drives the Section 5.6.2
    analysis, ``TXT``/``SOA`` exist for zone realism.
    """

    A = "A"
    AAAA = "AAAA"
    CNAME = "CNAME"
    NS = "NS"
    CAA = "CAA"
    TXT = "TXT"
    SOA = "SOA"


@dataclass(frozen=True)
class ResourceRecord:
    """One immutable record: ``name rtype rdata``.

    ``rdata`` is the normalized target name for name-valued types
    (CNAME/NS), the address string for A/AAAA, and free text otherwise.
    CAA rdata follows the ``flags tag value`` wire text, e.g.
    ``0 issue "letsencrypt.example"``.
    """

    name: Name
    rtype: RRType
    rdata: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", normalize_name(self.name))
        if self.rtype in (RRType.CNAME, RRType.NS):
            object.__setattr__(self, "rdata", normalize_name(self.rdata))

    @property
    def key(self) -> str:
        """A stable identity string for set/dict usage.

        Computed once per record: the fields are frozen and the key is
        rebuilt on every passive-DNS observation, which sits on the
        resolver's hottest path.
        """
        cached = self.__dict__.get("_key")
        if cached is None:
            cached = f"{self.name} {self.rtype.value} {self.rdata}"
            object.__setattr__(self, "_key", cached)
        return cached

    def __str__(self) -> str:
        return self.key


def caa_rdata(tag: str, value: str, flags: int = 0) -> str:
    """Build CAA rdata text, e.g. ``caa_rdata("issue", "ca.example")``."""
    if tag not in ("issue", "issuewild", "iodef"):
        raise ValueError(f"unknown CAA tag {tag!r}")
    return f'{flags} {tag} "{value}"'


def parse_caa_rdata(rdata: str) -> Optional[tuple]:
    """Parse CAA rdata text into ``(flags, tag, value)`` or ``None``."""
    parts = rdata.split(" ", 2)
    if len(parts) != 3:
        return None
    try:
        flags = int(parts[0])
    except ValueError:
        return None
    tag = parts[1]
    value = parts[2].strip().strip('"')
    return (flags, tag, value)
