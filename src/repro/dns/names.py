"""Domain-name handling.

Names are represented as lower-case, dot-separated strings without the
trailing root dot (``"app.example.com"``).  A small embedded public
suffix list supports extracting the *registered domain* (the paper's
"second-level domain", SLD) — the unit of WHOIS ownership, registrar
attribution and Tranco ranking.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

Name = str

#: Multi-label public suffixes relevant to the paper's dataset (Table 6
#: lists uk/au/br/jp/co among the top TLDs, all of which register under
#: second-level suffixes).  Single-label TLDs need no listing: any
#: unknown TLD falls back to one-label suffix behaviour.
_MULTI_LABEL_SUFFIXES = frozenset(
    {
        "co.uk", "org.uk", "ac.uk", "gov.uk", "net.uk",
        "com.au", "net.au", "org.au", "edu.au", "gov.au",
        "com.br", "net.br", "org.br", "gov.br", "edu.br",
        "co.jp", "ne.jp", "or.jp", "ac.jp", "go.jp",
        "com.co", "net.co", "edu.co",
        "co.nz", "org.nz", "ac.nz",
        "co.in", "net.in", "org.in", "ac.in",
        "com.cn", "net.cn", "org.cn", "edu.cn",
        "com.sg", "edu.sg",
        "co.id", "ac.id", "go.id",
        "com.mx", "edu.mx",
        "co.za", "ac.za",
    }
)


class InvalidNameError(ValueError):
    """Raised for syntactically invalid domain names."""


#: Memo of valid input → normalized form.  ``normalize_name`` is pure
#: and sits on the resolver's hottest path (every lookup normalizes the
#: query name, each CNAME hop and each zone-walk candidate); the set of
#: distinct names in a run is bounded, so an unbounded memo is safe.
_NORMALIZED: dict = {}


def normalize_name(name: str) -> Name:
    """Lower-case ``name`` and strip any trailing root dot.

    Raises :class:`InvalidNameError` for empty names or empty labels.
    """
    cached = _NORMALIZED.get(name)
    if cached is not None:
        return cached
    stripped = name.strip().rstrip(".").lower()
    if not stripped:
        raise InvalidNameError(f"empty domain name: {name!r}")
    labels = stripped.split(".")
    if any(not label for label in labels):
        raise InvalidNameError(f"empty label in domain name: {name!r}")
    _NORMALIZED[name] = stripped
    return stripped


def split_name(name: Name) -> List[str]:
    """Return the labels of ``name``, left to right."""
    return normalize_name(name).split(".")


def parent_name(name: Name) -> Optional[Name]:
    """The name with its leftmost label removed, or ``None`` at a TLD."""
    labels = split_name(name)
    if len(labels) <= 1:
        return None
    return ".".join(labels[1:])


def is_subdomain_of(name: Name, ancestor: Name) -> bool:
    """Whether ``name`` equals or is beneath ``ancestor``."""
    name_n = normalize_name(name)
    ancestor_n = normalize_name(ancestor)
    return name_n == ancestor_n or name_n.endswith("." + ancestor_n)


def ends_with_any(name: Name, suffixes: Tuple[Name, ...]) -> Optional[Name]:
    """Return the first suffix that ``name`` falls under, else ``None``.

    This is the ``CNAME.ends_with_any(cloud_suffixes)`` test of
    Algorithm 1.
    """
    for suffix in suffixes:
        if is_subdomain_of(name, suffix):
            return suffix
    return None


def public_suffix(name: Name) -> Name:
    """The public suffix of ``name`` (``"co.uk"`` for ``"x.foo.co.uk"``)."""
    labels = split_name(name)
    if len(labels) >= 2:
        candidate = ".".join(labels[-2:])
        if candidate in _MULTI_LABEL_SUFFIXES:
            return candidate
    return labels[-1]


def registered_domain(name: Name) -> Optional[Name]:
    """The registrable (second-level) domain of ``name``.

    ``None`` when ``name`` *is* a public suffix and therefore has no
    registrable part.
    """
    normalized = normalize_name(name)
    suffix = public_suffix(normalized)
    if normalized == suffix:
        return None
    prefix = normalized[: -(len(suffix) + 1)]
    owner_label = prefix.split(".")[-1]
    return f"{owner_label}.{suffix}"


def tld_of(name: Name) -> str:
    """The rightmost label of ``name`` (the paper's Table 6 unit)."""
    return split_name(name)[-1]


def subdomain_labels(name: Name, registered: Optional[Name] = None) -> List[str]:
    """Labels of ``name`` left of its registered domain (may be empty)."""
    normalized = normalize_name(name)
    base = registered if registered is not None else registered_domain(normalized)
    if base is None or normalized == base:
        return []
    if not normalized.endswith("." + base):
        raise InvalidNameError(f"{name!r} is not under {base!r}")
    return normalized[: -(len(base) + 1)].split(".")
