"""Recursive resolution with CNAME chain following.

Algorithm 1 issues an A query per FQDN and inspects both the CNAME
chain and the terminal A records.  The resolver implements standard
semantics: chains are followed across zones, a missing name yields
NXDOMAIN, an existing name without the queried type yields NODATA, and
loops or over-long chains yield SERVFAIL.  Every successful lookup can
be mirrored into a :class:`~repro.dns.passive_dns.PassiveDNS` feed,
which is how the simulated FarSight corpus gets populated.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from datetime import datetime
from typing import List, Optional

from repro.dns.names import Name, normalize_name, parent_name
from repro.dns.passive_dns import PassiveDNS
from repro.dns.records import RRType, ResourceRecord
from repro.dns.zone import ZoneRegistry
from repro.obs import OBS

#: RFC-ish bound on chain length before we declare a loop.
MAX_CHAIN_LENGTH = 16


class ResolutionStatus(enum.Enum):
    """Final status of a resolution."""

    NOERROR = "NOERROR"
    NXDOMAIN = "NXDOMAIN"
    NODATA = "NODATA"
    SERVFAIL = "SERVFAIL"
    #: The query never came back (transient resolver/path failure) —
    #: only ever produced by an injected fault, never by zone state.
    TIMEOUT = "TIMEOUT"


@dataclass
class ResolutionResult:
    """Everything a client learns from one query.

    ``cname_chain`` lists the CNAME targets traversed, in order; the
    paper's suffix matching runs over exactly this list.  ``records``
    holds the terminal records of the queried type (A records for the
    usual Algorithm-1 query).
    """

    qname: Name
    qtype: RRType
    status: ResolutionStatus
    cname_chain: List[Name] = field(default_factory=list)
    records: List[ResourceRecord] = field(default_factory=list)

    @property
    def addresses(self) -> List[str]:
        """The rdata of terminal A/AAAA records."""
        return [r.rdata for r in self.records if r.rtype in (RRType.A, RRType.AAAA)]

    @property
    def ok(self) -> bool:
        """Whether the query produced usable answers."""
        return self.status == ResolutionStatus.NOERROR and bool(self.records)


class Resolver:
    """A recursive resolver over a :class:`ZoneRegistry`.

    ``fault_plan`` (a :class:`repro.faults.FaultPlan`, duck-typed) lets
    a chaos run inject transient SERVFAILs and timeouts *before* zone
    lookup — the flaky-recursive behaviour a longitudinal pipeline must
    survive.  Injected failures record no passive-DNS observations, as
    a real failed query would not.
    """

    def __init__(
        self,
        zones: ZoneRegistry,
        passive_dns: Optional[PassiveDNS] = None,
        fault_plan=None,
    ):
        self._zones = zones
        self._passive_dns = passive_dns
        self.fault_plan = fault_plan
        #: Memo of (qname, qtype) → finished walk, used only after
        #: :meth:`enable_memo`.  The sharded sweep re-resolves the same
        #: mostly-unchanged names thousands of times; a memo entry pins
        #: every *name* the walk consulted — the per-name mutation
        #: versions of the name and its wildcard key, plus which zone
        #: covered it — and is discarded the moment any of them has
        #: moved on.  Per-name granularity matters: one record churned
        #: in a shared provider zone (or a new unrelated zone
        #: registered) must not evict the thousands of sibling entries
        #: a whole-zone version would.  Hits replay the identical
        #: passive-DNS observations the walk would have made, so the
        #: corpus the dataset exports is byte-for-byte unaffected.
        self._memo: dict = {}
        self._memo_enabled = False

    def enable_memo(self) -> None:
        """Turn on version-validated resolution memoization.

        Off by default so the serial baseline keeps the seed's exact
        cost profile; shard workers switch it on as part of the
        parallel fast path (each forked worker enables its own copy).
        """
        self._memo_enabled = True

    @property
    def passive_dns(self) -> Optional[PassiveDNS]:
        """The feed successful lookups mirror into (swappable, so a
        shard worker can interpose an observation recorder)."""
        return self._passive_dns

    @passive_dns.setter
    def passive_dns(self, feed: Optional[PassiveDNS]) -> None:
        self._passive_dns = feed

    def resolve(
        self, qname: Name, qtype: RRType = RRType.A, at: Optional[datetime] = None
    ) -> ResolutionResult:
        """Resolve ``qname``/``qtype``, following CNAMEs.

        ``at`` is the simulated query time; when given together with a
        passive DNS feed, observations are recorded.
        """
        qname = normalize_name(qname)
        if OBS.enabled:
            OBS.metrics.inc("resolver.queries")
        if self.fault_plan is not None:
            fault = self.fault_plan.dns_fault(str(qname))
            if fault is not None:
                status = (
                    ResolutionStatus.TIMEOUT
                    if fault == "timeout"
                    else ResolutionStatus.SERVFAIL
                )
                return ResolutionResult(qname, qtype, status)
        if not self._memo_enabled:
            # Deliberately duplicates _walk without the touched/observed
            # bookkeeping: the default path must keep the seed's exact
            # cost profile, not pay for a memo it never consults.
            chain: List[Name] = []
            current = qname
            seen = {current}
            while True:
                zone = self._zones.zone_for(current)
                if zone is None:
                    return ResolutionResult(
                        qname, qtype, ResolutionStatus.NXDOMAIN, chain
                    )
                direct = zone.lookup(current, qtype)
                if direct:
                    self._observe(direct, at)
                    return ResolutionResult(
                        qname, qtype, ResolutionStatus.NOERROR, chain, direct
                    )
                cnames = (
                    [] if qtype == RRType.CNAME else zone.lookup(current, RRType.CNAME)
                )
                if cnames:
                    self._observe(cnames, at)
                    target = cnames[0].rdata
                    chain.append(target)
                    if target in seen or len(chain) > MAX_CHAIN_LENGTH:
                        return ResolutionResult(
                            qname, qtype, ResolutionStatus.SERVFAIL, chain
                        )
                    seen.add(target)
                    current = target
                    continue
                if zone.name_exists(current):
                    return ResolutionResult(
                        qname, qtype, ResolutionStatus.NODATA, chain
                    )
                return ResolutionResult(qname, qtype, ResolutionStatus.NXDOMAIN, chain)
        key = (qname, qtype)
        memo = self._memo.get(key)
        if memo is not None and self._memo_valid(memo):
            if OBS.enabled:
                OBS.metrics.inc("resolver.memo.hits")
                OBS.metrics.observe("resolver.chain_depth", len(memo[3]))
            status, chain, records, observed = memo[2], memo[3], memo[4], memo[5]
            for group in observed:
                self._observe(group, at)
            return ResolutionResult(
                qname, qtype, status, list(chain), list(records)
            )
        if OBS.enabled:
            OBS.metrics.inc("resolver.memo.misses")
            if memo is not None:
                # An entry existed but a zone change invalidated it: the
                # fresh walk below overwrites it — an eviction.
                OBS.metrics.inc("resolver.memo.evictions")
        registry_version = self._zones.version
        result, touched, observed = self._walk(qname, qtype, at)
        # A list, not a tuple: a still-valid entry refreshes its
        # registry-version snapshot in place, keeping the identity that
        # higher-level caches (the shard touch memo) key on.
        self._memo[key] = [
            registry_version,
            touched,
            result.status,
            tuple(result.cname_chain),
            tuple(result.records),
            observed,
        ]
        if OBS.enabled:
            OBS.metrics.observe("resolver.chain_depth", len(result.cname_chain))
        return result

    def _memo_valid(self, entry) -> bool:
        """Whether a fresh walk would provably repeat ``entry``.

        Each touched tuple is ``(zone, name, name_ver, wkey, wkey_ver)``
        — the zone that covered ``name`` (``None`` for an uncovered
        NXDOMAIN) and the per-name mutation versions of the name and its
        wildcard key, which together pin every ``lookup``/``name_exists``
        outcome the walk saw.  While the registry version is unchanged
        no name can have moved between zones, so only the name versions
        need checking; after a zone registration the cover is
        re-established per name via the registry's ``zone_for`` memo,
        and the entry's registry snapshot is refreshed in place so
        subsequent hits take the cheap path again.
        """
        stale_registry = entry[0] != self._zones.version
        for zone, name, name_ver, wkey, wkey_ver in entry[1]:
            if stale_registry and self._zones.zone_for(name) is not zone:
                return False
            if zone is not None:
                if zone.name_version(name) != name_ver:
                    return False
                if wkey is not None and zone.name_version(wkey) != wkey_ver:
                    return False
        if stale_registry:
            entry[0] = self._zones.version
        return True

    def _walk(self, qname: Name, qtype: RRType, at: Optional[datetime]):
        """The actual chain walk; returns (result, touched, observed).

        ``touched`` is one ``(zone, name, name_ver, wkey, wkey_ver)``
        tuple per name consulted (see :meth:`_memo_valid`), and
        ``observed`` the record groups mirrored into passive DNS, in
        order — exactly what a memo hit must revalidate and replay.
        """
        touched: List = []
        observed: List = []
        chain: List[Name] = []
        current = qname
        seen = {current}
        while True:
            current = normalize_name(current)
            zone = self._zones.zone_for(current)
            if zone is None:
                touched.append((None, current, 0, None, 0))
                return (
                    ResolutionResult(qname, qtype, ResolutionStatus.NXDOMAIN, chain),
                    tuple(touched), tuple(observed),
                )
            if current.startswith("*."):
                wkey = None
                wkey_ver = 0
            else:
                parent = parent_name(current)
                wkey = f"*.{parent}" if parent is not None else None
                wkey_ver = zone.name_version(wkey) if wkey is not None else 0
            touched.append(
                (zone, current, zone.name_version(current), wkey, wkey_ver)
            )
            direct = zone.lookup(current, qtype)
            if direct:
                self._observe(direct, at)
                observed.append(tuple(direct))
                return (
                    ResolutionResult(
                        qname, qtype, ResolutionStatus.NOERROR, chain, direct
                    ),
                    tuple(touched), tuple(observed),
                )
            cnames = [] if qtype == RRType.CNAME else zone.lookup(current, RRType.CNAME)
            if cnames:
                self._observe(cnames, at)
                observed.append(tuple(cnames))
                target = cnames[0].rdata
                chain.append(target)
                if target in seen or len(chain) > MAX_CHAIN_LENGTH:
                    return (
                        ResolutionResult(
                            qname, qtype, ResolutionStatus.SERVFAIL, chain
                        ),
                        tuple(touched), tuple(observed),
                    )
                seen.add(target)
                current = target
                continue
            if zone.name_exists(current):
                return (
                    ResolutionResult(qname, qtype, ResolutionStatus.NODATA, chain),
                    tuple(touched), tuple(observed),
                )
            return (
                ResolutionResult(qname, qtype, ResolutionStatus.NXDOMAIN, chain),
                tuple(touched), tuple(observed),
            )

    def resolve_a_with_chain(
        self, qname: Name, at: Optional[datetime] = None
    ) -> ResolutionResult:
        """The Algorithm-1 query: A lookup returning chain + addresses."""
        return self.resolve(qname, RRType.A, at=at)

    def memo_entry(self, qname: Name, qtype: RRType):
        """The still-valid memo entry for (qname, qtype), or ``None``.

        An entry is valid while every name its walk consulted still has
        the same cover and per-name versions (:meth:`_memo_valid`) —
        i.e. while a fresh walk would provably return the identical
        result.  Entry identity is stable for as long as it is valid,
        which lets higher-level caches (the shard touch memo) use
        ``is`` checks to detect any DNS change since they were built.
        """
        entry = self._memo.get((qname, qtype))
        if entry is None or not self._memo_valid(entry):
            return None
        return entry

    @staticmethod
    def memo_observed(entry) -> tuple:
        """The passive-DNS record groups a memo entry replays, in order."""
        return entry[5]

    @staticmethod
    def memo_touched(entry) -> tuple:
        """The ``(zone, name, name_ver, wkey, wkey_ver)`` tuples a memo
        entry's walk consulted — the names whose revisions pin the
        resolution outcome (the revision-journal dependency set)."""
        return entry[1]

    def _observe(self, records: List[ResourceRecord], at: Optional[datetime]) -> None:
        if self._passive_dns is not None and at is not None:
            for record in records:
                self._passive_dns.observe(record, at)
