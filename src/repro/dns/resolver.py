"""Recursive resolution with CNAME chain following.

Algorithm 1 issues an A query per FQDN and inspects both the CNAME
chain and the terminal A records.  The resolver implements standard
semantics: chains are followed across zones, a missing name yields
NXDOMAIN, an existing name without the queried type yields NODATA, and
loops or over-long chains yield SERVFAIL.  Every successful lookup can
be mirrored into a :class:`~repro.dns.passive_dns.PassiveDNS` feed,
which is how the simulated FarSight corpus gets populated.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from datetime import datetime
from typing import List, Optional

from repro.dns.names import Name, normalize_name
from repro.dns.passive_dns import PassiveDNS
from repro.dns.records import RRType, ResourceRecord
from repro.dns.zone import ZoneRegistry

#: RFC-ish bound on chain length before we declare a loop.
MAX_CHAIN_LENGTH = 16


class ResolutionStatus(enum.Enum):
    """Final status of a resolution."""

    NOERROR = "NOERROR"
    NXDOMAIN = "NXDOMAIN"
    NODATA = "NODATA"
    SERVFAIL = "SERVFAIL"
    #: The query never came back (transient resolver/path failure) —
    #: only ever produced by an injected fault, never by zone state.
    TIMEOUT = "TIMEOUT"


@dataclass
class ResolutionResult:
    """Everything a client learns from one query.

    ``cname_chain`` lists the CNAME targets traversed, in order; the
    paper's suffix matching runs over exactly this list.  ``records``
    holds the terminal records of the queried type (A records for the
    usual Algorithm-1 query).
    """

    qname: Name
    qtype: RRType
    status: ResolutionStatus
    cname_chain: List[Name] = field(default_factory=list)
    records: List[ResourceRecord] = field(default_factory=list)

    @property
    def addresses(self) -> List[str]:
        """The rdata of terminal A/AAAA records."""
        return [r.rdata for r in self.records if r.rtype in (RRType.A, RRType.AAAA)]

    @property
    def ok(self) -> bool:
        """Whether the query produced usable answers."""
        return self.status == ResolutionStatus.NOERROR and bool(self.records)


class Resolver:
    """A recursive resolver over a :class:`ZoneRegistry`.

    ``fault_plan`` (a :class:`repro.faults.FaultPlan`, duck-typed) lets
    a chaos run inject transient SERVFAILs and timeouts *before* zone
    lookup — the flaky-recursive behaviour a longitudinal pipeline must
    survive.  Injected failures record no passive-DNS observations, as
    a real failed query would not.
    """

    def __init__(
        self,
        zones: ZoneRegistry,
        passive_dns: Optional[PassiveDNS] = None,
        fault_plan=None,
    ):
        self._zones = zones
        self._passive_dns = passive_dns
        self.fault_plan = fault_plan

    def resolve(
        self, qname: Name, qtype: RRType = RRType.A, at: Optional[datetime] = None
    ) -> ResolutionResult:
        """Resolve ``qname``/``qtype``, following CNAMEs.

        ``at`` is the simulated query time; when given together with a
        passive DNS feed, observations are recorded.
        """
        qname = normalize_name(qname)
        if self.fault_plan is not None:
            fault = self.fault_plan.dns_fault(str(qname))
            if fault is not None:
                status = (
                    ResolutionStatus.TIMEOUT
                    if fault == "timeout"
                    else ResolutionStatus.SERVFAIL
                )
                return ResolutionResult(qname, qtype, status)
        chain: List[Name] = []
        current = qname
        seen = {current}
        while True:
            zone = self._zones.zone_for(current)
            if zone is None:
                return ResolutionResult(qname, qtype, ResolutionStatus.NXDOMAIN, chain)
            direct = zone.lookup(current, qtype)
            if direct:
                self._observe(direct, at)
                return ResolutionResult(
                    qname, qtype, ResolutionStatus.NOERROR, chain, direct
                )
            cnames = [] if qtype == RRType.CNAME else zone.lookup(current, RRType.CNAME)
            if cnames:
                self._observe(cnames, at)
                target = cnames[0].rdata
                chain.append(target)
                if target in seen or len(chain) > MAX_CHAIN_LENGTH:
                    return ResolutionResult(qname, qtype, ResolutionStatus.SERVFAIL, chain)
                seen.add(target)
                current = target
                continue
            if zone.name_exists(current):
                return ResolutionResult(qname, qtype, ResolutionStatus.NODATA, chain)
            return ResolutionResult(qname, qtype, ResolutionStatus.NXDOMAIN, chain)

    def resolve_a_with_chain(
        self, qname: Name, at: Optional[datetime] = None
    ) -> ResolutionResult:
        """The Algorithm-1 query: A lookup returning chain + addresses."""
        return self.resolve(qname, RRType.A, at=at)

    def _observe(self, records: List[ResourceRecord], at: Optional[datetime]) -> None:
        if self._passive_dns is not None and at is not None:
            for record in records:
                self._passive_dns.observe(record, at)
