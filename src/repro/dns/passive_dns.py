"""A FarSight-style passive DNS corpus.

The paper seeds its FQDN list from high-profile apex domains and then
"discovers all subdomains observed for these domains" via FarSight
(Section 3.1).  Real passive DNS aggregates observations from resolver
sensors worldwide; here, the simulation's own resolution traffic feeds
the corpus.  Crucially, observations are *never deleted*: a subdomain
whose records were long since purged — or whose cloud resource was long
since released — stays visible, which is exactly what makes passive DNS
useful to both the researchers and the attackers.

The store keeps two query indexes (by registered domain, and by CNAME
target) because both query shapes run constantly: the collector expands
seed apexes weekly, and attacker reconnaissance reverse-maps released
cloud names to the victims still pointing at them.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import Dict, List, Optional, Set

from repro.dns.names import Name, is_subdomain_of, normalize_name, registered_domain
from repro.dns.records import RRType, ResourceRecord


@dataclass
class PassiveDNSObservation:
    """Aggregated sightings of one record."""

    record: ResourceRecord
    first_seen: datetime
    last_seen: datetime
    count: int = 1


class PassiveDNS:
    """Append-only observation store with FarSight-like queries."""

    def __init__(self) -> None:
        self._observations: Dict[str, PassiveDNSObservation] = {}
        self._names: Set[Name] = set()
        self._names_by_sld: Dict[Name, Set[Name]] = {}
        self._names_by_cname_target: Dict[Name, Set[Name]] = {}

    def observe(self, record: ResourceRecord, at: datetime) -> PassiveDNSObservation:
        """Record one sighting of ``record`` at time ``at``."""
        obs = self._observations.get(record.key)
        if obs is None:
            obs = PassiveDNSObservation(record=record, first_seen=at, last_seen=at)
            self._observations[record.key] = obs
            self._names.add(record.name)
            sld = registered_domain(record.name)
            if sld is not None:
                self._names_by_sld.setdefault(sld, set()).add(record.name)
            if record.rtype == RRType.CNAME:
                self._names_by_cname_target.setdefault(record.rdata, set()).add(
                    record.name
                )
        else:
            obs.last_seen = max(obs.last_seen, at)
            obs.first_seen = min(obs.first_seen, at)
            obs.count += 1
        return obs

    def observation_for(self, record: ResourceRecord) -> Optional[PassiveDNSObservation]:
        """The aggregated observation of exactly ``record``, if any."""
        return self._observations.get(record.key)

    def __len__(self) -> int:
        return len(self._observations)

    def observations_for(self, name: Name) -> List[PassiveDNSObservation]:
        """All observations whose record name is exactly ``name``."""
        normalized = normalize_name(name)
        return [o for o in self._observations.values() if o.record.name == normalized]

    def subdomains_of(self, apex: Name) -> List[Name]:
        """Every observed name at or under ``apex`` — the FarSight query.

        Sorted for determinism.  Queries at a registered domain hit the
        SLD index; anything else falls back to a full scan.
        """
        normalized = normalize_name(apex)
        if registered_domain(normalized) == normalized:
            candidates = self._names_by_sld.get(normalized, set())
            return sorted(candidates)
        suffix = "." + normalized
        return sorted(
            n for n in self._names if n == normalized or n.endswith(suffix)
        )

    def names_pointing_to(self, target: Name) -> List[Name]:
        """Observed names with a CNAME observation to ``target``.

        This is the attacker-side reconnaissance primitive: find
        domains whose CNAME points at a (possibly released) cloud name.
        """
        return sorted(self._names_by_cname_target.get(normalize_name(target), set()))

    def cname_targets(self, suffix: Optional[Name] = None) -> List[Name]:
        """Distinct CNAME targets observed, optionally under ``suffix``."""
        targets = self._names_by_cname_target.keys()
        if suffix is None:
            return sorted(targets)
        return sorted(t for t in targets if is_subdomain_of(t, suffix))
