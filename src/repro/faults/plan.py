"""Seeded, deterministic fault injection for the measurement path.

The paper's pipeline ran weekly for three years against a hostile
Internet: resolvers time out, edges rate-limit, half-dead virtual hosts
return 5xx pages or drop connections mid-body.  A :class:`FaultPlan`
reproduces that hostility *deterministically*: every injection decision
is a draw from a named :class:`~repro.sim.rng.RngStreams` stream, so a
single fault seed replays the exact same storm — two runs with the same
seed produce byte-identical datasets, quarantine sets and retry
counters, which is what makes chaos runs regression-testable.

Each layer draws from its own stream (``faults:dns``, ``faults:net``,
``faults:http``) so enabling injection at one layer never perturbs the
decision sequence of another.  A disabled plan (or a zero-rate fault
class) performs *no* draws at all, guaranteeing golden-digest parity
with fault-free runs.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.sim.rng import RngStreams

#: DNS fault kinds a plan can inject into the resolver.
DNS_SERVFAIL = "dns-servfail"
DNS_TIMEOUT = "dns-timeout"
#: Transport fault kinds injected into the network / probing layer.
CONNECTION_RESET = "connection-reset"
ICMP_BLACKOUT = "icmp-blackout"
#: Application fault kinds injected into edges and the HTTP client.
HTTP_503 = "http-503"
HTTP_429 = "http-429"
TRUNCATED_BODY = "truncated-body"
#: Process fault kinds injected into the sweep supervisor's workers:
#: a worker killed mid-shard (SIGKILL, payload lost) and a worker that
#: stops making progress until the supervisor's deadline reaps it.
WORKER_CRASH = "worker-crash"
WORKER_HANG = "worker-hang"


@dataclass
class FaultConfig:
    """Per-fault-class injection rates (all probabilities per operation).

    The default is fully quiescent: ``enabled`` off and every rate zero,
    so a default-configured scenario is byte-identical to one with no
    fault plan at all.
    """

    enabled: bool = False
    #: Independent seed for the fault streams; ``None`` derives the
    #: streams from the scenario master seed (one seed replays world
    #: *and* weather), a fixed value varies the weather independently.
    fault_seed: Optional[int] = None
    dns_servfail_rate: float = 0.0
    dns_timeout_rate: float = 0.0
    connection_reset_rate: float = 0.0
    icmp_blackout_rate: float = 0.0
    http_503_rate: float = 0.0
    http_429_rate: float = 0.0
    truncated_body_rate: float = 0.0
    #: Process-level fault rates, drawn once per shard span on its
    #: *first* dispatch (retries of the same span never re-draw, so a
    #: transient worker fault costs one re-dispatch, never a sweep).
    worker_crash_rate: float = 0.0
    worker_hang_rate: float = 0.0
    #: Deterministically poisonous subjects: a worker crashes every
    #: time it samples one of these names, so only the supervisor's
    #: bisection can get the rest of the shard through.  Lower-case
    #: FQDN strings.
    poison_fqdns: Tuple[str, ...] = ()

    @classmethod
    def chaos(cls, level: float = 0.05, seed: Optional[int] = None) -> "FaultConfig":
        """A balanced storm: every fault class at ``level`` intensity.

        ``level`` is the per-operation injection probability of the most
        common faults; rarer classes (truncation, blackout) scale down.
        """
        if not 0.0 <= level <= 1.0:
            raise ValueError(f"fault level must be in [0, 1], got {level}")
        return cls(
            enabled=level > 0.0,
            fault_seed=seed,
            dns_servfail_rate=level,
            dns_timeout_rate=level / 2,
            connection_reset_rate=level / 2,
            icmp_blackout_rate=level / 4,
            http_503_rate=level,
            http_429_rate=level / 2,
            truncated_body_rate=level / 4,
        )

    @property
    def dns_active(self) -> bool:
        return self.enabled and (self.dns_servfail_rate > 0 or self.dns_timeout_rate > 0)

    @property
    def net_active(self) -> bool:
        return self.enabled and (
            self.connection_reset_rate > 0 or self.icmp_blackout_rate > 0
        )

    @property
    def http_active(self) -> bool:
        return self.enabled and (self.http_503_rate > 0 or self.http_429_rate > 0)

    @property
    def truncation_active(self) -> bool:
        return self.enabled and self.truncated_body_rate > 0

    @property
    def worker_active(self) -> bool:
        """Process-level faults for the sweep supervisor to exercise.

        Deliberately *not* part of :attr:`any_active`: worker faults
        kill and retry whole shards but never touch the data plane, so
        the fused sampling path (gated on ``any_active``) stays
        eligible and a recovered sweep exports the same bytes as a
        fault-free one.
        """
        return self.enabled and (
            self.worker_crash_rate > 0
            or self.worker_hang_rate > 0
            or bool(self.poison_fqdns)
        )

    @property
    def any_active(self) -> bool:
        return self.dns_active or self.net_active or self.http_active or self.truncation_active


@dataclass
class FaultStats:
    """Counters of what a plan actually injected, by fault kind."""

    injected: Dict[str, int] = field(default_factory=dict)

    def count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.injected.values())

    def rows(self) -> List[Tuple[str, int]]:
        """Render-ready (kind, count) rows, sorted by kind."""
        return sorted(self.injected.items())


class FaultPlan:
    """The active injection engine consulted by every measurement layer.

    One plan is shared by the resolver, the network/probers, the
    virtual-hosting edges and the HTTP client of one simulated world.
    Decisions are pure functions of the stream state, so a fixed seed
    plus a fixed call sequence (the simulation is single-threaded and
    deterministic) replays identically.
    """

    def __init__(self, config: FaultConfig, streams: RngStreams):
        self.config = config
        self.stats = FaultStats()
        self._streams = streams
        self._dns = streams.get("faults:dns")
        self._net = streams.get("faults:net")
        self._http = streams.get("faults:http")
        #: Deterministic jitter source for retry backoff (kept on the
        #: plan so retries under chaos replay exactly).
        self.retry_rng = streams.get("faults:retry-jitter")
        self._suppress = 0
        #: Lower-cased poison set, precomputed for the per-name check.
        self._poison = frozenset(name.lower() for name in config.poison_fqdns)

    @classmethod
    def from_seed(cls, config: FaultConfig, seed: int) -> "FaultPlan":
        return cls(config, RngStreams(seed))

    # -- control-plane suppression ---------------------------------------

    @property
    def active(self) -> bool:
        """Whether injection is currently live (not suppressed)."""
        return self._suppress == 0

    @contextmanager
    def suppressed(self) -> Iterator[None]:
        """Disable injection for a control-plane operation.

        Faults model a hostile *measurement* path; the substrate's own
        control plane — a provider validating a CNAME against its
        authoritative view, a CA fetching its challenge token over its
        own egress — does not ride the victim's flaky last mile.  Calls
        made under suppression draw nothing from the fault streams, so
        they leave the injection sequence untouched.
        """
        self._suppress += 1
        try:
            yield
        finally:
            self._suppress -= 1

    # -- DNS layer -------------------------------------------------------

    def dns_fault(self, qname: str) -> Optional[str]:
        """Fault for one resolution: ``"servfail"``, ``"timeout"`` or None."""
        if self._suppress or not self.config.dns_active:
            return None
        roll = self._dns.random()
        if roll < self.config.dns_servfail_rate:
            self.stats.count(DNS_SERVFAIL)
            return "servfail"
        if roll < self.config.dns_servfail_rate + self.config.dns_timeout_rate:
            self.stats.count(DNS_TIMEOUT)
            return "timeout"
        return None

    # -- transport layer -------------------------------------------------

    def connection_reset(self, ip: str) -> bool:
        """Whether this TCP connection attempt gets reset mid-handshake."""
        if self._suppress or not self.config.net_active or self.config.connection_reset_rate <= 0:
            return False
        if self._net.random() < self.config.connection_reset_rate:
            self.stats.count(CONNECTION_RESET)
            return True
        return False

    def icmp_blackout(self, ip: str) -> bool:
        """Whether an ICMP echo to ``ip`` is silently dropped."""
        if self._suppress or not self.config.net_active or self.config.icmp_blackout_rate <= 0:
            return False
        if self._net.random() < self.config.icmp_blackout_rate:
            self.stats.count(ICMP_BLACKOUT)
            return True
        return False

    # -- application layer -----------------------------------------------

    def http_fault(self, provider: str, host: str) -> Optional[str]:
        """Edge-side fault for one request: ``"503"``, ``"429"`` or None."""
        if self._suppress or not self.config.http_active:
            return None
        roll = self._http.random()
        if roll < self.config.http_503_rate:
            self.stats.count(HTTP_503)
            return "503"
        if roll < self.config.http_503_rate + self.config.http_429_rate:
            self.stats.count(HTTP_429)
            return "429"
        return None

    # -- process layer (sweep workers) -----------------------------------

    def worker_fault(self, shard_index: int) -> Optional[str]:
        """Process fault for one shard span's first dispatch.

        Returns ``"crash"`` (the worker dies by SIGKILL mid-shard),
        ``"hang"`` (the worker stops making progress and must be reaped
        at the supervisor's deadline) or ``None``.  Each shard index
        draws from its own stream (``faults:worker:<index>``), the same
        seeding discipline as the data-plane streams: one fault seed
        replays the exact same worker storm for a fixed worker count,
        and a shard's draw sequence never perturbs its neighbours'.

        The supervisor consults this once per span — on the span's
        first dispatch only — so a random worker fault costs exactly
        one re-dispatch and can never exhaust a span's retry budget;
        only deterministic poison (:meth:`poison_hit`) survives
        retries and reaches quarantine.
        """
        config = self.config
        if self._suppress or not config.worker_active:
            return None
        if config.worker_crash_rate <= 0 and config.worker_hang_rate <= 0:
            return None
        roll = self._streams.get(f"faults:worker:{shard_index}").random()
        if roll < config.worker_crash_rate:
            self.stats.count(WORKER_CRASH)
            return "crash"
        if roll < config.worker_crash_rate + config.worker_hang_rate:
            self.stats.count(WORKER_HANG)
            return "hang"
        return None

    def poison_hit(self, fqdns) -> Optional[str]:
        """First deterministically poisonous name in ``fqdns``, if any.

        Consulted by the *worker* (never the supervising parent, which
        must discover poison the hard way — through bisection): a hit
        means this worker dies mid-shard on every attempt.
        """
        if not self._poison:
            return None
        for fqdn in fqdns:
            if fqdn.lower() in self._poison:
                return fqdn
        return None

    def truncated_body(self, host: str) -> bool:
        """Whether the response body gets cut off mid-transfer."""
        if self._suppress or not self.config.truncation_active:
            return False
        if self._http.random() < self.config.truncated_body_rate:
            self.stats.count(TRUNCATED_BODY)
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"FaultPlan(enabled={self.config.enabled}, injected={self.stats.total})"
