"""The resilience layer: retry policies and per-edge circuit breakers.

A production measurement pipeline does not take one transient SERVFAIL
or 503 as the truth about an FQDN — it retries with capped exponential
backoff, and it stops hammering an edge that has failed many times in a
row until a cooldown passes.  Both mechanisms here are deterministic:
backoff jitter comes from a seeded stream, and breaker state advances
on the *simulated* clock, so chaos runs replay exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import Dict, List, Optional, Tuple

from repro.obs import OBS


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff.

    ``max_attempts=1`` means no retries — the default everywhere, so a
    policy-free configuration is behaviourally identical to the
    pre-resilience pipeline.  Delays are *simulated* seconds: retry
    attempts are stamped ``base + delay`` on the simulation clock, never
    the wall clock.
    """

    max_attempts: int = 1
    base_delay_s: float = 2.0
    max_delay_s: float = 120.0
    multiplier: float = 2.0
    #: Jitter as a fraction of the delay (0.25 → ±25%), drawn from a
    #: deterministic stream when one is provided.
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")

    @classmethod
    def none(cls) -> "RetryPolicy":
        """No retries: one attempt, fail fast."""
        return cls(max_attempts=1)

    @classmethod
    def standard(cls, attempts: int = 3) -> "RetryPolicy":
        """The default resilient profile: 2s base, doubling, 2min cap."""
        return cls(max_attempts=attempts)

    @property
    def retries_enabled(self) -> bool:
        return self.max_attempts > 1

    def backoff_delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Simulated seconds to wait after failed attempt ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        delay = min(self.max_delay_s, self.base_delay_s * self.multiplier ** (attempt - 1))
        if rng is not None and self.jitter > 0:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay

    def backoff_budget(self, rng: Optional[random.Random] = None) -> float:
        """Total simulated delay if every attempt fails (timeout accounting)."""
        return sum(
            self.backoff_delay(attempt, rng)
            for attempt in range(1, self.max_attempts)
        )


#: Circuit states, in the classic three-state protocol.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass
class _EdgeCircuit:
    """Breaker state for one provider edge."""

    state: str = CLOSED
    consecutive_failures: int = 0
    opened_at: Optional[datetime] = None
    #: A HALF_OPEN trial probe is in flight: further callers keep
    #: short-circuiting until its outcome lands.
    trial_pending: bool = False


class CircuitBreaker:
    """Per-provider-edge circuit breaker keyed by edge address.

    Trips to OPEN after ``failure_threshold`` consecutive failures
    against the same edge; while open, callers short-circuit without
    touching the edge.  After ``cooldown`` of simulated time (one week
    by default — the pipeline's natural cadence) the circuit half-opens:
    the next attempt is allowed through as a trial, and its outcome
    either closes the circuit or re-opens it for another cooldown.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown: timedelta = timedelta(weeks=1),
    ):
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._circuits: Dict[str, _EdgeCircuit] = {}
        #: Total number of CLOSED/HALF_OPEN → OPEN transitions.
        self.trips = 0

    def _circuit(self, key: str) -> _EdgeCircuit:
        circuit = self._circuits.get(key)
        if circuit is None:
            circuit = _EdgeCircuit()
            self._circuits[key] = circuit
        return circuit

    def allow(self, key: str, at: datetime) -> bool:
        """Whether a request to edge ``key`` may proceed at time ``at``."""
        circuit = self._circuits.get(key)
        if circuit is None or circuit.state == CLOSED:
            return True
        if circuit.state == HALF_OPEN:
            # Exactly one trial probe may be in flight at a time; its
            # outcome (record_success / record_failure) decides the
            # circuit before anyone else gets through.
            if circuit.trial_pending:
                return False
            circuit.trial_pending = True
            return True
        if circuit.opened_at is None or at >= circuit.opened_at + self.cooldown:
            # ``opened_at is None`` means the open instant was lost;
            # fail open into a single trial probe rather than
            # short-circuiting this edge forever.
            circuit.state = HALF_OPEN
            circuit.trial_pending = True
            if OBS.enabled:
                OBS.metrics.inc("breaker.half_open", edge=key)
            return True
        return False

    def record_success(self, key: str) -> None:
        """A request to ``key`` succeeded: close the circuit."""
        circuit = self._circuits.get(key)
        if circuit is None:
            return
        if circuit.state != CLOSED and OBS.enabled:
            OBS.metrics.inc("breaker.close", edge=key)
        circuit.state = CLOSED
        circuit.consecutive_failures = 0
        circuit.opened_at = None
        circuit.trial_pending = False

    def record_failure(self, key: str, at: datetime) -> None:
        """A request to ``key`` failed: count it, trip when over threshold."""
        circuit = self._circuit(key)
        if circuit.state == HALF_OPEN:
            # Failed trial: straight back to OPEN for another cooldown.
            circuit.state = OPEN
            circuit.opened_at = at
            circuit.trial_pending = False
            self.trips += 1
            if OBS.enabled:
                OBS.metrics.inc("breaker.open", edge=key)
            return
        circuit.consecutive_failures += 1
        if circuit.state == CLOSED and circuit.consecutive_failures >= self.failure_threshold:
            circuit.state = OPEN
            circuit.opened_at = at
            self.trips += 1
            if OBS.enabled:
                OBS.metrics.inc("breaker.open", edge=key)

    # -- introspection ---------------------------------------------------

    def state_of(self, key: str) -> str:
        circuit = self._circuits.get(key)
        return circuit.state if circuit is not None else CLOSED

    def open_edges(self) -> List[str]:
        """Edges currently open (sorted, for deterministic reporting)."""
        return sorted(k for k, c in self._circuits.items() if c.state == OPEN)

    def rows(self) -> List[Tuple[str, str, int]]:
        """Render-ready (edge, state, consecutive failures) rows."""
        return sorted(
            (key, circuit.state, circuit.consecutive_failures)
            for key, circuit in self._circuits.items()
            if circuit.state != CLOSED or circuit.consecutive_failures
        )
