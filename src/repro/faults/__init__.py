"""Deterministic fault injection and the resilience layer.

Two halves of one subsystem: :mod:`repro.faults.plan` injects seeded
transient failures (DNS SERVFAIL/timeouts, connection resets, ICMP
blackouts, HTTP 5xx/429, truncated bodies) into every layer of the
measurement path, and :mod:`repro.faults.retry` gives the clients the
machinery to survive them — capped-exponential-backoff retry policies
and per-provider-edge circuit breakers, both driven by the simulated
clock and seeded RNG streams so chaos runs replay byte-identically.
"""

from repro.faults.plan import (
    CONNECTION_RESET,
    DNS_SERVFAIL,
    DNS_TIMEOUT,
    HTTP_429,
    HTTP_503,
    ICMP_BLACKOUT,
    TRUNCATED_BODY,
    WORKER_CRASH,
    WORKER_HANG,
    FaultConfig,
    FaultPlan,
    FaultStats,
)
from repro.faults.retry import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    RetryPolicy,
)

__all__ = [
    "CLOSED",
    "CONNECTION_RESET",
    "CircuitBreaker",
    "DNS_SERVFAIL",
    "DNS_TIMEOUT",
    "FaultConfig",
    "FaultPlan",
    "FaultStats",
    "HALF_OPEN",
    "HTTP_429",
    "HTTP_503",
    "ICMP_BLACKOUT",
    "OPEN",
    "RetryPolicy",
    "TRUNCATED_BODY",
    "WORKER_CRASH",
    "WORKER_HANG",
]
