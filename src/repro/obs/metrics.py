"""Counter/gauge/histogram registry with an associative merge.

The sharded sweep runs shard-local work in forked children whose state
dies with them, so observability counters must travel the same road as
every other shard effect: captured per shard, shipped in the
:class:`~repro.parallel.shard.ShardResult`, and reduced by the parent
in shard order.  :meth:`MetricsRegistry.merge` is therefore built like
:meth:`repro.pipeline.metrics.StageMetrics.merge` — field-wise,
associative and commutative — so reducing per-shard registries in any
bracketing yields the same totals as a single-process run.

Registries hold **deterministic values only**: counts of events that a
fixed seed replays identically.  Wall-clock timings never go in here —
they belong to the :mod:`repro.obs.trace` span stream — which is what
lets tests and CI diff registries across same-seed runs and across
worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: Histogram bucket upper bounds (inclusive); values above the last
#: bound land in the overflow bucket.  Powers of two suit the things we
#: histogram — CNAME chain depths, retry attempt counts.
DEFAULT_BOUNDS: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

#: Millisecond-scale bounds for duration histograms.  The power-of-two
#: :data:`DEFAULT_BOUNDS` top out at 64, so wall timings would saturate
#: the overflow bucket immediately; these cover sub-ms through ~4s.
MS_BOUNDS: Tuple[float, ...] = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
    250.0, 500.0, 1000.0, 2500.0,
)

#: Characters in label values that would be ambiguous inside the
#: ``name{k=v,...}`` key syntax, and their escapes.
_LABEL_ESCAPES = (
    ("\\", "\\\\"),  # must run first so escapes don't double-escape
    (",", "\\,"),
    ("=", "\\="),
    ("{", "\\{"),
    ("}", "\\}"),
)


def _escape_label(value: object) -> str:
    """Render a label value with the key-syntax metacharacters escaped.

    Without this, ``inc("x", a="1,b=2")`` and ``inc("x", a="1", b="2")``
    would collide into the same series key and silently merge counts.
    """
    text = str(value)
    for raw, escaped in _LABEL_ESCAPES:
        text = text.replace(raw, escaped)
    return text


@dataclass
class HistogramData:
    """One histogram series: counts per bucket plus running extrema."""

    bounds: Tuple[float, ...] = DEFAULT_BOUNDS
    counts: List[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def __post_init__(self) -> None:
        if not self.counts:
            # One bucket per bound plus the overflow bucket.
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge_from(self, other: "HistogramData") -> None:
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histograms with bounds {self.bounds} and {other.bounds}"
            )
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "counts": list(self.counts),
        }


def metric_key(name: str, labels: Dict[str, object]) -> str:
    """Canonical series key: ``name`` or ``name{k=v,...}``, keys sorted.

    Sorting makes the key independent of keyword order at the call
    site, so ``inc("x", a=1, b=2)`` and ``inc("x", b=2, a=1)`` hit the
    same series — the property label-based merging and diffing rely on.
    """
    if not labels:
        return name
    inner = ",".join(f"{k}={_escape_label(labels[k])}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Deterministic counters, high-watermark gauges and histograms.

    Cheap on purpose: an ``inc`` on an unlabelled series is one dict
    get/set.  Instances pickle (they ride :class:`ShardResult` pipes),
    and merging is associative and commutative — counters sum, gauges
    take the max, histograms add bucket-wise.
    """

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, HistogramData] = {}

    # -- recording --------------------------------------------------------

    def inc(self, name: str, amount: int = 1, **labels: object) -> None:
        """Add ``amount`` to counter ``name`` (labelled series optional)."""
        key = metric_key(name, labels) if labels else name
        self._counters[key] = self._counters.get(key, 0) + amount

    def gauge(self, name: str, value: float, **labels: object) -> None:
        """Record a high-watermark gauge: merge (and re-set) keep the max."""
        key = metric_key(name, labels) if labels else name
        current = self._gauges.get(key)
        if current is None or value > current:
            self._gauges[key] = value

    def observe(
        self,
        name: str,
        value: float,
        bounds: Tuple[float, ...] = None,
        **labels: object,
    ) -> None:
        """Add one observation to histogram ``name``.

        ``bounds`` fixes the bucket bounds the first time a series is
        observed (e.g. :data:`MS_BOUNDS` for duration histograms); the
        series keeps them for life, and :meth:`HistogramData.merge_from`
        refuses to merge series whose call sites disagreed.
        """
        key = metric_key(name, labels) if labels else name
        hist = self._histograms.get(key)
        if hist is None:
            hist = HistogramData(bounds=bounds) if bounds else HistogramData()
            self._histograms[key] = hist
        hist.observe(value)

    # -- reading ----------------------------------------------------------

    def counter(self, name: str, **labels: object) -> int:
        return self._counters.get(metric_key(name, labels), 0)

    def counters(self, prefix: str = "") -> Dict[str, int]:
        """Counter series (optionally filtered by prefix), name-sorted."""
        return {
            key: self._counters[key]
            for key in sorted(self._counters)
            if key.startswith(prefix)
        }

    def gauges(self) -> Dict[str, float]:
        return {key: self._gauges[key] for key in sorted(self._gauges)}

    def histogram(self, name: str, **labels: object) -> HistogramData:
        key = metric_key(name, labels)
        hist = self._histograms.get(key)
        return hist if hist is not None else HistogramData()

    def histograms(self) -> Dict[str, HistogramData]:
        return {key: self._histograms[key] for key in sorted(self._histograms)}

    def hit_rate(self, hits: str, misses: str) -> float:
        """``hits / (hits + misses)`` over two counters (0.0 when idle)."""
        h = self._counters.get(hits, 0)
        m = self._counters.get(misses, 0)
        return h / (h + m) if h + m else 0.0

    def is_empty(self) -> bool:
        return not (self._counters or self._gauges or self._histograms)

    # -- reduction --------------------------------------------------------

    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry in place."""
        for key, value in other._counters.items():
            self._counters[key] = self._counters.get(key, 0) + value
        for key, value in other._gauges.items():
            current = self._gauges.get(key)
            if current is None or value > current:
                self._gauges[key] = value
        for key, hist in other._histograms.items():
            mine = self._histograms.get(key)
            if mine is None:
                mine = HistogramData(bounds=hist.bounds)
                self._histograms[key] = mine
            mine.merge_from(hist)

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """A new registry combining ``self`` and ``other`` (associative)."""
        merged = MetricsRegistry()
        merged.merge_from(self)
        merged.merge_from(other)
        return merged

    # -- export -----------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot with deterministically sorted keys."""
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": {
                key: hist.as_dict() for key, hist in self.histograms().items()
            },
        }

    def rows(self) -> List[Tuple[str, object]]:
        """Render-ready (series, value) rows, counters then gauges then
        histogram means, each block name-sorted."""
        rows: List[Tuple[str, object]] = list(self.counters().items())
        rows.extend(self.gauges().items())
        rows.extend(
            (f"{key} (mean)", round(hist.mean, 3))
            for key, hist in self.histograms().items()
        )
        return rows

    # -- pickling (slots need explicit state) -----------------------------

    def __getstate__(self):
        return (self._counters, self._gauges, self._histograms)

    def __setstate__(self, state):
        self._counters, self._gauges, self._histograms = state

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricsRegistry):
            return NotImplemented
        return (
            self._counters == other._counters
            and self._gauges == other._gauges
            and self.as_dict()["histograms"] == other.as_dict()["histograms"]
        )


class NullMetrics:
    """No-op stand-in installed while observability is disabled.

    Every recording method is a constant-return no-op, and hot paths
    additionally guard with ``if OBS.enabled:`` so the disabled cost is
    one attribute load and a branch — nothing allocates.
    """

    __slots__ = ()

    def inc(self, name: str, amount: int = 1, **labels: object) -> None:
        pass

    def gauge(self, name: str, value: float, **labels: object) -> None:
        pass

    def observe(
        self, name: str, value: float, bounds: Tuple[float, ...] = None,
        **labels: object,
    ) -> None:
        pass

    def counter(self, name: str, **labels: object) -> int:
        return 0

    def counters(self, prefix: str = "") -> Dict[str, int]:
        return {}

    def gauges(self) -> Dict[str, float]:
        return {}

    def histograms(self) -> Dict[str, HistogramData]:
        return {}

    def hit_rate(self, hits: str, misses: str) -> float:
        return 0.0

    def merge_from(self, other) -> None:
        pass

    def is_empty(self) -> bool:
        return True

    def rows(self) -> List[Tuple[str, object]]:
        return []

    def as_dict(self) -> Dict[str, object]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: The shared disabled-mode registry (stateless, safe to share).
NULL_METRICS = NullMetrics()
