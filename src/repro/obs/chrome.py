"""Chrome trace-event export: spans as a Perfetto-loadable timeline.

``--trace-format chrome`` turns the JSONL span stream into the Chrome
trace-event JSON that ``chrome://tracing`` and https://ui.perfetto.dev
load directly, which is the fastest way to *see* a sweep: shard lanes
fanning out under the monitor-sweep stage, the analysis pool chewing
through tasks, checkpoint writes punctuating weeks.

Lane mapping — the trace-event ``pid``/``tid`` pair — follows the
process topology the run actually had:

* the main pipeline (stage spans, checkpoints) → pid 1 / tid 1;
* ``sweep.shard`` spans and everything nested under them → pid 1 /
  tid ``10 + shard_index`` (forked shard workers share the parent's
  address-space snapshot, so "threads of the main process" reads
  truthfully even though they were processes);
* ``analysis.*`` spans → pid 2 (the analysis pool is a separate
  fan-out phase) with one tid per task, in first-seen order.

A span's lane comes from walking its **path id**: a span whose id
contains a ``sweep.shard#3`` segment belongs to shard 3's lane no
matter how deeply nested it is.  That information only exists because
ids are causal paths — the flat pre-tree stream couldn't have been
laned.

Events are ``ph:"X"`` complete events (wall start derived from the
recorded end stamp minus duration), point events are ``ph:"i"``
instants, and ``ph:"M"`` metadata rows name the lanes.  Timestamps are
microseconds normalised to the earliest event so traces start at t=0.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

_MAIN = (1, 1)
_SHARD_TID_BASE = 10
_ANALYSIS_PID = 2


def _lane_from_id(span_id: Optional[str]) -> Optional[Tuple[int, int, str]]:
    """(pid, tid, label) for an explicitly-laned path segment, if any.

    Walks the path segments outermost-first so a span nested under a
    shard span inherits the shard's lane rather than falling back to
    the main thread.
    """
    if not span_id:
        return None
    for segment in span_id.split("/"):
        name, _, seq = segment.rpartition("#")
        if name == "sweep.shard":
            try:
                index = int(seq)
            except ValueError:
                index = 0
            return (_MAIN[0], _SHARD_TID_BASE + index, f"shard {index}")
        if name.startswith("analysis."):
            return (_ANALYSIS_PID, 0, name[len("analysis."):])
    return None


def chrome_trace(events: List[Dict]) -> Dict:
    """Convert JSONL trace events to a Chrome trace-event document."""
    trace_events: List[Dict] = []
    #: analysis task name -> tid, assigned in first-seen order.
    analysis_tids: Dict[str, int] = {}
    lanes_seen: Dict[Tuple[int, int], str] = {_MAIN: "pipeline"}

    def resolve_lane(event: Dict) -> Tuple[int, int]:
        lane = _lane_from_id(event.get("id") or event.get("parent"))
        if lane is None:
            return _MAIN
        pid, tid, label = lane
        if pid == _ANALYSIS_PID:
            tid = analysis_tids.setdefault(label, len(analysis_tids) + 1)
        lanes_seen.setdefault((pid, tid), label)
        return pid, tid

    for event in events:
        kind = event.get("type")
        if kind not in ("span", "event"):
            continue  # the metrics snapshot has no timeline meaning
        wall = event.get("wall")
        if wall is None:
            continue
        pid, tid = resolve_lane(event)
        args = {
            key: value
            for key, value in event.items()
            if key not in ("type", "name", "wall", "dur_ms", "id", "parent")
        }
        if event.get("id"):
            args["id"] = event["id"]
        if kind == "span":
            dur_us = int(event.get("dur_ms", 0.0) * 1000)
            trace_events.append({
                "name": event.get("name", "?"),
                "ph": "X",
                # ``wall`` is stamped at span *end*; recover the start.
                "ts": int(wall * 1_000_000) - dur_us,
                "dur": dur_us,
                "pid": pid,
                "tid": tid,
                "args": args,
            })
        else:
            trace_events.append({
                "name": event.get("name", "?"),
                "ph": "i",
                "ts": int(wall * 1_000_000),
                "s": "t",
                "pid": pid,
                "tid": tid,
                "args": args,
            })

    if trace_events:
        origin = min(entry["ts"] for entry in trace_events)
        for entry in trace_events:
            entry["ts"] -= origin
    trace_events.sort(key=lambda entry: (entry["pid"], entry["tid"], entry["ts"]))

    metadata: List[Dict] = []
    for pid, label in ((1, "repro pipeline"), (_ANALYSIS_PID, "analysis pool")):
        if any(key[0] == pid for key in lanes_seen):
            metadata.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": label},
            })
    for (pid, tid), label in sorted(lanes_seen.items()):
        metadata.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": label},
        })

    return {"traceEvents": metadata + trace_events, "displayTimeUnit": "ms"}


def render_chrome(events: List[Dict]) -> str:
    """The export as a JSON string (callers handle atomic file writes)."""
    return json.dumps(chrome_trace(events), indent=None, separators=(",", ":"))
