"""The ``python -m repro profile`` report.

Renders what the tracer and registry collected over one scenario run:
the top spans by total wall time (per-stage and per-shard timings),
the cache hit rates that justify the fast path (resolver memo, zone
lookup memos, extraction cache), and the retry/breaker heat per edge.
All tables degrade gracefully — a healthy run simply shows zero
retries and no breaker transitions.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.reporting import percent, render_table

#: (label, hits counter, misses counter) rows of the hit-rate table.
CACHE_SERIES: Tuple[Tuple[str, str, str], ...] = (
    ("resolver memo", "resolver.memo.hits", "resolver.memo.misses"),
    ("zone lookup", "zone.lookup.memo_hits", "zone.lookup.memo_misses"),
    ("zone cover (zone_for)", "zone.zone_for.memo_hits", "zone.zone_for.memo_misses"),
    ("html extraction", "extraction.html.hits", "extraction.html.misses"),
    ("sitemap extraction", "extraction.sitemap.hits", "extraction.sitemap.misses"),
    ("touch ledger (clean skips)", "journal.clean_skips", "sweep.sample.full"),
    ("detector sig-index (pruned)", "detector.index.pruned", "detector.index.candidates"),
    ("rescan postings (skipped)", "rescan.skipped", "rescan.visited"),
)

#: How many spans / edges the tables keep.
TOP_SPANS = 14
TOP_EDGES = 10


def _span_table(tracer) -> str:
    aggregates = tracer.aggregates()
    ranked = sorted(
        aggregates.items(), key=lambda item: -item[1]["total_ms"]
    )[:TOP_SPANS]
    rows = [
        (
            name,
            stats["count"],
            f"{stats['total_ms']:.1f}",
            f"{stats['mean_ms']:.3f}",
            f"{stats['max_ms']:.2f}",
        )
        for name, stats in ranked
    ]
    if not rows:
        rows = [("(no spans recorded)", 0, "-", "-", "-")]
    return render_table(
        ["span", "count", "total ms", "mean ms", "max ms"],
        rows,
        title=f"Top spans by total wall time (of {len(aggregates)} span names)",
    )


def _cache_table(metrics) -> str:
    counters = metrics.counters()
    rows: List[Tuple[object, ...]] = []
    for label, hits_key, misses_key in CACHE_SERIES:
        hits = counters.get(hits_key, 0)
        misses = counters.get(misses_key, 0)
        total = hits + misses
        rows.append(
            (label, hits, misses, percent(hits / total) if total else "-")
        )
    evictions = counters.get("resolver.memo.evictions", 0)
    rows.append(("resolver memo evictions", evictions, "-", "-"))
    return render_table(
        ["cache", "hits", "misses", "hit rate"], rows, title="\nCache hit rates"
    )


def _retry_table(metrics) -> str:
    counters = metrics.counters()
    rows: List[Tuple[object, ...]] = [
        ("http attempts (total)", counters.get("http.attempts", 0)),
        ("http retries (total)", counters.get("http.retries", 0)),
    ]
    per_edge = sorted(
        (
            (key, count)
            for key, count in counters.items()
            if key.startswith("http.retries{")
        ),
        key=lambda item: (-item[1], item[0]),
    )[:TOP_EDGES]
    rows.extend(per_edge)
    if not per_edge:
        rows.append(("per-edge retries", "(none)"))
    for transition in ("open", "half_open", "close"):
        total = sum(
            count
            for key, count in counters.items()
            if key.startswith(f"breaker.{transition}")
        )
        rows.append((f"breaker {transition} transitions", total))
    return render_table(
        ["event", "count"], rows, title="\nRetry and breaker heat"
    )


def _sweep_table(result, metrics) -> str:
    counters = metrics.counters()
    rows: List[Tuple[object, ...]] = [
        ("samples taken", counters.get("monitor.samples", 0)),
        ("fused shards", counters.get("sweep.shards.fused", 0)),
        ("generic shards", counters.get("sweep.shards.generic", 0)),
        ("journal clean skips", counters.get("journal.clean_skips", 0)),
        ("journal dirty hits", counters.get("journal.dirty", 0)),
        ("touch-ledger evictions", counters.get("monitor.touch_ledger.evictions", 0)),
        ("touch-marker samples", counters.get("sweep.sample.touch", 0)),
        ("full fused samples", counters.get("sweep.sample.full", 0)),
        ("generic samples", counters.get("sweep.sample.generic", 0)),
        ("detector signature matches", counters.get("detector.signature_matches", 0)),
        ("detector index lookups", counters.get("detector.index.lookups", 0)),
        ("detector index candidates tested", counters.get("detector.index.candidates", 0)),
        ("detector index signatures pruned", counters.get("detector.index.pruned", 0)),
        ("rescans (new signatures)", counters.get("rescan.signatures", 0)),
        ("rescan FQDNs visited", counters.get("rescan.visited", 0)),
        ("rescan FQDNs skipped", counters.get("rescan.skipped", 0)),
        ("rescan full-scan fallbacks", counters.get("rescan.fallbacks", 0)),
        ("store posting evictions", counters.get("store.postings.evictions", 0)),
        ("supervisor worker crashes", counters.get("supervisor.worker_crashes", 0)),
        ("supervisor worker hangs", counters.get("supervisor.worker_hangs", 0)),
        ("supervisor shard retries", counters.get("supervisor.shard_retries", 0)),
        ("supervisor poison quarantined", counters.get("supervisor.poison_quarantined", 0)),
        ("checkpoint writes", counters.get("checkpoint.writes", 0)),
        ("checkpoint corrupt skipped", counters.get("checkpoint.corrupt_skipped", 0)),
    ]
    executor = getattr(result, "executor", None)
    report = getattr(executor, "last_report", None)
    if report is not None:
        rows.append(("last sweep wall s (elapsed)", f"{report.wall_seconds:.3f}"))
        rows.append(("last sweep cpu s (summed shards)", f"{report.cpu_seconds:.3f}"))
        rows.append(("last sweep mode", report.mode))
    return render_table(
        ["metric", "value"], rows, title="\nSweep path and detector"
    )


#: Counter series worth trending week over week, with short labels.
TREND_SERIES: Tuple[Tuple[str, str], ...] = (
    ("monitor.samples", "samples"),
    ("sweep.sample.full", "full"),
    ("sweep.sample.touch", "touch"),
    ("journal.clean_skips", "clean"),
    ("detector.signature_matches", "matches"),
    ("detector.newly_flagged", "flagged"),
)

#: How many week rows the trend table keeps (most recent last).
TREND_WEEKS = 12


def _trend_table(series) -> str:
    """Per-week counter deltas: the longitudinal view of the run."""
    weeks = series.weeks()
    if not weeks:
        return ""
    active = [
        (key, label)
        for key, label in TREND_SERIES
        if any(entry["deltas"].get(key) for entry in weeks)
    ]
    if not active:
        return ""
    shown = weeks[-TREND_WEEKS:]
    rows = [
        tuple(
            [entry["week"]]
            + [entry["deltas"].get(key, 0) for key, _label in active]
        )
        for entry in shown
    ]
    elided = len(weeks) - len(shown)
    title = "\nWeekly trend (per-week counter deltas"
    title += f", first {elided} weeks elided)" if elided else ")"
    return render_table(
        ["week"] + [label for _key, label in active], rows, title=title
    )


def _resource_table(series) -> str:
    """Where the CPU went: per-stage and per-shard resource rows."""
    stages = series.stage_rows()
    shards = series.shard_rows()
    if not stages and not shards:
        return ""
    rows: List[Tuple[object, ...]] = []
    for name, row in sorted(
        stages.items(), key=lambda item: -item[1]["cpu_s"]
    ):
        rows.append(
            (
                name,
                int(row["calls"]),
                f"{row['cpu_s']:.3f}",
                f"{row['wall_s']:.3f}",
                "-",
            )
        )
    for index, row in shards.items():
        rows.append(
            (
                f"shard {index} ({int(row['items'])} items)",
                int(row["runs"]),
                f"{row['cpu_s']:.3f}",
                f"{row['wall_s']:.3f}",
                int(row["peak_rss_kb"]) or "-",
            )
        )
    return render_table(
        ["stage / shard", "calls", "cpu s", "wall s", "peak rss KiB"],
        rows,
        title="\nResource accounting (wall-class: varies run to run)",
    )


def render_profile(result, metrics, tracer, series=None) -> str:
    """The full profile report for one finished scenario run."""
    title = (
        f"Observability profile ({result.weeks_run} weeks, "
        f"{getattr(result.config, 'workers', 1)} worker(s))"
    )
    sections = [
        title,
        "=" * len(title),
        _span_table(tracer),
        _cache_table(metrics),
        _retry_table(metrics),
        _sweep_table(result, metrics),
    ]
    if series is not None:
        for extra in (_trend_table(series), _resource_table(series)):
            if extra:
                sections.append(extra)
    return "\n".join(sections)
