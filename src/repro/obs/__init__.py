"""Observability: deterministic metrics, causal tracing, week series.

The subsystem is off by default and free when off: the process-global
:data:`OBS` handle starts with null-object metrics, tracer and series
recorder, and hot paths guard their instrumentation with
``if OBS.enabled:`` — a single attribute load and branch on a
``__slots__`` singleton, so the golden baseline keeps its exact cost
profile and byte-identical output.

Enable it by installing real sinks::

    from repro.obs import OBS, MetricsRegistry, TimeSeriesRecorder, Tracer

    with Tracer(path) as tracer:
        OBS.configure(metrics=MetricsRegistry(), tracer=tracer,
                      series=TimeSeriesRecorder())
        try:
            ...  # run the scenario
        finally:
            OBS.reset()

Forked shard workers swap in their own registry/buffer-tracer pair for
the duration of the shard (:mod:`repro.parallel.shard`) and ship both
home in the :class:`ShardResult`; the parent reduces registries with
the associative :meth:`MetricsRegistry.merge_from` and replays trace
events in shard order, so worker count never changes the totals.  The
series recorder lives parent-side only: it snapshots the *merged*
registry at week boundaries, after every shard effect has landed.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import (
    DEFAULT_BOUNDS,
    HistogramData,
    MS_BOUNDS,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
    metric_key,
)
from repro.obs.timeseries import (
    METRICS_SCHEMA,
    NULL_SERIES,
    NullSeries,
    TimeSeriesRecorder,
    cpu_seconds_now,
    deterministic_view,
    peak_rss_kb,
)
from repro.obs.trace import (
    BufferTracer,
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    TOPOLOGY_SPAN_PREFIXES,
    Tracer,
    WALL_FIELDS,
    current_span_id,
    load_events,
    parity_projection,
    sim_projection,
)

__all__ = [
    "OBS",
    "Observability",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "HistogramData",
    "DEFAULT_BOUNDS",
    "MS_BOUNDS",
    "metric_key",
    "Tracer",
    "BufferTracer",
    "NullTracer",
    "NULL_TRACER",
    "NULL_SPAN",
    "WALL_FIELDS",
    "TOPOLOGY_SPAN_PREFIXES",
    "current_span_id",
    "load_events",
    "sim_projection",
    "parity_projection",
    "TimeSeriesRecorder",
    "NullSeries",
    "NULL_SERIES",
    "METRICS_SCHEMA",
    "cpu_seconds_now",
    "peak_rss_kb",
    "deterministic_view",
]


class Observability:
    """The process-global observability handle.

    ``enabled`` is precomputed on every (re)configuration so hot paths
    pay one attribute read, never an ``isinstance`` or null check.
    """

    __slots__ = ("metrics", "tracer", "series", "enabled")

    def __init__(self) -> None:
        self.metrics = NULL_METRICS
        self.tracer = NULL_TRACER
        self.series = NULL_SERIES
        self.enabled = False

    def configure(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        series: Optional[TimeSeriesRecorder] = None,
    ) -> None:
        """Install real sinks; ``None`` leaves that slot unchanged."""
        if metrics is not None:
            self.metrics = metrics
        if tracer is not None:
            self.tracer = tracer
        if series is not None:
            self.series = series
        self.enabled = not (
            self.metrics is NULL_METRICS
            and self.tracer is NULL_TRACER
            and self.series is NULL_SERIES
        )

    def reset(self) -> None:
        """Back to the free disabled state (does not close the tracer)."""
        self.metrics = NULL_METRICS
        self.tracer = NULL_TRACER
        self.series = NULL_SERIES
        self.enabled = False


#: The one instance everything instruments against.
OBS = Observability()
