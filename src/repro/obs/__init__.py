"""Observability: deterministic metrics plus a span tracer.

The subsystem is off by default and free when off: the process-global
:data:`OBS` handle starts with null-object metrics and tracer, and hot
paths guard their instrumentation with ``if OBS.enabled:`` — a single
attribute load and branch on a ``__slots__`` singleton, so the golden
baseline keeps its exact cost profile and byte-identical output.

Enable it by installing real sinks::

    from repro.obs import OBS, MetricsRegistry, Tracer

    OBS.configure(metrics=MetricsRegistry(), tracer=Tracer(path))
    try:
        ...  # run the scenario
    finally:
        OBS.reset()

Forked shard workers swap in their own registry/buffer-tracer pair for
the duration of the shard (:mod:`repro.parallel.shard`) and ship both
home in the :class:`ShardResult`; the parent reduces registries with
the associative :meth:`MetricsRegistry.merge_from` and replays trace
events in shard order, so worker count never changes the totals.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import (
    DEFAULT_BOUNDS,
    HistogramData,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
    metric_key,
)
from repro.obs.trace import (
    BufferTracer,
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Tracer,
    WALL_FIELDS,
    load_events,
    sim_projection,
)

__all__ = [
    "OBS",
    "Observability",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "HistogramData",
    "DEFAULT_BOUNDS",
    "metric_key",
    "Tracer",
    "BufferTracer",
    "NullTracer",
    "NULL_TRACER",
    "NULL_SPAN",
    "WALL_FIELDS",
    "load_events",
    "sim_projection",
]


class Observability:
    """The process-global observability handle.

    ``enabled`` is precomputed on every (re)configuration so hot paths
    pay one attribute read, never an ``isinstance`` or null check.
    """

    __slots__ = ("metrics", "tracer", "enabled")

    def __init__(self) -> None:
        self.metrics = NULL_METRICS
        self.tracer = NULL_TRACER
        self.enabled = False

    def configure(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        """Install real sinks; ``None`` leaves that slot unchanged."""
        if metrics is not None:
            self.metrics = metrics
        if tracer is not None:
            self.tracer = tracer
        self.enabled = not (
            self.metrics is NULL_METRICS and self.tracer is NULL_TRACER
        )

    def reset(self) -> None:
        """Back to the free disabled state (does not close the tracer)."""
        self.metrics = NULL_METRICS
        self.tracer = NULL_TRACER
        self.enabled = False


#: The one instance everything instruments against.
OBS = Observability()
