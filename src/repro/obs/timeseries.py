"""Week-boundary metric series and per-stage/per-shard resource accounting.

The pipeline's unit of simulated time is the week: every
:meth:`~repro.pipeline.engine.PipelineEngine.step` runs the stage list
once, then advances the clock by the sweep interval.  A flat counter
registry answers "how many hijacks total", but the paper's longitudinal
questions — when does detection latency spike, which week's churn blew
the sweep budget — need the *trajectory*.  :class:`TimeSeriesRecorder`
captures it by snapshotting the counter registry at each week boundary
and storing the per-week **deltas** (week N's activity, not the running
total).

Two kinds of data live here and must never be conflated:

* **Deterministic**: week-indexed counter deltas.  Pure functions of
  the seed; two same-seed runs must produce equal delta series, and the
  ``repro perf --check`` gate diffs exactly these.
* **Wall-class**: CPU seconds (:func:`cpu_seconds_now`, from
  ``os.times`` so forked shard children are included via the
  children-time fields), peak RSS (:func:`peak_rss_kb`, from
  ``resource.getrusage`` where the platform has it), and wall seconds.
  These vary run to run and are *excluded* from determinism diffs —
  :func:`deterministic_view` strips them, mirroring ``WALL_FIELDS`` in
  the trace layer.

Per-stage and per-shard resource rows accumulate across the run (sum of
cpu/wall, max of rss) keyed by stage name or shard index, giving the
``profile`` report its "where did the time go" tables without touching
the deterministic stream.
"""

from __future__ import annotations

import os
import sys
from typing import Dict, List, Optional

#: Schema tag stamped into every metrics export; ``repro perf`` uses it
#: to recognise the file kind and to refuse exports it can't compare.
METRICS_SCHEMA = "repro.metrics/1"

try:  # pragma: no cover - platform gate
    import resource as _resource
except ImportError:  # pragma: no cover - Windows
    _resource = None


def cpu_seconds_now() -> float:
    """Process CPU seconds so far, children included.

    ``os.times`` exposes user+system for the process and, crucially,
    for reaped children — which is how the parent's stage accounting
    sees the CPU burned inside forked shard workers after it waits on
    them.
    """
    t = os.times()
    return t.user + t.system + t.children_user + t.children_system


def peak_rss_kb() -> int:
    """Peak resident set size of this process in KiB (0 if unknowable).

    ``ru_maxrss`` is KiB on Linux but bytes on macOS; normalise so the
    exported number means one thing.  Windows lacks :mod:`resource`
    entirely — return 0 rather than fail, since resource rows are
    wall-class data that nothing gates on.
    """
    if _resource is None:
        return 0
    rss = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        rss //= 1024
    return int(rss)


class TimeSeriesRecorder:
    """Collects week-delta series plus stage/shard resource rows."""

    __slots__ = ("_weeks", "_last_counters", "_stages", "_shards")

    def __init__(self) -> None:
        #: One entry per completed week, in week order.
        self._weeks: List[Dict] = []
        #: Counter totals at the previous week boundary.
        self._last_counters: Dict[str, int] = {}
        #: stage name -> {"calls", "cpu_s", "wall_s"} accumulated rows.
        self._stages: Dict[str, Dict[str, float]] = {}
        #: shard index -> {"runs", "items", "cpu_s", "wall_s", "peak_rss_kb"}.
        self._shards: Dict[int, Dict[str, float]] = {}

    # -- week series -------------------------------------------------------

    def snapshot(self, week_index: int, at, metrics) -> None:
        """Record week ``week_index``'s counter deltas at its boundary.

        ``metrics`` is the live registry; the delta against the previous
        boundary isolates the week's own activity.  Counters only — the
        delta of a high-watermark gauge or a histogram is not meaningful
        week over week.
        """
        current = dict(metrics.counters())
        deltas = {}
        for key in sorted(current):
            delta = current[key] - self._last_counters.get(key, 0)
            if delta:
                deltas[key] = delta
        self._last_counters = current
        entry = {"week": week_index, "deltas": deltas}
        if at is not None:
            entry["sim"] = at.isoformat() if hasattr(at, "isoformat") else at
        self._weeks.append(entry)

    # -- resource rows -----------------------------------------------------

    def record_stage(self, name: str, cpu_s: float, wall_s: float) -> None:
        row = self._stages.get(name)
        if row is None:
            row = {"calls": 0, "cpu_s": 0.0, "wall_s": 0.0}
            self._stages[name] = row
        row["calls"] += 1
        row["cpu_s"] += cpu_s
        row["wall_s"] += wall_s

    def record_shard(
        self, index: int, items: int, cpu_s: float, wall_s: float,
        peak_rss_kb: int = 0,
    ) -> None:
        row = self._shards.get(index)
        if row is None:
            row = {"runs": 0, "items": 0, "cpu_s": 0.0, "wall_s": 0.0,
                   "peak_rss_kb": 0}
            self._shards[index] = row
        row["runs"] += 1
        row["items"] += items
        row["cpu_s"] += cpu_s
        row["wall_s"] += wall_s
        if peak_rss_kb > row["peak_rss_kb"]:
            row["peak_rss_kb"] = peak_rss_kb

    # -- reading -----------------------------------------------------------

    def weeks(self) -> List[Dict]:
        return list(self._weeks)

    def stage_rows(self) -> Dict[str, Dict[str, float]]:
        return {name: dict(self._stages[name]) for name in sorted(self._stages)}

    def shard_rows(self) -> Dict[int, Dict[str, float]]:
        return {index: dict(self._shards[index]) for index in sorted(self._shards)}

    def is_empty(self) -> bool:
        return not (self._weeks or self._stages or self._shards)

    # -- export ------------------------------------------------------------

    def export(self, metrics, run: Optional[Dict] = None) -> Dict:
        """The ``--metrics-json`` document.

        Deterministic sections (``weeks`` deltas, final ``counters``)
        and wall-class sections (``resources``, per-week ``sim`` stamps
        stay because they're seed-derived) live side by side;
        :func:`deterministic_view` carves out the former for diffing.
        """
        doc: Dict = {"schema": METRICS_SCHEMA}
        if run:
            doc["run"] = dict(run)
        doc["weeks"] = self.weeks()
        doc["counters"] = dict(metrics.counters())
        doc["resources"] = {
            "process": {
                "cpu_s": round(cpu_seconds_now(), 3),
                "peak_rss_kb": peak_rss_kb(),
            },
            "stages": {
                name: {
                    "calls": int(row["calls"]),
                    "cpu_s": round(row["cpu_s"], 4),
                    "wall_s": round(row["wall_s"], 4),
                }
                for name, row in self.stage_rows().items()
            },
            "shards": {
                str(index): {
                    "runs": int(row["runs"]),
                    "items": int(row["items"]),
                    "cpu_s": round(row["cpu_s"], 4),
                    "wall_s": round(row["wall_s"], 4),
                    "peak_rss_kb": int(row["peak_rss_kb"]),
                }
                for index, row in self.shard_rows().items()
            },
        }
        return doc


def deterministic_view(export: Dict) -> Dict:
    """The seed-determined slice of a metrics export.

    Week deltas and final counters only — resources, run metadata and
    per-week sim stamps are dropped (sim stamps are deterministic but
    depend on the configured start date, which ``--check`` should not
    couple to).  Two same-seed runs must produce equal views; this is
    what ``repro perf --check`` compares.
    """
    return {
        "schema": export.get("schema"),
        "weeks": [
            {"week": entry.get("week"), "deltas": dict(entry.get("deltas", {}))}
            for entry in export.get("weeks", [])
        ],
        "counters": dict(export.get("counters", {})),
    }


class NullSeries:
    """No-op stand-in installed while observability is disabled."""

    __slots__ = ()

    def snapshot(self, week_index: int, at, metrics) -> None:
        pass

    def record_stage(self, name: str, cpu_s: float, wall_s: float) -> None:
        pass

    def record_shard(
        self, index: int, items: int, cpu_s: float, wall_s: float,
        peak_rss_kb: int = 0,
    ) -> None:
        pass

    def weeks(self) -> List[Dict]:
        return []

    def stage_rows(self) -> Dict[str, Dict[str, float]]:
        return {}

    def shard_rows(self) -> Dict[int, Dict[str, float]]:
        return {}

    def is_empty(self) -> bool:
        return True

    def export(self, metrics, run: Optional[Dict] = None) -> Dict:
        return {"schema": METRICS_SCHEMA, "weeks": [], "counters": {},
                "resources": {"process": {}, "stages": {}, "shards": {}}}


#: The shared disabled-mode recorder (stateless, safe to share).
NULL_SERIES = NullSeries()
