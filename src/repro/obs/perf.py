"""The ``repro perf`` regression gate: diff two telemetry exports.

The ROADMAP's north star — "as fast as the hardware allows" — is
unenforceable while performance is a number someone eyeballs in a bench
log.  This module turns any pair of exports the observability layer
produces into a pass/fail verdict:

* **metrics exports** (``--metrics-json``, schema ``repro.metrics/1``):
  timing mode compares per-stage CPU/wall resource rows; ``--check``
  mode compares the :func:`~repro.obs.timeseries.deterministic_view`
  (week deltas + counters) and fails on *any* divergence — two
  same-seed runs disagreeing is a determinism bug, not a slowdown;
* **JSONL traces** (``--trace``): per-span-name total durations;
* **Chrome exports** (``--trace-format chrome``): same, from ``dur``;
* **bench results** (``benchmarks/results/*.json``): per-run wall
  seconds matched on (workers, mode).

Timing comparisons apply a ratio ``threshold`` (default 1.20: fail at
+20%) with a ``min_ms`` absolute floor so a 3ms span doubling to 6ms —
pure scheduler noise — never fails a gate.  Exit codes are the
contract CI scripts build on: 0 pass, 1 regression or determinism
mismatch, 2 malformed input (unreadable, unrecognised, or incomparable
kinds).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

#: Gate exit codes (the CLI maps report -> code with these).
EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_MALFORMED = 2

DEFAULT_THRESHOLD = 1.20
DEFAULT_MIN_MS = 25.0


class PerfInputError(ValueError):
    """Input file unreadable or not a recognisable export kind."""


def load_export(path: str) -> Tuple[str, object]:
    """Load ``path`` and classify it: (kind, parsed payload).

    Kinds: ``metrics`` / ``chrome`` / ``bench`` / ``trace``.  JSONL
    traces are detected by parsing line-wise when the file is not one
    JSON document.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise PerfInputError(f"cannot read {path}: {exc}") from exc
    if not text.strip():
        raise PerfInputError(f"{path} is empty")
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
    if isinstance(doc, dict):
        if str(doc.get("schema", "")).startswith("repro.metrics/"):
            return "metrics", doc
        if "traceEvents" in doc:
            return "chrome", doc
        if "runs" in doc:
            return "bench", doc
        if "type" in doc:
            # A one-line JSONL trace parses as a single JSON document.
            return "trace", [doc]
        raise PerfInputError(f"{path}: unrecognised JSON document")
    # Not a single JSON document: try JSONL trace lines.
    events: List[Dict] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise PerfInputError(f"{path}:{lineno}: not JSON ({exc})") from exc
        if not isinstance(event, dict) or "type" not in event:
            raise PerfInputError(f"{path}:{lineno}: not a trace event")
        events.append(event)
    if not events:
        raise PerfInputError(f"{path}: no parseable content")
    return "trace", events


# -- per-kind timing extraction -------------------------------------------


def _trace_totals(events: List[Dict]) -> Dict[str, float]:
    """Per-span-name total duration in ms from a JSONL event list."""
    totals: Dict[str, float] = {}
    for event in events:
        if event.get("type") == "span":
            name = event.get("name", "?")
            totals[name] = totals.get(name, 0.0) + float(event.get("dur_ms", 0.0))
    return totals


def _chrome_totals(doc: Dict) -> Dict[str, float]:
    """Per-name total duration in ms from Chrome complete events."""
    totals: Dict[str, float] = {}
    for entry in doc.get("traceEvents", []):
        if entry.get("ph") == "X":
            name = entry.get("name", "?")
            totals[name] = totals.get(name, 0.0) + float(entry.get("dur", 0)) / 1000.0
    return totals


def _metrics_totals(doc: Dict) -> Dict[str, float]:
    """Per-stage wall ms from a metrics export's resource rows."""
    totals: Dict[str, float] = {}
    stages = doc.get("resources", {}).get("stages", {})
    for name, row in stages.items():
        totals[f"stage.{name}"] = float(row.get("wall_s", 0.0)) * 1000.0
    return totals


def _bench_totals(doc: Dict) -> Dict[str, float]:
    """Per-configuration wall ms from a bench results file."""
    totals: Dict[str, float] = {}
    for run in doc.get("runs", []):
        key = f"workers={run.get('workers')},mode={run.get('mode')}"
        totals[key] = float(run.get("wall_s", 0.0)) * 1000.0
    return totals


_TOTALS = {
    "trace": _trace_totals,
    "chrome": _chrome_totals,
    "metrics": _metrics_totals,
    "bench": _bench_totals,
}


# -- comparison ------------------------------------------------------------


def compare_timings(
    baseline: Dict[str, float],
    candidate: Dict[str, float],
    threshold: float = DEFAULT_THRESHOLD,
    min_ms: float = DEFAULT_MIN_MS,
) -> List[Dict]:
    """Regressions where candidate exceeds baseline by the threshold.

    A series regresses when ``candidate > baseline * threshold`` *and*
    the absolute growth exceeds ``min_ms`` — the floor is what keeps
    microsecond-scale spans from tripping the gate on scheduler noise.
    Series present on only one side are reported informationally by the
    caller, not failed: stage sets legitimately differ across configs.
    """
    regressions: List[Dict] = []
    for name in sorted(baseline):
        if name not in candidate:
            continue
        base = baseline[name]
        cand = candidate[name]
        if cand <= base * threshold:
            continue
        if cand - base <= min_ms:
            continue
        regressions.append({
            "series": name,
            "baseline_ms": round(base, 3),
            "candidate_ms": round(cand, 3),
            "ratio": round(cand / base, 3) if base else float("inf"),
        })
    return regressions


def _deterministic_mismatches(base: Dict, cand: Dict) -> List[str]:
    """Human-readable divergences between two deterministic views."""
    # Imported here: timeseries is a sibling, but keeping perf importable
    # standalone (e.g. by external gate scripts) costs nothing.
    from repro.obs.timeseries import deterministic_view

    left = deterministic_view(base)
    right = deterministic_view(cand)
    problems: List[str] = []
    if left["schema"] != right["schema"]:
        problems.append(f"schema: {left['schema']} != {right['schema']}")
    for key in sorted(set(left["counters"]) | set(right["counters"])):
        a = left["counters"].get(key)
        b = right["counters"].get(key)
        if a != b:
            problems.append(f"counter {key}: {a} != {b}")
    if len(left["weeks"]) != len(right["weeks"]):
        problems.append(
            f"week count: {len(left['weeks'])} != {len(right['weeks'])}"
        )
    for a, b in zip(left["weeks"], right["weeks"]):
        if a != b:
            problems.append(f"week {a.get('week')}: deltas differ")
    return problems


def compare(
    baseline_path: str,
    candidate_path: str,
    threshold: float = DEFAULT_THRESHOLD,
    min_ms: float = DEFAULT_MIN_MS,
    check: bool = False,
) -> Dict:
    """Full gate run: load, classify, compare; returns the report dict.

    The report's ``exit_code`` is the process exit status; ``lines``
    are ready-to-print human output.  Raises :class:`PerfInputError`
    for malformed inputs (the CLI maps that to exit 2).
    """
    base_kind, base = load_export(baseline_path)
    cand_kind, cand = load_export(candidate_path)
    if base_kind != cand_kind:
        raise PerfInputError(
            f"cannot compare {base_kind} ({baseline_path}) "
            f"with {cand_kind} ({candidate_path})"
        )

    lines: List[str] = [f"perf: comparing {base_kind} exports"]
    report: Dict = {"kind": base_kind, "check": check}

    if check:
        if base_kind != "metrics":
            raise PerfInputError(
                f"--check needs metrics exports, got {base_kind}"
            )
        mismatches = _deterministic_mismatches(base, cand)
        report["mismatches"] = mismatches
        if mismatches:
            lines.append(f"FAIL: {len(mismatches)} deterministic divergence(s)")
            lines.extend(f"  {line}" for line in mismatches[:20])
            if len(mismatches) > 20:
                lines.append(f"  ... and {len(mismatches) - 20} more")
            report["exit_code"] = EXIT_REGRESSION
        else:
            weeks = len(base.get("weeks", []))
            counters = len(base.get("counters", {}))
            lines.append(
                f"OK: deterministic views match "
                f"({weeks} weeks, {counters} counters)"
            )
            report["exit_code"] = EXIT_OK
        report["lines"] = lines
        return report

    base_totals = _TOTALS[base_kind](base)
    cand_totals = _TOTALS[cand_kind](cand)
    regressions = compare_timings(base_totals, cand_totals, threshold, min_ms)
    only_base = sorted(set(base_totals) - set(cand_totals))
    only_cand = sorted(set(cand_totals) - set(base_totals))
    report["regressions"] = regressions
    report["compared"] = len(set(base_totals) & set(cand_totals))
    if only_base:
        lines.append(f"note: {len(only_base)} series only in baseline")
    if only_cand:
        lines.append(f"note: {len(only_cand)} series only in candidate")
    if regressions:
        lines.append(
            f"FAIL: {len(regressions)} series regressed beyond "
            f"{threshold:.2f}x (+{min_ms:g}ms floor)"
        )
        for reg in regressions:
            lines.append(
                f"  {reg['series']}: {reg['baseline_ms']:.1f}ms -> "
                f"{reg['candidate_ms']:.1f}ms ({reg['ratio']:.2f}x)"
            )
        report["exit_code"] = EXIT_REGRESSION
    else:
        lines.append(
            f"OK: {report['compared']} series within {threshold:.2f}x"
        )
        report["exit_code"] = EXIT_OK
    report["lines"] = lines
    return report
