"""Structured span tracing to JSONL.

Every event carries two clocks: the **simulated** timestamp (``sim``,
the week being processed) and the **wall** clock (``wall`` plus span
``dur_ms``).  The sim-clock projection of a trace — every field except
the wall ones — is a pure function of the seed, so two same-seed runs
must emit identical projections; tests and the observability-smoke CI
job diff exactly that (:func:`sim_projection`).

Forked shard workers cannot share the parent's file handle, so they
trace into a :class:`BufferTracer` (:meth:`Tracer.fork_buffer`) whose
events ride home in the :class:`~repro.parallel.shard.ShardResult` and
are replayed by the parent **in shard order** — the same discipline as
every other shard effect, and what keeps the event sequence
deterministic across worker counts.

Sampling (``sample_every=N``) keeps every Nth span *per span name*, a
deterministic rule that thins the JSONL without desynchronising
same-seed runs.  Aggregates (span count and total duration per name,
for the ``profile`` report) always see every span.
"""

from __future__ import annotations

import json
import time
from datetime import datetime
from typing import Dict, List, Optional

#: Event fields derived from the wall clock — excluded when diffing
#: same-seed traces for determinism.
WALL_FIELDS = ("wall", "dur_ms")


class _Span:
    """One in-flight span; a context manager that emits on exit."""

    __slots__ = ("_tracer", "name", "sim", "week", "attrs", "_started")

    def __init__(self, tracer: "Tracer", name: str, sim, week, attrs):
        self._tracer = tracer
        self.name = name
        self.sim = sim
        self.week = week
        self.attrs = attrs
        self._started = 0.0

    def __enter__(self) -> "_Span":
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration_ms = (time.perf_counter() - self._started) * 1000.0
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._finish_span(self, duration_ms)


class _NullSpan:
    """Shared no-op span: enter/exit do nothing, nothing allocates."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op stand-in installed while tracing is disabled."""

    __slots__ = ()

    def span(self, name: str, sim=None, week=None, **attrs) -> _NullSpan:
        return NULL_SPAN

    def event(self, name: str, sim=None, week=None, **attrs) -> None:
        pass

    def replay(self, events: List[Dict]) -> None:
        pass

    def fork_buffer(self) -> "NullTracer":
        return self

    def emit_metrics(self, registry, sim=None) -> None:
        pass

    def aggregates(self) -> Dict[str, Dict[str, float]]:
        return {}

    def close(self) -> None:
        pass


#: The shared disabled-mode tracer (stateless, safe to share).
NULL_TRACER = NullTracer()


def _stamp(value) -> Optional[str]:
    return value.isoformat() if isinstance(value, datetime) else value


class Tracer:
    """JSONL span tracer with per-name sampling and aggregates.

    ``path=None`` keeps aggregates only (the ``profile`` subcommand's
    mode); with a path, one JSON object per line is written with a
    fixed key order, so traces diff cleanly.
    """

    def __init__(self, path: Optional[str] = None, sample_every: int = 1):
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.sample_every = sample_every
        self._handle = open(path, "w", encoding="utf-8") if path else None
        #: Spans started per name — drives the every-Nth sampling rule.
        self._seen: Dict[str, int] = {}
        #: name -> [count, total_ms, max_ms]; always fed, never sampled.
        self._agg: Dict[str, List[float]] = {}
        self.events_emitted = 0

    # -- recording --------------------------------------------------------

    def span(self, name: str, sim=None, week=None, **attrs) -> _Span:
        """Open a span; use as a context manager."""
        return _Span(self, name, sim, week, attrs)

    def event(self, name: str, sim=None, week=None, **attrs) -> None:
        """Emit a point event (never sampled away)."""
        self._write(self._payload("event", name, sim, week, attrs))

    def _finish_span(self, span: _Span, duration_ms: float) -> None:
        agg = self._agg.get(span.name)
        if agg is None:
            self._agg[span.name] = [1, duration_ms, duration_ms]
        else:
            agg[0] += 1
            agg[1] += duration_ms
            if duration_ms > agg[2]:
                agg[2] = duration_ms
        seen = self._seen.get(span.name, 0)
        self._seen[span.name] = seen + 1
        if seen % self.sample_every:
            return
        payload = self._payload("span", span.name, span.sim, span.week, span.attrs)
        payload["dur_ms"] = round(duration_ms, 3)
        self._write(payload)

    def emit_metrics(self, registry, sim=None) -> None:
        """Write the registry snapshot as a trailing ``metrics`` event.

        Registries hold only deterministic values, so this event is part
        of the sim-clock projection — CI asserts counters straight off
        the trace file.
        """
        payload = self._payload("metrics", "metrics", sim, None, {})
        payload.update(registry.as_dict())
        self._write(payload)

    # -- shard plumbing ---------------------------------------------------

    def fork_buffer(self) -> "BufferTracer":
        """A child-side tracer buffering events for the shard pipe."""
        return BufferTracer(sample_every=self.sample_every)

    def replay(self, events: List[Dict]) -> None:
        """Write a shard's buffered events (already sampled child-side)
        and fold their spans into the aggregates."""
        for payload in events:
            if payload.get("type") == "span":
                name = payload["name"]
                duration_ms = payload.get("dur_ms", 0.0)
                agg = self._agg.get(name)
                if agg is None:
                    self._agg[name] = [1, duration_ms, duration_ms]
                else:
                    agg[0] += 1
                    agg[1] += duration_ms
                    if duration_ms > agg[2]:
                        agg[2] = duration_ms
            self._write(payload)

    # -- output -----------------------------------------------------------

    def _payload(self, kind: str, name: str, sim, week, attrs) -> Dict:
        payload = {"type": kind, "name": name}
        if week is not None:
            payload["week"] = week
        if sim is not None:
            payload["sim"] = _stamp(sim)
        payload["wall"] = round(time.time(), 6)
        for key in sorted(attrs):
            payload[key] = _stamp(attrs[key])
        return payload

    def _write(self, payload: Dict) -> None:
        self.events_emitted += 1
        if self._handle is not None:
            self._handle.write(json.dumps(payload) + "\n")

    # -- reading ----------------------------------------------------------

    def aggregates(self) -> Dict[str, Dict[str, float]]:
        """Per-span-name timing summary (count/total/mean/max ms)."""
        return {
            name: {
                "count": int(agg[0]),
                "total_ms": agg[1],
                "mean_ms": agg[1] / agg[0] if agg[0] else 0.0,
                "max_ms": agg[2],
            }
            for name, agg in sorted(self._agg.items())
        }

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class BufferTracer(Tracer):
    """A tracer that buffers payloads instead of writing them.

    Used by forked shard workers: the parent replays ``events`` in
    shard order, so the final JSONL is identical to what an inline run
    would have written (wall fields aside).
    """

    def __init__(self, sample_every: int = 1):
        super().__init__(path=None, sample_every=sample_every)
        self.events: List[Dict] = []

    def _write(self, payload: Dict) -> None:
        self.events_emitted += 1
        self.events.append(payload)


def load_events(path: str) -> List[Dict]:
    """Parse a JSONL trace file back into event dicts."""
    events: List[Dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def sim_projection(events: List[Dict]) -> List[Dict]:
    """Events with every wall-clock field stripped.

    What remains is a pure function of the seed and worker topology;
    two same-seed runs must produce equal projections.
    """
    return [
        {key: value for key, value in event.items() if key not in WALL_FIELDS}
        for event in events
    ]
