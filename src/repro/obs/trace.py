"""Structured span tracing to JSONL, with causal trace trees.

Every event carries two clocks: the **simulated** timestamp (``sim``,
the week being processed) and the **wall** clock (``wall`` plus span
``dur_ms``).  The sim-clock projection of a trace — every field except
the wall ones — is a pure function of the seed, so two same-seed runs
must emit identical projections; tests and the observability-smoke CI
job diff exactly that (:func:`sim_projection`).

Spans form a **causal tree**.  The currently-open span is tracked in a
:mod:`contextvars` context variable; a span opened while another is
open becomes its child and records the parent's id.  Ids are *path
ids* — ``parent-id/name#seq`` — assigned from deterministic state
only: the per-parent sequence number of that span name, or an explicit
``seq=`` the call site derives from simulation structure (shard
spans pass their shard index).  That makes the id-bearing projection a
pure function of the seed and worker topology: a forked shard worker
inherits the parent's open-span context through ``os.fork`` and builds
the exact id an inline run of the same shard would have built.

Forked shard workers cannot share the parent's file handle, so they
trace into a :class:`BufferTracer` (:meth:`Tracer.fork_buffer`) whose
events ride home in the :class:`~repro.parallel.shard.ShardResult` and
are replayed by the parent **in shard order** — the same discipline as
every other shard effect, and what keeps the event sequence (ids
included) deterministic across worker counts.

Sampling (``sample_every=N``) keeps every Nth span *per span name*, a
deterministic rule that thins the JSONL without desynchronising
same-seed runs.  Aggregates (span count and total duration per name,
for the ``profile`` report) always see every span.

:class:`Tracer` is a context manager: ``with Tracer(path) as tracer``
guarantees the JSONL handle is flushed and closed even when the traced
run raises — an exception mid-run must never leak the handle or drop
buffered trailing events.
"""

from __future__ import annotations

import json
import time
from contextvars import ContextVar
from datetime import datetime
from typing import Dict, List, Optional

#: Event fields derived from the wall clock — excluded when diffing
#: same-seed traces for determinism.
WALL_FIELDS = ("wall", "dur_ms")

#: Span names whose *count* is a function of the worker topology, not
#: the seed: one ``sweep.shard`` span exists per shard, and the
#: supervisor's recovery spans exist only where workers were dispatched.
#: :func:`parity_projection` drops them (exactly as the registry parity
#: tests drop the ``sweep.shards.*`` counter split) so traces can be
#: compared *across* worker counts and executor choices.
TOPOLOGY_SPAN_PREFIXES = ("sweep.shard", "supervisor.")

#: The process-wide open-span context.  One tracer is active at a time
#: (the :data:`repro.obs.OBS` singleton), so the variable is shared by
#: all tracer instances; forked children inherit its value through the
#: copied interpreter state, which is how a shard worker knows which
#: parent span to nest under.
_CURRENT_SPAN: ContextVar[Optional["_Span"]] = ContextVar(
    "repro_obs_current_span", default=None
)


def current_span_id() -> Optional[str]:
    """The id of the innermost open span (``None`` outside any span)."""
    span = _CURRENT_SPAN.get()
    return span.id if span is not None else None


class _Span:
    """One in-flight span; a context manager that emits on exit."""

    __slots__ = (
        "_tracer", "name", "sim", "week", "attrs", "_started",
        "id", "parent", "seq", "_token", "_child_seq",
    )

    def __init__(self, tracer: "Tracer", name: str, sim, week, seq, attrs):
        self._tracer = tracer
        self.name = name
        self.sim = sim
        self.week = week
        self.attrs = attrs
        self.seq = seq
        self._started = 0.0
        self.id: Optional[str] = None
        self.parent: Optional[str] = None
        self._token = None
        #: Per-name sequence counters of this span's children; lives and
        #: dies with the span, so id state never accumulates.
        self._child_seq: Optional[Dict[str, int]] = None

    def _next_child_seq(self, name: str) -> int:
        if self._child_seq is None:
            self._child_seq = {}
        n = self._child_seq.get(name, 0)
        self._child_seq[name] = n + 1
        return n

    def __enter__(self) -> "_Span":
        parent = _CURRENT_SPAN.get()
        if self.seq is not None:
            n = self.seq
        elif parent is not None:
            n = parent._next_child_seq(self.name)
        else:
            n = self._tracer._next_root_seq(self.name)
        if parent is not None:
            self.parent = parent.id
            self.id = f"{parent.id}/{self.name}#{n}"
        else:
            self.id = f"{self.name}#{n}"
        self._token = _CURRENT_SPAN.set(self)
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration_ms = (time.perf_counter() - self._started) * 1000.0
        _CURRENT_SPAN.reset(self._token)
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._finish_span(self, duration_ms)


class _NullSpan:
    """Shared no-op span: enter/exit do nothing, nothing allocates."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op stand-in installed while tracing is disabled."""

    __slots__ = ()

    def span(self, name: str, sim=None, week=None, seq=None, **attrs) -> _NullSpan:
        return NULL_SPAN

    def event(self, name: str, sim=None, week=None, **attrs) -> None:
        pass

    def replay(self, events: List[Dict]) -> None:
        pass

    def fork_buffer(self) -> "NullTracer":
        return self

    def emit_metrics(self, registry, sim=None) -> None:
        pass

    def aggregates(self) -> Dict[str, Dict[str, float]]:
        return {}

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullTracer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


#: The shared disabled-mode tracer (stateless, safe to share).
NULL_TRACER = NullTracer()


def _stamp(value) -> Optional[str]:
    return value.isoformat() if isinstance(value, datetime) else value


class Tracer:
    """JSONL span tracer with causal ids, sampling and aggregates.

    ``path=None`` keeps aggregates only (the ``profile`` subcommand's
    mode); with a path, one JSON object per line is written with a
    fixed key order, so traces diff cleanly.  Use as a context manager
    to guarantee the handle closes on error paths.
    """

    def __init__(self, path: Optional[str] = None, sample_every: int = 1):
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.sample_every = sample_every
        self._handle = open(path, "w", encoding="utf-8") if path else None
        #: Spans started per name — drives the every-Nth sampling rule.
        self._seen: Dict[str, int] = {}
        #: name -> [count, total_ms, max_ms]; always fed, never sampled.
        self._agg: Dict[str, List[float]] = {}
        #: Per-name sequence counters of root spans (no open parent).
        self._root_seq: Dict[str, int] = {}
        self.events_emitted = 0

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Close (and thereby flush) even when the traced run raised: a
        # crashed scenario must still leave a readable, complete JSONL.
        self.close()

    # -- recording --------------------------------------------------------

    def span(self, name: str, sim=None, week=None, seq=None, **attrs) -> _Span:
        """Open a span; use as a context manager.

        ``seq`` overrides the per-parent sequence number in the span's
        path id.  Call sites whose spans run in forked workers pass a
        simulation-derived value (the shard index) so the id is the
        same whether the span ran forked, inline, or after a replay.
        """
        return _Span(self, name, sim, week, seq, attrs)

    def event(self, name: str, sim=None, week=None, **attrs) -> None:
        """Emit a point event (never sampled away); parented like a span."""
        self._write(
            self._payload("event", name, sim, week, attrs, parent=current_span_id())
        )

    def _next_root_seq(self, name: str) -> int:
        n = self._root_seq.get(name, 0)
        self._root_seq[name] = n + 1
        return n

    def _finish_span(self, span: _Span, duration_ms: float) -> None:
        agg = self._agg.get(span.name)
        if agg is None:
            self._agg[span.name] = [1, duration_ms, duration_ms]
        else:
            agg[0] += 1
            agg[1] += duration_ms
            if duration_ms > agg[2]:
                agg[2] = duration_ms
        seen = self._seen.get(span.name, 0)
        self._seen[span.name] = seen + 1
        if seen % self.sample_every:
            return
        payload = self._payload(
            "span", span.name, span.sim, span.week, span.attrs,
            span_id=span.id, parent=span.parent,
        )
        payload["dur_ms"] = round(duration_ms, 3)
        self._write(payload)

    def emit_metrics(self, registry, sim=None) -> None:
        """Write the registry snapshot as a trailing ``metrics`` event.

        Registries hold only deterministic values, so this event is part
        of the sim-clock projection — CI asserts counters straight off
        the trace file.
        """
        payload = self._payload("metrics", "metrics", sim, None, {})
        payload.update(registry.as_dict())
        self._write(payload)

    # -- shard plumbing ---------------------------------------------------

    def fork_buffer(self) -> "BufferTracer":
        """A child-side tracer buffering events for the shard pipe.

        The open-span context rides the fork itself (:data:`_CURRENT_SPAN`
        is ordinary interpreter state), so spans the child opens nest
        under the parent's in-flight span with the same path ids an
        inline run would assign.
        """
        return BufferTracer(sample_every=self.sample_every)

    def replay(self, events: List[Dict]) -> None:
        """Write a shard's buffered events (already sampled and id-stamped
        child-side) and fold their spans into the aggregates."""
        for payload in events:
            if payload.get("type") == "span":
                name = payload["name"]
                duration_ms = payload.get("dur_ms", 0.0)
                agg = self._agg.get(name)
                if agg is None:
                    self._agg[name] = [1, duration_ms, duration_ms]
                else:
                    agg[0] += 1
                    agg[1] += duration_ms
                    if duration_ms > agg[2]:
                        agg[2] = duration_ms
            self._write(payload)

    # -- output -----------------------------------------------------------

    def _payload(
        self, kind: str, name: str, sim, week, attrs,
        span_id: Optional[str] = None, parent: Optional[str] = None,
    ) -> Dict:
        payload = {"type": kind, "name": name}
        if span_id is not None:
            payload["id"] = span_id
        if parent is not None:
            payload["parent"] = parent
        if week is not None:
            payload["week"] = week
        if sim is not None:
            payload["sim"] = _stamp(sim)
        payload["wall"] = round(time.time(), 6)
        for key in sorted(attrs):
            payload[key] = _stamp(attrs[key])
        return payload

    def _write(self, payload: Dict) -> None:
        self.events_emitted += 1
        if self._handle is not None:
            self._handle.write(json.dumps(payload) + "\n")

    # -- reading ----------------------------------------------------------

    def aggregates(self) -> Dict[str, Dict[str, float]]:
        """Per-span-name timing summary (count/total/mean/max ms)."""
        return {
            name: {
                "count": int(agg[0]),
                "total_ms": agg[1],
                "mean_ms": agg[1] / agg[0] if agg[0] else 0.0,
                "max_ms": agg[2],
            }
            for name, agg in sorted(self._agg.items())
        }

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class BufferTracer(Tracer):
    """A tracer that buffers payloads instead of writing them.

    Used by forked shard workers: the parent replays ``events`` in
    shard order, so the final JSONL is identical to what an inline run
    would have written (wall fields aside).  Also the capture backend
    of the Chrome export: the CLI buffers the whole run and converts
    the events at exit.
    """

    def __init__(self, sample_every: int = 1):
        super().__init__(path=None, sample_every=sample_every)
        self.events: List[Dict] = []

    def _write(self, payload: Dict) -> None:
        self.events_emitted += 1
        self.events.append(payload)


def load_events(path: str) -> List[Dict]:
    """Parse a JSONL trace file back into event dicts."""
    events: List[Dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def sim_projection(events: List[Dict]) -> List[Dict]:
    """Events with every wall-clock field stripped.

    What remains — names, causal ids and parent ids, sim timestamps,
    deterministic attrs, the metrics snapshot — is a pure function of
    the seed and worker topology; two same-seed runs of the same
    configuration must produce equal projections.
    """
    return [
        {key: value for key, value in event.items() if key not in WALL_FIELDS}
        for event in events
    ]


def parity_projection(events: List[Dict]) -> List[Dict]:
    """The topology-invariant slice of the sim projection.

    Drops the per-shard spans (their count is the worker count, and the
    serial executor never opens them at all), the supervisor's recovery
    spans, and the trailing metrics snapshot (whose ``sweep.shards.*``
    and cache-split counters are topology-dependent — the registry
    parity tests exclude the same prefixes).  What survives — the
    stage, analysis and checkpoint spans with their causal ids — must
    be byte-identical for one seed across ``--workers`` counts and
    ``--incremental`` on/off.
    """
    kept: List[Dict] = []
    for event in events:
        if event.get("type") == "metrics":
            continue
        if event.get("name", "").startswith(TOPOLOGY_SPAN_PREFIXES):
            continue
        kept.append(
            {key: value for key, value in event.items() if key not in WALL_FIELDS}
        )
    return kept
