"""Certificate Transparency log.

Every CA in the simulation submits issued certificates here.  The log
supports the two consumer roles the paper describes: the *analysis*
role (Section 5.6.1: the full certificate timeline per domain, the
single-SAN vs multi-SAN split of Figure 20) and the *countermeasure*
role (Section 5.6.3: a domain owner monitoring the log is alerted
within hours of a hijacker's issuance).
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import Callable, Dict, List, Optional

from repro.dns.names import Name, is_subdomain_of, normalize_name
from repro.pki.certificate import Certificate


@dataclass(frozen=True)
class CTLogEntry:
    """One log entry: a certificate and when it was logged."""

    certificate: Certificate
    logged_at: datetime


class CTLog:
    """Append-only certificate log with subscription support."""

    def __init__(self) -> None:
        self._entries: List[CTLogEntry] = []
        self._monitors: Dict[Name, List[Callable[[CTLogEntry], None]]] = {}

    def submit(self, certificate: Certificate, at: datetime) -> CTLogEntry:
        """Log a certificate and fire any matching monitors."""
        entry = CTLogEntry(certificate=certificate, logged_at=at)
        self._entries.append(entry)
        for apex, callbacks in self._monitors.items():
            if _entry_covers(entry, apex):
                for callback in callbacks:
                    callback(entry)
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[CTLogEntry]:
        """All entries, oldest first."""
        return list(self._entries)

    # -- analysis queries -------------------------------------------------------

    def entries_for(self, name: Name, include_subdomains: bool = False) -> List[CTLogEntry]:
        """Entries whose certificate covers ``name`` (or names under it)."""
        normalized = normalize_name(name)
        out = []
        for entry in self._entries:
            if include_subdomains:
                if _entry_covers(entry, normalized):
                    out.append(entry)
            elif entry.certificate.matches(normalized):
                out.append(entry)
        return out

    def single_san_entries(self) -> List[CTLogEntry]:
        """Entries with exactly one non-wildcard SAN (the hijack shape)."""
        return [e for e in self._entries if e.certificate.is_single_san]

    def multi_san_entries(self) -> List[CTLogEntry]:
        """Entries with multiple SANs or a wildcard."""
        return [e for e in self._entries if not e.certificate.is_single_san]

    def first_issuance_for(self, name: Name) -> Optional[datetime]:
        """Timestamp of the earliest certificate covering ``name``."""
        matching = self.entries_for(name)
        if not matching:
            return None
        return min(entry.logged_at for entry in matching)

    # -- countermeasure (Section 5.6.3) ---------------------------------------------

    def monitor(self, apex: Name, callback: Callable[[CTLogEntry], None]) -> None:
        """Alert ``callback`` whenever a cert for ``apex`` or below is logged."""
        self._monitors.setdefault(normalize_name(apex), []).append(callback)


def _entry_covers(entry: CTLogEntry, apex: Name) -> bool:
    for san in entry.certificate.sans:
        concrete = san[2:] if san.startswith("*.") else san
        if is_subdomain_of(concrete, apex):
            return True
    return False
