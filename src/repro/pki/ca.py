"""Certificate authorities with HTTP-01 domain validation.

Issuance follows the ACME shape the paper relies on (Section 5.6):

1. the requester asks for names;
2. the CA checks CAA for each name (RFC 8659);
3. the CA places a random challenge token with the requester, who must
   serve it at ``/.well-known/acme-challenge/<token>`` on each name;
4. the CA fetches the token over plain HTTP *through the public DNS and
   routing layers* and issues only if the bytes match.

Step 4 is what makes hijacks certifiable: whoever controls the content
behind the name — the legitimate owner or the attacker who re-registered
the released resource — passes validation.  Issued certificates go to
the CT log.
"""

from __future__ import annotations

import random
from contextlib import nullcontext
from datetime import datetime, timedelta
from typing import Callable, Optional, Sequence

from repro.pki.caa import caa_authorizes
from repro.pki.certificate import Certificate
from repro.pki.ct_log import CTLog
from repro.dns.zone import ZoneRegistry
from repro.web.client import HttpClient

#: Standard 90-day validity, as issued by the free ACME CAs.
DEFAULT_VALIDITY = timedelta(days=90)

CHALLENGE_PREFIX = "/.well-known/acme-challenge/"

#: A challenge installer: given (host, path, body), make the content
#: available over HTTP; returns True if it could.
ChallengeInstaller = Callable[[str, str, str], bool]


class IssuanceError(RuntimeError):
    """Raised when a certificate request is refused."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class CertificateAuthority:
    """One CA.

    Parameters
    ----------
    name:
        Display name, recorded as the certificate issuer.
    identifier:
        The CAA identifier (``"letsencrypt.org"``-style).
    free:
        Whether issuance costs nothing — the property Section 5.6.2
        shows makes CAA useless against scaled abuse.
    """

    def __init__(
        self,
        name: str,
        identifier: str,
        ct_log: CTLog,
        zones: ZoneRegistry,
        client: HttpClient,
        rng: random.Random,
        free: bool = True,
        price_usd: float = 0.0,
    ):
        self.name = name
        self.identifier = identifier.lower()
        self.free = free
        self.price_usd = price_usd
        self._ct_log = ct_log
        self._zones = zones
        self._client = client
        self._rng = rng
        self._serial = 0

    def issue(
        self,
        sans: Sequence[str],
        install_challenge: ChallengeInstaller,
        at: datetime,
        validity: timedelta = DEFAULT_VALIDITY,
    ) -> Certificate:
        """Run domain validation for every SAN and issue on success.

        Wildcard SANs are refused (they require DNS-01, which a content
        hijacker cannot complete) — this is why hijacker certificates
        are single-SAN (Figure 20).
        """
        if not sans:
            raise IssuanceError("no names requested")
        for san in sans:
            if san.startswith("*."):
                raise IssuanceError(
                    f"{san}: wildcard issuance requires DNS-01 validation"
                )
            if not caa_authorizes(self._zones, san, self.identifier):
                raise IssuanceError(f"{san}: CAA forbids issuance by {self.identifier}")
            self._validate_http01(san, install_challenge, at)
        self._serial += 1
        certificate = Certificate(
            serial=self._serial,
            sans=tuple(sans),
            issuer=self.name,
            not_before=at,
            not_after=at + validity,
        )
        self._ct_log.submit(certificate, at)
        return certificate

    def issue_dns_validated(
        self,
        sans: Sequence[str],
        zone_controller: str,
        zones_owner_lookup,
        at: datetime,
        validity: timedelta = DEFAULT_VALIDITY,
    ) -> Certificate:
        """DNS-01 issuance: multi-SAN and wildcard certificates.

        The requester must control the DNS zone of every SAN —
        ``zones_owner_lookup(name)`` must return ``zone_controller``
        for each.  This is the legitimate bulk/managed issuance path
        producing the multi-SAN and wildcard population of Figure 20;
        content-level hijackers cannot take it, which is why their
        certificates are single-SAN.
        """
        if not sans:
            raise IssuanceError("no names requested")
        for san in sans:
            concrete = san[2:] if san.startswith("*.") else san
            if not caa_authorizes(self._zones, concrete, self.identifier):
                raise IssuanceError(f"{san}: CAA forbids issuance by {self.identifier}")
            controller = zones_owner_lookup(concrete)
            if controller != zone_controller:
                raise IssuanceError(
                    f"{san}: requester does not control the zone ({controller!r})"
                )
        self._serial += 1
        certificate = Certificate(
            serial=self._serial,
            sans=tuple(sans),
            issuer=self.name,
            not_before=at,
            not_after=at + validity,
        )
        self._ct_log.submit(certificate, at)
        return certificate

    def _validate_http01(
        self, san: str, install_challenge: ChallengeInstaller, at: datetime
    ) -> None:
        token = "".join(self._rng.choices("abcdefghijklmnopqrstuvwxyz0123456789", k=32))
        body = f"{token}.key-authorization"
        path = CHALLENGE_PREFIX + token
        if not install_challenge(san, path, body):
            raise IssuanceError(f"{san}: requester could not install challenge")
        # The CA fetches over its own egress, not the flaky measurement
        # path — chaos injection never fails a challenge fetch.
        plan = getattr(self._client, "fault_plan", None)
        guard = plan.suppressed() if plan is not None else nullcontext()
        with guard:
            outcome = self._client.fetch(san, path=path, scheme="http", at=at)
        if not outcome.ok:
            raise IssuanceError(f"{san}: challenge fetch failed ({outcome.status.value})")
        if outcome.response.body != body:
            raise IssuanceError(f"{san}: challenge content mismatch")
