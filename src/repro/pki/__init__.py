"""PKI substrate: certificates, CAs, domain validation, CAA and CT.

Section 5.6 of the paper analyzes fraudulent certificates that
hijackers obtain through HTTP-based domain validation, evaluates CAA
records as a (failed) countermeasure and proposes CT monitoring as a
better one.  This package implements those mechanisms: CAs issue after
an HTTP-01 challenge served from the (possibly hijacked) resource,
honour CAA records with RFC 8659 tree climbing, and log every issued
certificate to a Certificate Transparency log that the analyses (and
the CT-monitoring countermeasure) read.
"""

from repro.pki.caa import caa_authorizes, effective_caa_set
from repro.pki.ca import CertificateAuthority, IssuanceError
from repro.pki.certificate import Certificate
from repro.pki.ct_log import CTLog, CTLogEntry

__all__ = [
    "Certificate",
    "CertificateAuthority",
    "IssuanceError",
    "CTLog",
    "CTLogEntry",
    "caa_authorizes",
    "effective_caa_set",
]
