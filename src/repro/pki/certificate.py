"""X.509-shaped certificates (the fields the analyses need)."""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import Optional, Tuple

from repro.dns.names import normalize_name, parent_name


@dataclass(frozen=True)
class Certificate:
    """One issued certificate.

    ``sans`` is the full Subject Alternative Name list.  Figure 20's
    analysis splits certificates into single-SAN (one concrete name —
    the shape a hijacker's domain-validated issuance produces) and
    multi-SAN/wildcard (the shape legitimate bulk/managed issuance
    produces).
    """

    serial: int
    sans: Tuple[str, ...]
    issuer: str
    not_before: datetime
    not_after: datetime

    def __post_init__(self) -> None:
        if not self.sans:
            raise ValueError("certificate requires at least one SAN")
        normalized = tuple(
            san if san.startswith("*.") else normalize_name(san) for san in self.sans
        )
        object.__setattr__(self, "sans", normalized)
        if self.not_after <= self.not_before:
            raise ValueError("not_after must follow not_before")

    @property
    def subject(self) -> str:
        """The primary (first) SAN."""
        return self.sans[0]

    @property
    def is_wildcard(self) -> bool:
        """Whether any SAN is a wildcard name."""
        return any(san.startswith("*.") for san in self.sans)

    @property
    def is_single_san(self) -> bool:
        """Exactly one SAN and it is not a wildcard — the hijack shape."""
        return len(self.sans) == 1 and not self.is_wildcard

    def matches(self, host: str) -> bool:
        """Whether the certificate covers ``host`` (wildcards one level)."""
        host = normalize_name(host)
        for san in self.sans:
            if san.startswith("*."):
                parent = parent_name(host)
                if parent is not None and parent == normalize_name(san[2:]):
                    return True
            elif san == host:
                return True
        return False

    def valid_at(self, at: datetime) -> bool:
        """Whether ``at`` falls in the validity window."""
        return self.not_before <= at <= self.not_after

    def validity_problem(self, host: str, at: Optional[datetime]) -> str:
        """A TLS-handshake problem string, or '' if the cert is fine.

        Used by :class:`repro.web.client.HttpClient` during simulated
        handshakes.
        """
        if not self.matches(host):
            return f"certificate does not cover {host}"
        if at is not None and not self.valid_at(at):
            return "certificate expired or not yet valid"
        return ""
