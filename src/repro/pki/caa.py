"""CAA record evaluation (RFC 8659 tree climbing).

Section 5.6.2 measures CAA deployment and argues it cannot stop
hijacker issuance: the attacker simply uses whichever CA the record
authorizes (most records authorize the free CAs everyone uses).  The
functions here give CAs the standard pre-issuance check, and give the
analysis the effective policy for any name.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.dns.names import Name, normalize_name, parent_name
from repro.dns.records import RRType, parse_caa_rdata
from repro.dns.zone import ZoneRegistry


def effective_caa_set(zones: ZoneRegistry, name: Name) -> Optional[List[tuple]]:
    """The CAA RRset governing ``name``.

    Climbs from ``name`` toward the root and returns the first CAA
    RRset found (parsed to ``(flags, tag, value)`` tuples), or ``None``
    when no ancestor publishes CAA — the unrestricted default.
    """
    current: Optional[str] = normalize_name(name)
    while current is not None:
        zone = zones.zone_for(current)
        if zone is not None:
            records = zone.lookup(current, RRType.CAA)
            if records:
                parsed = [parse_caa_rdata(r.rdata) for r in records]
                return [p for p in parsed if p is not None]
        current = parent_name(current)
    return None


def authorized_issuers(zones: ZoneRegistry, name: Name) -> Optional[Set[str]]:
    """CA identifiers allowed to issue for ``name``.

    ``None`` means "anyone" (no CAA published).  An empty set means a
    CAA RRset exists but authorizes nobody (``issue ";"``).
    """
    rrset = effective_caa_set(zones, name)
    if rrset is None:
        return None
    issuers: Set[str] = set()
    for _flags, tag, value in rrset:
        if tag == "issue" and value != ";":
            issuers.add(value.lower())
    return issuers


def caa_authorizes(zones: ZoneRegistry, name: Name, ca_identifier: str) -> bool:
    """Whether ``ca_identifier`` may issue for ``name`` under CAA rules."""
    issuers = authorized_issuers(zones, name)
    if issuers is None:
        return True
    return ca_identifier.lower() in issuers
