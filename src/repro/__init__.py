"""repro — a full reproduction of "Cloudy with a Chance of Cyberattacks:
Dangling Resources Abuse on Cloud Platforms" (NSDI 2024).

The package builds a deterministic simulated Internet — DNS, cloud
platforms, web hosting, PKI/CT, WHOIS, threat intel — populates it with
organizations and attackers, and runs the paper's measurement pipeline
against it: Algorithm-1 collection, weekly monitoring, signature-based
abuse detection, and every Section 4-6 analysis.

Quickstart::

    from repro import ScenarioConfig, run_scenario
    result = run_scenario(ScenarioConfig.small())
    print(len(result.dataset), "abused FQDNs detected")

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
the paper-vs-measured comparison of every table and figure.
"""

from repro.core.collection import collect_fqdns
from repro.core.detection import AbuseDataset, AbuseDetector, AbuseRecord
from repro.core.scenario import (
    ScenarioConfig,
    ScenarioResult,
    build_scenario,
    run_scenario,
)
from repro.pipeline import PipelineEngine, PipelineMetrics, Stage, WeekContext
from repro.sim.clock import SimClock
from repro.sim.rng import RngStreams
from repro.world.internet import Internet

__version__ = "1.0.0"

__all__ = [
    "ScenarioConfig",
    "ScenarioResult",
    "build_scenario",
    "run_scenario",
    "PipelineEngine",
    "PipelineMetrics",
    "Stage",
    "WeekContext",
    "collect_fqdns",
    "AbuseDataset",
    "AbuseDetector",
    "AbuseRecord",
    "SimClock",
    "RngStreams",
    "Internet",
    "__version__",
]
