"""Transport-level liveness probing (Zmap-style).

Prior work classified DNS records as dangling when the pointed-to IP
did not answer ICMP or a set of TCP ports ([12] ports 80/443/53, [3]
36 ports, [16] 148 ports).  The paper shows in Section 2 that this
misestimates availability under virtual hosting: an edge server answers
ping and accepts TCP on 80/443 for *every* name it fronts, whether or
not the specific resource behind a given FQDN still exists — and,
conversely, some live services drop ICMP entirely.  These probers
reproduce exactly that behaviour against :class:`repro.net.network.Network`
hosts; the application-layer check lives in :mod:`repro.web.client`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.net.network import Network

#: Port sets used by the prior work the paper contrasts itself with.
LIU_2016_PORTS = frozenset({80, 443, 53})
BORGOLTE_2018_PORTS = frozenset(
    {21, 22, 23, 25, 53, 80, 110, 123, 135, 139, 143, 161, 179, 194, 389,
     443, 445, 465, 514, 515, 587, 636, 873, 993, 995, 1080, 1433, 1521,
     3306, 3389, 5432, 5900, 6379, 8080, 8443, 27017}
)


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of one transport-level probe."""

    ip: str
    responsive: bool
    method: str
    detail: str = ""


def icmp_ping(network: Network, ip: str) -> ProbeResult:
    """Send a simulated ICMP echo request to ``ip``."""
    if network.fault_plan is not None and network.fault_plan.icmp_blackout(ip):
        return ProbeResult(
            ip=ip, responsive=False, method="icmp", detail="blackout (injected)"
        )
    host = network.host_at(ip)
    responsive = host is not None and host.responds_to_icmp()
    detail = "" if host is not None else "no host bound"
    return ProbeResult(ip=ip, responsive=responsive, method="icmp", detail=detail)


def tcp_probe(network: Network, ip: str, port: int) -> ProbeResult:
    """Attempt a simulated TCP handshake with ``ip:port``."""
    if network.fault_plan is not None and network.fault_plan.connection_reset(ip):
        return ProbeResult(
            ip=ip, responsive=False, method=f"tcp/{port}", detail="reset (injected)"
        )
    host = network.host_at(ip)
    responsive = host is not None and port in host.open_tcp_ports()
    return ProbeResult(ip=ip, responsive=responsive, method=f"tcp/{port}")


def tcp_probe_any(network: Network, ip: str, ports: Iterable[int]) -> ProbeResult:
    """Probe several ports and report responsive if any accepts.

    This is the aggregation rule prior work used: a record is "live" if
    the IP answers on at least one probed port.
    """
    if network.fault_plan is not None and network.fault_plan.connection_reset(ip):
        return ProbeResult(
            ip=ip, responsive=False, method="tcp-any", detail="reset (injected)"
        )
    host = network.host_at(ip)
    open_port: Optional[int] = None
    if host is not None:
        open_ports = host.open_tcp_ports()
        for port in ports:
            if port in open_ports:
                open_port = port
                break
    return ProbeResult(
        ip=ip,
        responsive=open_port is not None,
        method="tcp-any",
        detail=f"open={open_port}" if open_port is not None else "none open",
    )
