"""IPv4 address pools and CIDR membership.

Cloud providers publish their address ranges (the paper's Appendix A.1
cites the AWS/Azure/GCP range feeds); Algorithm 1 tests A records
against those ranges.  :class:`CidrSet` provides that membership test.

:class:`IPv4Pool` models a provider's allocatable pool.  Addresses are
handed out *randomly* from the free portion of the pool — this is the
property that makes IP takeover a lottery (Section 4.3): an attacker
wanting one specific released address must allocate repeatedly and hope.
An optional *reuse bias* makes recently released addresses more likely
to be handed out again, which is how prior work ([12], [3]) showed the
lottery can be played effectively.
"""

from __future__ import annotations

import ipaddress
import random
from typing import Iterable, List, Optional, Sequence, Set, Tuple


class PoolExhaustedError(RuntimeError):
    """Raised when an allocation is requested from a fully used pool."""


class CidrSet:
    """An immutable set of CIDR blocks with fast membership testing."""

    def __init__(self, cidrs: Iterable[str]):
        self._networks = tuple(
            ipaddress.ip_network(cidr, strict=False) for cidr in cidrs
        )

    @property
    def cidrs(self) -> Tuple[str, ...]:
        """The blocks as strings, in the order supplied."""
        return tuple(str(network) for network in self._networks)

    def __contains__(self, ip: str) -> bool:
        try:
            address = ipaddress.ip_address(ip)
        except ValueError:
            return False
        return any(address in network for network in self._networks)

    def __len__(self) -> int:
        return len(self._networks)

    def total_addresses(self) -> int:
        """Number of addresses covered by all blocks."""
        return sum(network.num_addresses for network in self._networks)


class IPv4Pool:
    """A provider's allocatable IPv4 pool with random assignment.

    Parameters
    ----------
    cidrs:
        The blocks making up the pool.
    reuse_bias:
        Probability that an allocation is served from the most recently
        released addresses instead of uniformly from the whole free
        space.  ``0.0`` is a pure lottery; higher values model
        providers that favour warm reuse.
    """

    def __init__(self, cidrs: Sequence[str], reuse_bias: float = 0.0):
        if not 0.0 <= reuse_bias <= 1.0:
            raise ValueError(f"reuse_bias must be in [0, 1], got {reuse_bias}")
        self._networks = [ipaddress.ip_network(c, strict=False) for c in cidrs]
        if not self._networks:
            raise ValueError("pool requires at least one CIDR block")
        self._spans: List[Tuple[int, int]] = []  # (first_int, size)
        for network in self._networks:
            self._spans.append((int(network.network_address), network.num_addresses))
        self._total = sum(size for _, size in self._spans)
        self._allocated: Set[str] = set()
        self._recently_released: List[str] = []
        self.reuse_bias = reuse_bias

    # -- introspection ----------------------------------------------------

    @property
    def size(self) -> int:
        """Total number of addresses in the pool."""
        return self._total

    @property
    def allocated_count(self) -> int:
        """Number of currently allocated addresses."""
        return len(self._allocated)

    def is_allocated(self, ip: str) -> bool:
        """Whether ``ip`` is currently handed out."""
        return ip in self._allocated

    def __contains__(self, ip: str) -> bool:
        try:
            address = ipaddress.ip_address(ip)
        except ValueError:
            return False
        return any(address in network for network in self._networks)

    # -- allocation --------------------------------------------------------

    def allocate(self, rng: random.Random) -> str:
        """Allocate a random free address.

        With probability :attr:`reuse_bias` the address is drawn from
        the recently released list (newest first), otherwise uniformly
        from the whole pool by rejection sampling.
        """
        if self.allocated_count >= self._total:
            raise PoolExhaustedError(f"all {self._total} addresses allocated")
        if self._recently_released and rng.random() < self.reuse_bias:
            ip = self._recently_released.pop()
            if ip not in self._allocated:
                self._allocated.add(ip)
                return ip
        # Rejection sampling: the pools are huge relative to the number
        # of allocations in any simulation, so this terminates quickly.
        while True:
            ip = self._random_address(rng)
            if ip not in self._allocated:
                self._allocated.add(ip)
                return ip

    def allocate_specific(self, ip: str) -> str:
        """Allocate a specific free address (used to seed world state)."""
        if ip not in self:
            raise ValueError(f"{ip} is not in this pool")
        if ip in self._allocated:
            raise ValueError(f"{ip} is already allocated")
        self._allocated.add(ip)
        return ip

    def release(self, ip: str) -> None:
        """Return an address to the free space."""
        if ip not in self._allocated:
            raise ValueError(f"{ip} is not allocated")
        self._allocated.discard(ip)
        self._recently_released.append(ip)
        # Bound the warm list so it reflects only *recent* churn.
        if len(self._recently_released) > 1024:
            del self._recently_released[: len(self._recently_released) - 1024]

    def _random_address(self, rng: random.Random) -> str:
        offset = rng.randrange(self._total)
        for first, size in self._spans:
            if offset < size:
                return str(ipaddress.ip_address(first + offset))
            offset -= size
        raise AssertionError("offset exceeded pool size")  # pragma: no cover


def takeover_attempts_expected(pool: IPv4Pool, warm_fraction: float = 0.0) -> float:
    """Expected allocations needed to win one specific released address.

    Quantifies the "lottery" of Section 4.3: with a free space of ``F``
    addresses and uniform assignment, the expected number of
    allocate/release rounds to hit one target address is ``F`` (geometric
    distribution).  ``warm_fraction`` discounts that when the provider
    reuses recent releases (prior work's strategy).
    """
    free = pool.size - pool.allocated_count
    if free <= 0:
        return float("inf")
    effective = max(1.0, free * (1.0 - warm_fraction))
    return effective
