"""Network substrate: IPv4 pools, routing, probing and IP intelligence.

This package models the transport-level Internet the paper's
measurement ran against: cloud provider address pools (from which VM
IPs are allocated "by lottery"), an IP-to-host routing table, and the
three probing methods the paper compares in Section 2 (ICMP ping, TCP
port probe, HTTP request), plus GeoIP / IP-WHOIS lookups used for the
attacker-infrastructure analysis in Section 6.
"""

from repro.net.addresses import CidrSet, IPv4Pool, PoolExhaustedError
from repro.net.geoip import GeoIPDatabase, IPWhoisRecord
from repro.net.network import Network
from repro.net.probing import ProbeResult, icmp_ping, tcp_probe

__all__ = [
    "CidrSet",
    "IPv4Pool",
    "PoolExhaustedError",
    "GeoIPDatabase",
    "IPWhoisRecord",
    "Network",
    "ProbeResult",
    "icmp_ping",
    "tcp_probe",
]
