"""GeoIP and IP-WHOIS intelligence.

Section 6 geolocates IP addresses referenced from abuse pages and maps
them to owning organizations via WHOIS (Figure 26).  This module is the
simulated equivalent: CIDR blocks are annotated with a country code and
an owning organization, and lookups resolve an address to the most
specific annotation.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class IPWhoisRecord:
    """Ownership and location metadata for an address block."""

    cidr: str
    country: str
    organization: str


class GeoIPDatabase:
    """Longest-prefix-match database of :class:`IPWhoisRecord` entries."""

    def __init__(self) -> None:
        self._entries: List[Tuple[ipaddress.IPv4Network, IPWhoisRecord]] = []

    def add(self, cidr: str, country: str, organization: str) -> IPWhoisRecord:
        """Register an annotated block; overlapping blocks are allowed."""
        network = ipaddress.ip_network(cidr, strict=False)
        record = IPWhoisRecord(cidr=str(network), country=country, organization=organization)
        self._entries.append((network, record))
        return record

    def lookup(self, ip: str) -> Optional[IPWhoisRecord]:
        """Return the most specific record covering ``ip``, or ``None``."""
        try:
            address = ipaddress.ip_address(ip)
        except ValueError:
            return None
        best: Optional[Tuple[int, IPWhoisRecord]] = None
        for network, record in self._entries:
            if address in network:
                if best is None or network.prefixlen > best[0]:
                    best = (network.prefixlen, record)
        return best[1] if best else None

    def country_of(self, ip: str) -> Optional[str]:
        """Two-letter country code for ``ip``, or ``None`` if unknown."""
        record = self.lookup(ip)
        return record.country if record else None

    def organization_of(self, ip: str) -> Optional[str]:
        """Owning organization for ``ip``, or ``None`` if unknown."""
        record = self.lookup(ip)
        return record.organization if record else None

    def __len__(self) -> int:
        return len(self._entries)
