"""The routing table of the simulated Internet.

A :class:`Network` maps IPv4 addresses to *hosts* — objects implementing
the small :class:`Host` protocol.  Cloud edge servers, dedicated VMs and
attacker infrastructure all register here; probers and the HTTP client
look hosts up by address.
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol, runtime_checkable


@runtime_checkable
class Host(Protocol):
    """Anything that can be bound to an IP address.

    The protocol is deliberately transport-flavoured: ICMP and TCP
    behaviour live here, application (HTTP) behaviour is layered on by
    :mod:`repro.web`.
    """

    def responds_to_icmp(self) -> bool:
        """Whether the host answers ping."""
        ...

    def open_tcp_ports(self) -> frozenset:
        """The set of TCP ports accepting connections."""
        ...


class Network:
    """IP-to-host bindings for the simulated Internet.

    ``fault_plan`` (a :class:`repro.faults.FaultPlan`, duck-typed) is
    consulted by the transport probers and the HTTP client to inject
    connection resets and ICMP blackouts on the path to a bound host —
    the host itself stays healthy; only this traversal is faulty.
    """

    def __init__(self, fault_plan=None, journal=None) -> None:
        self._hosts: Dict[str, Host] = {}
        self.fault_plan = fault_plan
        #: Optional :class:`repro.sim.revisions.RevisionJournal`; when
        #: set, every (un)bind bumps ``("net", ip)`` so incremental
        #: sweeps notice addresses going dark or lighting back up.
        self.journal = journal

    def bind(self, ip: str, host: Host) -> None:
        """Attach ``host`` at ``ip``; rebinding an address is an error."""
        if ip in self._hosts:
            raise ValueError(f"{ip} is already bound")
        self._hosts[ip] = host
        if self.journal is not None:
            self.journal.bump("net", ip)

    def unbind(self, ip: str) -> Host:
        """Detach and return the host at ``ip``."""
        try:
            host = self._hosts.pop(ip)
        except KeyError:
            raise KeyError(f"{ip} is not bound") from None
        if self.journal is not None:
            self.journal.bump("net", ip)
        return host

    def host_at(self, ip: str) -> Optional[Host]:
        """The host bound at ``ip``, or ``None`` if the address is dark."""
        return self._hosts.get(ip)

    def is_bound(self, ip: str) -> bool:
        """Whether any host answers at ``ip``."""
        return ip in self._hosts

    def __len__(self) -> int:
        return len(self._hosts)
