"""Webservers: virtual hosting edges and dedicated servers.

Cloud platforms front many resources with shared edge servers that
route by ``Host`` header (Figure 14).  The edge answers ping and
accepts TCP on 80/443 for *every* name pointed at it — live or
released — which is why transport probes overestimate liveness
(Section 2).  A request for an unrouted host gets the provider's
characteristic 404 page instead.
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol, runtime_checkable

from repro.web.http import HttpRequest, HttpResponse, provider_404
from repro.web.site import Site


@runtime_checkable
class WebHost(Protocol):
    """A network host that also speaks HTTP and may hold certificates."""

    def responds_to_icmp(self) -> bool:
        ...

    def open_tcp_ports(self) -> frozenset:
        ...

    def serve(self, request: HttpRequest) -> HttpResponse:
        ...

    def certificate_for(self, host: str):
        ...


class VirtualHostServer:
    """A shared edge server routing requests by hostname.

    Parameters
    ----------
    provider_name:
        Used in the provider 404 body, the takeover-scanner fingerprint.
    icmp:
        Whether the edge answers ping (some cloud frontends drop ICMP,
        producing the paper's ICMP under-measurement).
    default_site:
        If set, requests for unknown hosts fall through to this site —
        the dedicated-VM behaviour, where the single tenant answers any
        Host header.
    """

    STANDARD_PORTS = frozenset({80, 443})

    def __init__(
        self,
        provider_name: str,
        icmp: bool = True,
        default_site: Optional[Site] = None,
        fault_plan=None,
        journal=None,
    ):
        self.provider_name = provider_name
        #: Optional :class:`repro.sim.revisions.RevisionJournal`; when
        #: set, (un)routing a hostname bumps ``("web", hostname)`` so
        #: incremental sweeps notice edge routing changes.
        self.journal = journal
        #: The address this server is bound at, set by whoever binds it.
        self.ip: Optional[str] = None
        self._icmp = icmp
        self._routes: Dict[str, Site] = {}
        self._certificates: Dict[str, object] = {}
        self._default_site = default_site
        #: Optional :class:`repro.faults.FaultPlan` (duck-typed): when
        #: set, the edge occasionally answers with transient 503/429
        #: pages — overload and rate-limiting, regardless of routing.
        self.fault_plan = fault_plan

    # -- net.Host protocol -----------------------------------------------------

    def responds_to_icmp(self) -> bool:
        return self._icmp

    def open_tcp_ports(self) -> frozenset:
        return self.STANDARD_PORTS

    # -- routing -----------------------------------------------------------------

    def route(self, hostname: str, site: Site) -> None:
        """Direct requests for ``hostname`` to ``site``."""
        key = hostname.lower()
        self._routes[key] = site
        if self.journal is not None:
            self.journal.bump("web", key)

    def unroute(self, hostname: str) -> None:
        """Remove the route for ``hostname`` (missing routes are an error)."""
        key = hostname.lower()
        if key not in self._routes:
            raise KeyError(hostname)
        del self._routes[key]
        self._certificates.pop(key, None)
        if self.journal is not None:
            self.journal.bump("web", key)

    def routed_hosts(self) -> list:
        """All hostnames with routes, sorted."""
        return sorted(self._routes)

    def site_for(self, hostname: str) -> Optional[Site]:
        """The site serving ``hostname``, if any."""
        return self._routes.get(hostname.lower(), self._default_site)

    # -- TLS -------------------------------------------------------------------------

    def install_certificate(self, hostname: str, certificate: object) -> None:
        """Attach a certificate presented for TLS requests to ``hostname``."""
        self._certificates[hostname.lower()] = certificate

    def certificate_for(self, hostname: str) -> Optional[object]:
        """The installed certificate for ``hostname``, or ``None``."""
        return self._certificates.get(hostname.lower())

    # -- HTTP -------------------------------------------------------------------------

    def serve(self, request: HttpRequest) -> HttpResponse:
        """Route the request by Host header; unknown hosts get the 404 page."""
        if self.fault_plan is not None:
            fault = self.fault_plan.http_fault(self.provider_name, request.host)
            if fault == "503":
                return HttpResponse(
                    status=503,
                    body="503 Service Unavailable (transient edge overload)",
                    content_type="text/plain",
                    headers={"X-Provider": self.provider_name, "Retry-After": "2"},
                )
            if fault == "429":
                return HttpResponse(
                    status=429,
                    body="429 Too Many Requests",
                    content_type="text/plain",
                    headers={"X-Provider": self.provider_name, "Retry-After": "60"},
                )
        site = self.site_for(request.host)
        if site is None:
            return provider_404(self.provider_name, resource_hint=request.host)
        return site.handle(request)


def dedicated_server(
    provider_name: str, site: Site, icmp: bool = True, fault_plan=None, journal=None
) -> VirtualHostServer:
    """A single-tenant server (cloud VM): every Host header hits ``site``."""
    return VirtualHostServer(
        provider_name, icmp=icmp, default_site=site, fault_plan=fault_plan,
        journal=journal,
    )
