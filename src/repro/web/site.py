"""Sites: the content units that cloud resources serve.

A *site* is anything with a ``handle(request) -> response`` method.
:class:`StaticSite` is the standard implementation: a path-addressed
page store with an index page, an optional sitemap and robots.txt.
Attacker sites (cloaking, clickjacking) wrap or subclass it in
:mod:`repro.attacker`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Protocol, runtime_checkable

from repro.web.http import HttpRequest, HttpResponse, not_found
from repro.web.sitemap import Sitemap


@runtime_checkable
class Site(Protocol):
    """Anything that can answer HTTP requests for one hostname."""

    def handle(self, request: HttpRequest) -> HttpResponse:
        ...


class StaticSite:
    """A path-to-content store, the common case for cloud resources.

    Pages are stored as raw strings (HTML, XML, binary-ish blobs for
    the malware analysis).  ``page_count`` counts HTML pages — the unit
    of Figure 6's upload-volume histogram.
    """

    def __init__(self, default_headers: Optional[Dict[str, str]] = None):
        self._pages: Dict[str, str] = {}
        self._content_types: Dict[str, str] = {}
        self.default_headers: Dict[str, str] = dict(default_headers or {})
        #: Set by :meth:`bind_journal` when a cloud provider adopts the
        #: site.  ``journal_key`` is the site's stable identity in the
        #: world journal; content edits bump ``("site", journal_key)``
        #: so incremental sweeps can trust an untouched revision.
        self._journal = None
        self.journal_key = None

    # -- authoring -----------------------------------------------------------

    def bind_journal(self, journal, key) -> None:
        """Publish future content changes under ``("site", key)``."""
        self._journal = journal
        self.journal_key = key

    def _bump(self) -> None:
        if self._journal is not None:
            self._journal.bump("site", self.journal_key)

    def put(self, path: str, body: str, content_type: str = "text/html") -> None:
        """Create or overwrite the content at ``path``."""
        if not path.startswith("/"):
            raise ValueError(f"path must start with '/': {path!r}")
        self._pages[path] = body
        self._content_types[path] = content_type
        self._bump()

    def put_index(self, body: str) -> None:
        """Set the index page."""
        self.put("/", body)

    def put_sitemap(self, sitemap: Sitemap) -> None:
        """Install a sitemap at /sitemap.xml."""
        self.put("/sitemap.xml", sitemap.render(), content_type="application/xml")

    def remove(self, path: str) -> None:
        """Delete the content at ``path`` (missing paths are an error)."""
        if path not in self._pages:
            raise KeyError(path)
        del self._pages[path]
        del self._content_types[path]
        self._bump()

    # -- introspection ----------------------------------------------------------

    def paths(self) -> list:
        """All populated paths, sorted."""
        return sorted(self._pages)

    def has_path(self, path: str) -> bool:
        return path in self._pages

    def get(self, path: str) -> Optional[str]:
        """Raw content at ``path`` or ``None``."""
        return self._pages.get(path)

    def page_count(self, content_type: str = "text/html") -> int:
        """Number of pages of the given content type."""
        return sum(1 for ct in self._content_types.values() if ct == content_type)

    def total_bytes(self) -> int:
        """Total stored content size in bytes."""
        return sum(len(body.encode("utf-8")) for body in self._pages.values())

    # -- serving ------------------------------------------------------------------

    def handle(self, request: HttpRequest) -> HttpResponse:
        """Serve the content at the requested path, or 404."""
        body = self._pages.get(request.path)
        if body is None:
            return not_found()
        response = HttpResponse(
            status=200,
            body=body,
            content_type=self._content_types[request.path],
            headers=dict(self.default_headers),
        )
        return response


class CallableSite:
    """Adapter turning a plain function into a :class:`Site`."""

    def __init__(self, handler: Callable[[HttpRequest], HttpResponse]):
        self._handler = handler

    def handle(self, request: HttpRequest) -> HttpResponse:
        return self._handler(request)
