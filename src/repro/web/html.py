"""A structured HTML document model and a small forgiving parser.

The simulation generates pages through :class:`HtmlDocument` and
serializes them with :meth:`HtmlDocument.render`; the measurement
pipeline receives only the serialized string (as the real pipeline
receives bytes off the wire) and recovers structure with
:func:`parse_html`.  Keeping the two sides decoupled through the
string form means the detector exercises a realistic parse path rather
than peeking at generator objects.

The parser is regex-based and deliberately tolerant: it extracts the
features the paper's signatures use — title, language, meta tags
(keywords / description / generator / og), anchors with their href,
text and onclick handlers, external script sources, inline script
bodies, image sources and visible text.
"""

from __future__ import annotations

import html as _htmllib
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class Link:
    """An ``<a>`` (or ``<link>``) element."""

    href: str
    text: str = ""
    onclick: str = ""
    rel: str = ""


@dataclass(frozen=True)
class Script:
    """A ``<script>`` element: external (``src``) or inline (``body``)."""

    src: str = ""
    body: str = ""

    @property
    def is_external(self) -> bool:
        return bool(self.src)


@dataclass
class HtmlDocument:
    """The features of one HTML page the pipeline cares about."""

    title: str = ""
    lang: str = "en"
    meta: Dict[str, str] = field(default_factory=dict)
    links: List[Link] = field(default_factory=list)
    scripts: List[Script] = field(default_factory=list)
    images: List[str] = field(default_factory=list)
    paragraphs: List[str] = field(default_factory=list)
    headings: List[str] = field(default_factory=list)

    # -- derived features ---------------------------------------------------

    @property
    def generator(self) -> str:
        """The Generator meta tag (Section 6's WordPress fingerprint)."""
        return self.meta.get("generator", "")

    @property
    def meta_keywords(self) -> List[str]:
        """Comma-split keywords meta tag (Table 5's keyword stuffing)."""
        raw = self.meta.get("keywords", "")
        return [k.strip().lower() for k in raw.split(",") if k.strip()]

    def visible_text(self) -> str:
        """Title, headings, paragraphs and anchor text joined."""
        pieces = [self.title] + self.headings + self.paragraphs
        pieces += [link.text for link in self.links if link.text]
        return " ".join(piece for piece in pieces if piece)

    def external_hosts(self) -> List[str]:
        """Hosts referenced by absolute links, scripts and images."""
        hosts = []
        for url in self.all_urls():
            host = _host_of(url)
            if host:
                hosts.append(host)
        return sorted(set(hosts))

    def all_urls(self) -> List[str]:
        """Every URL referenced by the document."""
        urls = [link.href for link in self.links if link.href]
        urls += [script.src for script in self.scripts if script.src]
        urls += list(self.images)
        return urls

    # -- serialization --------------------------------------------------------

    def render(self) -> str:
        """Serialize to an HTML string."""
        out: List[str] = []
        out.append("<!DOCTYPE html>")
        out.append(f'<html lang="{_attr(self.lang)}">')
        out.append("<head>")
        out.append(f"<title>{_esc(self.title)}</title>")
        for name, content in self.meta.items():
            if name.startswith("og:"):
                out.append(f'<meta property="{_attr(name)}" content="{_attr(content)}">')
            else:
                out.append(f'<meta name="{_attr(name)}" content="{_attr(content)}">')
        for script in self.scripts:
            if script.is_external:
                out.append(f'<script src="{_attr(script.src)}"></script>')
        out.append("</head>")
        out.append("<body>")
        for heading in self.headings:
            out.append(f"<h1>{_esc(heading)}</h1>")
        for paragraph in self.paragraphs:
            out.append(f"<p>{_esc(paragraph)}</p>")
        for image in self.images:
            out.append(f'<img src="{_attr(image)}">')
        for link in self.links:
            onclick = f' onclick="{_attr(link.onclick)}"' if link.onclick else ""
            rel = f' rel="{_attr(link.rel)}"' if link.rel else ""
            out.append(f'<a href="{_attr(link.href)}"{onclick}{rel}>{_esc(link.text)}</a>')
        for script in self.scripts:
            if not script.is_external and script.body:
                out.append(f"<script>{script.body}</script>")
        out.append("</body>")
        out.append("</html>")
        return "\n".join(out)

    def size_bytes(self) -> int:
        """Size of the rendered page in bytes (UTF-8)."""
        return len(self.render().encode("utf-8"))


# -- parsing -------------------------------------------------------------------

_TITLE_RE = re.compile(r"<title[^>]*>(.*?)</title>", re.S | re.I)
_LANG_RE = re.compile(r'<html[^>]*\blang="([^"]*)"', re.I)
_META_NAME_RE = re.compile(
    r'<meta[^>]*\b(?:name|property)="([^"]*)"[^>]*\bcontent="([^"]*)"', re.I
)
_META_CONTENT_FIRST_RE = re.compile(
    r'<meta[^>]*\bcontent="([^"]*)"[^>]*\b(?:name|property)="([^"]*)"', re.I
)
_A_RE = re.compile(r"<a\b([^>]*)>(.*?)</a>", re.S | re.I)
_SCRIPT_EXT_RE = re.compile(r'<script[^>]*\bsrc="([^"]*)"[^>]*>\s*</script>', re.I)
_SCRIPT_INLINE_RE = re.compile(r"<script(?![^>]*\bsrc=)[^>]*>(.*?)</script>", re.S | re.I)
_IMG_RE = re.compile(r'<img[^>]*\bsrc="([^"]*)"', re.I)
_H_RE = re.compile(r"<h[1-6][^>]*>(.*?)</h[1-6]>", re.S | re.I)
_P_RE = re.compile(r"<p[^>]*>(.*?)</p>", re.S | re.I)
_ATTR_RE = re.compile(r'\b([a-zA-Z-]+)="([^"]*)"')
_TAG_STRIP_RE = re.compile(r"<[^>]+>")


def parse_html(text: str) -> HtmlDocument:
    """Parse an HTML string into an :class:`HtmlDocument`.

    Lossy by design; unknown constructs are ignored rather than raised
    on, because the pipeline must survive arbitrary attacker content.
    """
    doc = HtmlDocument()
    title_match = _TITLE_RE.search(text)
    if title_match:
        doc.title = _unesc(_strip_tags(title_match.group(1)))
    lang_match = _LANG_RE.search(text)
    if lang_match:
        doc.lang = lang_match.group(1)
    for name, content in _META_NAME_RE.findall(text):
        doc.meta[_unesc(name).lower()] = _unesc(content)
    for content, name in _META_CONTENT_FIRST_RE.findall(text):
        doc.meta.setdefault(_unesc(name).lower(), _unesc(content))
    for attrs_raw, body in _A_RE.findall(text):
        attrs = dict(_ATTR_RE.findall(attrs_raw))
        doc.links.append(
            Link(
                href=_unesc(attrs.get("href", "")),
                text=_unesc(_strip_tags(body)).strip(),
                onclick=_unesc(attrs.get("onclick", "")),
                rel=_unesc(attrs.get("rel", "")),
            )
        )
    for src in _SCRIPT_EXT_RE.findall(text):
        doc.scripts.append(Script(src=_unesc(src)))
    for body in _SCRIPT_INLINE_RE.findall(text):
        body = body.strip()
        if body:
            doc.scripts.append(Script(body=body))
    doc.images = [_unesc(src) for src in _IMG_RE.findall(text)]
    doc.headings = [_unesc(_strip_tags(h)).strip() for h in _H_RE.findall(text)]
    doc.paragraphs = [_unesc(_strip_tags(p)).strip() for p in _P_RE.findall(text)]
    return doc


def _strip_tags(fragment: str) -> str:
    return _TAG_STRIP_RE.sub(" ", fragment)


def _esc(text: str) -> str:
    return _htmllib.escape(text, quote=False)


def _attr(text: str) -> str:
    return _htmllib.escape(text, quote=True)


def _unesc(text: str) -> str:
    return _htmllib.unescape(text)


def _host_of(url: str) -> Optional[str]:
    match = re.match(r"^(?:https?:)?//([^/:?#]+)", url)
    if match:
        return match.group(1).lower()
    return None
