"""The application-layer HTTP client.

This is the measurement side's "download the HTML from the actual
FQDN" check (Section 2): resolve the name, connect to the resulting
address, send a request with the FQDN in the ``Host`` header, and (for
HTTPS) validate the presented certificate.  Unlike transport probes it
traverses the virtual-hosting routing logic and therefore reports the
liveness of the *resource*, not the *server*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from datetime import datetime
from typing import Dict, Optional

from repro.dns.resolver import ResolutionResult, ResolutionStatus, Resolver
from repro.net.network import Network
from repro.web.cookies import CookieJar
from repro.web.http import HttpRequest, HttpResponse


class FetchStatus(enum.Enum):
    """How a fetch attempt ended."""

    OK = "ok"
    DNS_NXDOMAIN = "dns-nxdomain"
    DNS_ERROR = "dns-error"
    CONNECTION_FAILED = "connection-failed"
    TLS_ERROR = "tls-error"


@dataclass
class FetchOutcome:
    """Result of one fetch: status, resolution detail and the response."""

    status: FetchStatus
    resolution: Optional[ResolutionResult] = None
    response: Optional[HttpResponse] = None
    ip: Optional[str] = None
    tls_detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == FetchStatus.OK and self.response is not None


class HttpClient:
    """Fetch URLs through the simulated DNS and network layers."""

    def __init__(self, resolver: Resolver, network: Network):
        self._resolver = resolver
        self._network = network

    def fetch(
        self,
        fqdn: str,
        path: str = "/",
        scheme: str = "http",
        at: Optional[datetime] = None,
        headers: Optional[Dict[str, str]] = None,
        cookie_jar: Optional[CookieJar] = None,
    ) -> FetchOutcome:
        """GET ``scheme://fqdn{path}``.

        When ``cookie_jar`` is given, applicable cookies (respecting
        the Secure flag against ``scheme``) are attached, and any
        Set-Cookie values in the response are stored back.
        """
        resolution = self._resolver.resolve_a_with_chain(fqdn, at=at)
        if resolution.status == ResolutionStatus.NXDOMAIN:
            return FetchOutcome(FetchStatus.DNS_NXDOMAIN, resolution)
        if not resolution.ok:
            return FetchOutcome(FetchStatus.DNS_ERROR, resolution)
        ip = resolution.addresses[0]
        host = self._network.host_at(ip)
        if host is None or not hasattr(host, "serve"):
            return FetchOutcome(FetchStatus.CONNECTION_FAILED, resolution, ip=ip)
        if scheme == "https":
            problem = self._validate_tls(host, fqdn, at)
            if problem:
                return FetchOutcome(
                    FetchStatus.TLS_ERROR, resolution, ip=ip, tls_detail=problem
                )
        request = HttpRequest(
            host=fqdn,
            path=path,
            scheme=scheme,
            headers=dict(headers or {}),
            cookies=cookie_jar.header_for(fqdn, scheme) if cookie_jar else {},
            cookie_objects=cookie_jar.cookies_for(fqdn, scheme) if cookie_jar else [],
        )
        response = host.serve(request)
        if cookie_jar is not None:
            for cookie in response.set_cookies:
                cookie_jar.set(cookie)
        return FetchOutcome(FetchStatus.OK, resolution, response=response, ip=ip)

    def _validate_tls(self, host, fqdn: str, at: Optional[datetime]) -> str:
        """Return a problem string, or '' if the handshake would succeed."""
        getter = getattr(host, "certificate_for", None)
        if getter is None:
            return "server does not speak TLS"
        certificate = getter(fqdn)
        if certificate is None:
            return "no certificate installed for host"
        validity = getattr(certificate, "validity_problem", None)
        if validity is not None:
            problem = validity(fqdn, at)
            if problem:
                return problem
        return ""
