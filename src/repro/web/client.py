"""The application-layer HTTP client.

This is the measurement side's "download the HTML from the actual
FQDN" check (Section 2): resolve the name, connect to the resulting
address, send a request with the FQDN in the ``Host`` header, and (for
HTTPS) validate the presented certificate.  Unlike transport probes it
traverses the virtual-hosting routing logic and therefore reports the
liveness of the *resource*, not the *server*.

The client is also the resilience seam of the measurement path: a
:class:`~repro.faults.RetryPolicy` retries transient failures (DNS
timeouts, connection resets, 5xx/429, truncated bodies) with capped
exponential backoff accounted on the *simulated* clock, and a
:class:`~repro.faults.CircuitBreaker` keyed by edge address stops
hammering a provider edge that keeps failing, half-opening after a
cooldown week.  With the default no-retry policy and no fault plan the
behaviour is bit-identical to the resilience-free client.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from datetime import datetime, timedelta
from typing import Dict, Optional

from repro.dns.resolver import ResolutionResult, ResolutionStatus, Resolver
from repro.faults.retry import CircuitBreaker, RetryPolicy
from repro.obs import OBS
from repro.net.network import Network
from repro.web.cookies import CookieJar
from repro.web.http import HttpRequest, HttpResponse


class FetchStatus(enum.Enum):
    """How a fetch attempt ended."""

    OK = "ok"
    DNS_NXDOMAIN = "dns-nxdomain"
    DNS_ERROR = "dns-error"
    CONNECTION_FAILED = "connection-failed"
    TLS_ERROR = "tls-error"
    #: The request never completed: DNS timeout, or the body was cut
    #: off mid-transfer.  Transient — worth retrying.
    TIMEOUT = "timeout"
    #: The server answered, but with a 5xx or 429 — previously this was
    #: indistinguishable from success at the status level.
    HTTP_ERROR = "http-error"
    #: The TCP connection was established then reset (injected faults;
    #: distinct from CONNECTION_FAILED, which means a dark address).
    CONNECTION_RESET = "connection-reset"
    #: The per-edge circuit breaker is open: the request was never sent.
    CIRCUIT_OPEN = "circuit-open"


#: Statuses worth retrying: the failure may not reproduce.  A dark
#: address (CONNECTION_FAILED) is *not* here — in the simulation that
#: is the dangling-record signal itself, not a flaky path.
TRANSIENT_STATUSES = frozenset(
    {
        FetchStatus.DNS_ERROR,
        FetchStatus.TIMEOUT,
        FetchStatus.HTTP_ERROR,
        FetchStatus.CONNECTION_RESET,
    }
)

#: Statuses that count as edge failures for the circuit breaker — the
#: edge answered badly or the path to it broke; DNS-level failures
#: never reached an edge.
BREAKER_FAILURE_STATUSES = frozenset(
    {
        FetchStatus.TIMEOUT,
        FetchStatus.HTTP_ERROR,
        FetchStatus.CONNECTION_RESET,
    }
)


@dataclass
class FetchOutcome:
    """Result of one fetch: status, resolution detail and the response."""

    status: FetchStatus
    resolution: Optional[ResolutionResult] = None
    response: Optional[HttpResponse] = None
    ip: Optional[str] = None
    tls_detail: str = ""
    #: Free-text failure detail ("body truncated", "connection reset").
    detail: str = ""
    #: How many attempts this outcome took (1 = first try).
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status == FetchStatus.OK and self.response is not None

    @property
    def transient(self) -> bool:
        """Whether the failure class is worth retrying."""
        return self.status in TRANSIENT_STATUSES

    @property
    def http_status(self) -> int:
        """The HTTP status code, or 0 when no response came back."""
        return self.response.status if self.response is not None else 0


class HttpClient:
    """Fetch URLs through the simulated DNS and network layers."""

    def __init__(
        self,
        resolver: Resolver,
        network: Network,
        fault_plan=None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
    ):
        self._resolver = resolver
        self._network = network
        self.fault_plan = fault_plan
        #: Default policy for callers that pass no per-fetch ``retry``.
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy.none()
        self.breaker = breaker
        #: Total retry attempts performed (beyond first tries).
        self.retries_total = 0
        #: Total simulated seconds spent in backoff waits.
        self.backoff_seconds_total = 0.0

    def fetch(
        self,
        fqdn: str,
        path: str = "/",
        scheme: str = "http",
        at: Optional[datetime] = None,
        headers: Optional[Dict[str, str]] = None,
        cookie_jar: Optional[CookieJar] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> FetchOutcome:
        """GET ``scheme://fqdn{path}``, retrying transient failures.

        ``retry`` overrides the client's default policy for this call —
        the weekly monitor passes its own budget while interactive
        browsing keeps fail-fast semantics.  Each retry is stamped at
        ``at`` plus the accumulated backoff on the simulated clock.
        When ``cookie_jar`` is given, applicable cookies (respecting
        the Secure flag against ``scheme``) are attached, and any
        Set-Cookie values in the response are stored back.
        """
        policy = retry if retry is not None else self.retry_policy
        rng = self.fault_plan.retry_rng if self.fault_plan is not None else None
        attempt_at = at
        attempt = 0
        while True:
            attempt += 1
            outcome = self._fetch_once(fqdn, path, scheme, attempt_at, headers, cookie_jar)
            outcome.attempts = attempt
            # Every attempt feeds the breaker, not just the final one:
            # a retry policy must not understate an edge's failure
            # streak by hiding the transient attempts it rode out.
            self._note_breaker(outcome, attempt_at)
            if OBS.enabled:
                OBS.metrics.inc("http.attempts")
            if not outcome.transient or attempt >= policy.max_attempts:
                if OBS.enabled:
                    OBS.metrics.inc("http.fetch", status=outcome.status.value)
                    if attempt > 1:
                        OBS.metrics.observe("http.attempts_per_fetch", attempt)
                return outcome
            self.retries_total += 1
            if OBS.enabled:
                OBS.metrics.inc("http.retries")
                OBS.metrics.inc("http.retries", edge=outcome.ip or "-")
            if attempt_at is not None:
                delay = policy.backoff_delay(attempt, rng)
                self.backoff_seconds_total += delay
                attempt_at = attempt_at + timedelta(seconds=delay)

    def _fetch_once(
        self,
        fqdn: str,
        path: str,
        scheme: str,
        at: Optional[datetime],
        headers: Optional[Dict[str, str]],
        cookie_jar: Optional[CookieJar],
    ) -> FetchOutcome:
        resolution = self._resolver.resolve_a_with_chain(fqdn, at=at)
        if resolution.status == ResolutionStatus.NXDOMAIN:
            return FetchOutcome(FetchStatus.DNS_NXDOMAIN, resolution)
        if resolution.status == ResolutionStatus.TIMEOUT:
            return FetchOutcome(
                FetchStatus.TIMEOUT, resolution, detail="dns query timed out"
            )
        if not resolution.ok:
            return FetchOutcome(FetchStatus.DNS_ERROR, resolution)
        ip = resolution.addresses[0]
        if (
            self.breaker is not None
            and not self._suppressed
            and at is not None
            and not self.breaker.allow(ip, at)
        ):
            return FetchOutcome(
                FetchStatus.CIRCUIT_OPEN, resolution, ip=ip,
                detail="circuit breaker open for edge",
            )
        if self.fault_plan is not None and self.fault_plan.connection_reset(ip):
            return FetchOutcome(
                FetchStatus.CONNECTION_RESET, resolution, ip=ip,
                detail="connection reset by peer (injected)",
            )
        host = self._network.host_at(ip)
        if host is None or not hasattr(host, "serve"):
            return FetchOutcome(FetchStatus.CONNECTION_FAILED, resolution, ip=ip)
        if scheme == "https":
            problem = self._validate_tls(host, fqdn, at)
            if problem:
                return FetchOutcome(
                    FetchStatus.TLS_ERROR, resolution, ip=ip, tls_detail=problem
                )
        request = HttpRequest(
            host=fqdn,
            path=path,
            scheme=scheme,
            headers=dict(headers or {}),
            cookies=cookie_jar.header_for(fqdn, scheme) if cookie_jar else {},
            cookie_objects=cookie_jar.cookies_for(fqdn, scheme) if cookie_jar else [],
        )
        response = host.serve(request)
        if self.fault_plan is not None and self.fault_plan.truncated_body(fqdn):
            return FetchOutcome(
                FetchStatus.TIMEOUT, resolution, ip=ip,
                detail="response body truncated mid-transfer (injected)",
            )
        if response.status >= 500 or response.status == 429:
            return FetchOutcome(
                FetchStatus.HTTP_ERROR, resolution, response=response, ip=ip,
                detail=f"server answered {response.status}",
            )
        if cookie_jar is not None:
            for cookie in response.set_cookies:
                cookie_jar.set(cookie)
        return FetchOutcome(FetchStatus.OK, resolution, response=response, ip=ip)

    @property
    def resolver(self) -> Resolver:
        """The DNS layer this client resolves through."""
        return self._resolver

    @property
    def network(self) -> Network:
        """The transport layer this client connects through."""
        return self._network

    @property
    def _suppressed(self) -> bool:
        """Control-plane fetch in progress: no injection, no breaker."""
        return self.fault_plan is not None and not self.fault_plan.active

    def _note_breaker(self, outcome: FetchOutcome, at: Optional[datetime]) -> None:
        """Feed one attempt's outcome into the per-edge circuit breaker."""
        if self.breaker is None or outcome.ip is None or self._suppressed:
            return
        if outcome.status == FetchStatus.CIRCUIT_OPEN:
            return
        if outcome.status in BREAKER_FAILURE_STATUSES:
            if at is not None:
                self.breaker.record_failure(outcome.ip, at)
        else:
            self.breaker.record_success(outcome.ip)

    def _validate_tls(self, host, fqdn: str, at: Optional[datetime]) -> str:
        """Return a problem string, or '' if the handshake would succeed."""
        getter = getattr(host, "certificate_for", None)
        if getter is None:
            return "server does not speak TLS"
        certificate = getter(fqdn)
        if certificate is None:
            return "no certificate installed for host"
        validity = getattr(certificate, "validity_problem", None)
        if validity is not None:
            problem = validity(fqdn, at)
            if problem:
                return problem
        return ""
