"""Minimal HTTP message types for the simulation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.web.cookies import Cookie


@dataclass
class HttpRequest:
    """One request as it arrives at a (virtual-hosting) server.

    ``host`` is the value of the ``Host`` header — the routing key for
    virtual hosting; ``scheme`` records whether the connection came in
    over TLS, which gates Secure-cookie transmission.
    """

    host: str
    path: str = "/"
    method: str = "GET"
    scheme: str = "http"
    headers: Dict[str, str] = field(default_factory=dict)
    cookies: Dict[str, str] = field(default_factory=dict)
    #: The cookie objects behind the Cookie header, kept so servers can
    #: distinguish JS-visible cookies (simulating document.cookie).
    cookie_objects: List[Cookie] = field(default_factory=list)

    def javascript_cookies(self) -> List[Cookie]:
        """The subset of sent cookies that page JavaScript could read."""
        return [c for c in self.cookie_objects if c.javascript_accessible()]

    @property
    def user_agent(self) -> str:
        return self.headers.get("User-Agent", "")

    @property
    def is_crawler(self) -> bool:
        """Whether the UA looks like a search-engine spider.

        The cloaking abuse (Section 5.2.1) branches on exactly this.
        """
        agent = self.user_agent.lower()
        return any(token in agent for token in ("bot", "spider", "crawler"))


@dataclass
class HttpResponse:
    """One response, carrying body, headers and any Set-Cookie values."""

    status: int = 200
    body: str = ""
    content_type: str = "text/html"
    headers: Dict[str, str] = field(default_factory=dict)
    set_cookies: List[Cookie] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def body_size(self) -> int:
        """Body size in bytes."""
        return len(self.body.encode("utf-8"))


def not_found(message: str = "Not Found") -> HttpResponse:
    """A plain 404 response."""
    return HttpResponse(status=404, body=message, content_type="text/plain")


def provider_404(provider_name: str, resource_hint: str = "") -> HttpResponse:
    """The characteristic provider error page for a missing resource.

    Real platforms return recognisable bodies for unclaimed names
    ("The specified bucket does not exist", Azure's 404 page, ...),
    which is precisely the fingerprint takeover scanners look for.
    """
    detail = f" ({resource_hint})" if resource_hint else ""
    body = (
        f"<html><head><title>404 Web Site not found</title></head>"
        f"<body><h1>404 - Web app not found.</h1>"
        f"<p>The resource you are looking for is not provisioned on "
        f"{provider_name}{detail}.</p></body></html>"
    )
    return HttpResponse(status=404, body=body, headers={"X-Provider": provider_name})
