"""Cookies with scope rules and security flags.

Section 5.5's cookie-theft analysis hinges on three browser rules, all
implemented here:

* a cookie is sent back to the domain that set it *and its subdomains*
  (so a hijacked subdomain receives the parent's cookies);
* ``Secure`` cookies travel only over HTTPS (hence the attacker's
  motivation to obtain a certificate, Appendix A.2);
* ``HttpOnly`` cookies are invisible to JavaScript (so content-only
  attackers — static hosting, CMS — can steal only non-HttpOnly ones,
  Table 4 / Figure 17).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Dict, List, Optional

from repro.dns.names import is_subdomain_of, normalize_name


@dataclass(frozen=True)
class Cookie:
    """One cookie as stored in a browser."""

    name: str
    value: str
    domain: str
    path: str = "/"
    secure: bool = False
    http_only: bool = False
    same_site: str = "Lax"
    expires: Optional[datetime] = None
    is_authentication: bool = False

    def applies_to(self, host: str) -> bool:
        """Domain-match: host equals the cookie domain or is below it."""
        return is_subdomain_of(host, self.domain)

    def sendable(self, host: str, scheme: str) -> bool:
        """Whether a request to ``scheme://host`` carries this cookie."""
        if not self.applies_to(host):
            return False
        if self.secure and scheme != "https":
            return False
        return True

    def javascript_accessible(self) -> bool:
        """Whether ``document.cookie`` exposes this cookie."""
        return not self.http_only


class CookieJar:
    """A browser's cookie store."""

    def __init__(self) -> None:
        self._cookies: Dict[tuple, Cookie] = {}

    def set(self, cookie: Cookie) -> None:
        """Store (or overwrite) a cookie keyed by (domain, name, path)."""
        key = (normalize_name(cookie.domain), cookie.name, cookie.path)
        self._cookies[key] = cookie

    def all(self) -> List[Cookie]:
        """Every stored cookie."""
        return list(self._cookies.values())

    def cookies_for(self, host: str, scheme: str = "http") -> List[Cookie]:
        """Cookies a request to ``scheme://host`` would carry."""
        return [c for c in self._cookies.values() if c.sendable(host, scheme)]

    def header_for(self, host: str, scheme: str = "http") -> Dict[str, str]:
        """The name→value map for the Cookie request header."""
        return {c.name: c.value for c in self.cookies_for(host, scheme)}

    def javascript_visible(self, host: str, scheme: str = "http") -> List[Cookie]:
        """Cookies ``document.cookie`` exposes on ``scheme://host``."""
        return [
            c
            for c in self.cookies_for(host, scheme)
            if c.javascript_accessible()
        ]

    def __len__(self) -> int:
        return len(self._cookies)
