"""Sitemap modelling.

Sitemap features are one of the paper's strongest abuse signals
(Section 3.2): attackers upload tens of thousands of similarly named
pages per site (Figure 6), producing multi-megabyte sitemaps, and a
new sitemap or a 100 KB size jump is itself a signature component.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from datetime import datetime
from typing import List, Optional


@dataclass(frozen=True)
class SitemapEntry:
    """One ``<url>`` element."""

    loc: str
    lastmod: Optional[str] = None


@dataclass
class Sitemap:
    """An XML sitemap as a list of entries."""

    entries: List[SitemapEntry] = field(default_factory=list)

    def add(self, loc: str, lastmod: Optional[datetime] = None) -> SitemapEntry:
        """Append an entry and return it."""
        entry = SitemapEntry(
            loc=loc, lastmod=lastmod.strftime("%Y-%m-%d") if lastmod else None
        )
        self.entries.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self.entries)

    def urls(self) -> List[str]:
        """All entry locations."""
        return [entry.loc for entry in self.entries]

    def render(self) -> str:
        """Serialize to sitemap XML."""
        lines = ['<?xml version="1.0" encoding="UTF-8"?>']
        lines.append('<urlset xmlns="http://www.sitemaps.org/schemas/sitemap/0.9">')
        for entry in self.entries:
            lines.append("  <url>")
            lines.append(f"    <loc>{entry.loc}</loc>")
            if entry.lastmod:
                lines.append(f"    <lastmod>{entry.lastmod}</lastmod>")
            lines.append("  </url>")
        lines.append("</urlset>")
        return "\n".join(lines)

    def size_bytes(self) -> int:
        """Rendered size in bytes — the 100 KB-jump signal's unit."""
        return len(self.render().encode("utf-8"))


_URL_RE = re.compile(r"<url>(.*?)</url>", re.S)
_LOC_RE = re.compile(r"<loc>(.*?)</loc>", re.S)
_LASTMOD_RE = re.compile(r"<lastmod>(.*?)</lastmod>", re.S)


def parse_sitemap(text: str) -> Sitemap:
    """Parse sitemap XML into a :class:`Sitemap` (tolerant)."""
    sitemap = Sitemap()
    for block in _URL_RE.findall(text):
        loc_match = _LOC_RE.search(block)
        if not loc_match:
            continue
        lastmod_match = _LASTMOD_RE.search(block)
        sitemap.entries.append(
            SitemapEntry(
                loc=loc_match.group(1).strip(),
                lastmod=lastmod_match.group(1).strip() if lastmod_match else None,
            )
        )
    return sitemap
