"""Web substrate: HTML, sitemaps, HTTP, cookies and virtual hosting.

The paper's detector consumes exactly two artifacts per FQDN per week —
the index HTML and the sitemap — plus the HTTP responses that deliver
them.  This package models those artifacts and the serving side:
virtual-hosting edge servers that route by ``Host`` header (the reason
transport-level probing misjudges liveness, Section 2), per-resource
sites, and an application-layer HTTP client that performs the paper's
"download HTML via HTTP/S from the actual FQDN" liveness check.
"""

from repro.web.cookies import Cookie, CookieJar
from repro.web.html import HtmlDocument, Link, Script, parse_html
from repro.web.http import HttpRequest, HttpResponse
from repro.web.server import VirtualHostServer
from repro.web.site import StaticSite
from repro.web.sitemap import Sitemap, SitemapEntry, parse_sitemap
from repro.web.client import FetchOutcome, HttpClient

__all__ = [
    "Cookie",
    "CookieJar",
    "HtmlDocument",
    "Link",
    "Script",
    "parse_html",
    "HttpRequest",
    "HttpResponse",
    "VirtualHostServer",
    "StaticSite",
    "Sitemap",
    "SitemapEntry",
    "parse_sitemap",
    "HttpClient",
    "FetchOutcome",
]
