"""URL-shortener services.

Abuse pages link through shorteners to the monetized targets; the
paper extracts 2,671 unique shortener links as attacker identifiers
(Section 6).  The simulated service issues deterministic short links
per campaign so that shared infrastructure shows up as shared
identifiers in the clustering.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

SHORTENER_DOMAINS: Tuple[str, ...] = ("sh.rt", "lnk.wtf", "go2.bet", "tiny.gg")

_ALPHABET = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"


class UrlShortener:
    """A family of shortener domains with an expandable mapping."""

    def __init__(self, rng: random.Random):
        self._rng = rng
        self._forward: Dict[str, str] = {}
        self._reverse: Dict[str, str] = {}

    def shorten(self, target_url: str) -> str:
        """Return a short URL for ``target_url`` (stable per target)."""
        if target_url in self._reverse:
            return self._reverse[target_url]
        domain = self._rng.choice(SHORTENER_DOMAINS)
        while True:
            slug = "".join(self._rng.choice(_ALPHABET) for _ in range(7))
            short = f"https://{domain}/{slug}"
            if short not in self._forward:
                break
        self._forward[short] = target_url
        self._reverse[target_url] = short
        return short

    def expand(self, short_url: str) -> str:
        """Resolve a short URL; unknown links raise ``KeyError``."""
        return self._forward[short_url]

    def known_links(self) -> List[str]:
        """All issued short URLs, sorted."""
        return sorted(self._forward)

    def __len__(self) -> int:
        return len(self._forward)
