"""Darknet cookie-leak feed.

Section 5.5: since server-side exfiltration is invisible, the paper
looked for stolen *authentication* cookies turning up in darknet leaks
during each domain's hijack window (83 cookies, 3 subdomains, 53
victim IPs, via a threat-intel partner).  Attackers in the simulation
post cookies they capture here; the analysis side queries by domain
and time window, exactly as the collaboration did.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import List, Optional

from repro.dns.names import Name, is_subdomain_of, normalize_name
from repro.web.cookies import Cookie


@dataclass(frozen=True)
class CookieLeak:
    """One stolen cookie observed for sale."""

    cookie: Cookie
    domain: Name  # the hijacked FQDN the cookie was captured on
    victim_ip: str  # the victim client's address
    leaked_at: datetime


class DarknetFeed:
    """Append-only store of :class:`CookieLeak` records."""

    def __init__(self) -> None:
        self._leaks: List[CookieLeak] = []

    def post(self, leak: CookieLeak) -> None:
        """An attacker offers a stolen cookie for sale."""
        self._leaks.append(leak)

    def __len__(self) -> int:
        return len(self._leaks)

    def all_leaks(self) -> List[CookieLeak]:
        return list(self._leaks)

    def leaks_for_domain(
        self,
        domain: Name,
        since: Optional[datetime] = None,
        until: Optional[datetime] = None,
        authentication_only: bool = True,
    ) -> List[CookieLeak]:
        """Leaks captured on ``domain`` (or below) within a window.

        ``authentication_only`` mirrors the paper's focus on
        authentication cookies.
        """
        normalized = normalize_name(domain)
        out = []
        for leak in self._leaks:
            if not is_subdomain_of(leak.domain, normalized):
                continue
            if authentication_only and not leak.cookie.is_authentication:
                continue
            if since is not None and leak.leaked_at < since:
                continue
            if until is not None and leak.leaked_at > until:
                continue
            out.append(leak)
        return out
