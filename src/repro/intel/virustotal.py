"""A VirusTotal-like multi-vendor reputation service.

Two roles, mirroring the paper's two VirusTotal analyses (Section 5.4):

* **binary verdicts** — submitted executables (the APKs and the lone
  EXE retrieved from hijacked sites) are labelled per vendor;
* **domain reputation** — AV vendors flag abused domains slowly and
  rarely; Figure 19 shows that widespread blacklisting takes ~2 years
  and most hijacked domains are never flagged at all.

Flagging is modelled as a per-vendor weekly Bernoulli process while a
domain is serving abuse: each vendor has a tiny weekly flag
probability, so expected time-to-flag is years and the stationary
outcome is "a handful of flagged domains, most by a single vendor".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from datetime import datetime
from typing import Dict, List, Optional, Tuple

from repro.dns.names import Name, normalize_name

#: Simulated AV vendors with weekly per-domain flag probabilities.
DEFAULT_VENDORS: Tuple[Tuple[str, float], ...] = (
    ("AlphaGuard", 0.0020),
    ("BitSentry", 0.0012),
    ("CarbonShield", 0.0008),
    ("DeltaSecure", 0.0006),
    ("EagleAV", 0.0004),
    ("FortressLabs", 0.0003),
)


@dataclass(frozen=True)
class BinarySample:
    """One downloadable executable found on an abuse site."""

    filename: str
    platform: str  # "android" | "windows" | ...
    sha256: str
    is_trojan: bool = False
    family: str = ""

    @property
    def extension(self) -> str:
        return self.filename.rsplit(".", 1)[-1].lower() if "." in self.filename else ""


@dataclass
class DomainReport:
    """Aggregated vendor flags for one domain."""

    domain: Name
    flags: Dict[str, datetime] = field(default_factory=dict)

    @property
    def flag_count(self) -> int:
        return len(self.flags)

    @property
    def first_flagged(self) -> Optional[datetime]:
        return min(self.flags.values()) if self.flags else None


class VirusTotalService:
    """Vendor-flag evolution plus binary scanning."""

    def __init__(
        self,
        rng: random.Random,
        vendors: Tuple[Tuple[str, float], ...] = DEFAULT_VENDORS,
    ):
        self._rng = rng
        self._vendors = vendors
        self._reports: Dict[Name, DomainReport] = {}
        self._binaries: Dict[str, List[str]] = {}

    # -- domain reputation -----------------------------------------------------

    def observe_abuse(self, domain: Name, at: datetime) -> None:
        """One week of a domain serving abuse; vendors may flag it."""
        normalized = normalize_name(domain)
        report = self._reports.setdefault(normalized, DomainReport(domain=normalized))
        for vendor, weekly_probability in self._vendors:
            if vendor in report.flags:
                continue
            if self._rng.random() < weekly_probability:
                report.flags[vendor] = at

    def domain_report(self, domain: Name) -> DomainReport:
        """Vendor flags for ``domain`` (empty report if never seen)."""
        normalized = normalize_name(domain)
        return self._reports.get(normalized, DomainReport(domain=normalized))

    def flagged_domains(self, min_vendors: int = 1) -> List[DomainReport]:
        """Reports flagged by at least ``min_vendors`` vendors."""
        return sorted(
            (r for r in self._reports.values() if r.flag_count >= min_vendors),
            key=lambda r: r.domain,
        )

    # -- binaries ---------------------------------------------------------------

    def scan_binary(self, sample: BinarySample) -> List[str]:
        """Vendor labels for a binary; trojans get detected reliably.

        Results are memoised by hash, as the real service does.
        """
        if sample.sha256 in self._binaries:
            return list(self._binaries[sample.sha256])
        labels: List[str] = []
        if sample.is_trojan:
            for vendor, _ in self._vendors:
                if self._rng.random() < 0.8:
                    family = sample.family or "Generic"
                    labels.append(f"{vendor}: Trojan.{family}")
        self._binaries[sample.sha256] = labels
        return list(labels)
