"""Threat-intelligence substrates.

Simulated stand-ins for the external feeds Section 5 consumes:
a VirusTotal-like service (binary verdicts and per-domain AV-vendor
flags, Figure 19 / Section 5.4), a darknet leak feed for stolen
authentication cookies (Section 5.5), and a URL-shortener service whose
links serve as attacker identifiers (Section 6).
"""

from repro.intel.virustotal import BinarySample, VirusTotalService
from repro.intel.darknet import CookieLeak, DarknetFeed
from repro.intel.shorteners import UrlShortener

__all__ = [
    "BinarySample",
    "VirusTotalService",
    "CookieLeak",
    "DarknetFeed",
    "UrlShortener",
]
