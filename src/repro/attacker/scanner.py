"""Attacker-side reconnaissance for dangling records.

The attack needs no special capability (Section 1): collect domain
names (passive DNS, Certificate Transparency), spot CNAME targets with
known cloud suffixes, check whether the resource still exists, and if
not, re-register it.  The scanner implements exactly that loop and
ranks candidates by the victim's reputation — domain age and Tranco
rank — since reputation is what the SEO abuse monetizes (Section 5.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Dict, List, Optional, Set

from repro.cloud.specs import NamingPolicy, parse_generated_fqdn
from repro.dns.names import registered_domain
from repro.dns.records import RRType
from repro.dns.resolver import ResolutionStatus
from repro.world.internet import Internet


@dataclass
class TakeoverCandidate:
    """One re-registrable resource and the domains that still point at it."""

    generated_fqdn: str
    service_key: str
    provider: str
    resource_name: str
    region: Optional[str]
    victim_fqdns: List[str] = field(default_factory=list)
    #: Reputation score used for ranking (higher = juicier target).
    reputation: float = 0.0


class DanglingScanner:
    """Finds dangling, re-registrable cloud resources via passive DNS."""

    def __init__(self, internet: Internet):
        self._internet = internet
        #: Incremental CT consumption: index of the next unseen log
        #: entry, plus the accumulated target -> CT-victim map.
        self._ct_cursor = 0
        self._ct_victims: Dict[str, Set[str]] = {}

    def find_candidates(self, at: datetime) -> List[TakeoverCandidate]:
        """All currently exploitable candidates, best reputation first."""
        targets = self._collect_targets(at)
        candidates: List[TakeoverCandidate] = []
        for target in sorted(targets):
            candidate = self._evaluate_target(target, at, targets[target])
            if candidate is not None and candidate.victim_fqdns:
                candidates.append(candidate)
        candidates.sort(key=lambda c: -c.reputation)
        return candidates

    def _collect_targets(self, at: datetime) -> Dict[str, Set[str]]:
        """Cloud CNAME targets from both public recon channels.

        Passive DNS supplies most targets; Certificate Transparency
        supplies the rest — every certificate ever issued leaks its
        hostnames, and resolving those reveals their (possibly
        dangling) CNAME targets.  Section 1: "collecting domain names
        (e.g., via passiveDNS or Certificate Transparency)".  Returns
        target -> victim names discovered through CT (passive-DNS
        victims are looked up separately during evaluation).
        """
        entries = self._internet.ct_log.entries()
        for entry in entries[self._ct_cursor:]:
            for san in entry.certificate.sans:
                if san.startswith("*."):
                    continue
                result = self._internet.resolver.resolve(san, RRType.CNAME, at=at)
                for record in result.records:
                    self._ct_victims.setdefault(record.rdata, set()).add(san)
        self._ct_cursor = len(entries)
        targets: Dict[str, Set[str]] = {
            target: set() for target in self._internet.passive_dns.cname_targets()
        }
        for target, victims in self._ct_victims.items():
            targets.setdefault(target, set()).update(victims)
        return targets

    def _evaluate_target(
        self, target: str, at: datetime, extra_victims: Optional[Set[str]] = None
    ) -> Optional[TakeoverCandidate]:
        parsed = parse_generated_fqdn(target)
        if parsed is None:
            return None
        if parsed.spec.naming != NamingPolicy.FREETEXT:
            # Random names can't be replicated; IP lotteries aren't
            # worth playing (Section 4.3) — attackers skip both.
            return None
        provider = self._internet.catalog.provider(parsed.spec.provider)
        if not provider.is_name_available(parsed.spec.key, parsed.name, at):
            return None
        known = set(self._internet.passive_dns.names_pointing_to(target))
        known |= extra_victims or set()
        victims = []
        for fqdn in sorted(known):
            if self._still_dangling(fqdn, target, at):
                victims.append(fqdn)
        candidate = TakeoverCandidate(
            generated_fqdn=target,
            service_key=parsed.spec.key,
            provider=parsed.spec.provider,
            resource_name=parsed.name,
            region=parsed.region,
            victim_fqdns=victims,
        )
        candidate.reputation = sum(self._reputation(v, at) for v in victims)
        return candidate

    def _still_dangling(self, fqdn: str, target: str, at: datetime) -> bool:
        """Confirmation that the record still points and dangles.

        For most services a released resource means NXDOMAIN on the
        generated name.  Wildcard-DNS services (S3) keep resolving, so
        the check there is the classic takeover-scanner fingerprint:
        the FQDN serves the provider's "no such resource" 404.
        """
        result = self._internet.resolver.resolve_a_with_chain(fqdn, at=at)
        if target not in result.cname_chain:
            return False
        if result.status == ResolutionStatus.NXDOMAIN:
            return True
        if result.ok:
            outcome = self._internet.client.fetch(fqdn, at=at)
            return (
                outcome.ok
                and outcome.response.status == 404
                and "X-Provider" in outcome.response.headers
            )
        return False

    def _reputation(self, fqdn: str, at: datetime) -> float:
        """Public reputation signals an attacker can query."""
        score = 1.0
        record = self._internet.whois.lookup(fqdn)
        if record is not None:
            score += min(record.age_years(at), 25.0) / 5.0
        sld = registered_domain(fqdn)
        if sld is not None:
            first_cert = self._internet.ct_log.first_issuance_for(fqdn)
            if first_cert is not None:
                score += 1.0  # has TLS history: an established service
        return score
