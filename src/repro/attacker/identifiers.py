"""Attacker identifier pools.

Section 6 extracts four identifier families from abuse pages — phone
numbers (via WhatsApp links, nearly all Indonesian/Cambodian, Figure
21), chat/social contacts (Telegram, Instagram, Facebook), URL-shortener
links, and backend IP addresses (rented from hosting providers in the
US/FR/SG, Figure 26).  Each attacker group owns a pool of these and
stamps subsets onto its pages; overlap across pages is what ties an
operation together in the clustering.
"""

from __future__ import annotations

import ipaddress
import random
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.intel.shorteners import UrlShortener

#: Country calling codes with Figure 21's Asia-heavy distribution.
PHONE_COUNTRY_WEIGHTS: Tuple[Tuple[str, str, float], ...] = (
    ("+62", "ID", 0.68),   # Indonesia
    ("+855", "KH", 0.18),  # Cambodia
    ("+66", "TH", 0.06),   # Thailand
    ("+84", "VN", 0.04),   # Vietnam
    ("+60", "MY", 0.03),   # Malaysia
    ("+63", "PH", 0.01),   # Philippines
)

#: Hosting ranges attacker backends are rented from (must stay in sync
#: with :data:`repro.world.internet.ATTACKER_HOSTING_RANGES`).
BACKEND_HOSTING_CIDRS: Tuple[str, ...] = (
    "141.98.0.0/16", "167.71.0.0/16", "51.38.0.0/16", "163.172.0.0/16",
    "128.199.0.0/16", "159.89.0.0/16", "88.198.0.0/16", "185.56.0.0/16",
)

_SOCIAL_PLATFORMS = ("t.me", "instagram.com", "facebook.com", "twitter.com")


@dataclass
class IdentifierPool:
    """One group's reusable identifiers."""

    phones: List[str] = field(default_factory=list)
    social_handles: List[str] = field(default_factory=list)
    short_links: List[str] = field(default_factory=list)
    backend_ips: List[str] = field(default_factory=list)

    def all_identifiers(self) -> List[str]:
        """Every identifier, for clustering ground truth."""
        return self.phones + self.social_handles + self.short_links + self.backend_ips

    def sample(self, rng: random.Random, count: int) -> List[str]:
        """A random subset to stamp onto one page."""
        pool = self.all_identifiers()
        if not pool:
            return []
        return rng.sample(pool, min(count, len(pool)))


def build_pool(
    rng: random.Random,
    shortener: UrlShortener,
    monetized_urls: Sequence[str],
    phone_count: int = 3,
    social_count: int = 4,
    short_link_count: int = 4,
    backend_ip_count: int = 3,
) -> IdentifierPool:
    """Create a fresh identifier pool for one attacker group."""
    pool = IdentifierPool()
    for _ in range(phone_count):
        pool.phones.append(_random_phone(rng))
    handles = set()
    while len(handles) < social_count:
        platform = rng.choice(_SOCIAL_PLATFORMS)
        handle = f"https://{platform}/{_random_handle(rng)}"
        handles.add(handle)
    pool.social_handles = sorted(handles)
    for index in range(short_link_count):
        target = monetized_urls[index % len(monetized_urls)] if monetized_urls else (
            f"https://promo{index}.example/landing"
        )
        pool.short_links.append(shortener.shorten(f"{target}?src={_random_handle(rng)}"))
    seen_ips = set()
    while len(seen_ips) < backend_ip_count:
        seen_ips.add(_random_backend_ip(rng))
    pool.backend_ips = sorted(seen_ips)
    return pool


def phone_country(phone: str) -> str:
    """Country code (ISO-2) of a ``+CC...`` phone identifier."""
    for prefix, country, _ in sorted(
        PHONE_COUNTRY_WEIGHTS, key=lambda row: -len(row[0])
    ):
        if phone.startswith(prefix):
            return country
    return "??"


def _random_phone(rng: random.Random) -> str:
    prefixes = [row[0] for row in PHONE_COUNTRY_WEIGHTS]
    weights = [row[2] for row in PHONE_COUNTRY_WEIGHTS]
    prefix = rng.choices(prefixes, weights=weights, k=1)[0]
    number = "".join(rng.choice("0123456789") for _ in range(9))
    return f"{prefix}8{number}"


def _random_handle(rng: random.Random) -> str:
    syllables = ("slot", "judi", "gacor", "bet", "win", "agen", "raja",
                 "mega", "king", "hoki", "cuan", "dewa")
    return f"{rng.choice(syllables)}{rng.choice(syllables)}{rng.randrange(10, 1000)}"


def _random_backend_ip(rng: random.Random) -> str:
    cidr = rng.choice(BACKEND_HOSTING_CIDRS)
    network = ipaddress.ip_network(cidr)
    offset = rng.randrange(1, network.num_addresses - 1)
    return str(network.network_address + offset)
