"""Cloaking: different content for crawlers than for users.

The Japanese Keyword Hack (Section 5.2.1) serves its generated spam
pages to search-engine spiders while regular visitors see the original
(or facade) content; ``.htaccess``/robots.txt steer crawlers into the
spam.  :class:`CloakingSite` implements the serving side: requests with
a crawler User-Agent get the full page store, everyone else gets only
the index.
"""

from __future__ import annotations

from repro.web.http import HttpRequest, HttpResponse, not_found
from repro.web.site import StaticSite

#: Paths every visitor may fetch regardless of user agent.
_ALWAYS_VISIBLE = ("/", "/robots.txt", "/sitemap.xml")


class CloakingSite(StaticSite):
    """Serves hidden pages to crawlers only."""

    def handle(self, request: HttpRequest) -> HttpResponse:
        if request.path in _ALWAYS_VISIBLE or request.path.startswith(
            "/.well-known/"
        ):
            return super().handle(request)
        if request.is_crawler:
            return super().handle(request)
        # Human visitors never see the parasite pages.
        return not_found("Not Found")
