"""Attacker groups and their behaviour profiles.

Section 6 finds ~1,800 infrastructures, mostly tiny, plus one giant
coordinated component (1,609 identifiers, 743 domains) — all pushing
Indonesian gambling.  The default group roster reproduces that shape:
one large syndicate whose member cells share monetization targets and
some identifiers, a handful of mid-size independent groups, and a tail
of small operators with disjoint identifiers.  Activity windows follow
Figure 16: a first wave in 2020, a lull in early 2021, then a sustained
ramp through 2021-2023.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import List, Optional, Sequence, Tuple

from repro.attacker.content import AbuseContentFactory
from repro.attacker.identifiers import IdentifierPool, build_pool
from repro.content.vocab import ABUSE_TOPIC_WEIGHTS, Topic
from repro.intel.shorteners import UrlShortener
from repro.sim.clock import DEFAULT_START
from repro.sim.rng import RngStreams


@dataclass
class GroupBehavior:
    """Tunable behaviour of one group."""

    #: Takeovers attempted per active week.
    weekly_capacity: int = 2
    #: Probability a hijack gets a fraudulent single-SAN certificate.
    certificate_rate: float = 0.15
    #: Probability a hijacked site hosts a downloadable APK/EXE.
    malware_rate: float = 0.08
    #: Probability the binary is an actual trojan (most are gambling apps).
    trojan_rate: float = 0.05
    #: Whether the group harvests and sells cookies.
    steals_cookies: bool = False
    #: Probability of the clickjacking variant on adult pages.
    clickjacking_rate: float = 0.5
    #: Share of hijacks that keep the maintenance facade as index.
    facade_rate: float = 0.5
    #: Meta-keyword stuffing share per generated page; facades and
    #: clickjacking pages carry none, so the measured per-page rate
    #: lands near the paper's 41%.
    keyword_stuffing_rate: float = 0.55
    #: WordPress-generator share of index pages (the paper measures ~22%).
    wordpress_rate: float = 0.22
    #: log-mean/log-sigma of pages uploaded per hijacked site (Figure 6).
    pages_lognormal_mu: float = 6.2
    pages_lognormal_sigma: float = 1.1
    #: Hard cap on sitemap entries per site (simulation scale guard).
    max_pages_per_site: int = 20_000
    #: How many real HTML pages to actually store per site.
    stored_page_cap: int = 12


@dataclass
class AttackerGroup:
    """One attacking operation."""

    name: str
    rng: random.Random
    identifier_pool: IdentifierPool
    monetized_urls: List[str]
    referral_code: str
    behavior: GroupBehavior = field(default_factory=GroupBehavior)
    #: "referral": click-through links carrying a referral code to the
    #: paymaster; "ads": monetized by ads on the pages themselves
    #: (Section 5.2's two income sources).
    monetization: str = "referral"
    #: Activity window (inclusive start, exclusive end).
    active_from: datetime = DEFAULT_START
    active_until: Optional[datetime] = None
    #: Topic mix; defaults to the global Figure 3 mix.
    topic_weights: Tuple[Tuple[Topic, float], ...] = ABUSE_TOPIC_WEIGHTS

    def __post_init__(self) -> None:
        self.content = AbuseContentFactory(self.rng, self.name)

    @property
    def account(self) -> str:
        """The cloud account this group registers resources under."""
        return f"attacker:{self.name}"

    def is_active(self, at: datetime) -> bool:
        if at < self.active_from:
            return False
        if self.active_until is not None and at >= self.active_until:
            return False
        return True

    def pick_topic(self) -> Topic:
        topics = [topic for topic, _ in self.topic_weights]
        weights = [weight for _, weight in self.topic_weights]
        return self.rng.choices(topics, weights=weights, k=1)[0]

    def sample_page_count(self) -> int:
        """Pages uploaded to one hijacked site (heavy-tailed, Figure 6)."""
        count = int(self.rng.lognormvariate(
            self.behavior.pages_lognormal_mu, self.behavior.pages_lognormal_sigma
        ))
        return max(2, min(count, self.behavior.max_pages_per_site))


def make_default_groups(
    streams: RngStreams,
    shortener: UrlShortener,
    count: int = 14,
    syndicate_cells: int = 4,
) -> List[AttackerGroup]:
    """Build the default roster.

    The first ``syndicate_cells`` groups form the coordinated syndicate:
    they share monetization targets and a block of common identifiers,
    so their infrastructures merge into one giant cluster, as in the
    paper's largest grouping.  Remaining groups are independent.
    """
    roster_rng = streams.get("attacker:roster")
    groups: List[AttackerGroup] = []

    syndicate_urls = [
        "https://mega-gacor.bet/play",
        "https://rajaslot-online.win/lobby",
    ]
    shared_pool = build_pool(
        streams.get("attacker:syndicate-shared"), shortener, syndicate_urls,
        phone_count=4, social_count=5, short_link_count=5, backend_ip_count=4,
    )

    for index in range(count):
        name = f"group-{index:02d}"
        rng = streams.get(f"attacker:{name}")
        is_syndicate = index < syndicate_cells
        if is_syndicate:
            monetized = list(syndicate_urls)
            pool = build_pool(rng, shortener, monetized, phone_count=2,
                              social_count=3, short_link_count=3, backend_ip_count=2)
            # Shared syndicate identifiers glue the cells together.
            pool.phones += shared_pool.phones
            pool.social_handles += shared_pool.social_handles
            pool.short_links += shared_pool.short_links
            pool.backend_ips += shared_pool.backend_ips
            behavior = GroupBehavior(weekly_capacity=3, certificate_rate=0.22,
                                     steals_cookies=index == 0)
        else:
            monetized = [f"https://{name}-depo.win/register"]
            pool = build_pool(rng, shortener, monetized)
            behavior = GroupBehavior(
                weekly_capacity=1 + roster_rng.randrange(2),
                certificate_rate=0.10 + roster_rng.random() * 0.15,
                steals_cookies=roster_rng.random() < 0.15,
            )
        start, end = _activity_window(index, count, roster_rng)
        monetization = "referral" if (is_syndicate or index % 3 != 2) else "ads"
        groups.append(
            AttackerGroup(
                name=name,
                rng=rng,
                identifier_pool=pool,
                monetized_urls=monetized,
                referral_code=f"ref{1000 + index * 37}" if monetization == "referral" else "",
                behavior=behavior,
                monetization=monetization,
                active_from=start,
                active_until=end,
            )
        )
    return groups


def _activity_window(
    index: int, count: int, rng: random.Random
) -> Tuple[datetime, Optional[datetime]]:
    """Figure 16's shape: a 2020 wave, a 2021 lull, then a ramp."""
    if index % 3 == 0:
        # Early wave: active through 2020, gone by early 2021.
        start = DEFAULT_START + timedelta(weeks=rng.randrange(0, 16))
        end = datetime(2021, 1, 1) + timedelta(weeks=rng.randrange(0, 10))
        if index == 0:
            # The syndicate's anchor cell returns for the ramp as well.
            end = None
        return start, end
    # Ramp: start somewhere from late 2021 onwards, stay active.
    start = datetime(2021, 8, 1) + timedelta(weeks=rng.randrange(0, 52))
    return start, None
