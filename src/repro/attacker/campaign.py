"""Campaign orchestration: from recon to monetized abuse.

Each simulated week, every active attacker group scans for dangling
records (via :class:`~repro.attacker.scanner.DanglingScanner`), takes
over the highest-reputation candidates up to its capacity, aliases the
victim FQDNs onto the re-registered resource, and deploys its abuse
kit: SEO doorway pages with stuffed keywords and referral links, a
multi-thousand-entry sitemap, optionally a fraudulent single-SAN
certificate, occasionally a hosted APK/EXE, and — for cookie-stealing
groups — an instrumented site that harvests visitor cookies, which are
then posted to the darknet feed.
"""

from __future__ import annotations

import hashlib
from datetime import datetime
from typing import Dict, List, Optional, Tuple

from repro.attacker.groups import AttackerGroup
from repro.attacker.scanner import DanglingScanner, TakeoverCandidate
from repro.attacker.cloaking import CloakingSite
from repro.attacker.stealing import CookieStealingSite
from repro.cloud.provider import CustomDomainError, ProvisioningError
from repro.cloud.resources import CloudResource
from repro.content.vocab import Topic
from repro.intel.darknet import CookieLeak
from repro.pki.ca import IssuanceError
from repro.web.html import HtmlDocument, Link
from repro.world.ground_truth import GroundTruthLog
from repro.world.internet import Internet
from repro.world.organizations import Asset, Organization


class CampaignOrchestrator:
    """Runs every attacker group, one week at a time."""

    def __init__(
        self,
        internet: Internet,
        groups: List[AttackerGroup],
        ground_truth: GroundTruthLog,
        organizations: List[Organization],
    ):
        self._internet = internet
        self.groups = groups
        self._ground_truth = ground_truth
        self._organizations = organizations
        self._scanner = DanglingScanner(internet)
        self._shuffle_rng = internet.streams.get("campaign:scheduling")
        self._stealing_sites: List[Tuple[AttackerGroup, CookieStealingSite]] = []
        self._binary_serial = 0

    # -- weekly driver ------------------------------------------------------------

    def step(self, at: datetime) -> int:
        """One week of attacking; returns the number of new takeovers."""
        active = [g for g in self.groups if g.is_active(at)]
        if not active:
            self._drain_cookies(at)
            return 0
        candidates = self._scanner.find_candidates(at)
        assets = self._assets_by_fqdn()
        takeovers = 0
        cursor = 0
        # Groups compete for the same public pool of dangling records;
        # interleave one takeover per group per round (shuffled weekly)
        # so no single group monopolizes the feed.
        remaining = {group.name: group.behavior.weekly_capacity for group in active}
        order = list(active)
        self._shuffle_rng.shuffle(order)
        while cursor < len(candidates) and any(remaining.values()):
            for group in order:
                if remaining[group.name] <= 0:
                    continue
                if cursor >= len(candidates):
                    break
                candidate = candidates[cursor]
                cursor += 1
                remaining[group.name] -= 1
                if self._execute_takeover(group, candidate, assets, at):
                    takeovers += 1
        self._drain_cookies(at)
        return takeovers

    # -- takeover execution ----------------------------------------------------------

    def _execute_takeover(
        self,
        group: AttackerGroup,
        candidate: TakeoverCandidate,
        assets: Dict[str, Asset],
        at: datetime,
    ) -> bool:
        provider = self._internet.catalog.provider(candidate.provider)
        try:
            resource = provider.provision(
                candidate.service_key,
                candidate.resource_name,
                owner=group.account,
                at=at,
                region=candidate.region,
            )
        except ProvisioningError:
            return False

        if group.behavior.steals_cookies:
            site = CookieStealingSite(resource.access)
            provider.replace_site(resource, site)
            self._stealing_sites.append((group, site))

        victims: List[str] = []
        for fqdn in candidate.victim_fqdns:
            try:
                provider.add_custom_domain(resource, fqdn, at)
                victims.append(fqdn)
            except CustomDomainError:
                continue
        primary = victims[0] if victims else resource.generated_fqdn
        self._deploy_content(group, resource, primary, at)

        for fqdn in victims:
            asset = assets.get(fqdn)
            if asset is not None:
                self._ground_truth.record_takeover(asset, group.name, resource, at)
        self._internet.revisions.publish(
            at, "attacker.takeover", primary,
            group=group.name, service=candidate.service_key,
            victims=list(victims),
        )
        if victims and group.rng.random() < group.behavior.certificate_rate:
            self._issue_fraudulent_certificate(group, resource, victims[0], at)
        return True

    def _deploy_content(
        self, group: AttackerGroup, resource: CloudResource, primary: str, at: datetime
    ) -> None:
        behavior = group.behavior
        topic = group.pick_topic()
        if topic == Topic.ADULT and group.rng.random() < behavior.clickjacking_rate:
            # Pure clickjacking deployments monetize clicks directly and
            # skip the SEO page network (Section 5.2.2) — part of the
            # non-SEO quarter of observed abuse.
            index_doc = group.content.clickjacking_page(
                group.monetized_urls[0], group.referral_code
            )
            resource.site.put_index(index_doc.render())
            return
        if topic == Topic.JAPANESE_SEO and not isinstance(resource.site, CookieStealingSite):
            # The Japanese Keyword Hack cloaks: spam pages are served to
            # crawlers only (Section 5.2.1).
            provider = self._internet.catalog.provider(resource.provider)
            provider.replace_site(resource, CloakingSite())
        total_pages = group.sample_page_count()
        stored = min(behavior.stored_page_cap, total_pages)
        paths: List[str] = []
        while len(paths) < stored:
            path = group.content.random_page_name(topic)
            if path not in paths:
                paths.append(path)
        sibling_urls = [f"http://{primary}{p}" for p in paths]

        for index, path in enumerate(paths):
            doc = self._build_page(group, topic, sibling_urls, index)
            resource.site.put(path, doc.render())

        index_doc = self._build_index(group, topic, sibling_urls)
        if group.rng.random() < behavior.malware_rate:
            self._host_binary(group, resource, index_doc, topic)
        resource.site.put_index(index_doc.render())

        sitemap = group.content.abuse_sitemap(primary, paths, total_pages, at, topic)
        resource.site.put_sitemap(sitemap)
        if topic == Topic.JAPANESE_SEO:
            resource.site.put(
                "/robots.txt",
                f"User-agent: *\nAllow: /\nSitemap: http://{primary}/sitemap.xml\n",
                content_type="text/plain",
            )

    def _build_page(
        self, group: AttackerGroup, topic: Topic, sibling_urls: List[str], index: int
    ) -> HtmlDocument:
        identifiers = group.identifier_pool.sample(group.rng, 2 + group.rng.randrange(3))
        siblings = sibling_urls[max(0, index - 3): index] + sibling_urls[index + 1: index + 4]
        if topic == Topic.JAPANESE_SEO:
            return group.content.japanese_page(siblings)
        if topic == Topic.ADULT and group.rng.random() < group.behavior.clickjacking_rate:
            return group.content.clickjacking_page(
                group.monetized_urls[0], group.referral_code
            )
        if group.rng.random() < 0.1:
            return group.content.link_network_page(siblings, topic)
        return group.content.doorway_page(
            topic,
            group.rng.choice(group.monetized_urls),
            group.referral_code,
            identifiers,
            siblings,
            stuff_meta_keywords=group.rng.random() < group.behavior.keyword_stuffing_rate,
            wordpress_generator=group.rng.random() < group.behavior.wordpress_rate,
        )

    def _build_index(
        self, group: AttackerGroup, topic: Topic, sibling_urls: List[str]
    ) -> HtmlDocument:
        if group.rng.random() < group.behavior.facade_rate:
            doc = group.content.maintenance_facade()
            # The facade still links into the hidden page network so
            # crawlers find it.
            for url in sibling_urls[:3]:
                doc.links.append(Link(href=url, text="more"))
            return doc
        identifiers = group.identifier_pool.sample(group.rng, 3 + group.rng.randrange(3))
        return group.content.doorway_page(
            topic,
            group.monetized_urls[0],
            group.referral_code,
            identifiers,
            sibling_urls[:6],
            stuff_meta_keywords=group.rng.random() < group.behavior.keyword_stuffing_rate,
            wordpress_generator=group.rng.random() < group.behavior.wordpress_rate,
        )

    # -- side channels ---------------------------------------------------------------------

    def _host_binary(
        self,
        group: AttackerGroup,
        resource: CloudResource,
        index_doc: HtmlDocument,
        topic: Topic,
    ) -> None:
        """Host a downloadable executable and link it from the index.

        Almost all are gambling APKs; a rare few are actual trojans
        (the paper found 181 APKs and one EXE, with only two trojan
        verdicts).
        """
        self._binary_serial += 1
        is_trojan = group.rng.random() < group.behavior.trojan_rate
        if group.rng.random() < 0.93:
            filename, magic, platform = f"slot{self._binary_serial}.apk", "PK", "android"
            family = "GamblingApp"
        else:
            filename, magic, platform = f"installer{self._binary_serial}.exe", "MZ", "windows"
            family = "SpyLoader"
        digest = hashlib.sha256(
            f"{group.name}:{filename}:{self._binary_serial}".encode()
        ).hexdigest()
        body = f"{magic}|platform={platform}|trojan={int(is_trojan)}|family={family}|sha256={digest}"
        path = f"/download/{filename}"
        resource.site.put(path, body, content_type="application/octet-stream")
        index_doc.links.append(Link(href=path, text="Download App"))

    def _issue_fraudulent_certificate(
        self, group: AttackerGroup, resource: CloudResource, fqdn: str, at: datetime
    ) -> None:
        roll = group.rng.random()
        if roll < 0.80:
            ca_name = "Let's Encrypt"
        elif roll < 0.95:
            ca_name = "ZeroSSL"
        else:
            ca_name = "Microsoft Azure TLS" if resource.provider == "Azure" else "Amazon"
        try:
            self._internet.issue_certificate(resource, fqdn, at, ca_name=ca_name)
        except IssuanceError:
            pass  # CAA or validation stopped this one

    def _drain_cookies(self, at: datetime) -> None:
        for group, site in self._stealing_sites:
            for captured in site.drain():
                if not captured.cookie.is_authentication:
                    continue
                self._internet.darknet.post(
                    CookieLeak(
                        cookie=captured.cookie,
                        domain=captured.host,
                        victim_ip=captured.client_ip,
                        leaked_at=at,
                    )
                )

    # -- helpers -------------------------------------------------------------------------------

    def _assets_by_fqdn(self) -> Dict[str, Asset]:
        index: Dict[str, Asset] = {}
        for org in self._organizations:
            for asset in org.assets:
                index[asset.fqdn] = asset
        return index
