"""Abuse content generation.

Builds the page types the paper catalogues on hijacked domains
(Sections 3.2 and 5.2): the multilingual "under maintenance" facade
with the telltale ``Comming`` typo, gambling/adult doorway pages with
stuffed keyword meta tags and referral links, Japanese-Keyword-Hack
pages, private-link-network pages, clickjacking pages, and the
thousands-of-randomly-named-pages sitemaps of Figure 6.  Pages embed
the group's identifiers (WhatsApp phone links, Telegram handles,
shortener links, backend-IP script sources) so that infrastructure
clustering has signal to recover.
"""

from __future__ import annotations

import random
from datetime import datetime
from typing import List, Optional, Sequence

from repro.content.vocab import (
    ADULT_KEYWORDS,
    GAMBLING_KEYWORDS,
    GENERIC_SPAM_WORDS,
    JAPANESE_SPAM_WORDS,
    MAINTENANCE_PHRASES,
    PHARMA_KEYWORDS,
    Topic,
)
from repro.web.html import HtmlDocument, Link, Script
from repro.web.sitemap import Sitemap

_TOPIC_POOLS = {
    Topic.GAMBLING: GAMBLING_KEYWORDS,
    Topic.ADULT: ADULT_KEYWORDS,
    Topic.PHARMA: PHARMA_KEYWORDS,
    Topic.GENERIC_SPAM: GENERIC_SPAM_WORDS,
    Topic.JAPANESE_SEO: JAPANESE_SPAM_WORDS,
}

_TOPIC_LANG = {
    Topic.GAMBLING: "id",
    Topic.ADULT: "en",
    Topic.PHARMA: "en",
    Topic.GENERIC_SPAM: "id",
    Topic.JAPANESE_SEO: "ja",
}


class AbuseContentFactory:
    """Generates abuse pages for one attacker group."""

    def __init__(self, rng: random.Random, group_name: str):
        self._rng = rng
        self.group_name = group_name

    # -- facade -----------------------------------------------------------------

    def maintenance_facade(self) -> HtmlDocument:
        """The under-maintenance error page hijacks hide behind.

        Matches the paper's observation (Section 3) that freshly
        hijacked domains of large organizations all showed similar
        maintenance pages in different languages — with thousands of
        SEO pages behind them.
        """
        phrase = self._rng.choice(MAINTENANCE_PHRASES)
        doc = HtmlDocument(title="Comming soon ...", lang="en")
        doc.headings = ["SORRY!"]
        doc.paragraphs = [
            phrase,
            "We're working to restore all services as soon as possible. "
            "Please check back soon",
        ]
        doc.links = [Link(href="/sitemap.xml", text="Sitemap")]
        return doc

    # -- doorway & SEO pages --------------------------------------------------------

    def doorway_page(
        self,
        topic: Topic,
        monetized_url: str,
        referral_code: str,
        identifiers: Sequence[str],
        sibling_urls: Sequence[str] = (),
        stuff_meta_keywords: bool = True,
        wordpress_generator: bool = False,
    ) -> HtmlDocument:
        """A doorway page: ranks for keywords, funnels to the paymaster.

        ``identifiers`` are the group identifiers stamped onto this
        page (phones become WhatsApp links, IPs become script sources).
        ``sibling_urls`` creates the 2-way private link network.
        """
        pool = _TOPIC_POOLS[topic]
        words = self._sample_keywords(pool, 8)
        doc = HtmlDocument(
            title=" ".join(words[:4]).title(),
            lang=_TOPIC_LANG[topic],
        )
        doc.meta["description"] = " ".join(words)
        if stuff_meta_keywords:
            doc.meta["keywords"] = ", ".join(self._sample_keywords(pool, 12))
        if wordpress_generator:
            doc.meta["generator"] = "WordPress 5.8.1"
        doc.meta["og:title"] = f"{words[0]} {words[1]} terpercaya"
        doc.headings = [f"Daftar {words[0]} {words[1]}".strip()]
        doc.paragraphs = [
            " ".join(self._sample_keywords(pool, 20)),
            f"{words[0]} {words[2]} resmi dengan bonus terbesar. "
            f"Daftar sekarang dan menang {words[3]}.",
        ]
        # Ads-monetized groups link plain; referral groups attach the
        # code the paymaster's traffic accounting keys on (Figure 24).
        referral_url = (
            f"{monetized_url}?ref={referral_code}" if referral_code else monetized_url
        )
        doc.links.append(Link(href=referral_url, text=f"DAFTAR {words[0].upper()}"))
        doc.links.append(Link(href=referral_url, text="LOGIN"))
        for identifier in identifiers:
            doc.links.append(self._identifier_link(identifier))
        for url in sibling_urls:
            doc.links.append(Link(href=url, text=" ".join(self._sample_keywords(pool, 2))))
        backend_ips = [i for i in identifiers if _looks_like_ip(i)]
        if backend_ips:
            doc.scripts.append(Script(src=f"http://{backend_ips[0]}/js/popunder.js"))
            doc.images.append(f"http://{backend_ips[0]}/banners/promo.gif")
        return doc

    def japanese_page(self, sibling_urls: Sequence[str] = ()) -> HtmlDocument:
        """A Japanese-Keyword-Hack cloaked page (Section 5.2.1)."""
        words = self._sample_keywords(JAPANESE_SPAM_WORDS, 8)
        doc = HtmlDocument(title=" ".join(words[:3]), lang="ja")
        doc.meta["description"] = " ".join(words)
        doc.headings = [" ".join(words[:2])]
        doc.paragraphs = [
            " ".join(self._sample_keywords(JAPANESE_SPAM_WORDS, 25)),
            "著作権 © 2020 日本の無料プログ. 全著作権所有.",
        ]
        doc.links = [Link(href="/sitemap.xml", text="ページディレクトリ")]
        for url in sibling_urls:
            doc.links.append(Link(href=url, text=self._rng.choice(JAPANESE_SPAM_WORDS)))
        return doc

    def clickjacking_page(self, monetized_url: str, referral_code: str) -> HtmlDocument:
        """An adult page whose links hijack the click (Section 5.2.2)."""
        words = self._sample_keywords(ADULT_KEYWORDS, 6)
        doc = HtmlDocument(title="Top adult videos and photos", lang="en")
        doc.meta["description"] = f"xxx {words[0]} images found for on"
        doc.headings = [" ".join(words[:3]).title()]
        doc.paragraphs = ["adult videos and photos"]
        target = f"{monetized_url}?ref={referral_code}" if referral_code else monetized_url
        for index in range(3):
            doc.links.append(
                Link(
                    href=f"/gallery-{index}",
                    text=f"{words[index % len(words)]} gallery {index}",
                    onclick=f"event.preventDefault();window.open('{target}');",
                )
            )
        doc.scripts.append(
            Script(body="document.addEventListener('click',function(e){/* intercept */});")
        )
        return doc

    def link_network_page(self, urls: Sequence[str], topic: Topic = Topic.GAMBLING) -> HtmlDocument:
        """A page that exists only to link other pages (link farming)."""
        pool = _TOPIC_POOLS[topic]
        doc = HtmlDocument(
            title=" ".join(self._sample_keywords(pool, 3)), lang=_TOPIC_LANG[topic]
        )
        doc.paragraphs = [" ".join(self._sample_keywords(pool, 6))]
        for url in urls:
            doc.links.append(Link(href=url, text=" ".join(self._sample_keywords(pool, 2))))
        return doc

    # -- bulk upload ------------------------------------------------------------------

    def random_page_name(self, topic: Topic) -> str:
        """The consistent random page naming of signature (4)."""
        pool = _TOPIC_POOLS[topic]
        words = [w for w in self._sample_keywords(pool, 3) if w.isascii()] or ["page"]
        slug = "-".join(w.replace(" ", "-") for w in words)
        return f"/{slug}-{self._rng.randrange(10_000)}.html"

    def abuse_sitemap(
        self,
        fqdn: str,
        page_paths: Sequence[str],
        total_page_count: int,
        at: Optional[datetime] = None,
        topic: Topic = Topic.GAMBLING,
    ) -> Sitemap:
        """A sitemap advertising ``total_page_count`` generated pages.

        Real entries are created for every counted page (the listed
        paths first, then more generated names), reproducing the
        multi-thousand-entry sitemaps behind Figure 6.
        """
        sitemap = Sitemap()
        for path in page_paths:
            sitemap.add(f"http://{fqdn}{path}", lastmod=at)
        for _ in range(max(0, total_page_count - len(page_paths))):
            sitemap.add(f"http://{fqdn}{self.random_page_name(topic)}", lastmod=at)
        return sitemap

    # -- helpers ------------------------------------------------------------------------

    def _identifier_link(self, identifier: str) -> Link:
        if identifier.startswith("+"):
            return Link(href=f"https://wa.me/{identifier}", text="WhatsApp 24 Jam")
        if identifier.startswith("http"):
            return Link(href=identifier, text="Link Alternatif")
        if _looks_like_ip(identifier):
            return Link(href=f"http://{identifier}/landing", text="Mirror")
        return Link(href=identifier, text="Contact")

    def _sample_keywords(self, pool: Sequence[str], count: int) -> List[str]:
        return [self._rng.choice(pool) for _ in range(count)]


def _looks_like_ip(value: str) -> bool:
    parts = value.split(".")
    return len(parts) == 4 and all(p.isdigit() and int(p) < 256 for p in parts)
