"""Cookie-harvesting sites.

Section 5.5: what an attacker can read depends on their control level —
full-webserver hijacks see every cookie in request headers; content-only
hijacks (static hosting, CMS) see only what ``document.cookie`` exposes,
i.e. non-HttpOnly cookies.  Secure cookies arrive only over HTTPS, which
is enforced upstream by the browser/cookie-jar model, not here.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import List, Tuple

from repro.cloud.capabilities import AccessLevel
from repro.web.cookies import Cookie
from repro.web.http import HttpRequest, HttpResponse
from repro.web.site import StaticSite


@dataclass(frozen=True)
class CapturedCookie:
    """One cookie harvested from a visiting client."""

    cookie: Cookie
    host: str
    client_ip: str
    captured_at_week: str  # ISO date of the serving request (from header)


class CookieStealingSite(StaticSite):
    """A content store that also harvests visitor cookies."""

    def __init__(self, access: AccessLevel):
        super().__init__()
        self.access = access
        self.captured: List[CapturedCookie] = []

    def handle(self, request: HttpRequest) -> HttpResponse:
        self._harvest(request)
        return super().handle(request)

    def _harvest(self, request: HttpRequest) -> None:
        if self.access == AccessLevel.FULL_WEBSERVER:
            visible = request.cookie_objects
        else:
            visible = request.javascript_cookies()
        client_ip = request.headers.get("X-Client-IP", "0.0.0.0")
        when = request.headers.get("X-Sim-Date", "")
        for cookie in visible:
            self.captured.append(
                CapturedCookie(
                    cookie=cookie, host=request.host,
                    client_ip=client_ip, captured_at_week=when,
                )
            )

    def drain(self) -> List[CapturedCookie]:
        """Return and clear everything captured so far."""
        out = self.captured
        self.captured = []
        return out
