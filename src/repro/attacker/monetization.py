"""The monetization ecosystem (Section 5.3, Figure 24).

The hijacks exist to make money: doorway pages relay visitors to a
gambling site with a referral code attached; the site's traffic
accounting pays the hijacker per page view, more per account sign-up,
and a share of money spent.  The referral ID also shows that site
operator and hijacker are *different entities* — an ecosystem, not one
actor.  :class:`MonetizationLedger` is that accounting backend;
:class:`GamblingSiteOperator` wires it behind the monetized URLs so
simulated click-throughs generate revenue events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Dict, List, Optional, Tuple

#: Payout schedule per referral event (USD) — page views are worth
#: little, sign-ups much more, deposits a revenue share.
DEFAULT_RATES = {"view": 0.002, "signup": 5.0, "deposit": 25.0}


@dataclass(frozen=True)
class ReferralEvent:
    """One paid event attributed to a referral code."""

    referral_code: str
    kind: str  # "view" | "signup" | "deposit"
    at: datetime
    source_fqdn: str = ""
    payout_usd: float = 0.0


class MonetizationLedger:
    """Traffic accounting for one paymaster site."""

    def __init__(self, rates: Optional[Dict[str, float]] = None):
        self.rates = dict(rates or DEFAULT_RATES)
        self._events: List[ReferralEvent] = []

    def record(
        self, referral_code: str, kind: str, at: datetime, source_fqdn: str = ""
    ) -> ReferralEvent:
        """Attribute one event to a referral code."""
        if kind not in self.rates:
            raise ValueError(f"unknown event kind {kind!r}")
        event = ReferralEvent(
            referral_code=referral_code, kind=kind, at=at,
            source_fqdn=source_fqdn, payout_usd=self.rates[kind],
        )
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> List[ReferralEvent]:
        return list(self._events)

    def payout_for(self, referral_code: str) -> float:
        """Total USD owed to one referral code."""
        return sum(
            e.payout_usd for e in self._events if e.referral_code == referral_code
        )

    def payouts(self) -> List[Tuple[str, float]]:
        """Per-code payouts, highest first."""
        totals: Dict[str, float] = {}
        for event in self._events:
            totals[event.referral_code] = (
                totals.get(event.referral_code, 0.0) + event.payout_usd
            )
        return sorted(totals.items(), key=lambda kv: -kv[1])

    def event_counts(self, referral_code: Optional[str] = None) -> Dict[str, int]:
        """Event-kind histogram, optionally for one code."""
        counts: Dict[str, int] = {}
        for event in self._events:
            if referral_code is not None and event.referral_code != referral_code:
                continue
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def top_referring_domains(self, limit: int = 10) -> List[Tuple[str, int]]:
        """Which hijacked domains drive the traffic."""
        counts: Dict[str, int] = {}
        for event in self._events:
            if event.source_fqdn:
                counts[event.source_fqdn] = counts.get(event.source_fqdn, 0) + 1
        return sorted(counts.items(), key=lambda kv: -kv[1])[:limit]


class GamblingSiteOperator:
    """The paymaster: receives relayed visitors, pays per referral.

    Click-through behaviour: every arrival is a paid page view; a share
    of visitors registers an account; a share of those deposits money.
    """

    def __init__(
        self,
        ledger: MonetizationLedger,
        rng,
        signup_rate: float = 0.05,
        deposit_rate: float = 0.4,
    ):
        self.ledger = ledger
        self._rng = rng
        self.signup_rate = signup_rate
        self.deposit_rate = deposit_rate

    def receive_visit(
        self, referral_code: str, at: datetime, source_fqdn: str = ""
    ) -> List[ReferralEvent]:
        """Process one relayed visitor; returns the paid events."""
        events = [self.ledger.record(referral_code, "view", at, source_fqdn)]
        if self._rng.random() < self.signup_rate:
            events.append(self.ledger.record(referral_code, "signup", at, source_fqdn))
            if self._rng.random() < self.deposit_rate:
                events.append(
                    self.ledger.record(referral_code, "deposit", at, source_fqdn)
                )
        return events


class MonetizationEcosystem:
    """All paymaster sites plus one shared accounting view.

    The simulation's browsing users hand clicked URLs here; referral
    links are routed to (lazily created) site operators that share one
    ledger, so analyses can see the whole revenue stream at once.
    """

    def __init__(self, rng):
        self._rng = rng
        self.ledger = MonetizationLedger()
        self._operators: Dict[str, GamblingSiteOperator] = {}

    def operator_for(self, base_url: str) -> GamblingSiteOperator:
        operator = self._operators.get(base_url)
        if operator is None:
            operator = GamblingSiteOperator(self.ledger, self._rng)
            self._operators[base_url] = operator
        return operator

    def handle_click(self, url: str, at: datetime, source_fqdn: str = "") -> bool:
        """Route one clicked URL; returns True if it paid someone."""
        parsed = parse_referral(url)
        if parsed is None:
            return False
        base, code = parsed
        self.operator_for(base).receive_visit(code, at, source_fqdn)
        return True

    @property
    def operator_count(self) -> int:
        return len(self._operators)


def parse_referral(url: str) -> Optional[Tuple[str, str]]:
    """Extract ``(base_url, referral_code)`` from a monetized link."""
    if "?ref=" not in url and "&ref=" not in url:
        return None
    separator = "?ref=" if "?ref=" in url else "&ref="
    base, _, rest = url.partition(separator)
    code = rest.split("&")[0]
    return (base, code) if code else None
