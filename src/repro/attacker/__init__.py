"""Attacker simulation.

Generates the adversarial side of the world: groups that scan passive
DNS for dangling records pointing at released *user-nameable* cloud
resources, deterministically re-register them, attach the victim
domains, and deploy monetized abuse content — blackhat SEO (doorway
pages, keyword stuffing, link networks, the Japanese Keyword Hack,
cloaking), clickjacking, occasional malware hosting, fraudulent
certificate issuance and cookie theft — all with the shared
identifiers (phone numbers, chat handles, shortener links, backend
IPs) that Section 6's clustering later recovers.
"""

from repro.attacker.identifiers import IdentifierPool
from repro.attacker.groups import AttackerGroup, GroupBehavior, make_default_groups
from repro.attacker.scanner import DanglingScanner, TakeoverCandidate
from repro.attacker.campaign import CampaignOrchestrator
from repro.attacker.content import AbuseContentFactory

__all__ = [
    "IdentifierPool",
    "AttackerGroup",
    "GroupBehavior",
    "make_default_groups",
    "DanglingScanner",
    "TakeoverCandidate",
    "CampaignOrchestrator",
    "AbuseContentFactory",
]
