"""Stage-based pipeline engine.

The paper's measurement system is a weekly loop — collect, monitor,
detect, analyze — run for three years.  This package turns that loop
into an explicit architecture: a :class:`Stage` is one pipeline
component with ``setup``/``tick``/``finish`` hooks, a
:class:`WeekContext` carries the current week plus the inter-stage
outputs, and a :class:`PipelineEngine` runs an ordered, dependency-
checked stage list with built-in per-stage instrumentation
(:class:`PipelineMetrics`) and checkpoint/resume support.

Stages are the seam every scaling change plugs into: a stage can be
swapped (a different monitor backend), batched (``sweep_iter``),
profiled (the metrics registry), or resumed mid-run (checkpoints),
without touching the rest of the pipeline.
"""

from repro.pipeline.context import MissingOutputError, QuarantineRecord, WeekContext
from repro.pipeline.engine import (
    Checkpoint,
    PipelineEngine,
    StageGraphError,
)
from repro.pipeline.metrics import PipelineMetrics, StageMetrics
from repro.pipeline.stage import FunctionStage, Stage
from repro.pipeline.store import (
    CheckpointCorruptError,
    CheckpointStore,
    RecoveryReport,
    atomic_write_bytes,
    atomic_write_text,
)

__all__ = [
    "Checkpoint",
    "CheckpointCorruptError",
    "CheckpointStore",
    "FunctionStage",
    "MissingOutputError",
    "PipelineEngine",
    "PipelineMetrics",
    "QuarantineRecord",
    "RecoveryReport",
    "Stage",
    "StageGraphError",
    "StageMetrics",
    "WeekContext",
    "atomic_write_bytes",
    "atomic_write_text",
]
