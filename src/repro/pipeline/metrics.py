"""Per-stage instrumentation for the pipeline engine.

Every stage tick is timed and counted; stages additionally report an
*items processed* gauge (FQDNs swept, changes detected, abuses flagged)
so throughput — not just wall time — is visible per stage.  The
registry renders as the table ``python -m repro pipeline`` prints and
is what ``benchmarks/bench_pipeline_micro.py`` consumes instead of
ad-hoc timers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple


@dataclass
class StageMetrics:
    """Accumulated counters for one stage across the run."""

    name: str
    ticks: int = 0
    wall_time: float = 0.0
    items_processed: int = 0
    setup_time: float = 0.0
    finish_time: float = 0.0
    #: Resilience counters: tick re-runs after an exception, ticks that
    #: exhausted retries and were dead-lettered, ticks skipped because
    #: an upstream stage failed, and items quarantined by the stage.
    retries: int = 0
    failures: int = 0
    skips: int = 0
    quarantined: int = 0

    def merge(self, other: "StageMetrics") -> "StageMetrics":
        """A new row summing this stage's counters with ``other``'s.

        Field-wise addition, so merging is associative and commutative
        — per-shard (or per-run) metric registries reduce to the same
        totals under any bracketing.
        """
        if other.name != self.name:
            raise ValueError(
                f"cannot merge stage {other.name!r} into {self.name!r}"
            )
        return StageMetrics(
            name=self.name,
            ticks=self.ticks + other.ticks,
            wall_time=self.wall_time + other.wall_time,
            items_processed=self.items_processed + other.items_processed,
            setup_time=self.setup_time + other.setup_time,
            finish_time=self.finish_time + other.finish_time,
            retries=self.retries + other.retries,
            failures=self.failures + other.failures,
            skips=self.skips + other.skips,
            quarantined=self.quarantined + other.quarantined,
        )

    @property
    def total_time(self) -> float:
        return self.setup_time + self.wall_time + self.finish_time

    @property
    def mean_tick_ms(self) -> float:
        return (self.wall_time / self.ticks) * 1000.0 if self.ticks else 0.0

    @property
    def items_per_second(self) -> float:
        return self.items_processed / self.wall_time if self.wall_time > 0 else 0.0


class PipelineMetrics:
    """Registry of per-stage counters for one engine run."""

    def __init__(self) -> None:
        self._stages: Dict[str, StageMetrics] = {}

    def stage(self, name: str) -> StageMetrics:
        """The metrics row for ``name``, created on first use."""
        row = self._stages.get(name)
        if row is None:
            row = StageMetrics(name=name)
            self._stages[name] = row
        return row

    def record_tick(self, name: str, seconds: float, items: int = 0) -> None:
        row = self.stage(name)
        row.ticks += 1
        row.wall_time += seconds
        row.items_processed += items

    def record_setup(self, name: str, seconds: float) -> None:
        self.stage(name).setup_time += seconds

    def record_finish(self, name: str, seconds: float) -> None:
        self.stage(name).finish_time += seconds

    def record_retry(self, name: str, seconds: float = 0.0) -> None:
        """A tick attempt failed and will be re-run."""
        row = self.stage(name)
        row.retries += 1
        row.wall_time += seconds

    def record_failure(self, name: str, seconds: float = 0.0) -> None:
        """A tick exhausted its retries and was dead-lettered."""
        row = self.stage(name)
        row.failures += 1
        row.wall_time += seconds

    def record_skip(self, name: str) -> None:
        """A tick was skipped because an upstream dependency failed."""
        self.stage(name).skips += 1

    def record_quarantine(self, name: str, items: int = 1) -> None:
        """The stage dead-lettered ``items`` work items this week."""
        self.stage(name).quarantined += items

    def merge(self, other: "PipelineMetrics") -> "PipelineMetrics":
        """A new registry combining two runs' counters, associatively.

        Stage rows are matched by name and summed field-wise; rows
        unique to either side carry over.  Ordering keeps ``self``'s
        registration order first, then ``other``'s new stages.
        """
        merged = PipelineMetrics()
        for row in self._stages.values():
            merged._stages[row.name] = replace(row)
        for row in other._stages.values():
            mine = merged._stages.get(row.name)
            merged._stages[row.name] = (
                mine.merge(row) if mine is not None else replace(row)
            )
        return merged

    def total_retries(self) -> int:
        return sum(row.retries for row in self._stages.values())

    def total_failures(self) -> int:
        return sum(row.failures for row in self._stages.values())

    def total_quarantined(self) -> int:
        return sum(row.quarantined for row in self._stages.values())

    def stages(self) -> List[StageMetrics]:
        """Rows in registration (= pipeline) order."""
        return list(self._stages.values())

    def total_wall_time(self) -> float:
        return sum(row.total_time for row in self._stages.values())

    def rows(self) -> List[Tuple[str, int, str, str, int, str, int, int, int]]:
        """Render-ready rows: (stage, ticks, wall s, mean tick ms, items,
        items/s, retries, failures+skips, quarantined)."""
        return [
            (
                row.name,
                row.ticks,
                f"{row.total_time:.3f}",
                f"{row.mean_tick_ms:.2f}",
                row.items_processed,
                f"{row.items_per_second:,.0f}" if row.items_per_second else "-",
                row.retries,
                row.failures + row.skips,
                row.quarantined,
            )
            for row in self._stages.values()
        ]
