"""The stage protocol.

A stage is one component of the weekly pipeline.  The engine calls
``setup`` once before the first week, ``tick`` every week, and
``finish`` once after the last week.  Stages declare the context keys
they ``require`` and ``provide`` so the engine can validate the
composition before running anything.

``tick`` returns the number of items the stage processed this week
(FQDNs swept, changes classified, …); the engine feeds that into
:class:`~repro.pipeline.metrics.PipelineMetrics`.  Returning ``None``
counts as zero.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.pipeline.context import WeekContext


class Stage:
    """Base class / protocol for pipeline stages.

    Subclasses set :attr:`name` and override :meth:`tick`; ``setup``
    and ``finish`` default to no-ops.  ``requires``/``provides`` list
    the :class:`WeekContext` output keys the stage reads and writes.
    """

    name: str = ""
    requires: Tuple[str, ...] = ()
    provides: Tuple[str, ...] = ()

    def setup(self, ctx: WeekContext) -> None:
        """One-time initialisation before the first week."""

    def tick(self, ctx: WeekContext) -> Optional[int]:
        """Process one week; return items processed (or ``None``)."""
        raise NotImplementedError

    def finish(self, ctx: WeekContext) -> None:
        """One-time teardown after the last week."""

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<{type(self).__name__} {self.name!r}>"


class FunctionStage(Stage):
    """Wrap a plain callable as a stage — the quickest way to compose.

    >>> stage = FunctionStage("double", lambda ctx: ctx.put("x", 2))
    """

    def __init__(
        self,
        name: str,
        tick: Callable[[WeekContext], Optional[int]],
        requires: Tuple[str, ...] = (),
        provides: Tuple[str, ...] = (),
        setup: Optional[Callable[[WeekContext], None]] = None,
        finish: Optional[Callable[[WeekContext], None]] = None,
    ):
        self.name = name
        self.requires = tuple(requires)
        self.provides = tuple(provides)
        self._tick = tick
        self._setup = setup
        self._finish = finish

    def setup(self, ctx: WeekContext) -> None:
        if self._setup is not None:
            self._setup(ctx)

    def tick(self, ctx: WeekContext) -> Optional[int]:
        return self._tick(ctx)

    def finish(self, ctx: WeekContext) -> None:
        if self._finish is not None:
            self._finish(ctx)
