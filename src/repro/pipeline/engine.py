"""The pipeline engine: ordered stages, weekly ticks, checkpoints.

:class:`PipelineEngine` owns the run loop that ``run_scenario`` used to
hard-wire: it validates the stage composition up front (every declared
``requires`` key must be provided by an earlier stage), drives the
simulation clock week by week, times every stage tick into a
:class:`~repro.pipeline.metrics.PipelineMetrics` registry, and can
snapshot its entire state — stages, clock, RNG streams, payload — into
a :class:`Checkpoint` that a later process restores to resume the run
mid-way.  Snapshots lean on the simulation being pure picklable Python
state: no wall clock, no sockets, no threads.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass
from datetime import datetime, timedelta
from typing import Any, Callable, List, Optional, Sequence, Set

from repro.pipeline.context import WeekContext
from repro.pipeline.metrics import PipelineMetrics
from repro.pipeline.stage import Stage
from repro.sim.clock import SimClock
from repro.sim.rng import RngStreams


class StageGraphError(ValueError):
    """The stage composition is invalid (duplicate names, unmet deps)."""


@dataclass(frozen=True)
class Checkpoint:
    """A resumable snapshot of a mid-run engine."""

    week_index: int
    at: datetime
    blob: bytes

    def size_bytes(self) -> int:
        return len(self.blob)


def _validate(stages: Sequence[Stage]) -> None:
    seen: Set[str] = set()
    provided: Set[str] = set()
    for position, stage in enumerate(stages):
        if not stage.name:
            raise StageGraphError(f"stage at position {position} has no name")
        if stage.name in seen:
            raise StageGraphError(f"duplicate stage name {stage.name!r}")
        seen.add(stage.name)
        missing = [key for key in stage.requires if key not in provided]
        if missing:
            raise StageGraphError(
                f"stage {stage.name!r} requires {missing} but no earlier "
                f"stage provides them (provided so far: {sorted(provided)})"
            )
        provided.update(stage.provides)


class PipelineEngine:
    """Runs an ordered stage list over weekly simulated ticks.

    Parameters
    ----------
    stages:
        The composition, in execution order.  Validated immediately.
    clock:
        The simulation clock the engine advances; shared with the
        simulated world so all in-world timestamps stay coherent.
    streams:
        The run's RNG streams, exposed to stages via the context.
    payload:
        Arbitrary picklable object carried through checkpoints —
        ``run_scenario`` stores its :class:`ScenarioResult` here so a
        restored engine hands back the restored world.
    """

    def __init__(
        self,
        stages: Sequence[Stage],
        clock: SimClock,
        streams: RngStreams,
        payload: Any = None,
        week_step: timedelta = timedelta(weeks=1),
    ):
        _validate(stages)
        self.stages: List[Stage] = list(stages)
        self.clock = clock
        self.streams = streams
        self.payload = payload
        self.week_step = week_step
        self.metrics = PipelineMetrics()
        self.week_index = 0
        self._setup_done = False
        self._finish_done = False
        # Register rows up front so the metrics table shows pipeline order.
        for stage in self.stages:
            self.metrics.stage(stage.name)

    # -- lifecycle -------------------------------------------------------

    def _context(self) -> WeekContext:
        return WeekContext(
            at=self.clock.now, week_index=self.week_index, streams=self.streams
        )

    def _run_setup(self) -> None:
        ctx = self._context()
        for stage in self.stages:
            ctx.current_stage = stage.name
            started = time.perf_counter()
            stage.setup(ctx)
            self.metrics.record_setup(stage.name, time.perf_counter() - started)
        self._setup_done = True

    def _run_finish(self) -> None:
        ctx = self._context()
        for stage in self.stages:
            ctx.current_stage = stage.name
            started = time.perf_counter()
            stage.finish(ctx)
            self.metrics.record_finish(stage.name, time.perf_counter() - started)
        self._finish_done = True

    def step(self) -> WeekContext:
        """Run one weekly tick through every stage, advance the clock."""
        if not self._setup_done:
            self._run_setup()
        ctx = self._context()
        for stage in self.stages:
            ctx.current_stage = stage.name
            started = time.perf_counter()
            items = stage.tick(ctx)
            self.metrics.record_tick(
                stage.name, time.perf_counter() - started, int(items or 0)
            )
        self.week_index += 1
        self.clock.advance(self.week_step)
        return ctx

    def run(
        self,
        max_weeks: Optional[int] = None,
        checkpoint_every: Optional[int] = None,
        on_checkpoint: Optional[Callable[[Checkpoint], None]] = None,
    ) -> int:
        """Run until the clock's end (or ``max_weeks`` more ticks).

        ``checkpoint_every=N`` snapshots the engine after every N weeks
        and hands the :class:`Checkpoint` to ``on_checkpoint``; restore
        with :meth:`PipelineEngine.restore` to resume.  Returns the
        number of weeks ticked by this call.
        """
        ran = 0
        while not self.clock.finished():
            if max_weeks is not None and ran >= max_weeks:
                return ran
            self.step()
            ran += 1
            if (
                checkpoint_every
                and on_checkpoint is not None
                and self.week_index % checkpoint_every == 0
                and not self.clock.finished()
            ):
                on_checkpoint(self.checkpoint())
        if self._setup_done and not self._finish_done:
            self._run_finish()
        return ran

    # -- checkpoint / resume ---------------------------------------------

    def checkpoint(self) -> Checkpoint:
        """Snapshot the entire engine state (stages, clock, RNG, payload)."""
        return Checkpoint(
            week_index=self.week_index,
            at=self.clock.now,
            blob=pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL),
        )

    @staticmethod
    def restore(checkpoint: Checkpoint) -> "PipelineEngine":
        """Rebuild a mid-run engine from a checkpoint; ``run()`` resumes it."""
        engine = pickle.loads(checkpoint.blob)
        if not isinstance(engine, PipelineEngine):  # pragma: no cover - corruption
            raise StageGraphError("checkpoint does not contain a PipelineEngine")
        return engine

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        names = ", ".join(stage.name for stage in self.stages)
        return f"PipelineEngine(week={self.week_index}, stages=[{names}])"
