"""The pipeline engine: ordered stages, weekly ticks, checkpoints.

:class:`PipelineEngine` owns the run loop that ``run_scenario`` used to
hard-wire: it validates the stage composition up front (every declared
``requires`` key must be provided by an earlier stage), drives the
simulation clock week by week, times every stage tick into a
:class:`~repro.pipeline.metrics.PipelineMetrics` registry, and can
snapshot its entire state — stages, clock, RNG streams, payload — into
a :class:`Checkpoint` that a later process restores to resume the run
mid-way.  Snapshots lean on the simulation being pure picklable Python
state: no wall clock, no sockets, no threads.

The engine degrades gracefully: a stage tick that raises can be retried
per a :class:`~repro.faults.RetryPolicy`, and in ``degrade`` mode a
tick that exhausts its retries is dead-lettered (the week continues;
stages depending on the failed stage's outputs are skipped and counted)
instead of aborting the run.  In ``raise`` mode the failing stage is
recorded before the exception propagates, so a checkpoint taken after
the failure resumes *mid-week from that stage* rather than re-running
the completed stages of the week.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass
from datetime import datetime, timedelta
from typing import Any, Callable, List, Optional, Sequence, Set

from repro.faults.retry import RetryPolicy
from repro.obs import OBS, cpu_seconds_now
from repro.pipeline.context import QuarantineRecord, WeekContext
from repro.pipeline.metrics import PipelineMetrics
from repro.pipeline.stage import Stage
from repro.sim.clock import SimClock
from repro.sim.rng import RngStreams


class StageGraphError(ValueError):
    """The stage composition is invalid (duplicate names, unmet deps)."""


@dataclass(frozen=True)
class Checkpoint:
    """A resumable snapshot of a mid-run engine.

    ``failed_stage`` names the stage whose tick was in flight when the
    snapshot was taken (``None`` for clean between-week checkpoints);
    restoring such a checkpoint resumes the interrupted week at that
    stage, with the outputs of already-completed stages preserved.
    """

    week_index: int
    at: datetime
    blob: bytes
    failed_stage: Optional[str] = None

    def size_bytes(self) -> int:
        return len(self.blob)


def _validate(stages: Sequence[Stage]) -> None:
    seen: Set[str] = set()
    provided: Set[str] = set()
    for position, stage in enumerate(stages):
        if not stage.name:
            raise StageGraphError(f"stage at position {position} has no name")
        if stage.name in seen:
            raise StageGraphError(f"duplicate stage name {stage.name!r}")
        seen.add(stage.name)
        missing = [key for key in stage.requires if key not in provided]
        if missing:
            raise StageGraphError(
                f"stage {stage.name!r} requires {missing} but no earlier "
                f"stage provides them (provided so far: {sorted(provided)})"
            )
        provided.update(stage.provides)


class PipelineEngine:
    """Runs an ordered stage list over weekly simulated ticks.

    Parameters
    ----------
    stages:
        The composition, in execution order.  Validated immediately.
    clock:
        The simulation clock the engine advances; shared with the
        simulated world so all in-world timestamps stay coherent.
    streams:
        The run's RNG streams, exposed to stages via the context.
    payload:
        Arbitrary picklable object carried through checkpoints —
        ``run_scenario`` stores its :class:`ScenarioResult` here so a
        restored engine hands back the restored world.
    stage_retry:
        Retry budget for a stage tick that raises (default: none —
        first exception is final).
    on_stage_error:
        ``"raise"`` (default) propagates a tick exception after
        recording the failed stage for mid-week resume; ``"degrade"``
        dead-letters the tick and continues the week — no exception
        ever escapes :meth:`run`.
    """

    def __init__(
        self,
        stages: Sequence[Stage],
        clock: SimClock,
        streams: RngStreams,
        payload: Any = None,
        week_step: timedelta = timedelta(weeks=1),
        stage_retry: Optional[RetryPolicy] = None,
        on_stage_error: str = "raise",
    ):
        _validate(stages)
        if on_stage_error not in ("raise", "degrade"):
            raise ValueError(
                f"on_stage_error must be 'raise' or 'degrade', got {on_stage_error!r}"
            )
        self.stages: List[Stage] = list(stages)
        self.clock = clock
        self.streams = streams
        self.payload = payload
        self.week_step = week_step
        self.stage_retry = stage_retry if stage_retry is not None else RetryPolicy.none()
        self.on_stage_error = on_stage_error
        self.metrics = PipelineMetrics()
        self.week_index = 0
        #: Dead-letter log accumulated across the whole run: quarantined
        #: FQDNs from the sweep plus failed stage ticks.
        self.dead_letters: List[QuarantineRecord] = []
        self._setup_done = False
        self._finish_done = False
        # Mid-week resume state: the interrupted week's context and the
        # index of the stage to re-run (set when a tick raises in
        # ``raise`` mode, preserved through checkpoints).
        self._inflight_ctx: Optional[WeekContext] = None
        self._resume_stage_index = 0
        # Register rows up front so the metrics table shows pipeline order.
        for stage in self.stages:
            self.metrics.stage(stage.name)

    # -- lifecycle -------------------------------------------------------

    def _context(self) -> WeekContext:
        return WeekContext(
            at=self.clock.now, week_index=self.week_index, streams=self.streams
        )

    def _run_setup(self) -> None:
        ctx = self._context()
        for stage in self.stages:
            ctx.current_stage = stage.name
            started = time.perf_counter()
            stage.setup(ctx)
            self.metrics.record_setup(stage.name, time.perf_counter() - started)
        self._setup_done = True

    def _run_finish(self) -> None:
        ctx = self._context()
        for stage in self.stages:
            ctx.current_stage = stage.name
            started = time.perf_counter()
            stage.finish(ctx)
            self.metrics.record_finish(stage.name, time.perf_counter() - started)
        self._finish_done = True

    def _tick_stage(self, stage: Stage, ctx: WeekContext, index: int) -> None:
        """One stage tick with retry/degrade semantics."""
        attempt = 0
        while True:
            attempt += 1
            started = time.perf_counter()
            cpu0 = cpu_seconds_now() if OBS.enabled else 0.0
            try:
                with OBS.tracer.span(
                    f"stage.{stage.name}", sim=ctx.at, week=ctx.week_index,
                    attempt=attempt,
                ):
                    items = stage.tick(ctx)
            except Exception as exc:
                elapsed = time.perf_counter() - started
                if attempt < self.stage_retry.max_attempts:
                    self.metrics.record_retry(stage.name, elapsed)
                    continue
                if self.on_stage_error == "raise":
                    # Record where the week broke so a checkpoint taken
                    # now resumes from this stage, not from stage 0.
                    self._inflight_ctx = ctx
                    self._resume_stage_index = index
                    raise
                self.metrics.record_failure(stage.name, elapsed)
                ctx.quarantine_item(
                    "<stage-tick>", f"{type(exc).__name__}: {exc}"
                )
                return
            else:
                elapsed = time.perf_counter() - started
                self.metrics.record_tick(stage.name, elapsed, int(items or 0))
                if OBS.enabled:
                    # ``cpu_seconds_now`` counts reaped children, so a
                    # stage that forked shard workers is charged for
                    # the CPU they burned, not just the parent's share.
                    OBS.series.record_stage(
                        stage.name, cpu_seconds_now() - cpu0, elapsed
                    )
                return

    def step(self) -> WeekContext:
        """Run one weekly tick through every stage, advance the clock.

        If a previous :meth:`step` was interrupted mid-week (a stage
        tick raised in ``raise`` mode), this call resumes that week at
        the failed stage with the completed stages' outputs intact.
        """
        if not self._setup_done:
            self._run_setup()
        if self._inflight_ctx is not None:
            ctx = self._inflight_ctx
            start_index = self._resume_stage_index
            self._inflight_ctx = None
            self._resume_stage_index = 0
        else:
            ctx = self._context()
            start_index = 0
        for index, stage in enumerate(self.stages):
            if index < start_index:
                continue
            ctx.current_stage = stage.name
            missing = [key for key in stage.requires if key not in ctx.outputs]
            if missing:
                # An upstream stage dead-lettered this week: skip, and
                # record why this stage could not run.
                self.metrics.record_skip(stage.name)
                ctx.quarantine_item(
                    "<stage-skip>", f"missing upstream outputs {missing}"
                )
                continue
            self._tick_stage(stage, ctx, index)
        for record in ctx.quarantine:
            self.metrics.record_quarantine(record.stage)
        self.dead_letters.extend(ctx.quarantine)
        if OBS.enabled:
            # Week boundary: snapshot the counter registry so the
            # series holds this week's deltas.  After the stage loop —
            # every shard effect has merged by now — and before the
            # clock advances, so the stamp is the week that just ran.
            OBS.series.snapshot(self.week_index, ctx.at, OBS.metrics)
        self.week_index += 1
        self.clock.advance(self.week_step)
        return ctx

    def run(
        self,
        max_weeks: Optional[int] = None,
        checkpoint_every: Optional[int] = None,
        on_checkpoint: Optional[Callable[[Checkpoint], None]] = None,
    ) -> int:
        """Run until the clock's end (or ``max_weeks`` more ticks).

        ``checkpoint_every=N`` snapshots the engine after every N weeks
        and hands the :class:`Checkpoint` to ``on_checkpoint``; restore
        with :meth:`PipelineEngine.restore` to resume.  Returns the
        number of weeks ticked by this call.
        """
        ran = 0
        while not self.clock.finished():
            if max_weeks is not None and ran >= max_weeks:
                return ran
            self.step()
            ran += 1
            if (
                checkpoint_every
                and on_checkpoint is not None
                and self.week_index % checkpoint_every == 0
                and not self.clock.finished()
            ):
                on_checkpoint(self.checkpoint())
        if self._setup_done and not self._finish_done:
            self._run_finish()
        return ran

    # -- checkpoint / resume ---------------------------------------------

    def checkpoint(self) -> Checkpoint:
        """Snapshot the entire engine state (stages, clock, RNG, payload).

        Taken after a mid-week failure (``raise`` mode), the snapshot
        carries the interrupted week's context and failed-stage index,
        so the restored engine re-runs only the failed stage onward.
        """
        failed_stage = (
            self.stages[self._resume_stage_index].name
            if self._inflight_ctx is not None
            else None
        )
        return Checkpoint(
            week_index=self.week_index,
            at=self.clock.now,
            blob=pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL),
            failed_stage=failed_stage,
        )

    @staticmethod
    def restore(checkpoint: Checkpoint) -> "PipelineEngine":
        """Rebuild a mid-run engine from a checkpoint; ``run()`` resumes it."""
        engine = pickle.loads(checkpoint.blob)
        if not isinstance(engine, PipelineEngine):  # pragma: no cover - corruption
            raise StageGraphError("checkpoint does not contain a PipelineEngine")
        return engine

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        names = ", ".join(stage.name for stage in self.stages)
        return f"PipelineEngine(week={self.week_index}, stages=[{names}])"
