"""Per-week shared state passed between stages.

Each weekly tick gets one :class:`WeekContext`: the simulated instant,
the week index, the run's RNG streams, and a keyed output board where
stages publish what downstream stages consume (``changed_pairs``,
``changes``, ``newly_flagged`` …).  The board is cleared between weeks
so stages cannot accidentally read stale state from a previous tick.

The context also carries the week's *quarantine*: dead-letter records
for items (FQDNs, stage ticks) that exhausted their retries.  A failing
item degrades to a quarantine record instead of aborting the week; the
engine accumulates these across weeks for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Any, Dict, List

from repro.sim.rng import RngStreams


@dataclass(frozen=True)
class QuarantineRecord:
    """One dead-lettered item: what failed, where, and why.

    ``item`` is the failed unit — an FQDN for measurement failures, or
    the sentinel ``"<stage-tick>"`` when a whole stage tick failed.
    """

    week_index: int
    stage: str
    item: str
    reason: str


class MissingOutputError(KeyError):
    """A stage read an output key no earlier stage published this week."""

    def __init__(self, key: str, stage: str = ""):
        reader = f" (read by stage {stage!r})" if stage else ""
        super().__init__(
            f"pipeline output {key!r} was not published this week{reader}"
        )
        self.key = key
        self.stage = stage


@dataclass
class WeekContext:
    """One weekly tick's shared state."""

    at: datetime
    week_index: int
    streams: RngStreams
    outputs: Dict[str, Any] = field(default_factory=dict)
    #: Name of the stage currently ticking (set by the engine; used to
    #: attribute :class:`MissingOutputError` and items-processed counts).
    current_stage: str = ""
    #: This week's dead-letter records (drained by the engine weekly).
    quarantine: List[QuarantineRecord] = field(default_factory=list)

    def put(self, key: str, value: Any) -> None:
        """Publish an inter-stage output for this week."""
        self.outputs[key] = value

    def get(self, key: str) -> Any:
        """Read an output published earlier this week.

        Raises :class:`MissingOutputError` when no stage published it —
        a mis-ordered composition, which the engine's dependency check
        catches at construction for stages that declare ``requires``.
        """
        try:
            return self.outputs[key]
        except KeyError:
            raise MissingOutputError(key, self.current_stage) from None

    def has(self, key: str) -> bool:
        return key in self.outputs

    def quarantine_item(self, item: Any, reason: str) -> None:
        """Dead-letter ``item``: processing it failed after all retries.

        The record is attributed to the currently-ticking stage; the
        week continues without the item (graceful degradation).
        """
        self.quarantine.append(
            QuarantineRecord(
                week_index=self.week_index,
                stage=self.current_stage,
                item=str(item),
                reason=reason,
            )
        )

    def clear(self) -> None:
        """Drop all outputs (called by the engine between weeks)."""
        self.outputs.clear()
