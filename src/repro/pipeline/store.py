"""Crash-safe checkpoint persistence.

The paper's three-year weekly campaign only works if an interrupted run
can resume without losing (or corrupting) the accumulated state.  A
:class:`CheckpointStore` makes the engine's pickled
:class:`~repro.pipeline.engine.Checkpoint` durable against the two ways
long-running collectors actually lose data:

* **torn writes** — the process (or machine) dies mid-write, leaving a
  truncated file.  Every write here goes through
  :func:`atomic_write_bytes`: the bytes land in a temp file in the same
  directory, are fsync'd, and only then renamed over the target, so a
  checkpoint file either exists whole or not at all;
* **silent corruption** — a file exists but its content is damaged.
  Every checkpoint is framed with a magic/version/length header and a
  sha256 digest of the payload, and :meth:`CheckpointStore.load_latest`
  verifies the frame before unpickling, skipping damaged files and
  falling back to the newest intact one.  What it skipped (and why) is
  reported in :attr:`CheckpointStore.last_recovery`.

The store keeps the last ``keep`` checkpoints and rotates older ones
out, so a corrupted newest file never strands the run: the previous
snapshot is still on disk.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import tempfile
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.obs import OBS
from repro.pipeline.engine import Checkpoint

#: Frame layout: magic, format version, payload length, then the sha256
#: digest of the payload, then the pickled :class:`Checkpoint`.
MAGIC = b"RCKP"
VERSION = 1
_FRAME = struct.Struct("<4sHQ")
_DIGEST_SIZE = hashlib.sha256().digest_size
HEADER_SIZE = _FRAME.size + _DIGEST_SIZE

_FILE_PREFIX = "ckpt-"
_FILE_SUFFIX = ".ckpt"


class CheckpointCorruptError(Exception):
    """A checkpoint file failed frame or checksum validation."""


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` so it appears whole or not at all.

    tmp + fsync + rename in the target's own directory (rename is only
    atomic within one filesystem), then an fsync of the directory so
    the rename itself survives a crash.  On any failure the temp file
    is removed and the old target — if one existed — is untouched.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def atomic_write_text(path: str, text: str, encoding: str = "utf-8") -> None:
    """Atomic counterpart of ``open(path, "w").write(text)``."""
    atomic_write_bytes(path, text.encode(encoding))


def encode_checkpoint(checkpoint: Checkpoint) -> bytes:
    """Frame one checkpoint: header + sha256 + pickled payload."""
    payload = pickle.dumps(checkpoint, protocol=pickle.HIGHEST_PROTOCOL)
    return (
        _FRAME.pack(MAGIC, VERSION, len(payload))
        + hashlib.sha256(payload).digest()
        + payload
    )


def decode_checkpoint(data: bytes) -> Checkpoint:
    """Validate a frame and return its checkpoint.

    Raises :class:`CheckpointCorruptError` naming the first failed
    check — torn header, bad magic, unknown version, truncated payload,
    checksum mismatch, or an unpicklable / wrong-typed payload.
    """
    if len(data) < HEADER_SIZE:
        raise CheckpointCorruptError(
            f"torn header: {len(data)} bytes, need {HEADER_SIZE}"
        )
    magic, version, length = _FRAME.unpack_from(data)
    if magic != MAGIC:
        raise CheckpointCorruptError(f"bad magic {magic!r}")
    if version != VERSION:
        raise CheckpointCorruptError(f"unsupported version {version}")
    payload = data[HEADER_SIZE:]
    if len(payload) != length:
        raise CheckpointCorruptError(
            f"torn payload: {len(payload)} bytes, header promises {length}"
        )
    digest = data[_FRAME.size:HEADER_SIZE]
    if hashlib.sha256(payload).digest() != digest:
        raise CheckpointCorruptError("payload checksum mismatch")
    try:
        checkpoint = pickle.loads(payload)
    except Exception as error:
        raise CheckpointCorruptError(f"payload does not unpickle: {error}")
    if not isinstance(checkpoint, Checkpoint):
        raise CheckpointCorruptError(
            f"payload is {type(checkpoint).__name__}, not Checkpoint"
        )
    return checkpoint


@dataclass
class RecoveryReport:
    """What one :meth:`CheckpointStore.load_latest` call found.

    ``loaded`` is the filename of the checkpoint actually restored
    (``None`` when the store held nothing intact); ``skipped`` lists
    every newer file that failed validation, with the reason, so an
    operator can see what the recovery stepped past.
    """

    loaded: Optional[str] = None
    skipped: List[Tuple[str, str]] = field(default_factory=list)


class CheckpointStore:
    """Durable keep-last-N checkpoint files under one directory.

    Filenames carry a monotonically increasing sequence number (plus
    the week index, for humans), so "latest" is a pure filename sort —
    no mtime races, no clock dependencies.
    """

    def __init__(self, directory: str, keep: int = 3):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = os.fspath(directory)
        self.keep = keep
        os.makedirs(self.directory, exist_ok=True)
        #: Outcome of the most recent :meth:`load_latest` call.
        self.last_recovery: Optional[RecoveryReport] = None

    # -- inventory --------------------------------------------------------

    def paths(self) -> List[str]:
        """Checkpoint file paths, oldest first (sequence order)."""
        names = [
            name
            for name in os.listdir(self.directory)
            if name.startswith(_FILE_PREFIX) and name.endswith(_FILE_SUFFIX)
        ]
        return [os.path.join(self.directory, name) for name in sorted(names)]

    @staticmethod
    def _sequence(path: str) -> int:
        name = os.path.basename(path)
        try:
            return int(name[len(_FILE_PREFIX):].split("-", 1)[0])
        except ValueError:
            return -1

    # -- writing ----------------------------------------------------------

    def save(self, checkpoint: Checkpoint) -> str:
        """Durably write one checkpoint; rotate past ``keep``; return path."""
        existing = self.paths()
        sequence = max(
            (self._sequence(path) for path in existing), default=-1
        ) + 1
        name = f"{_FILE_PREFIX}{sequence:06d}-w{checkpoint.week_index:04d}{_FILE_SUFFIX}"
        path = os.path.join(self.directory, name)
        atomic_write_bytes(path, encode_checkpoint(checkpoint))
        if OBS.enabled:
            OBS.metrics.inc("checkpoint.writes")
        for stale in (existing + [path])[: -self.keep]:
            try:
                os.unlink(stale)
            except OSError:
                pass
        return path

    # -- reading ----------------------------------------------------------

    def load(self, path: str) -> Checkpoint:
        """Read and validate one checkpoint file."""
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError as error:
            raise CheckpointCorruptError(f"unreadable: {error}")
        return decode_checkpoint(data)

    def load_latest(self) -> Optional[Checkpoint]:
        """The newest checkpoint that validates, or ``None``.

        Damaged files are skipped (never deleted — they are forensic
        evidence) and recorded in :attr:`last_recovery` with the
        validation failure that disqualified them.
        """
        report = RecoveryReport()
        self.last_recovery = report
        recovered: Optional[Checkpoint] = None
        with OBS.tracer.span("checkpoint.recover", dir=self.directory):
            for path in reversed(self.paths()):
                try:
                    recovered = self.load(path)
                except CheckpointCorruptError as error:
                    report.skipped.append((os.path.basename(path), str(error)))
                    if OBS.enabled:
                        OBS.metrics.inc("checkpoint.corrupt_skipped")
                    continue
                report.loaded = os.path.basename(path)
                break
        return recovered

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"CheckpointStore({self.directory!r}, keep={self.keep}, files={len(self.paths())})"
