"""Declarative analysis-task registry and parallel task-graph executor.

Every Section 4–6 analysis behind the paper's figures used to run
strictly serially inside one monolithic string-builder; this module
makes the analysis tier a first-class, parallelizable, observable
stage.  An :class:`AnalysisTask` names one pure analysis — a function
of the finished :class:`~repro.core.scenario.ScenarioResult` (plus the
payloads of declared upstream tasks) returning a picklable payload —
and an :class:`AnalysisRegistry` holds them in a fixed order that
doubles as the topological order of the task graph (dependencies must
be registered first).

:func:`run_analyses` executes a registry two ways with byte-identical
results:

* ``workers <= 1`` — the serial parity path: tasks run in registry
  order, in process.
* ``workers > 1`` — a forked task-graph pool: up to ``workers``
  children run concurrently, each executing one task against the
  copy-on-write world and shipping its payload home over a pipe.
  Ready tasks are dispatched highest-static-cost first (LPT-style);
  however the pool schedules them, outcomes are merged **in registry
  order**, so renderers and exports cannot observe the interleaving.

Failures are isolated per task: a task that raises degrades to an
error outcome (one-line deterministic summary plus the full traceback
for diagnostics) and everything downstream of it is marked skipped —
one broken analysis costs its report section, never the report.

Observability: every task runs under an ``analysis.<name>`` span and
bumps ``analysis.<name>.{ok,failed,skipped}`` counter series (children
swap in a fresh registry/buffer tracer and ship both home, exactly
like sweep shard workers), so serial and parallel runs produce the
same deterministic counters.

Fault injection is suppressed for the duration of a run: the analyses
are offline measurements over the finished world, and drawing from the
fault streams here would make task outputs depend on execution order.
"""

from __future__ import annotations

import os
import pickle
import select
import struct
import time
import traceback
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs import OBS, MetricsRegistry, cpu_seconds_now
from repro.parallel.shard import _read_exact, _write_all, fork_with_pipe


@dataclass(frozen=True)
class AnalysisTask:
    """One declarative paper analysis.

    ``run`` must be pure with respect to the scenario result — it may
    read anything but mutate nothing — and return a picklable payload
    (usually one of the analysis dataclasses).  ``deps`` names upstream
    tasks whose payloads are passed in; ``inputs`` documents which
    result components the task reads; ``cost`` is a static scheduling
    hint (dispatched highest first when the pool has a free slot).
    """

    name: str
    run: Callable[..., object]
    inputs: Tuple[str, ...] = ()
    deps: Tuple[str, ...] = ()
    cost: float = 1.0


class AnalysisRegistry:
    """An ordered, validated collection of analysis tasks.

    Registration order is the serial execution order and the merge
    order of the parallel path; dependencies must already be registered
    (which makes every registry a topologically sorted DAG by
    construction — cycles cannot be expressed).
    """

    def __init__(self, tasks: Sequence[AnalysisTask] = ()):
        self._tasks: List[AnalysisTask] = []
        self._by_name: Dict[str, AnalysisTask] = {}
        for task in tasks:
            self.register(task)

    def register(self, task: AnalysisTask) -> AnalysisTask:
        if task.name in self._by_name:
            raise ValueError(f"duplicate analysis task {task.name!r}")
        for dep in task.deps:
            if dep not in self._by_name:
                raise ValueError(
                    f"task {task.name!r} depends on {dep!r}, which is not "
                    "registered yet (dependencies must be registered first)"
                )
        self._by_name[task.name] = task
        self._tasks.append(task)
        return task

    @property
    def tasks(self) -> Tuple[AnalysisTask, ...]:
        return tuple(self._tasks)

    def names(self) -> List[str]:
        return [task.name for task in self._tasks]

    def get(self, name: str) -> AnalysisTask:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[AnalysisTask]:
        return iter(self._tasks)


@dataclass
class AnalysisOutcome:
    """What one task produced: a payload, or an isolated failure."""

    task: str
    payload: object = None
    #: One-line deterministic failure summary (``ExcType: message``),
    #: ``None`` on success.  This is what renderers and the JSON export
    #: show, so serial and parallel failures read identically.
    error: Optional[str] = None
    #: Full traceback for diagnostics; never rendered into the report.
    error_detail: Optional[str] = None
    wall_ms: float = 0.0
    #: CPU ms burned by the task — measured inside the worker, so the
    #: pooled path ships the child's own number home (wall-class data,
    #: excluded from determinism diffs like ``wall_ms``).
    cpu_ms: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class AnalysisRun:
    """All outcomes of one engine run, in registry order."""

    outcomes: List[AnalysisOutcome]
    workers: int = 1
    wall_seconds: float = 0.0
    _index: Dict[str, AnalysisOutcome] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._index = {outcome.task: outcome for outcome in self.outcomes}

    def outcome(self, name: str) -> AnalysisOutcome:
        return self._index[name]

    def payload(self, name: str) -> object:
        return self._index[name].payload

    def __contains__(self, name: str) -> bool:
        return name in self._index

    @property
    def failed(self) -> List[AnalysisOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]


# -- single-task execution (shared by the serial path and the children) ----


def _execute_task(
    task: AnalysisTask, result, deps: Dict[str, object]
) -> AnalysisOutcome:
    """Run one task with span + counter instrumentation, never raising."""
    started = time.perf_counter()
    cpu0 = cpu_seconds_now()
    try:
        with OBS.tracer.span(f"analysis.{task.name}"):
            payload = task.run(result, deps)
    except Exception as error:  # isolation: one broken analysis != no report
        wall_ms = (time.perf_counter() - started) * 1000.0
        cpu_ms = (cpu_seconds_now() - cpu0) * 1000.0
        if OBS.enabled:
            OBS.metrics.inc(f"analysis.{task.name}.failed")
            OBS.metrics.inc("analysis.tasks_failed")
        return AnalysisOutcome(
            task=task.name,
            error=f"{type(error).__name__}: {error}",
            error_detail=traceback.format_exc(),
            wall_ms=wall_ms,
            cpu_ms=cpu_ms,
        )
    wall_ms = (time.perf_counter() - started) * 1000.0
    cpu_ms = (cpu_seconds_now() - cpu0) * 1000.0
    if OBS.enabled:
        OBS.metrics.inc(f"analysis.{task.name}.ok")
        OBS.metrics.inc("analysis.tasks_ok")
    return AnalysisOutcome(
        task=task.name, payload=payload, wall_ms=wall_ms, cpu_ms=cpu_ms
    )


def _skip_outcome(task: AnalysisTask, failed_dep: str) -> AnalysisOutcome:
    if OBS.enabled:
        OBS.metrics.inc(f"analysis.{task.name}.skipped")
        OBS.metrics.inc("analysis.tasks_skipped")
    return AnalysisOutcome(
        task=task.name,
        error=f"SkippedAnalysis: upstream analysis {failed_dep!r} failed",
    )


def _failed_dep(task: AnalysisTask, done: Dict[str, AnalysisOutcome]) -> Optional[str]:
    for dep in task.deps:
        outcome = done.get(dep)
        if outcome is not None and not outcome.ok:
            return dep
    return None


def _deps_ready(task: AnalysisTask, done: Dict[str, AnalysisOutcome]) -> bool:
    return all(dep in done and done[dep].ok for dep in task.deps)


def _dep_payloads(task: AnalysisTask, done: Dict[str, AnalysisOutcome]) -> Dict[str, object]:
    return {dep: done[dep].payload for dep in task.deps}


# -- the engine ------------------------------------------------------------


def run_analyses(
    result,
    registry: Optional[AnalysisRegistry] = None,
    workers: int = 1,
) -> AnalysisRun:
    """Execute a task registry over one finished scenario.

    ``workers <= 1`` runs the serial parity path; ``workers > 1`` runs
    the forked pool (falling back to serial where ``os.fork`` does not
    exist).  Output is byte-identical either way: outcomes are always
    merged in registry order.
    """
    if registry is None:
        from repro.analysis.tasks import default_registry

        registry = default_registry()
    workers = max(1, int(workers))
    plan = getattr(result, "fault_plan", None)
    suppress = plan.suppressed() if plan is not None else nullcontext()
    started = time.perf_counter()
    with suppress:
        if workers == 1 or len(registry) <= 1 or not hasattr(os, "fork"):
            done = _run_serial(result, registry)
            effective_workers = 1
        else:
            done = _run_pool(result, registry, workers)
            effective_workers = workers
    outcomes = [done[task.name] for task in registry]
    if OBS.enabled:
        # Per-task resource rows, fed in registry order from the
        # worker-measured timings (skips carry zeros and are omitted).
        for outcome in outcomes:
            if outcome.wall_ms or outcome.cpu_ms:
                OBS.series.record_stage(
                    f"analysis.{outcome.task}",
                    outcome.cpu_ms / 1000.0,
                    outcome.wall_ms / 1000.0,
                )
    return AnalysisRun(
        outcomes=outcomes,
        workers=effective_workers,
        wall_seconds=time.perf_counter() - started,
    )


def _run_serial(result, registry: AnalysisRegistry) -> Dict[str, AnalysisOutcome]:
    done: Dict[str, AnalysisOutcome] = {}
    for task in registry:
        failed_dep = _failed_dep(task, done)
        if failed_dep is not None:
            done[task.name] = _skip_outcome(task, failed_dep)
            continue
        done[task.name] = _execute_task(task, result, _dep_payloads(task, done))
    return done


@dataclass
class _Child:
    """One in-flight forked task worker."""

    task: AnalysisTask
    pid: int
    read_fd: int


def _run_pool(
    result, registry: AnalysisRegistry, workers: int
) -> Dict[str, AnalysisOutcome]:
    """The forked task-graph pool.

    Dispatches ready tasks (dependencies completed ok) to at most
    ``workers`` concurrent children, highest static cost first.  Child
    observability (fresh registry + buffered spans) is shipped home in
    the result frame; the parent folds registries and replays trace
    events in **registry order** after the pool drains, so the merged
    counters and the sim-clock trace projection match a serial run.
    """
    pending: List[AnalysisTask] = list(registry)
    done: Dict[str, AnalysisOutcome] = {}
    active: Dict[int, _Child] = {}
    obs_freight: Dict[str, Tuple[Optional[MetricsRegistry], List[Dict]]] = {}

    def resolve_skips() -> None:
        # Failure cascades can unlock several rounds of skips.
        while True:
            skipped = [
                task for task in pending if _failed_dep(task, done) is not None
            ]
            if not skipped:
                return
            for task in skipped:
                done[task.name] = _skip_outcome(task, _failed_dep(task, done))
                pending.remove(task)

    def next_ready() -> Optional[AnalysisTask]:
        ready = [task for task in pending if _deps_ready(task, done)]
        if not ready:
            return None
        # LPT-style: largest static cost first; registry order breaks
        # ties so dispatch is deterministic.
        order = {task.name: i for i, task in enumerate(registry)}
        ready.sort(key=lambda task: (-task.cost, order[task.name]))
        return ready[0]

    while pending or active:
        resolve_skips()
        while len(active) < workers:
            task = next_ready()
            if task is None:
                break
            pending.remove(task)
            child = _spawn(task, result, _dep_payloads(task, done))
            active[child.read_fd] = child
        if not active:
            if pending:  # unreachable for a validated registry
                raise RuntimeError(
                    f"analysis pool deadlocked with {len(pending)} tasks pending"
                )
            break
        readable, _, _ = select.select(list(active), [], [])
        for read_fd in readable:
            child = active.pop(read_fd)
            outcome, freight = _collect(child)
            done[child.task.name] = outcome
            if freight is not None:
                obs_freight[child.task.name] = freight

    if OBS.enabled and obs_freight:
        # Deterministic fold: registry order, whatever the completion
        # interleaving was.
        for task in registry:
            freight = obs_freight.get(task.name)
            if freight is None:
                continue
            registry_part, events = freight
            if registry_part is not None:
                OBS.metrics.merge_from(registry_part)
            if events:
                OBS.tracer.replay(events)
    return done


def _spawn(task: AnalysisTask, result, deps: Dict[str, object]) -> _Child:
    pid, read_fd, write_fd = fork_with_pipe()
    if pid == 0:
        os.close(read_fd)
        exit_code = 0
        try:
            if OBS.enabled:
                # The child's counters and spans die with it: swap in a
                # fresh registry and a buffer tracer and ship both home.
                OBS.metrics = MetricsRegistry()
                OBS.tracer = OBS.tracer.fork_buffer()
            outcome = _execute_task(task, result, deps)
            registry_part = OBS.metrics if OBS.enabled else None
            # Metrics-only configurations leave the null tracer (which
            # buffers nothing) installed.
            events = getattr(OBS.tracer, "events", []) if OBS.enabled else []
            try:
                payload = pickle.dumps(
                    (outcome, registry_part, events),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            except Exception as error:
                # The analysis ran but its payload cannot cross the
                # pipe: degrade to an error outcome rather than a dead
                # worker.
                fallback = AnalysisOutcome(
                    task=task.name,
                    error=f"UnpicklablePayload: {type(error).__name__}: {error}",
                    error_detail=traceback.format_exc(),
                    wall_ms=outcome.wall_ms,
                )
                payload = pickle.dumps(
                    (fallback, registry_part, events),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            _write_all(write_fd, struct.pack("<Q", len(payload)) + payload)
            os.close(write_fd)
        except BaseException:
            exit_code = 1
        os._exit(exit_code)
    os.close(write_fd)
    return _Child(task=task, pid=pid, read_fd=read_fd)


def _collect(
    child: _Child,
) -> Tuple[AnalysisOutcome, Optional[Tuple[Optional[MetricsRegistry], List[Dict]]]]:
    """Read one child's result frame; a dead worker degrades to an error."""
    try:
        header = _read_exact(child.read_fd, 8)
        (length,) = struct.unpack("<Q", header)
        payload = _read_exact(child.read_fd, length)
    except Exception as error:
        os.close(child.read_fd)
        _, status = os.waitpid(child.pid, 0)
        return (
            AnalysisOutcome(
                task=child.task.name,
                error=(
                    f"AnalysisWorkerDied: task {child.task.name!r} worker "
                    f"pid {child.pid} (status {status}): {error}"
                ),
            ),
            None,
        )
    os.close(child.read_fd)
    os.waitpid(child.pid, 0)
    outcome, registry_part, events = pickle.loads(payload)
    return outcome, (registry_part, events)
