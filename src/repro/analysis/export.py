"""Machine-readable export of an analysis run (``--report-json``).

Payloads are analysis dataclasses full of simulation types — ``Name``
keys, ``datetime`` stamps, sets, ``Counter`` tallies — so the export
walks them generically: dataclasses become objects, mappings are
key-sorted, sets become sorted lists, datetimes become ISO strings and
anything else falls back to ``str``.  Every transform is
deterministic, so a serial and a parallel run of the same scenario
export byte-identical JSON (the report-parity CI job relies on it).
"""

from __future__ import annotations

import dataclasses
import json
from collections import Counter
from datetime import date, datetime
from enum import Enum
from typing import Dict

from repro.analysis.engine import AnalysisRun

#: Bumped whenever the export layout changes incompatibly.
REPORT_SCHEMA = "repro.analysis.report/1"


def jsonify(value):
    """Recursively convert an analysis payload into JSON-ready data."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # NaN/Infinity are not JSON; analyses use them as "no data".
        return value if value == value and abs(value) != float("inf") else None
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: jsonify(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, Enum):
        return jsonify(value.value)
    if isinstance(value, (datetime, date)):
        return value.isoformat()
    if isinstance(value, (set, frozenset)):
        return sorted((jsonify(item) for item in value), key=_sort_key)
    if isinstance(value, Counter):
        # most_common order is value-then-insertion; export key-sorted
        # like every other mapping.
        return {str(k): v for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, dict):
        return {
            str(k): jsonify(v)
            for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(value, (list, tuple)):
        return [jsonify(item) for item in value]
    return str(value)


def _sort_key(value) -> str:
    return value if isinstance(value, str) else json.dumps(value, sort_keys=True)


def run_to_dict(run: AnalysisRun, result) -> Dict[str, object]:
    """The export object: run metadata plus one entry per analysis."""
    analyses: Dict[str, object] = {}
    for outcome in run.outcomes:
        analyses[outcome.task] = {
            "ok": outcome.ok,
            "error": outcome.error,
            "data": jsonify(outcome.payload) if outcome.ok else None,
        }
    return {
        "schema": REPORT_SCHEMA,
        "seed": result.config.seed,
        "weeks": result.weeks_run,
        "end": result.end.isoformat(),
        "abused_fqdns": len(result.dataset),
        "analyses": analyses,
    }


def report_json(run: AnalysisRun, result, indent: int = 2) -> str:
    """Serialize one analysis run as deterministic JSON text."""
    return json.dumps(run_to_dict(run, result), indent=indent) + "\n"
