"""The paper's Section 4–6 analyses as declarative engine tasks.

One :class:`~repro.analysis.engine.AnalysisTask` per analysis — the
same ~20 computations behind the paper's figures that
``paper_report.build_report`` used to run inline — plus the
:class:`ReportSection` table that composes task payloads back into the
report's rendered sections.  Tasks are pure functions of the finished
scenario (and their declared upstream payloads), so the engine can run
them serially or on the forked pool with byte-identical output.

The only task-graph edges today: ``clustering`` and ``cooccurrence``
both consume the ``identifiers`` payload, so the identifier extraction
scan over the snapshot store runs exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.engine import AnalysisRegistry, AnalysisRun, AnalysisTask
from repro.core import (
    abuse_volume,
    cert_analysis,
    clustering,
    cookie_analysis,
    duration,
    growth,
    identifiers as identifiers_mod,
    malware_analysis,
    provider_analysis,
    registrar_analysis,
    reputation,
    scoring,
    seo_analysis,
    victimology,
)
from repro.core.ct_monitoring import evaluate_ct_monitoring
from repro.core.detection import indicator_breakdown, topic_breakdown
from repro.core.reporting import percent, render_table
from repro.core.seo_analysis import table1_index_keywords


# -- task run functions ----------------------------------------------------
# Each takes (result, deps) and returns a picklable payload.


def _run_scoring(result, deps):
    return scoring.score_detector(result.dataset, result.ground_truth)


def _run_growth(result, deps):
    return growth.growth_series(result.collector, result.dataset)


def _run_indicators(result, deps):
    return indicator_breakdown(result.dataset)


def _run_topics(result, deps):
    return topic_breakdown(result.dataset)


def _run_table1_keywords(result, deps):
    return table1_index_keywords(result.dataset)


def _run_victimology(result, deps):
    return victimology.analyze_victims(result.dataset, result.organizations)


def _run_providers(result, deps):
    return provider_analysis.analyze_providers(
        result.dataset, result.organizations, result.ground_truth
    )


def _run_durations(result, deps):
    return duration.analyze_durations(result.dataset, result.end)


def _run_seo(result, deps):
    return seo_analysis.analyze_seo(
        result.dataset, result.monitor.store, result.internet.client, result.end
    )


def _run_volume(result, deps):
    return abuse_volume.analyze_volume(result.dataset)


def _run_reputation(result, deps):
    internet = result.internet
    return reputation.analyze_reputation(
        result.dataset, internet.whois, internet.ct_log, internet.client, result.end
    )


def _run_certificates(result, deps):
    return cert_analysis.analyze_certificates(result.dataset, result.internet.ct_log)


def _run_caa(result, deps):
    internet = result.internet
    return cert_analysis.analyze_caa(result.dataset, internet.zones, internet.ct_log)


def _run_ct_monitoring(result, deps):
    return evaluate_ct_monitoring(result.ground_truth, result.internet.ct_log)


def _run_malware(result, deps):
    return result.harvester.report() if result.harvester else None


def _run_cookies(result, deps):
    return cookie_analysis.correlate_cookie_leaks(
        result.dataset, result.internet.darknet
    )


def _run_blacklist(result, deps):
    internet = result.internet
    return malware_analysis.analyze_blacklisting(
        result.dataset, internet.virustotal, internet.ct_log
    )


def _run_registrars(result, deps):
    return registrar_analysis.analyze_registrar_diversity(
        result.dataset, result.internet.whois
    )


def _run_identifiers(result, deps):
    return identifiers_mod.extract_identifiers(result.dataset, result.monitor.store)


def _run_clustering(result, deps):
    return clustering.cluster_identifiers(deps["identifiers"])


def _run_cooccurrence(result, deps):
    return clustering.cooccurrence_edges(deps["identifiers"])


def _run_monetization(result, deps):
    if result.monetization is None or not len(result.monetization.ledger):
        return None
    return result.monetization.ledger.payouts()


def default_tasks() -> List[AnalysisTask]:
    """Fresh task objects for the full paper report (registry order).

    Costs are static scheduling hints from the paper-scale profile:
    the certificate/CT/VirusTotal/WHOIS analyses dominate, the SEO
    crawl and identifier scan follow, everything else is noise.
    """
    return [
        AnalysisTask("scoring", _run_scoring, inputs=("dataset", "ground_truth")),
        AnalysisTask("growth", _run_growth, inputs=("collector", "dataset")),
        AnalysisTask("indicators", _run_indicators, inputs=("dataset",)),
        AnalysisTask("topics", _run_topics, inputs=("dataset",)),
        AnalysisTask("table1_keywords", _run_table1_keywords, inputs=("dataset",)),
        AnalysisTask("victimology", _run_victimology,
                     inputs=("dataset", "organizations")),
        AnalysisTask("providers", _run_providers,
                     inputs=("dataset", "organizations", "ground_truth")),
        AnalysisTask("durations", _run_durations, inputs=("dataset",)),
        AnalysisTask("seo", _run_seo, inputs=("dataset", "monitor", "internet"),
                     cost=3.0),
        AnalysisTask("volume", _run_volume, inputs=("dataset",)),
        AnalysisTask("reputation", _run_reputation,
                     inputs=("dataset", "internet"), cost=6.0),
        AnalysisTask("certificates", _run_certificates,
                     inputs=("dataset", "internet"), cost=10.0),
        AnalysisTask("caa", _run_caa, inputs=("dataset", "internet")),
        AnalysisTask("ct_monitoring", _run_ct_monitoring,
                     inputs=("ground_truth", "internet"), cost=7.0),
        AnalysisTask("malware", _run_malware, inputs=("harvester",)),
        AnalysisTask("cookies", _run_cookies, inputs=("dataset", "internet")),
        AnalysisTask("blacklist", _run_blacklist,
                     inputs=("dataset", "internet"), cost=6.0),
        AnalysisTask("registrars", _run_registrars, inputs=("dataset", "internet")),
        AnalysisTask("identifiers", _run_identifiers,
                     inputs=("dataset", "monitor"), cost=2.0),
        AnalysisTask("clustering", _run_clustering, deps=("identifiers",)),
        AnalysisTask("cooccurrence", _run_cooccurrence, deps=("identifiers",),
                     cost=2.0),
        AnalysisTask("monetization", _run_monetization, inputs=("monetization",)),
    ]


def default_registry() -> AnalysisRegistry:
    """A fresh registry of every paper analysis."""
    return AnalysisRegistry(default_tasks())


# -- report sections -------------------------------------------------------


@dataclass(frozen=True)
class ReportSection:
    """One rendered report section composed from task payloads.

    ``render`` receives ``{task_name: payload}`` plus the scenario
    result (for run-level facts like the week count) and returns the
    section text, or ``None`` to omit the section.  ``title`` is the
    static heading used when a constituent task failed and the section
    degrades to an error stanza.
    """

    name: str
    title: str
    tasks: Tuple[str, ...]
    render: Callable[[Dict[str, object], object], Optional[str]]


def _render_pipeline(payloads, result):
    score = payloads["scoring"]
    points = payloads["growth"]
    return render_table(
        ["metric", "value"],
        [
            ("weeks simulated", result.weeks_run),
            ("monitored cloud FQDNs", result.collector.monitored_count()),
            ("monitored-set growth", f"x{growth.growth_factor(points):.2f}"),
            ("actual takeovers", len(result.ground_truth)),
            ("abused FQDNs detected", len(result.dataset)),
            ("precision / recall", f"{percent(score.precision)} / {percent(score.recall)}"),
        ],
        title="Pipeline (Section 3, Figure 1)",
    )


def _render_indicators(payloads, result):
    return render_table(
        ["indicator combination", "domains", "share"],
        [(l, c, percent(s)) for l, c, s in payloads["indicators"]],
        title="Detections by indicator type (Figure 2)",
    )


def _render_topics(payloads, result):
    return render_table(
        ["topic", "domains", "share"],
        [(l, c, percent(s)) for l, c, s in payloads["topics"]],
        title="Content topics (Figure 3)",
    )


def _render_table1(payloads, result):
    return render_table(
        ["keyword", "pages"], payloads["table1_keywords"],
        title="Top index keywords (Table 1)",
    )


def _render_victimology(payloads, result):
    victims = payloads["victimology"]
    return render_table(
        ["metric", "value"],
        [
            ("abused FQDNs / SLDs", f"{victims.abused_fqdns} / {victims.abused_slds}"),
            ("SLD-level / subdomain", f"{victims.sld_level_abuses} / {victims.subdomain_abuses}"),
            ("TLDs affected", victims.affected_tlds),
            ("Fortune 500 / Global 500 share",
             f"{percent(victims.fortune500_share)} / {percent(victims.global500_share)}"),
            ("university hijacks", victims.universities_abused),
            ("orgs hit more than once", victims.multi_subdomain_orgs),
        ],
        title="Victimology (Section 4.1, Figures 4/5/7/8/9, Table 6)",
    )


def _render_providers(payloads, result):
    providers = payloads["providers"]
    return render_table(
        ["provider", "abuses"], providers.provider_abuse_counts,
        title=(
            "Providers (Section 4.2, Table 2/3, Figure 11) — "
            f"user-nameable invariant: {providers.all_abuses_user_nameable}"
        ),
    )


def _render_durations(payloads, result):
    durations = payloads["durations"]
    return render_table(
        ["bucket", "episodes", "share"],
        [
            ("<= 15 days", durations.short_lived, percent(durations.short_lived_share)),
            ("16-65 days", durations.medium,
             percent(durations.medium / durations.total if durations.total else 0)),
            ("> 65 days", durations.long_lived, percent(durations.long_lived_share)),
            ("> 1 year", durations.beyond_year, ""),
        ],
        title="Hijack durations (Section 4.4, Figures 15/16)",
    )


def _render_seo_volume(payloads, result):
    seo = payloads["seo"]
    volume = payloads["volume"]
    return render_table(
        ["metric", "value"],
        [
            ("sites with any SEO", percent(seo.seo_share)),
            ("doorway pages (of SEO sites)", percent(seo.doorway_share)),
            ("keyword stuffing (of pages)", percent(seo.keyword_stuffing_page_rate)),
            ("clickjacking sites", seo.clickjacking_sites),
            ("total uploaded files", volume.total_files),
            ("max files on one site", volume.max_files),
        ],
        title="SEO & volume (Section 5.2, Figure 6, Table 5)",
    )


def _render_reputation_certs(payloads, result):
    rep = payloads["reputation"]
    certs = payloads["certificates"]
    caa = payloads["caa"]
    ct = payloads["ct_monitoring"]
    return render_table(
        ["metric", "value"],
        [
            ("abused SLDs older than a year", percent(rep.older_than_year_share)),
            ("abused names with certificates", percent(rep.certified_share)),
            ("single-SAN / multi-SAN certs", f"{certs.single_san_total} / {certs.multi_san_total}"),
            ("free-CA share of single-SAN", percent(certs.free_ca_share)),
            ("parents with CAA", percent(caa.caa_share)),
            ("hijacks CT monitoring would catch", percent(ct.coverage)),
        ],
        title="Reputation & certificates (Sections 5.2.3/5.6, Figures 18/20)",
    )


def _render_malware_cookies(payloads, result):
    malware = payloads["malware"]
    cookies = payloads["cookies"]
    blacklist = payloads["blacklist"]
    return render_table(
        ["metric", "value"],
        [
            ("binaries retrieved (APK/EXE)",
             f"{malware.total} ({malware.apk_count}/{malware.exe_count})" if malware else "-"),
            ("trojan verdicts", malware.trojan_flagged if malware else "-"),
            ("domains flagged by any AV vendor", blacklist.flagged_once),
            ("leaked auth cookies matched", cookies.unique_cookies),
        ],
        title="Malware, blacklists & cookies (Sections 5.4/5.5, Figure 19)",
    )


def _render_attribution(payloads, result):
    registrars = payloads["registrars"]
    imap = payloads["identifiers"]
    clusters = payloads["clustering"]
    edges = payloads["cooccurrence"]
    largest = clusters.largest
    return render_table(
        ["metric", "value"],
        [
            ("same-change clusters spanning 2+ registrars",
             percent(registrars.share_spanning_2plus)),
            ("identifiers extracted", sum(imap.unique_counts.values())),
            ("infrastructure clusters", clusters.cluster_count),
            ("co-occurring identifier pairs (Figure 27 edges)", len(edges)),
            ("largest cluster (ids / domains)",
             f"{largest.identifier_count} / {largest.domain_count}" if largest else "-"),
            ("hijacks covered by identifiers",
             percent(len(clusters.covered_domains()) / len(result.dataset))
             if len(result.dataset) else "-"),
        ],
        title="Attribution (Section 6, Figures 10/21/22/26/27/28)",
    )


def _render_monetization(payloads, result):
    payouts = payloads["monetization"]
    if not payouts:
        return None
    return render_table(
        ["referral code", "payout (USD)"],
        [(code, round(total, 2)) for code, total in payouts[:10]],
        title="Monetization (Section 5.3, Figure 24)",
    )


DEFAULT_SECTIONS: Tuple[ReportSection, ...] = (
    ReportSection("pipeline", "Pipeline (Section 3, Figure 1)",
                  ("scoring", "growth"), _render_pipeline),
    ReportSection("indicators", "Detections by indicator type (Figure 2)",
                  ("indicators",), _render_indicators),
    ReportSection("topics", "Content topics (Figure 3)",
                  ("topics",), _render_topics),
    ReportSection("table1_keywords", "Top index keywords (Table 1)",
                  ("table1_keywords",), _render_table1),
    ReportSection("victimology",
                  "Victimology (Section 4.1, Figures 4/5/7/8/9, Table 6)",
                  ("victimology",), _render_victimology),
    ReportSection("providers", "Providers (Section 4.2, Table 2/3, Figure 11)",
                  ("providers",), _render_providers),
    ReportSection("durations", "Hijack durations (Section 4.4, Figures 15/16)",
                  ("durations",), _render_durations),
    ReportSection("seo_volume", "SEO & volume (Section 5.2, Figure 6, Table 5)",
                  ("seo", "volume"), _render_seo_volume),
    ReportSection("reputation_certs",
                  "Reputation & certificates (Sections 5.2.3/5.6, Figures 18/20)",
                  ("reputation", "certificates", "caa", "ct_monitoring"),
                  _render_reputation_certs),
    ReportSection("malware_cookies",
                  "Malware, blacklists & cookies (Sections 5.4/5.5, Figure 19)",
                  ("malware", "cookies", "blacklist"), _render_malware_cookies),
    ReportSection("attribution",
                  "Attribution (Section 6, Figures 10/21/22/26/27/28)",
                  ("registrars", "identifiers", "clustering", "cooccurrence"),
                  _render_attribution),
    ReportSection("monetization", "Monetization (Section 5.3, Figure 24)",
                  ("monetization",), _render_monetization),
)


def render_sections(
    run: AnalysisRun,
    result,
    sections: Tuple[ReportSection, ...] = DEFAULT_SECTIONS,
) -> List[str]:
    """Compose rendered sections from a finished analysis run.

    A section whose constituent task failed (or was skipped downstream
    of a failure) degrades to an error stanza under its static title —
    failure isolation at the report surface.  Sections referencing
    tasks absent from the run (custom registries) are omitted.
    """
    rendered: List[str] = []
    for section in sections:
        if not all(name in run for name in section.tasks):
            continue
        broken = next(
            (run.outcome(name) for name in section.tasks
             if not run.outcome(name).ok),
            None,
        )
        if broken is not None:
            rendered.append(
                f"{section.title}\n"
                f"  [analysis failed: task {broken.task!r} — {broken.error}]"
            )
            continue
        payloads = {name: run.payload(name) for name in section.tasks}
        text = section.render(payloads, result)
        if text is not None:
            rendered.append(text)
    return rendered
