"""The analysis engine: the paper's figures as a parallel task graph.

``repro.analysis`` turns the Section 4–6 analyses (clustering, SEO,
victimology, durations, certificates, cookies, malware, ...) into a
declarative task registry executed serially or on a forked pool with
byte-identical output, per-task failure isolation, ``analysis.<name>``
observability series and a machine-readable JSON export.
``repro.core.paper_report.build_report`` is a thin composition over
this package.
"""

from repro.analysis.engine import (
    AnalysisOutcome,
    AnalysisRegistry,
    AnalysisRun,
    AnalysisTask,
    run_analyses,
)
from repro.analysis.export import REPORT_SCHEMA, jsonify, report_json, run_to_dict
from repro.analysis.tasks import (
    DEFAULT_SECTIONS,
    ReportSection,
    default_registry,
    default_tasks,
    render_sections,
)

__all__ = [
    "AnalysisOutcome",
    "AnalysisRegistry",
    "AnalysisRun",
    "AnalysisTask",
    "run_analyses",
    "REPORT_SCHEMA",
    "jsonify",
    "report_json",
    "run_to_dict",
    "DEFAULT_SECTIONS",
    "ReportSection",
    "default_registry",
    "default_tasks",
    "render_sections",
]
