"""Victim-reputation analyses (Section 5.2.3, Figure 18).

Why attackers pick these domains: inherited reputation.  Measures the
WHOIS-age distribution of abused second-level domains (98.51% older
than a year, most over a decade), the share of abused (sub)domains with
valid certificates (18.2%), and HSTS deployment on parent domains
(~16% of non-error responses, Appendix A.2).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from datetime import datetime
from typing import List, Optional, Set, Tuple

from repro.core.detection import AbuseDataset
from repro.dns.names import registered_domain
from repro.pki.ct_log import CTLog
from repro.web.client import HttpClient
from repro.whois.registry import DomainRegistry


@dataclass
class ReputationReport:
    """Domain-age and transport-security statistics."""

    ages_years: List[float]
    older_than_year_share: float
    older_than_decade_share: float
    certified_share: float
    hsts_parent_share: float

    def age_histogram(self, bin_years: float = 2.0) -> List[Tuple[str, int]]:
        """Figure 18: abused SLDs binned by WHOIS age."""
        if not self.ages_years:
            return []
        bins: Counter = Counter()
        for age in self.ages_years:
            low = int(age // bin_years) * int(bin_years)
            bins[f"{low}-{low + int(bin_years)}y"] += 1
        return sorted(bins.items(), key=lambda item: int(item[0].split("-")[0]))


def analyze_reputation(
    dataset: AbuseDataset,
    whois: DomainRegistry,
    ct_log: CTLog,
    client: HttpClient,
    at: datetime,
) -> ReputationReport:
    """Compute all reputation aggregates over the abused set."""
    slds: Set[str] = set()
    for fqdn in dataset.abused_fqdns():
        sld = registered_domain(fqdn)
        if sld:
            slds.add(sld)
    ages: List[float] = []
    for sld in sorted(slds):
        record = whois.lookup(sld)
        if record is not None:
            ages.append(record.age_years(at))
    abused = dataset.abused_fqdns()
    certified = sum(1 for f in abused if ct_log.first_issuance_for(f) is not None)

    hsts = 0
    responsive_parents = 0
    for sld in sorted(slds):
        outcome = client.fetch(sld, at=at)
        if not outcome.ok:
            continue
        responsive_parents += 1
        if "Strict-Transport-Security" in outcome.response.headers:
            hsts += 1

    return ReputationReport(
        ages_years=sorted(ages),
        older_than_year_share=(
            sum(1 for a in ages if a > 1.0) / len(ages) if ages else 0.0
        ),
        older_than_decade_share=(
            sum(1 for a in ages if a > 10.0) / len(ages) if ages else 0.0
        ),
        certified_share=certified / len(abused) if abused else 0.0,
        hsts_parent_share=hsts / responsive_parents if responsive_parents else 0.0,
    )
