"""The scenario's weekly loop as pipeline stages.

Each class here is one component of the paper's weekly pipeline,
expressed as a :class:`~repro.pipeline.stage.Stage` so the engine can
order, time, checkpoint and (later) shard them.  ``build_stages``
composes the canonical nine-stage pipeline that ``run_scenario`` runs:

``world → orchestrator → users → collector-refresh → monitor-sweep →
change-detect → detect → notify → harvest``

Inter-stage data flows through the :class:`WeekContext` output board:
the monitor publishes ``changed_pairs``, change detection turns them
into ``changes``, the detector publishes ``newly_flagged`` for the
notification stage.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.attacker.campaign import CampaignOrchestrator
from repro.core.changes import ChangeEvent, detect_changes
from repro.core.collection import FqdnCollector
from repro.core.detection import AbuseDetector
from repro.core.malware_analysis import BinaryHarvester
from repro.core.monitoring import WeeklyMonitor
from repro.core.notifications import NotificationCampaign
from repro.dns.names import Name
from repro.parallel.executor import SerialExecutor, SweepExecutor
from repro.pipeline.context import WeekContext
from repro.pipeline.stage import Stage
from repro.world.internet import Internet
from repro.world.lifecycle import WorldEngine
from repro.world.organizations import Organization
from repro.world.users import UserPopulation

#: Context keys the stages publish (importable so tests/compositions
#: reference the contract, not string literals).
CHANGED_PAIRS = "changed_pairs"
CHANGES = "changes"
NEWLY_FLAGGED = "newly_flagged"


class WorldStage(Stage):
    """Legitimate world churn: releases, remediations, redesigns."""

    name = "world"

    def __init__(self, engine: WorldEngine):
        self._engine = engine

    def tick(self, ctx: WeekContext) -> Optional[int]:
        self._engine.step(ctx.at)
        return None


class OrchestratorStage(Stage):
    """Attacker campaigns scan, hijack and deploy content."""

    name = "orchestrator"

    def __init__(self, orchestrator: CampaignOrchestrator):
        self._orchestrator = orchestrator

    def tick(self, ctx: WeekContext) -> Optional[int]:
        return self._orchestrator.step(ctx.at)


class UsersStage(Stage):
    """Simulated users browse (and leak cookies to hijacked pages)."""

    name = "users"

    def __init__(self, users: UserPopulation, visits_per_user: int):
        self._users = users
        self._visits = visits_per_user

    def tick(self, ctx: WeekContext) -> Optional[int]:
        return self._users.weekly_browse(ctx.at, self._visits)


def candidate_names(
    internet: Internet, organizations: Sequence[Organization]
) -> List[Name]:
    """The candidate feed: apex domains plus passive-DNS subdomains.

    Mirrors Section 3.1: a seed list of high-profile domains, expanded
    to all subdomains observed in passive DNS.
    """
    names: List[Name] = []
    for org in organizations:
        names.append(org.domain)
        names.extend(internet.passive_dns.subdomains_of(org.domain))
    return names


class CollectorRefreshStage(Stage):
    """Periodic re-ingest of the passive-DNS candidate feed (§3.1)."""

    name = "collector-refresh"

    def __init__(
        self,
        collector: FqdnCollector,
        internet: Internet,
        organizations: Sequence[Organization],
        refresh_weeks: int,
    ):
        self._collector = collector
        self._internet = internet
        # Shared reference on purpose: the world engine grows this list
        # as the simulation runs, and the feed must see new orgs.
        self._organizations = organizations
        self._refresh_weeks = max(1, refresh_weeks)

    def tick(self, ctx: WeekContext) -> Optional[int]:
        if ctx.week_index % self._refresh_weeks != 0:
            return 0
        return self._collector.ingest(
            candidate_names(self._internet, self._organizations), ctx.at
        )


class MonitorSweepStage(Stage):
    """Weekly sampling of every monitored FQDN, via a sweep executor.

    The sweep itself is delegated to a
    :class:`~repro.parallel.executor.SweepExecutor` — the serial
    baseline by default, or a sharded parallel executor when the
    scenario asks for workers.  FQDNs whose final sample still ended in
    a transient failure after the monitor's retry budget are
    dead-lettered onto the context's quarantine instead of polluting
    the state store — the week's sweep degrades to the reachable subset
    rather than aborting.
    """

    name = "monitor-sweep"
    provides = (CHANGED_PAIRS,)

    def __init__(
        self,
        monitor: WeeklyMonitor,
        collector: FqdnCollector,
        executor: Optional[SweepExecutor] = None,
    ):
        self._monitor = monitor
        self._collector = collector
        self._executor = executor if executor is not None else SerialExecutor()

    def tick(self, ctx: WeekContext) -> Optional[int]:
        fqdns = self._collector.monitored_sorted
        report = self._executor.sweep(self._monitor, fqdns, ctx.at)
        for fqdn, status in report.failures:
            ctx.quarantine_item(fqdn, f"retries exhausted ({status})")
        for fqdn, reason in report.quarantined:
            # Poison isolated by the supervisor's bisection: the name's
            # worker died on every attempt, so it produced no sample.
            ctx.quarantine_item(fqdn, f"poison shard: {reason}")
        ctx.put(CHANGED_PAIRS, report.changed)
        return len(fqdns)


class ChangeDetectStage(Stage):
    """Classify each new content state against its predecessor (§3.2)."""

    name = "change-detect"
    requires = (CHANGED_PAIRS,)
    provides = (CHANGES,)

    def tick(self, ctx: WeekContext) -> Optional[int]:
        changes: List[ChangeEvent] = [
            detect_changes(previous, current)
            for current, previous in ctx.get(CHANGED_PAIRS)
        ]
        ctx.put(CHANGES, changes)
        return len(changes)


class DetectStage(Stage):
    """Signature extraction/matching over this week's changes (§3.3)."""

    name = "detect"
    requires = (CHANGES,)
    provides = (NEWLY_FLAGGED,)

    def __init__(self, detector: AbuseDetector):
        self._detector = detector

    def tick(self, ctx: WeekContext) -> Optional[int]:
        newly_flagged = self._detector.process_week(ctx.get(CHANGES), ctx.at)
        ctx.put(NEWLY_FLAGGED, newly_flagged)
        return len(newly_flagged)


class NotifyStage(Stage):
    """Victim notification for newly flagged abuses (§1, optional)."""

    name = "notify"
    requires = (NEWLY_FLAGGED,)

    def __init__(self, notifications: Optional[NotificationCampaign]):
        self._notifications = notifications

    def tick(self, ctx: WeekContext) -> Optional[int]:
        if self._notifications is None:
            return 0
        newly_flagged = ctx.get(NEWLY_FLAGGED)
        if not newly_flagged:
            return 0
        return len(self._notifications.notify(newly_flagged, ctx.at))


class HarvestStage(Stage):
    """Monthly binary harvesting from abused pages (§5.4)."""

    name = "harvest"

    def __init__(
        self,
        harvester: BinaryHarvester,
        detector: AbuseDetector,
        monitor: WeeklyMonitor,
        every_weeks: int = 4,
    ):
        self._harvester = harvester
        self._detector = detector
        self._monitor = monitor
        self._every_weeks = max(1, every_weeks)

    def tick(self, ctx: WeekContext) -> Optional[int]:
        if ctx.week_index % self._every_weeks != 0:
            return 0
        return self._harvester.harvest(
            self._detector.dataset, self._monitor.store, ctx.at
        )
