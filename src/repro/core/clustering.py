"""Attacker-infrastructure clustering (Section 6, Figures 22/27/28).

Identifiers appearing on the same hijacked pages belong to the same
operation.  The paper clusters identifiers by the domains they share:
the distance between two identifiers is ``1 - Jaccard(domains(a),
domains(b))`` (0 = identical domain sets, 1 = disjoint), hierarchical
single-linkage clustering is cut at 0.95, and connected groupings are
read off — 1,798 clusters, mostly singletons, plus one giant
1,609-identifier component.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.identifiers import IdentifierMap
from repro.dns.names import Name

#: The paper's dendrogram cutoff.
DEFAULT_CUTOFF = 0.95


@dataclass(frozen=True)
class IdentifierCluster:
    """One recovered attacker infrastructure."""

    cluster_id: int
    identifiers: Tuple[str, ...]
    domains: Tuple[Name, ...]

    @property
    def identifier_count(self) -> int:
        return len(self.identifiers)

    @property
    def domain_count(self) -> int:
        return len(self.domains)


@dataclass(frozen=True)
class DendrogramMerge:
    """One merge step (for plotting the Figure 28 dendrogram).

    ``left``/``right`` are the *canonical representatives* of the two
    components being merged — the smallest identifier index each
    component contains — not union-find internals.  Representatives are
    stable across the whole merge sequence (the merged component keeps
    ``min(left, right)``), so a plotter can follow the tree without
    ever seeing a label that was not itself a prior merge product or an
    original leaf.
    """

    left: int
    right: int
    distance: float
    size: int


@dataclass
class ClusteringReport:
    """The full clustering output."""

    clusters: List[IdentifierCluster]
    merges: List[DendrogramMerge]
    cutoff: float

    @property
    def cluster_count(self) -> int:
        return len(self.clusters)

    @property
    def largest(self) -> Optional[IdentifierCluster]:
        return self.clusters[0] if self.clusters else None

    @property
    def singleton_share(self) -> float:
        """Share of clusters with one or two identifiers (the long tail)."""
        if not self.clusters:
            return 0.0
        small = sum(1 for c in self.clusters if c.identifier_count <= 2)
        return small / len(self.clusters)

    def covered_domains(self) -> Set[Name]:
        covered: Set[Name] = set()
        for cluster in self.clusters:
            covered |= set(cluster.domains)
        return covered

    def top_by_domains(self, limit: int = 50) -> List[IdentifierCluster]:
        """Figure 22: clusters ranked by hijacked-domain count."""
        return sorted(self.clusters, key=lambda c: -c.domain_count)[:limit]


def jaccard_distance(a: Set[Name], b: Set[Name]) -> float:
    """1 - Jaccard similarity of two domain sets."""
    if not a and not b:
        return 1.0
    union = len(a | b)
    if union == 0:
        return 1.0
    return 1.0 - len(a & b) / union


def cluster_identifiers(
    identifier_map: IdentifierMap, cutoff: float = DEFAULT_CUTOFF
) -> ClusteringReport:
    """Single-linkage agglomerative clustering with a distance cutoff.

    Single linkage at a cutoff equals connected components over the
    graph of identifier pairs closer than the cutoff, so clusters are
    computed with union-find; the merge sequence for the dendrogram is
    recorded from a straightforward agglomerative pass.
    """
    items = sorted(identifier_map.all_identifiers().items())
    names = [name for name, _ in items]
    domain_sets = [set(domains) for _, domains in items]
    n = len(names)

    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    # Index identifiers by domain so only co-occurring pairs are compared
    # (the distance of non-co-occurring pairs is 1.0 > any cutoff < 1).
    by_domain: Dict[Name, List[int]] = {}
    for index, domains in enumerate(domain_sets):
        for domain in domains:
            by_domain.setdefault(domain, []).append(index)

    merges: List[DendrogramMerge] = []
    pairs: Set[Tuple[int, int]] = set()
    for indices in by_domain.values():
        for position, left in enumerate(indices):
            for right in indices[position + 1:]:
                pairs.add((left, right) if left < right else (right, left))
    scored = sorted(
        (jaccard_distance(domain_sets[a], domain_sets[b]), a, b) for a, b in pairs
    )
    component_size = {i: 1 for i in range(n)}
    # Canonical representative per component root: the smallest member
    # index.  Recording union-find roots directly would leak arbitrary
    # path-compression/union-order artifacts into the Figure 28 merge
    # sequence (labels that were never a merge product); the canonical
    # representative is stable no matter how the forest is shaped.
    representative = {i: i for i in range(n)}
    for distance, a, b in scored:
        if distance > cutoff:
            break
        ra, rb = find(a), find(b)
        if ra == rb:
            continue
        size = component_size[ra] + component_size[rb]
        left, right = representative[ra], representative[rb]
        merges.append(DendrogramMerge(left=left, right=right, distance=distance, size=size))
        union(ra, rb)
        root = find(ra)
        component_size[root] = size
        representative[root] = min(left, right)

    groups: Dict[int, List[int]] = {}
    for index in range(n):
        groups.setdefault(find(index), []).append(index)

    clusters: List[IdentifierCluster] = []
    for cluster_id, members in enumerate(
        sorted(groups.values(), key=lambda m: -len(m))
    ):
        identifiers = tuple(names[i] for i in members)
        domains: Set[Name] = set()
        for i in members:
            domains |= domain_sets[i]
        clusters.append(
            IdentifierCluster(
                cluster_id=cluster_id,
                identifiers=identifiers,
                domains=tuple(sorted(domains)),
            )
        )
    return ClusteringReport(clusters=clusters, merges=merges, cutoff=cutoff)


def cooccurrence_edges(
    identifier_map: IdentifierMap,
) -> List[Tuple[str, str, int]]:
    """Figure 27's network-graph edges: shared-domain counts per pair.

    Computed with a postings walk over the same ``by_domain`` inverted
    index clustering builds: each domain contributes one count to every
    pair of identifiers it appears on, so the cost is proportional to
    the co-occurring pairs (sum of per-domain posting sizes squared),
    not to all :math:`n^2` identifier pairs — almost all of which share
    nothing and produce no edge.  Byte-identical output to the naive
    all-pairs scan (:func:`cooccurrence_edges_naive`), which is kept as
    the parity/benchmark baseline.
    """
    items = sorted(identifier_map.all_identifiers().items())
    names = [name for name, _ in items]
    by_domain: Dict[Name, List[int]] = {}
    for index, (_, domains) in enumerate(items):
        for domain in set(domains):
            by_domain.setdefault(domain, []).append(index)
    shared: Dict[Tuple[int, int], int] = {}
    for indices in by_domain.values():
        # Postings are appended in increasing identifier index, so every
        # emitted pair is already (smaller, larger).
        for position, left in enumerate(indices):
            for right in indices[position + 1:]:
                pair = (left, right)
                shared[pair] = shared.get(pair, 0) + 1
    return [
        (names[a], names[b], count)
        for (a, b), count in sorted(shared.items())
    ]


def cooccurrence_edges_naive(
    identifier_map: IdentifierMap,
) -> List[Tuple[str, str, int]]:
    """The paper-literal O(n²) all-pairs scan (parity/bench baseline)."""
    items = sorted(identifier_map.all_identifiers().items())
    edges: List[Tuple[str, str, int]] = []
    for i, (name_a, domains_a) in enumerate(items):
        for name_b, domains_b in items[i + 1:]:
            shared = len(set(domains_a) & set(domains_b))
            if shared:
                edges.append((name_a, name_b, shared))
    return edges


#: Node colours of Figure 27: IPs red, contacts green, shorteners blue.
_KIND_COLORS = {"ip": "red", "phone": "green", "social": "green",
                "short-link": "blue"}


def cooccurrence_to_dot(identifier_map: IdentifierMap) -> str:
    """Render the Figure 27 network graph as Graphviz DOT.

    Node size scales with the identifier's domain count, edge weight
    with the number of shared domains, colours follow the paper's
    legend (IPs red, contact info green, shortener links blue).
    """
    lines = ["graph attacker_infrastructure {", "  layout=neato;", "  overlap=false;"]
    all_ids = identifier_map.all_identifiers()
    for name, domains in sorted(all_ids.items()):
        kind = identifier_map.kind_of(name)
        color = _KIND_COLORS.get(kind, "gray")
        size = 0.2 + 0.08 * len(domains)
        label = name.replace('"', "'")
        lines.append(
            f'  "{label}" [color={color}, width={size:.2f}, shape=circle, label=""];'
        )
    for a, b, shared in cooccurrence_edges(identifier_map):
        lines.append(
            f'  "{a}" -- "{b}" [penwidth={min(6, shared)}];'
        )
    lines.append("}")
    return "\n".join(lines)
