"""Abuse content volume (Section 3.2's "Abuse data volume", Figure 6).

The paper counts HTML files uploaded per hijacked site from the
collected sitemaps: 2 to 144,349 files per site, ~31,810 on average,
~500M files / ~24 TB in total.  Here the same numbers come from the
monitor's sitemap observations (entry counts and byte sizes), scaled
down with the simulated world.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.detection import AbuseDataset

#: Average abusive page size the paper reports (52.4 kB) — used to
#: estimate total bytes from page counts, exactly as the paper does.
AVERAGE_PAGE_KB = 52.4


@dataclass
class VolumeReport:
    """Upload-volume statistics across abused sites."""

    per_site_counts: List[int]
    total_files: int
    average_files: float
    min_files: int
    max_files: int
    estimated_total_kb: float

    @property
    def sites_with_sitemaps(self) -> int:
        return len(self.per_site_counts)

    def histogram(self, bin_size: int = 500) -> List[Tuple[str, int]]:
        """Figure 6: sites binned by number of uploaded files."""
        if not self.per_site_counts:
            return []
        top = max(self.per_site_counts)
        bins: List[Tuple[str, int]] = []
        edge = 0
        while edge <= top:
            upper = edge + bin_size
            count = sum(1 for c in self.per_site_counts if edge <= c < upper)
            bins.append((f"{edge}-{upper}", count))
            edge = upper
        return bins


def analyze_volume(dataset: AbuseDataset) -> VolumeReport:
    """File counts per abused site from observed sitemap maxima."""
    counts = sorted(
        record.max_sitemap_count
        for record in dataset.records()
        if record.max_sitemap_count > 0
    )
    total = sum(counts)
    return VolumeReport(
        per_site_counts=counts,
        total_files=total,
        average_files=total / len(counts) if counts else 0.0,
        min_files=counts[0] if counts else 0,
        max_files=counts[-1] if counts else 0,
        estimated_total_kb=total * AVERAGE_PAGE_KB,
    )
