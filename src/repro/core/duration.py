"""Hijack durations and time frames (Section 4.4, Figures 15/16).

Lifespan is measured the way the paper measures it: from the first
HTML sample recognised as abused to the DNS correction that ends the
episode (observed by the monitor as the abuse state vanishing).  The
headline shape: many hijacks are cleaned within ~15 days, but more
than a third persist past 65 days, some beyond a year.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import List, Optional, Tuple

from repro.core.detection import AbuseDataset

#: The paper's discussion thresholds, in days.
SHORT_LIVED_DAYS = 15.0
LONG_LIVED_DAYS = 65.0
YEAR_DAYS = 365.0


def require_sim_now(now: datetime) -> datetime:
    """Validate a right-censoring instant as simulation-clock time.

    Every duration analysis right-censors open episodes at ``now``, so
    ``now`` must be the simulated measurement end (``result.end``) —
    naive, like every simulated timestamp — never the wall clock.
    ``None`` and tz-aware datetimes (the signature of
    ``datetime.now(timezone.utc)``) are rejected loudly rather than
    silently producing multi-year phantom durations.
    """
    if now is None:
        raise ValueError(
            "now is required: pass the simulation clock's measurement "
            "end (e.g. result.end), not None"
        )
    if now.tzinfo is not None:
        raise ValueError(
            "now must be a naive simulation-clock datetime (e.g. "
            f"result.end); got tz-aware {now.isoformat()}, which looks "
            "like wall-clock time"
        )
    return now


@dataclass
class DurationReport:
    """Aggregate lifespan statistics."""

    durations_days: List[float]
    short_lived: int  # <= 15 days
    medium: int  # (15, 65]
    long_lived: int  # > 65 days
    beyond_year: int

    @property
    def total(self) -> int:
        return len(self.durations_days)

    @property
    def long_lived_share(self) -> float:
        return self.long_lived / self.total if self.total else 0.0

    @property
    def short_lived_share(self) -> float:
        return self.short_lived / self.total if self.total else 0.0

    def histogram(self, bin_days: float = 15.0, max_days: float = 450.0) -> List[Tuple[str, int]]:
        """Binned distribution for plotting Figure 15."""
        bins: List[Tuple[str, int]] = []
        edge = 0.0
        while edge < max_days:
            upper = edge + bin_days
            count = sum(1 for d in self.durations_days if edge <= d < upper)
            bins.append((f"{int(edge)}-{int(upper)}", count))
            edge = upper
        overflow = sum(1 for d in self.durations_days if d >= max_days)
        bins.append((f">={int(max_days)}", overflow))
        return bins


def analyze_durations(dataset: AbuseDataset, now: datetime) -> DurationReport:
    """Per-episode lifespans across the abuse dataset.

    Episodes still open at the end of the measurement are right-censored
    at ``now``, matching how the paper's Figure 16 draws ongoing bars.
    """
    now = require_sim_now(now)
    durations: List[float] = []
    for record in dataset.records():
        for episode in record.episodes:
            durations.append(episode.duration_days(now=now))
    durations.sort()
    return DurationReport(
        durations_days=durations,
        short_lived=sum(1 for d in durations if d <= SHORT_LIVED_DAYS),
        medium=sum(1 for d in durations if SHORT_LIVED_DAYS < d <= LONG_LIVED_DAYS),
        long_lived=sum(1 for d in durations if d > LONG_LIVED_DAYS),
        beyond_year=sum(1 for d in durations if d > YEAR_DAYS),
    )


def hijack_time_frames(
    dataset: AbuseDataset, now: datetime
) -> List[Tuple[str, datetime, Optional[datetime]]]:
    """Figure 16: one (fqdn, start, end) bar per episode, by start date.

    ``end`` is ``None`` for episodes still open at the measurement end.
    """
    now = require_sim_now(now)
    frames: List[Tuple[str, datetime, Optional[datetime]]] = []
    for record in dataset.records():
        for episode in record.episodes:
            frames.append((record.fqdn, episode.started_at, episode.ended_at))
    frames.sort(key=lambda frame: frame[1])
    return frames


def concurrent_hijacks(
    dataset: AbuseDataset, instants: List[datetime]
) -> List[Tuple[datetime, int]]:
    """How many hijacks were live at each instant (Figure 16's density).

    ``instants`` may arrive in any order; every one is validated as a
    naive simulation-clock datetime (the same contract as ``now``
    everywhere else in this module) and the density is returned in
    chronological order.  The latest instant right-censors still-open
    episodes.  An empty list yields an empty density — it must never
    smuggle ``datetime.max`` past :func:`require_sim_now`.
    """
    if not instants:
        return []
    ordered = sorted(require_sim_now(instant) for instant in instants)
    frames = hijack_time_frames(dataset, ordered[-1])
    out = []
    for instant in ordered:
        live = sum(
            1
            for _, start, end in frames
            if start <= instant and (end is None or end > instant)
        )
        out.append((instant, live))
    return out
