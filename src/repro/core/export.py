"""JSON export/import of measurement results.

A measurement pipeline's output outlives the pipeline: the paper's
dataset fed notifications, follow-up analyses and (eventually) this
reproduction.  These helpers serialize the abuse dataset and the
ground-truth log to plain JSON-compatible structures so downstream
tooling — or a later session — can consume them without the simulator.
"""

from __future__ import annotations

import json
from datetime import datetime
from typing import Any, Dict, List, Optional

from repro.content.vocab import Topic
from repro.core.detection import AbuseDataset, AbuseEpisode, AbuseRecord
from repro.world.ground_truth import GroundTruthLog

_TIME_FORMAT = "%Y-%m-%dT%H:%M:%S"


def _dump_time(value: Optional[datetime]) -> Optional[str]:
    return value.strftime(_TIME_FORMAT) if value is not None else None


def _load_time(value: Optional[str]) -> Optional[datetime]:
    return datetime.strptime(value, _TIME_FORMAT) if value is not None else None


def record_to_dict(record: AbuseRecord) -> Dict[str, Any]:
    """One abuse record as a JSON-compatible dict."""
    return {
        "fqdn": record.fqdn,
        "first_detected": _dump_time(record.first_detected),
        "episodes": [
            {
                "started_at": _dump_time(e.started_at),
                "last_matched": _dump_time(e.last_matched),
                "ended_at": _dump_time(e.ended_at),
            }
            for e in record.episodes
        ],
        "signature_ids": sorted(record.signature_ids),
        "indicator_combinations": sorted(
            sorted(combo) for combo in record.indicator_combinations
        ),
        "topics": sorted(t.value for t in record.topics),
        "keywords": sorted(record.keywords),
        "max_sitemap_count": record.max_sitemap_count,
        "max_sitemap_size": record.max_sitemap_size,
        "match_count": record.match_count,
    }


def record_from_dict(data: Dict[str, Any]) -> AbuseRecord:
    """Inverse of :func:`record_to_dict`."""
    record = AbuseRecord(
        fqdn=data["fqdn"],
        first_detected=_load_time(data["first_detected"]),
    )
    for episode in data.get("episodes", []):
        record.episodes.append(
            AbuseEpisode(
                started_at=_load_time(episode["started_at"]),
                last_matched=_load_time(episode["last_matched"]),
                ended_at=_load_time(episode.get("ended_at")),
            )
        )
    record.signature_ids = set(data.get("signature_ids", []))
    record.indicator_combinations = {
        frozenset(combo) for combo in data.get("indicator_combinations", [])
    }
    record.topics = {Topic(t) for t in data.get("topics", [])}
    record.keywords = set(data.get("keywords", []))
    record.max_sitemap_count = data.get("max_sitemap_count", -1)
    record.max_sitemap_size = data.get("max_sitemap_size", -1)
    record.match_count = data.get("match_count", 0)
    return record


def dataset_to_json(dataset: AbuseDataset, indent: Optional[int] = None) -> str:
    """Serialize a full abuse dataset to a JSON string."""
    payload = {
        "records": [record_to_dict(r) for r in dataset.records()],
        "monthly_cumulative": dict(dataset.monthly_cumulative),
    }
    return json.dumps(payload, indent=indent, ensure_ascii=False)


def dataset_from_json(text: str) -> AbuseDataset:
    """Inverse of :func:`dataset_to_json`."""
    payload = json.loads(text)
    dataset = AbuseDataset()
    for data in payload.get("records", []):
        record = record_from_dict(data)
        dataset._records[record.fqdn] = record  # rebuilding internal state
    dataset.monthly_cumulative.update(payload.get("monthly_cumulative", {}))
    return dataset


def ground_truth_to_json(ground_truth: GroundTruthLog, indent: Optional[int] = None) -> str:
    """Serialize the ground-truth hijack log (simulation-only data)."""
    rows: List[Dict[str, Any]] = []
    for record in ground_truth.all_records():
        rows.append(
            {
                "fqdn": record.fqdn,
                "attacker_group": record.attacker_group,
                "service": record.resource.service_key,
                "provider": record.resource.provider,
                "taken_over_at": _dump_time(record.taken_over_at),
                "remediated_at": _dump_time(record.remediated_at),
            }
        )
    return json.dumps({"hijacks": rows}, indent=indent, ensure_ascii=False)
