"""The attacker-capability model (Section 5.1, Table 4, Figure 17).

Derives, for every cloud service in the catalog, the capability set a
hijacker of that resource obtains, and the cookie-theft consequences
(which cookie flag combinations are stealable from which resource).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.cloud.capabilities import (
    AccessLevel,
    Capability,
    can_steal_cookie,
    capabilities_for_access,
)
from repro.cloud.specs import DEFAULT_SERVICE_SPECS, CloudServiceSpec, NamingPolicy


@dataclass(frozen=True)
class CapabilityRow:
    """One Table 4 row."""

    service_key: str
    provider: str
    function: str
    access: str
    capabilities: Tuple[str, ...]

    @property
    def has_https(self) -> bool:
        return Capability.HTTPS.value in self.capabilities

    @property
    def has_headers(self) -> bool:
        return Capability.HEADERS.value in self.capabilities


def capability_table(
    specs: Tuple[CloudServiceSpec, ...] = DEFAULT_SERVICE_SPECS,
) -> List[CapabilityRow]:
    """Table 4: capability sets per (web-serving) cloud service."""
    rows: List[CapabilityRow] = []
    for spec in specs:
        if spec.naming == NamingPolicy.DNS_ZONE:
            continue
        caps = sorted(c.value for c in capabilities_for_access(spec.access))
        rows.append(
            CapabilityRow(
                service_key=spec.key,
                provider=spec.provider,
                function=spec.function,
                access=spec.access.value,
                capabilities=tuple(caps),
            )
        )
    return rows


@dataclass(frozen=True)
class CookieTheftCell:
    """One cell of the cookie-theft matrix."""

    access: str
    http_only: bool
    secure: bool
    stealable: bool


def cookie_theft_matrix() -> List[CookieTheftCell]:
    """Which cookies each control level can steal (Section 5.5's rules).

    Static-content control reads only JS-visible (non-HttpOnly)
    cookies; full-webserver control reads header cookies too, and its
    https capability additionally captures Secure cookies.
    """
    cells: List[CookieTheftCell] = []
    for access in (AccessLevel.STATIC_CONTENT, AccessLevel.FULL_WEBSERVER):
        for http_only in (False, True):
            for secure in (False, True):
                cells.append(
                    CookieTheftCell(
                        access=access.value,
                        http_only=http_only,
                        secure=secure,
                        stealable=can_steal_cookie(access, http_only, secure),
                    )
                )
    return cells
