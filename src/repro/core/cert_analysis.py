"""Certificate analyses (Section 5.6, Figure 20) and CAA evaluation.

From CT history of the abused domains: the single-SAN vs
multi-SAN/wildcard split (hijacker domain validation can only prove one
concrete name, so fraudulent certs are single-SAN), issuance bursts by
free CAs during collection campaigns, and the Section 5.6.2 CAA
statistics showing why CAA does not stop this abuse.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.detection import AbuseDataset
from repro.dns.names import registered_domain
from repro.dns.zone import ZoneRegistry
from repro.pki.caa import authorized_issuers, effective_caa_set
from repro.pki.ct_log import CTLog, CTLogEntry
from repro.sim.clock import month_key

#: CAA identifiers of CAs that issue for free — a CAA set containing any
#: of these does not even raise the attacker's cost.
FREE_CA_IDENTIFIERS = frozenset(
    {"letsencrypt.org", "zerossl.com", "microsoft.com", "amazon.com"}
)


@dataclass
class CertificateReport:
    """Figure 20 data plus issuer statistics."""

    single_san_total: int
    multi_san_total: int
    #: month -> (single-SAN count, multi-SAN count) for hijacked domains.
    monthly: List[Tuple[str, int, int]]
    single_san_issuers: List[Tuple[str, int]]
    #: Share of single-SAN certs issued by free ACME CAs.
    free_ca_share: float
    #: Abused FQDNs that had a valid certificate at some point.
    abused_with_certificates: int


def analyze_certificates(
    dataset: AbuseDataset, ct_log: CTLog
) -> CertificateReport:
    """CT-history analysis over the hijacked subdomain set."""
    abused = set(dataset.abused_fqdns())
    single: List[CTLogEntry] = []
    multi: List[CTLogEntry] = []
    for entry in ct_log.entries():
        covered = [name for name in abused if entry.certificate.matches(name)]
        if not covered:
            continue
        if entry.certificate.is_single_san:
            single.append(entry)
        else:
            multi.append(entry)

    months: Dict[str, List[int]] = {}
    for entry in single:
        months.setdefault(month_key(entry.logged_at), [0, 0])[0] += 1
    for entry in multi:
        months.setdefault(month_key(entry.logged_at), [0, 0])[1] += 1
    monthly = [(m, counts[0], counts[1]) for m, counts in sorted(months.items())]

    issuer_counter: Counter = Counter(e.certificate.issuer for e in single)
    free_names = {"Let's Encrypt", "ZeroSSL", "Microsoft Azure TLS", "Amazon"}
    free_count = sum(c for issuer, c in issuer_counter.items() if issuer in free_names)

    with_certs = sum(
        1 for fqdn in abused if ct_log.first_issuance_for(fqdn) is not None
    )
    return CertificateReport(
        single_san_total=len(single),
        multi_san_total=len(multi),
        monthly=monthly,
        single_san_issuers=issuer_counter.most_common(),
        free_ca_share=free_count / len(single) if single else 0.0,
        abused_with_certificates=with_certs,
    )


@dataclass
class CaaReport:
    """Section 5.6.2: CAA deployment and (in)effectiveness."""

    parent_domains: int
    parents_with_caa: int
    parents_paid_only: int
    #: Parents with CAA that still had hijacked subdomains with certs.
    caa_parents_still_certified: int

    @property
    def caa_share(self) -> float:
        return self.parents_with_caa / self.parent_domains if self.parent_domains else 0.0

    @property
    def paid_only_share(self) -> float:
        return self.parents_paid_only / self.parent_domains if self.parent_domains else 0.0


def analyze_caa(
    dataset: AbuseDataset, zones: ZoneRegistry, ct_log: CTLog
) -> CaaReport:
    """CAA statistics over the parents of abused subdomains."""
    parents: Set[str] = set()
    for fqdn in dataset.abused_fqdns():
        sld = registered_domain(fqdn)
        if sld:
            parents.add(sld)
    with_caa = 0
    paid_only = 0
    still_certified = 0
    for parent in sorted(parents):
        rrset = effective_caa_set(zones, parent)
        if rrset is None:
            continue
        with_caa += 1
        issuers = authorized_issuers(zones, parent) or set()
        if issuers and not (issuers & FREE_CA_IDENTIFIERS):
            paid_only += 1
        has_certified_hijack = any(
            registered_domain(fqdn) == parent
            and ct_log.first_issuance_for(fqdn) is not None
            for fqdn in dataset.abused_fqdns()
        )
        if has_certified_hijack:
            still_certified += 1
    return CaaReport(
        parent_domains=len(parents),
        parents_with_caa=with_caa,
        parents_paid_only=paid_only,
        caa_parents_still_certified=still_certified,
    )
