"""Weekly monitoring: sampling and snapshot storage (Section 3.2).

For each monitored FQDN the monitor takes a weekly sample: resolve,
fetch the index HTML over HTTP/S, and — only when needed to judge a
change, per the paper's two-requests-per-FQDN ethics bound — fetch the
sitemap.  Samples are reduced to :class:`SnapshotFeatures` (hashes,
sizes, language, keywords, external references) and deduplicated into
content *states*: a new snapshot is stored only when something
observable changed, which is both how a real pipeline controls volume
and what change detection consumes.
"""

from __future__ import annotations

import hashlib
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from datetime import datetime
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.core.keywords import extract_keywords
from repro.core.sigindex import (
    DEFAULT_POSTING_CAP,
    PostingIndex,
    signature_anchor,
    state_tokens,
)
from repro.dns.names import Name
from repro.faults.retry import RetryPolicy
from repro.obs import OBS
from repro.web.client import FetchOutcome, FetchStatus, HttpClient
from repro.web.html import parse_html
from repro.web.sitemap import parse_sitemap

#: Monitor requests carry a crawler-like UA: the paper fetched pages the
#: way search spiders do, which is also why cloaked content (served to
#: crawlers) is visible to the pipeline.
MONITOR_USER_AGENT = "repro-monitor/1.0 (research crawler)"

#: Final fetch statuses the sweep treats as transient measurement
#: failures — the FQDN's state this week is *unknown*, not dangling, so
#: the pipeline quarantines the sample instead of trusting it.
TRANSIENT_SAMPLE_STATUSES = frozenset(
    {
        FetchStatus.TIMEOUT.value,
        FetchStatus.HTTP_ERROR.value,
        FetchStatus.CONNECTION_RESET.value,
        FetchStatus.CIRCUIT_OPEN.value,
    }
)


@dataclass
class MonitorConfig:
    """Knobs for the weekly sampler."""

    user_agent: str = MONITOR_USER_AGENT
    #: Cap on stored external URLs per snapshot (abuse pages embed few).
    external_url_cap: int = 64
    #: Cap on stored sitemap sample URLs.
    sitemap_sample_cap: int = 10
    #: Try HTTPS first, falling back to HTTP when the TLS handshake
    #: fails (no/invalid certificate).  The scheme actually used is
    #: recorded on the snapshot.  The fallback pair counts as one
    #: logical index probe against the ethics bound.
    prefer_https: bool = False
    #: Batch size for :meth:`WeeklyMonitor.sweep_iter` — the unit of
    #: work a parallel executor will shard across workers.
    sweep_batch_size: int = 256
    #: Retry budget for the monitor's own fetches (index + sitemap).
    #: The default (one attempt, no retries) is the pre-resilience
    #: behaviour; chaos runs raise it to ride out transient faults.
    retry: RetryPolicy = field(default_factory=RetryPolicy.none)
    #: Maximum entries the monitor's :class:`TouchLedger` retains.  A
    #: ledger entry is small, but a 3-year scenario monitors a growing
    #: population — the cap bounds memory and evicts least-recently
    #: refreshed names first (they just fall back to full samples).
    touch_ledger_cap: int = 65536


@dataclass(frozen=True)
class SnapshotFeatures:
    """Everything one weekly sample records about one FQDN."""

    fqdn: Name
    at: datetime
    dns_status: str
    cname_chain: Tuple[str, ...]
    addresses: Tuple[str, ...]
    fetch_status: str
    http_status: int = 0
    html_hash: str = ""
    html_size: int = 0
    title: str = ""
    lang: str = ""
    generator: str = ""
    keywords: FrozenSet[str] = frozenset()
    meta_keywords: Tuple[str, ...] = ()
    external_urls: Tuple[str, ...] = ()
    script_srcs: Tuple[str, ...] = ()
    #: Relative links pointing at downloadable executables (Section 5.4).
    download_paths: Tuple[str, ...] = ()
    onclick_count: int = 0
    has_meta_keywords: bool = False
    sitemap_size: int = -1  # -1: not fetched / unavailable
    sitemap_count: int = -1
    sitemap_sample: Tuple[str, ...] = ()
    #: Fetch attempts the index sample took (1 = first try; excluded
    #: from :meth:`state_key` so retries never fabricate new states).
    attempts: int = 1
    #: Scheme the index fetch actually used ("http"/"https").  Like
    #: ``attempts`` this describes *how* the sample was taken, not what
    #: was observed, so it is excluded from :meth:`state_key`.
    scheme: str = "http"

    @property
    def reachable(self) -> bool:
        """Whether the index fetch returned a 2xx page."""
        return self.fetch_status == FetchStatus.OK.value and 200 <= self.http_status < 300

    def state_key(self) -> Tuple:
        """The identity of this observable state (dedup key).

        Timestamps are excluded; sitemap values are included so a
        sitemap-only change still registers as a new state.
        """
        return (
            self.dns_status, self.cname_chain, self.addresses,
            self.fetch_status, self.http_status, self.html_hash,
            self.sitemap_size, self.sitemap_count,
        )


@dataclass
class StoredState:
    """One deduplicated content state and its observation window."""

    features: SnapshotFeatures
    first_seen: datetime
    last_seen: datetime
    observations: int = 1


class SnapshotStore:
    """Per-FQDN history of deduplicated states.

    Alongside the histories the store keeps a :class:`PostingIndex` —
    token → FQDN postings over every token any stored state ever
    carried — plus per-FQDN sitemap maxima, both maintained
    incrementally on state writes.  They answer one question for the
    detector's retrospective rescans: *which FQDNs could a new
    signature possibly match?* (see :meth:`rescan_candidates`).
    """

    def __init__(self, posting_cap: int = DEFAULT_POSTING_CAP) -> None:
        self._history: Dict[Name, List[StoredState]] = {}
        self.postings = PostingIndex(cap=posting_cap)
        #: fqdn -> (max sitemap_count, max sitemap_size) over history.
        self._sitemap_maxima: Dict[Name, Tuple[int, int]] = {}

    def record(self, features: SnapshotFeatures) -> Tuple[bool, Optional[SnapshotFeatures]]:
        """Store a sample; returns ``(is_new_state, previous_features)``.

        ``previous_features`` is the state that was current before this
        sample (``None`` on first sight).
        """
        history = self._history.setdefault(features.fqdn, [])
        if history and history[-1].features.state_key() == features.state_key():
            current = history[-1]
            current.last_seen = features.at
            current.observations += 1
            return False, history[-2].features if len(history) > 1 else None
        previous = history[-1].features if history else None
        history.append(
            StoredState(features=features, first_seen=features.at, last_seen=features.at)
        )
        self.postings.add(features.fqdn, state_tokens(features))
        max_count, max_size = self._sitemap_maxima.get(features.fqdn, (-1, -1))
        self._sitemap_maxima[features.fqdn] = (
            max(max_count, features.sitemap_count),
            max(max_size, features.sitemap_size),
        )
        return True, previous

    def rescan_candidates(self, signature) -> Optional[frozenset]:
        """FQDNs whose history could contain a match for ``signature``.

        Sound over-approximation: a signature requires every component
        group it carries, so an FQDN none of whose states ever held an
        anchor token cannot match and is safely skipped.  ``None``
        means the index cannot prune (no token anchor and no sitemap
        threshold, or an anchor token's postings were evicted) and the
        caller must scan everything.
        """
        kind, anchor = signature_anchor(signature)
        if kind == "sitemap":
            return frozenset(
                fqdn
                for fqdn, (max_count, max_size) in self._sitemap_maxima.items()
                if (not signature.sitemap_min_count
                    or max_count >= signature.sitemap_min_count)
                and (not signature.sitemap_min_bytes
                     or max_size >= signature.sitemap_min_bytes)
            )
        if kind == "scan":
            return None
        candidates = self.postings.candidate_fqdns(anchor)
        return frozenset(candidates) if candidates is not None else None

    def touch(self, fqdn: Name, at: datetime) -> None:
        """Re-observe ``fqdn``'s current state at ``at`` without a sample.

        Equivalent to :meth:`record` with features whose ``state_key``
        matches the latest stored state — the common steady-state case
        — minus the cost of building the features object.  The caller
        must have verified the observed state is unchanged.
        """
        history = self._history[fqdn]
        current = history[-1]
        current.last_seen = at
        current.observations += 1

    def history(self, fqdn: Name) -> List[StoredState]:
        return list(self._history.get(fqdn, []))

    def latest(self, fqdn: Name) -> Optional[SnapshotFeatures]:
        history = self._history.get(fqdn)
        return history[-1].features if history else None

    def fqdns(self) -> List[Name]:
        return sorted(self._history)

    def state_count(self) -> int:
        """Total stored states across all FQDNs."""
        return sum(len(h) for h in self._history.values())


@dataclass
class ExtractionCache:
    """Content-addressed memo of pure feature extraction.

    Parsing and keyword extraction are pure functions of the body, and
    week over week almost every body is one the pipeline has already
    seen — so extracted features can be reused by body hash.  ``html``
    maps an index-body hash to the :class:`SnapshotFeatures` field dict
    the body extracts to; ``sitemap`` maps a sitemap-body hash to its
    ``(size, count, sample)`` triple.  Entirely behaviour-transparent:
    a cached entry is byte-identical to re-extraction.  Disabled by
    default (``WeeklyMonitor`` is built without one); the parallel
    executor owns one per run and threads it into its shard workers.
    """

    html: Dict[str, Dict[str, object]] = field(default_factory=dict)
    sitemap: Dict[str, Tuple[int, int, Tuple[str, ...]]] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    def merge(self, other: "ExtractionCache") -> None:
        """Fold ``other``'s entries and counters into this cache."""
        self.html.update(other.html)
        self.sitemap.update(other.sitemap)
        self.hits += other.hits
        self.misses += other.misses


@dataclass(frozen=True)
class TouchEntry:
    """Proof that a name's last full sample is still current.

    ``deps`` are the revision-journal subjects the sample's outcome
    depends on — the DNS names its resolution walked (exact and
    wildcard keys, plus the zone-set key), the edge route and network
    binding it was served through, and the site whose content it
    hashed.  While none of those subjects move in the journal, the
    name's observable state provably equals ``state_key`` and a sweep
    may extend its observation window without re-sampling.

    ``observed`` replays the passive-DNS observations the skipped
    resolution would have produced, keeping exports byte-identical.
    Entries are plain data (no live world references), so they survive
    pickling across process-pool boundaries and checkpoint resumes.
    """

    fqdn: Name
    deps: Tuple[Tuple[str, object], ...]
    state_key: Tuple
    observed: Tuple = ()


class TouchLedger:
    """Size-capped store of :class:`TouchEntry` proofs, monitor-owned.

    Replaces the old identity-comparison touch memo that workers used
    to inject onto the monitor via a private attribute: entries here
    are validated against the revision journal (value semantics), not
    against Python object identity, so they stay valid across process
    forks and site types.  ``cursor`` marks the journal position the
    ledger was last reconciled at: every live entry's dependencies are
    unchanged as of that cursor, so one ``changed_since(cursor)`` call
    yields the sweep's dirty set.
    """

    def __init__(self, cap: int = 65536):
        if cap <= 0:
            raise ValueError(f"cap must be positive, got {cap}")
        self.cap = cap
        self._entries: "OrderedDict[Name, TouchEntry]" = OrderedDict()
        #: Journal cursor as of the last completed sweep.
        self.cursor = 0
        self.evictions = 0

    def get(self, fqdn: Name) -> Optional[TouchEntry]:
        """The entry for ``fqdn``, if any.  Read-only: recency order is
        deliberately not updated, so lookups behave identically whether
        they happen inline or in a forked worker's copy."""
        return self._entries.get(fqdn)

    def put(self, fqdn: Name, entry: TouchEntry) -> None:
        """Insert or refresh ``fqdn``'s entry, evicting when over cap."""
        self._entries[fqdn] = entry
        self._entries.move_to_end(fqdn)
        while len(self._entries) > self.cap:
            self._entries.popitem(last=False)
            self.evictions += 1
            if OBS.enabled:
                OBS.metrics.inc("monitor.touch_ledger.evictions")

    def invalidate(self, fqdn: Name) -> None:
        """Drop ``fqdn``'s entry (no-op when absent)."""
        self._entries.pop(fqdn, None)

    def __len__(self) -> int:
        return len(self._entries)


class WeeklyMonitor:
    """Takes the weekly samples and feeds the store."""

    def __init__(
        self,
        client: HttpClient,
        store: Optional[SnapshotStore] = None,
        config: Optional[MonitorConfig] = None,
        extraction_cache: Optional[ExtractionCache] = None,
        journal=None,
        incremental: bool = False,
    ):
        self._client = client
        self.store = store if store is not None else SnapshotStore()
        self.config = config or MonitorConfig()
        #: Optional content-addressed extraction memo (None = always
        #: re-extract, the baseline serial behaviour).
        self.extraction_cache = extraction_cache
        #: The world's :class:`repro.sim.revisions.RevisionJournal`;
        #: required for incremental sweeps, harmless otherwise.
        self.journal = journal
        #: When true (and a journal is wired), sweeps compute a dirty
        #: set from the journal and extend clean names' windows through
        #: the :class:`TouchLedger` instead of re-sampling them.
        self.incremental = incremental
        self.touch_ledger = TouchLedger(cap=self.config.touch_ledger_cap)
        self.samples_taken = 0
        self.sitemap_fetches = 0
        self._last_sweep_failures: List[Tuple[Name, str]] = []

    @property
    def client(self) -> HttpClient:
        """The HTTP client the monitor samples through."""
        return self._client

    @property
    def last_sweep_failures(self) -> List[Tuple[Name, str]]:
        """(fqdn, fetch_status) pairs whose *final* sample still ended
        in a transient failure — retries exhausted — in the most
        recently *started* sweep.

        .. deprecated::
            Pass a ``failures`` sink to :meth:`sweep_iter` instead; the
            shared property is racy when sweeps interleave.
        """
        warnings.warn(
            "WeeklyMonitor.last_sweep_failures is deprecated; pass a "
            "`failures` sink to sweep_iter() instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._last_sweep_failures

    def sweep(
        self, fqdns: Sequence[Name], at: datetime
    ) -> List[Tuple[SnapshotFeatures, Optional[SnapshotFeatures]]]:
        """Sample every FQDN once.

        Returns ``(new_state, previous_state)`` pairs for every FQDN
        whose observable state changed this week — the input unit for
        change detection.
        """
        changed: List[Tuple[SnapshotFeatures, Optional[SnapshotFeatures]]] = []
        for batch_changed in self.sweep_iter(fqdns, at):
            changed.extend(batch_changed)
        return changed

    def sweep_iter(
        self,
        fqdns: Sequence[Name],
        at: datetime,
        batch_size: Optional[int] = None,
        failures: Optional[List[Tuple[Name, str]]] = None,
    ) -> Iterator[List[Tuple[SnapshotFeatures, Optional[SnapshotFeatures]]]]:
        """Sample in fixed-size batches, yielding each batch's changes.

        Batches are the unit a parallel executor will shard: each batch
        touches a disjoint slice of the monitored set, so batches can
        run concurrently once the store is partitioned.  Yields one
        (possibly empty) changed-pairs list per batch; iterating to
        exhaustion is equivalent to :meth:`sweep`.

        Retry-exhausted transient failures are appended to ``failures``
        when given, else to a fresh per-call list readable (for
        compatibility) as :attr:`last_sweep_failures`.  Validation and
        the failure-list rebind happen eagerly at call time, not at
        first ``next()``, so interleaved sweeps never clobber each
        other's quarantine lists.
        """
        size = batch_size if batch_size is not None else self.config.sweep_batch_size
        if size <= 0:
            raise ValueError(f"batch_size must be positive, got {size}")
        sink: List[Tuple[Name, str]] = failures if failures is not None else []
        self._last_sweep_failures = sink
        return self._sweep_batches(fqdns, at, size, sink)

    def _sweep_batches(
        self,
        fqdns: Sequence[Name],
        at: datetime,
        size: int,
        failures: List[Tuple[Name, str]],
    ) -> Iterator[List[Tuple[SnapshotFeatures, Optional[SnapshotFeatures]]]]:
        for start in range(0, len(fqdns), size):
            changed: List[Tuple[SnapshotFeatures, Optional[SnapshotFeatures]]] = []
            for fqdn in fqdns[start:start + size]:
                features = self.sample(fqdn, at)
                if features.fetch_status in TRANSIENT_SAMPLE_STATUSES:
                    # Retries exhausted and the state is still unknown:
                    # keep the last trusted state instead of recording a
                    # phantom change, and hand the FQDN to quarantine.
                    failures.append((fqdn, features.fetch_status))
                    continue
                is_new, previous = self.store.record(features)
                if is_new:
                    changed.append((features, previous))
            yield changed

    def sample(self, fqdn: Name, at: datetime) -> SnapshotFeatures:
        """One weekly sample: index fetch, plus sitemap when warranted."""
        self.samples_taken += 1
        if OBS.enabled:
            OBS.metrics.inc("monitor.samples")
        headers = {"User-Agent": self.config.user_agent}
        outcome, scheme = self._fetch_index(fqdn, at, headers)
        resolution = outcome.resolution
        features = SnapshotFeatures(
            fqdn=fqdn,
            at=at,
            dns_status=resolution.status.value if resolution else "ERROR",
            cname_chain=tuple(resolution.cname_chain) if resolution else (),
            addresses=tuple(resolution.addresses) if resolution else (),
            fetch_status=outcome.status.value,
            attempts=outcome.attempts,
            scheme=scheme,
        )
        if not outcome.ok:
            if outcome.response is not None:
                # 5xx/429: record the code so the error class survives
                # into the stored state even though no body is trusted.
                features = replace(features, http_status=outcome.response.status)
            return features
        body = outcome.response.body
        body_hash = hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]
        previous = self.store.latest(fqdn)
        if previous is not None and previous.html_hash == body_hash:
            # Unchanged content: reuse the parsed features rather than
            # re-parsing (the stored state dedup makes this the common
            # case, as in a real pipeline's content-addressed store).
            features = replace(
                previous, at=at,
                dns_status=features.dns_status,
                cname_chain=features.cname_chain,
                addresses=features.addresses,
                fetch_status=features.fetch_status,
                attempts=features.attempts,
                scheme=features.scheme,
            )
        else:
            features = self._with_html_features(
                features, outcome.response.status, body, body_hash
            )
        # Second (conditional) request: the sitemap, fetched only when
        # the page is up — the paper's "if we cannot establish an abuse
        # with confidence" follow-up, bounded to 2 requests per FQDN.
        if previous is None or previous.html_hash != features.html_hash or previous.sitemap_count < 0:
            features = self._with_sitemap_features(features, fqdn, at, headers, scheme)
        else:
            features = replace(
                features,
                sitemap_size=previous.sitemap_size,
                sitemap_count=previous.sitemap_count,
                sitemap_sample=previous.sitemap_sample,
            )
        return features

    def _fetch_index(
        self, fqdn: Name, at: datetime, headers: Dict[str, str]
    ) -> Tuple[FetchOutcome, str]:
        """The index fetch, with scheme selection.

        With ``prefer_https`` the HTTPS attempt comes first; a TLS
        failure (no or invalid certificate) falls back to plain HTTP —
        any other HTTPS outcome, success or failure, is authoritative.
        Returns the outcome and the scheme it was fetched over.
        """
        if self.config.prefer_https:
            outcome = self._client.fetch(
                fqdn, path="/", scheme="https", at=at, headers=headers,
                retry=self.config.retry,
            )
            if outcome.status != FetchStatus.TLS_ERROR:
                return outcome, "https"
        outcome = self._client.fetch(
            fqdn, path="/", scheme="http", at=at, headers=headers,
            retry=self.config.retry,
        )
        return outcome, "http"

    # -- feature builders ------------------------------------------------------------

    def _with_html_features(
        self,
        features: SnapshotFeatures,
        status: int,
        body: str,
        body_hash: Optional[str] = None,
    ) -> SnapshotFeatures:
        if body_hash is None:
            body_hash = hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]
        cache = self.extraction_cache
        if cache is not None:
            cached = cache.html.get(body_hash)
            if cached is not None:
                cache.hits += 1
                if OBS.enabled:
                    OBS.metrics.inc("extraction.html.hits")
                return replace(
                    features, http_status=status, html_hash=body_hash, **cached
                )
            cache.misses += 1
            if OBS.enabled:
                OBS.metrics.inc("extraction.html.misses")
        fields = self._extract_html_fields(body)
        if cache is not None:
            cache.html[body_hash] = fields
        return replace(features, http_status=status, html_hash=body_hash, **fields)

    def _extract_html_fields(self, body: str) -> Dict[str, object]:
        """Pure extraction of one index body's feature fields."""
        document = parse_html(body)
        external = [u for u in document.all_urls() if u.startswith(("http://", "https://"))]
        downloads = tuple(
            link.href
            for link in document.links
            if link.href.startswith("/")
            and link.href.lower().endswith((".apk", ".exe", ".msi", ".dmg"))
        )
        return dict(
            html_size=len(body.encode("utf-8")),
            title=document.title,
            lang=document.lang,
            generator=document.generator,
            keywords=extract_keywords(document),
            meta_keywords=tuple(document.meta_keywords),
            external_urls=tuple(external[: self.config.external_url_cap]),
            script_srcs=tuple(s.src for s in document.scripts if s.src),
            download_paths=downloads,
            onclick_count=sum(1 for link in document.links if link.onclick),
            has_meta_keywords="keywords" in document.meta,
        )

    def _with_sitemap_features(
        self,
        features: SnapshotFeatures,
        fqdn: Name,
        at: datetime,
        headers: Dict[str, str],
        scheme: str = "http",
    ) -> SnapshotFeatures:
        self.sitemap_fetches += 1
        outcome = self._client.fetch(
            fqdn, path="/sitemap.xml", scheme=scheme, at=at, headers=headers,
            retry=self.config.retry,
        )
        if not outcome.ok:
            return features
        size, count, sample = self.extract_sitemap_fields(outcome.response.body)
        return replace(
            features, sitemap_size=size, sitemap_count=count, sitemap_sample=sample
        )

    def extract_sitemap_fields(self, body: str) -> Tuple[int, int, Tuple[str, ...]]:
        """``(size, count, sample)`` of one sitemap body, via the cache."""
        cache = self.extraction_cache
        if cache is None:
            return self._extract_sitemap_fields(body)
        key = hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]
        cached = cache.sitemap.get(key)
        if cached is not None:
            cache.hits += 1
            if OBS.enabled:
                OBS.metrics.inc("extraction.sitemap.hits")
            return cached
        cache.misses += 1
        if OBS.enabled:
            OBS.metrics.inc("extraction.sitemap.misses")
        fields = self._extract_sitemap_fields(body)
        cache.sitemap[key] = fields
        return fields

    def _extract_sitemap_fields(self, body: str) -> Tuple[int, int, Tuple[str, ...]]:
        sitemap = parse_sitemap(body)
        return (
            len(body.encode("utf-8")),
            len(sitemap),
            tuple(sitemap.urls()[: self.config.sitemap_sample_cap]),
        )
