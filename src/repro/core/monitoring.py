"""Weekly monitoring: sampling and snapshot storage (Section 3.2).

For each monitored FQDN the monitor takes a weekly sample: resolve,
fetch the index HTML over HTTP/S, and — only when needed to judge a
change, per the paper's two-requests-per-FQDN ethics bound — fetch the
sitemap.  Samples are reduced to :class:`SnapshotFeatures` (hashes,
sizes, language, keywords, external references) and deduplicated into
content *states*: a new snapshot is stored only when something
observable changed, which is both how a real pipeline controls volume
and what change detection consumes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from datetime import datetime
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.core.keywords import extract_keywords
from repro.dns.names import Name
from repro.faults.retry import RetryPolicy
from repro.web.client import FetchStatus, HttpClient
from repro.web.html import parse_html
from repro.web.sitemap import parse_sitemap

#: Monitor requests carry a crawler-like UA: the paper fetched pages the
#: way search spiders do, which is also why cloaked content (served to
#: crawlers) is visible to the pipeline.
MONITOR_USER_AGENT = "repro-monitor/1.0 (research crawler)"

#: Final fetch statuses the sweep treats as transient measurement
#: failures — the FQDN's state this week is *unknown*, not dangling, so
#: the pipeline quarantines the sample instead of trusting it.
TRANSIENT_SAMPLE_STATUSES = frozenset(
    {
        FetchStatus.TIMEOUT.value,
        FetchStatus.HTTP_ERROR.value,
        FetchStatus.CONNECTION_RESET.value,
        FetchStatus.CIRCUIT_OPEN.value,
    }
)


@dataclass
class MonitorConfig:
    """Knobs for the weekly sampler."""

    user_agent: str = MONITOR_USER_AGENT
    #: Cap on stored external URLs per snapshot (abuse pages embed few).
    external_url_cap: int = 64
    #: Cap on stored sitemap sample URLs.
    sitemap_sample_cap: int = 10
    #: Try HTTPS first when a certificate exists, else HTTP.
    prefer_https: bool = False
    #: Batch size for :meth:`WeeklyMonitor.sweep_iter` — the unit of
    #: work a parallel executor will shard across workers.
    sweep_batch_size: int = 256
    #: Retry budget for the monitor's own fetches (index + sitemap).
    #: The default (one attempt, no retries) is the pre-resilience
    #: behaviour; chaos runs raise it to ride out transient faults.
    retry: RetryPolicy = field(default_factory=RetryPolicy.none)


@dataclass(frozen=True)
class SnapshotFeatures:
    """Everything one weekly sample records about one FQDN."""

    fqdn: Name
    at: datetime
    dns_status: str
    cname_chain: Tuple[str, ...]
    addresses: Tuple[str, ...]
    fetch_status: str
    http_status: int = 0
    html_hash: str = ""
    html_size: int = 0
    title: str = ""
    lang: str = ""
    generator: str = ""
    keywords: FrozenSet[str] = frozenset()
    meta_keywords: Tuple[str, ...] = ()
    external_urls: Tuple[str, ...] = ()
    script_srcs: Tuple[str, ...] = ()
    #: Relative links pointing at downloadable executables (Section 5.4).
    download_paths: Tuple[str, ...] = ()
    onclick_count: int = 0
    has_meta_keywords: bool = False
    sitemap_size: int = -1  # -1: not fetched / unavailable
    sitemap_count: int = -1
    sitemap_sample: Tuple[str, ...] = ()
    #: Fetch attempts the index sample took (1 = first try; excluded
    #: from :meth:`state_key` so retries never fabricate new states).
    attempts: int = 1

    @property
    def reachable(self) -> bool:
        """Whether the index fetch returned a 2xx page."""
        return self.fetch_status == FetchStatus.OK.value and 200 <= self.http_status < 300

    def state_key(self) -> Tuple:
        """The identity of this observable state (dedup key).

        Timestamps are excluded; sitemap values are included so a
        sitemap-only change still registers as a new state.
        """
        return (
            self.dns_status, self.cname_chain, self.addresses,
            self.fetch_status, self.http_status, self.html_hash,
            self.sitemap_size, self.sitemap_count,
        )


@dataclass
class StoredState:
    """One deduplicated content state and its observation window."""

    features: SnapshotFeatures
    first_seen: datetime
    last_seen: datetime
    observations: int = 1


class SnapshotStore:
    """Per-FQDN history of deduplicated states."""

    def __init__(self) -> None:
        self._history: Dict[Name, List[StoredState]] = {}

    def record(self, features: SnapshotFeatures) -> Tuple[bool, Optional[SnapshotFeatures]]:
        """Store a sample; returns ``(is_new_state, previous_features)``.

        ``previous_features`` is the state that was current before this
        sample (``None`` on first sight).
        """
        history = self._history.setdefault(features.fqdn, [])
        if history and history[-1].features.state_key() == features.state_key():
            current = history[-1]
            current.last_seen = features.at
            current.observations += 1
            return False, history[-2].features if len(history) > 1 else None
        previous = history[-1].features if history else None
        history.append(
            StoredState(features=features, first_seen=features.at, last_seen=features.at)
        )
        return True, previous

    def history(self, fqdn: Name) -> List[StoredState]:
        return list(self._history.get(fqdn, []))

    def latest(self, fqdn: Name) -> Optional[SnapshotFeatures]:
        history = self._history.get(fqdn)
        return history[-1].features if history else None

    def fqdns(self) -> List[Name]:
        return sorted(self._history)

    def state_count(self) -> int:
        """Total stored states across all FQDNs."""
        return sum(len(h) for h in self._history.values())


class WeeklyMonitor:
    """Takes the weekly samples and feeds the store."""

    def __init__(
        self,
        client: HttpClient,
        store: Optional[SnapshotStore] = None,
        config: Optional[MonitorConfig] = None,
    ):
        self._client = client
        self.store = store if store is not None else SnapshotStore()
        self.config = config or MonitorConfig()
        self.samples_taken = 0
        self.sitemap_fetches = 0
        #: (fqdn, fetch_status) pairs whose *final* sample this sweep
        #: still ended in a transient failure — retries exhausted.  The
        #: pipeline's sweep stage turns these into quarantine records.
        self.last_sweep_failures: List[Tuple[Name, str]] = []

    def sweep(
        self, fqdns: Sequence[Name], at: datetime
    ) -> List[Tuple[SnapshotFeatures, Optional[SnapshotFeatures]]]:
        """Sample every FQDN once.

        Returns ``(new_state, previous_state)`` pairs for every FQDN
        whose observable state changed this week — the input unit for
        change detection.
        """
        changed: List[Tuple[SnapshotFeatures, Optional[SnapshotFeatures]]] = []
        for batch_changed in self.sweep_iter(fqdns, at):
            changed.extend(batch_changed)
        return changed

    def sweep_iter(
        self, fqdns: Sequence[Name], at: datetime, batch_size: Optional[int] = None
    ) -> Iterator[List[Tuple[SnapshotFeatures, Optional[SnapshotFeatures]]]]:
        """Sample in fixed-size batches, yielding each batch's changes.

        Batches are the unit a parallel executor will shard: each batch
        touches a disjoint slice of the monitored set, so batches can
        run concurrently once the store is partitioned.  Yields one
        (possibly empty) changed-pairs list per batch; iterating to
        exhaustion is equivalent to :meth:`sweep`.
        """
        size = batch_size if batch_size is not None else self.config.sweep_batch_size
        if size <= 0:
            raise ValueError(f"batch_size must be positive, got {size}")
        self.last_sweep_failures = []
        for start in range(0, len(fqdns), size):
            changed: List[Tuple[SnapshotFeatures, Optional[SnapshotFeatures]]] = []
            for fqdn in fqdns[start:start + size]:
                features = self.sample(fqdn, at)
                if features.fetch_status in TRANSIENT_SAMPLE_STATUSES:
                    # Retries exhausted and the state is still unknown:
                    # keep the last trusted state instead of recording a
                    # phantom change, and hand the FQDN to quarantine.
                    self.last_sweep_failures.append((fqdn, features.fetch_status))
                    continue
                is_new, previous = self.store.record(features)
                if is_new:
                    changed.append((features, previous))
            yield changed

    def sample(self, fqdn: Name, at: datetime) -> SnapshotFeatures:
        """One weekly sample: index fetch, plus sitemap when warranted."""
        self.samples_taken += 1
        headers = {"User-Agent": self.config.user_agent}
        outcome = self._client.fetch(
            fqdn, path="/", scheme="http", at=at, headers=headers,
            retry=self.config.retry,
        )
        resolution = outcome.resolution
        features = SnapshotFeatures(
            fqdn=fqdn,
            at=at,
            dns_status=resolution.status.value if resolution else "ERROR",
            cname_chain=tuple(resolution.cname_chain) if resolution else (),
            addresses=tuple(resolution.addresses) if resolution else (),
            fetch_status=outcome.status.value,
            attempts=outcome.attempts,
        )
        if not outcome.ok:
            if outcome.response is not None:
                # 5xx/429: record the code so the error class survives
                # into the stored state even though no body is trusted.
                features = replace(features, http_status=outcome.response.status)
            return features
        body = outcome.response.body
        body_hash = hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]
        previous = self.store.latest(fqdn)
        if previous is not None and previous.html_hash == body_hash:
            # Unchanged content: reuse the parsed features rather than
            # re-parsing (the stored state dedup makes this the common
            # case, as in a real pipeline's content-addressed store).
            features = replace(
                previous, at=at,
                dns_status=features.dns_status,
                cname_chain=features.cname_chain,
                addresses=features.addresses,
                fetch_status=features.fetch_status,
                attempts=features.attempts,
            )
        else:
            features = self._with_html_features(features, outcome.response.status, body)
        # Second (conditional) request: the sitemap, fetched only when
        # the page is up — the paper's "if we cannot establish an abuse
        # with confidence" follow-up, bounded to 2 requests per FQDN.
        if previous is None or previous.html_hash != features.html_hash or previous.sitemap_count < 0:
            features = self._with_sitemap_features(features, fqdn, at, headers)
        else:
            features = replace(
                features,
                sitemap_size=previous.sitemap_size,
                sitemap_count=previous.sitemap_count,
                sitemap_sample=previous.sitemap_sample,
            )
        return features

    # -- feature builders ------------------------------------------------------------

    def _with_html_features(
        self, features: SnapshotFeatures, status: int, body: str
    ) -> SnapshotFeatures:
        document = parse_html(body)
        external = [u for u in document.all_urls() if u.startswith(("http://", "https://"))]
        downloads = tuple(
            link.href
            for link in document.links
            if link.href.startswith("/")
            and link.href.lower().endswith((".apk", ".exe", ".msi", ".dmg"))
        )
        return replace(
            features,
            http_status=status,
            html_hash=hashlib.sha256(body.encode("utf-8")).hexdigest()[:16],
            html_size=len(body.encode("utf-8")),
            title=document.title,
            lang=document.lang,
            generator=document.generator,
            keywords=extract_keywords(document),
            meta_keywords=tuple(document.meta_keywords),
            external_urls=tuple(external[: self.config.external_url_cap]),
            script_srcs=tuple(s.src for s in document.scripts if s.src),
            download_paths=downloads,
            onclick_count=sum(1 for link in document.links if link.onclick),
            has_meta_keywords="keywords" in document.meta,
        )

    def _with_sitemap_features(
        self, features: SnapshotFeatures, fqdn: Name, at: datetime, headers: Dict[str, str]
    ) -> SnapshotFeatures:
        self.sitemap_fetches += 1
        outcome = self._client.fetch(
            fqdn, path="/sitemap.xml", scheme="http", at=at, headers=headers,
            retry=self.config.retry,
        )
        if not outcome.ok:
            return features
        sitemap = parse_sitemap(outcome.response.body)
        return replace(
            features,
            sitemap_size=outcome.response.body_size(),
            sitemap_count=len(sitemap),
            sitemap_sample=tuple(sitemap.urls()[: self.config.sitemap_sample_cap]),
        )
