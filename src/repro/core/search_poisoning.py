"""Search poisoning measurement (Section 5.2.3's consequence).

The paper explains *why* the SEO works — hijacked subdomains inherit
parent-domain reputation, so doorway pages rank.  With a search engine
in the simulation, the outcome is measurable: for gambling queries, how
many of the top results are hijacked domains, and how much the victim's
inherited authority boosts the attacker's pages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import List, Sequence, Set, Tuple

from repro.core.detection import AbuseDataset
from repro.search.engine import RankedResult, SearchEngine

#: The query mix Indonesian gambling SEO targets (Table 5 vocabulary).
DEFAULT_QUERIES: Tuple[str, ...] = (
    "slot gacor",
    "judi online terpercaya",
    "daftar situs slot",
    "agen bola sbobet",
    "adult videos",
)


@dataclass
class QueryPoisoning:
    """Poisoning of one query's results."""

    query: str
    results: List[RankedResult]
    poisoned_ranks: List[int]  # 1-based ranks held by hijacked domains

    @property
    def poisoned_share(self) -> float:
        return len(self.poisoned_ranks) / len(self.results) if self.results else 0.0

    @property
    def best_poisoned_rank(self) -> int:
        return min(self.poisoned_ranks) if self.poisoned_ranks else 0


@dataclass
class PoisoningReport:
    """Search poisoning across the query mix."""

    queries: List[QueryPoisoning]
    indexed_pages: int
    indexed_hosts: int

    @property
    def mean_poisoned_share(self) -> float:
        if not self.queries:
            return 0.0
        return sum(q.poisoned_share for q in self.queries) / len(self.queries)

    def rows(self) -> List[Tuple[str, int, str, int]]:
        return [
            (
                q.query,
                len(q.poisoned_ranks),
                f"{q.poisoned_share * 100:.0f}%",
                q.best_poisoned_rank,
            )
            for q in self.queries
        ]


def measure_poisoning(
    engine: SearchEngine,
    dataset: AbuseDataset,
    at: datetime,
    queries: Sequence[str] = DEFAULT_QUERIES,
    top_k: int = 10,
) -> PoisoningReport:
    """Run the query mix and mark results on hijacked domains."""
    hijacked: Set[str] = set(dataset.abused_fqdns())
    out: List[QueryPoisoning] = []
    for query in queries:
        results = engine.search(query, at, limit=top_k)
        poisoned = [
            rank
            for rank, result in enumerate(results, start=1)
            if result.fqdn in hijacked
        ]
        out.append(QueryPoisoning(query=query, results=results, poisoned_ranks=poisoned))
    return PoisoningReport(
        queries=out,
        indexed_pages=engine.index.page_count,
        indexed_hosts=engine.index.host_count,
    )
