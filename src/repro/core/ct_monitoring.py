"""CT monitoring as a countermeasure, evaluated (Section 5.6.3).

The paper argues CT monitoring is the effective low-cost tripwire:
whenever a hijacker issues a certificate for a taken-over subdomain,
a monitoring owner is alerted "typically within a few hours" — but the
detection rests on the attacker's choice to obtain a certificate at
all.  This module measures both halves over a finished scenario: what
share of hijacks would have tripped a CT monitor, and with what latency
relative to the takeover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.dns.names import Name
from repro.pki.ct_log import CTLog
from repro.world.ground_truth import GroundTruthLog


@dataclass(frozen=True)
class CtAlert:
    """The first CT-visible issuance after one hijack."""

    fqdn: Name
    latency_days: float
    issuer: str


@dataclass
class CtMonitoringReport:
    """Effectiveness of hypothetical CT monitoring by every owner."""

    total_hijacks: int
    alerted: List[CtAlert]

    @property
    def alerted_count(self) -> int:
        return len(self.alerted)

    @property
    def coverage(self) -> float:
        """Share of hijacks a CT monitor would have caught at all."""
        return self.alerted_count / self.total_hijacks if self.total_hijacks else 0.0

    @property
    def median_latency_days(self) -> Optional[float]:
        if not self.alerted:
            return None
        ordered = sorted(alert.latency_days for alert in self.alerted)
        return ordered[len(ordered) // 2]

    def latency_histogram(self, bin_days: float = 7.0) -> List[Tuple[str, int]]:
        bins = {}
        for alert in self.alerted:
            low = int(alert.latency_days // bin_days) * int(bin_days)
            key = f"{low}-{low + int(bin_days)}d"
            bins[key] = bins.get(key, 0) + 1
        return sorted(bins.items(), key=lambda item: int(item[0].split("-")[0]))


def evaluate_ct_monitoring(
    ground_truth: GroundTruthLog, ct_log: CTLog
) -> CtMonitoringReport:
    """For every actual hijack, find the first in-window issuance.

    An alert exists when a certificate covering the hijacked FQDN was
    logged between takeover and remediation — exactly what an owner
    subscribed to a CT monitor for their apex would have seen.
    """
    alerts: List[CtAlert] = []
    records = ground_truth.all_records()
    for record in records:
        best: Optional[CtAlert] = None
        for entry in ct_log.entries_for(record.fqdn):
            if entry.logged_at < record.taken_over_at:
                continue
            if record.remediated_at is not None and entry.logged_at > record.remediated_at:
                continue
            latency = (entry.logged_at - record.taken_over_at).total_seconds() / 86_400.0
            if best is None or latency < best.latency_days:
                best = CtAlert(
                    fqdn=record.fqdn, latency_days=latency,
                    issuer=entry.certificate.issuer,
                )
        if best is not None:
            alerts.append(best)
    return CtMonitoringReport(total_hijacks=len(records), alerted=alerts)
