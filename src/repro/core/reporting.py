"""Plain-text rendering of tables and histograms.

Benchmarks print each reproduced table/figure through these helpers so
the output reads like the paper's artifacts.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: Optional[str] = None
) -> str:
    """Render an aligned monospace table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_histogram(
    bins: Sequence[Tuple[str, int]], title: Optional[str] = None, width: int = 40
) -> str:
    """Render labelled counts as a horizontal ASCII bar chart."""
    lines: List[str] = []
    if title:
        lines.append(title)
    top = max((count for _, count in bins), default=0)
    label_width = max((len(label) for label, _ in bins), default=0)
    for label, count in bins:
        bar = "#" * (int(count / top * width) if top else 0)
        lines.append(f"{label.ljust(label_width)}  {str(count).rjust(6)}  {bar}")
    return "\n".join(lines)


def render_series(
    points: Sequence[Tuple[str, float]], title: Optional[str] = None
) -> str:
    """Render an (x, y) series as aligned rows."""
    lines: List[str] = []
    if title:
        lines.append(title)
    for x, y in points:
        lines.append(f"{str(x).ljust(12)} {_fmt(y)}")
    return "\n".join(lines)


def percent(value: float, digits: int = 1) -> str:
    """Format a ratio as a percentage string."""
    return f"{value * 100:.{digits}f}%"


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:,.2f}"
    return str(value)
