"""Keyword extraction and topic classification.

Section 3.2 extracts 56,946 keywords (average 2.72 per page) from index
HTML to classify pages; Section 5.2.1 tabulates meta-tag keywords from
keyword stuffing.  Extraction here mirrors that: tokenize the visible
text, drop stopwords, keep the most frequent unigrams and bigrams.
Topic classification (Figure 3) scores the extracted keywords against
per-topic vocabularies.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.content.vocab import STOPWORDS, Topic, keywords_for_topic
from repro.web.html import HtmlDocument

_TOKEN_RE = re.compile(r"[\wÀ-ɏ฀-๿぀-ヿ一-鿿]+")

#: How many keywords to keep per page; the paper's average per-page
#: keyword count is small (2.72) because signatures keep only the most
#: discriminative terms, but extraction starts wider.
DEFAULT_KEYWORD_LIMIT = 12


def tokenize(text: str) -> List[str]:
    """Lower-cased word tokens, Unicode-aware."""
    return [t.lower() for t in _TOKEN_RE.findall(text)]


def extract_keywords(
    document: HtmlDocument, limit: int = DEFAULT_KEYWORD_LIMIT
) -> FrozenSet[str]:
    """The page's characteristic keywords (unigrams and bigrams).

    Meta keywords count double: stuffing makes them highly indicative.
    """
    tokens = tokenize(document.visible_text())
    tokens += tokenize(document.meta.get("description", ""))
    counts: Counter = Counter()
    kept = [t for t in tokens if _keepable(t)]
    counts.update(kept)
    for first, second in zip(kept, kept[1:]):
        counts[f"{first} {second}"] += 1
    for keyword in document.meta_keywords:
        if _keepable(keyword):
            counts[keyword] += 2
    if not counts:
        return frozenset()
    top = [kw for kw, _ in counts.most_common(limit)]
    return frozenset(top)


def _keepable(token: str) -> bool:
    if token in STOPWORDS:
        return False
    if token.isdigit():
        return False
    if token.isascii():
        return len(token) >= 3
    return len(token) >= 2  # CJK/Thai words are short


# -- topic classification (Figure 3) -----------------------------------------------

_ABUSE_TOPICS = (
    Topic.GAMBLING, Topic.ADULT, Topic.PHARMA, Topic.JAPANESE_SEO,
    Topic.GENERIC_SPAM,
)

_TOPIC_VOCAB: Dict[Topic, FrozenSet[str]] = {
    topic: frozenset(
        token
        for phrase in keywords_for_topic(topic)
        for token in tokenize(phrase)
    )
    for topic in list(_ABUSE_TOPICS) + [Topic.BENIGN]
}


def topic_scores(keywords: Iterable[str]) -> Dict[Topic, int]:
    """Vocabulary-overlap score per topic for a keyword set."""
    tokens = set()
    for keyword in keywords:
        tokens.update(keyword.split(" "))
    return {
        topic: len(tokens & vocabulary)
        for topic, vocabulary in _TOPIC_VOCAB.items()
    }


def classify_topic(keywords: Iterable[str]) -> Optional[Topic]:
    """The best-scoring *abuse* topic, or ``None`` if nothing matches.

    Benign vocabulary dominating the page vetoes an abuse label.
    """
    scores = topic_scores(keywords)
    best_topic = None
    best_score = 0
    for topic in _ABUSE_TOPICS:
        if scores[topic] > best_score:
            best_topic, best_score = topic, scores[topic]
    if best_topic is None:
        return None
    if scores[Topic.BENIGN] >= best_score * 2:
        return None
    return best_topic


def abuse_vocabulary_hits(keywords: Iterable[str]) -> int:
    """Total overlap with any abuse vocabulary (analyst triage signal)."""
    scores = topic_scores(keywords)
    return sum(scores[topic] for topic in _ABUSE_TOPICS)


def keyword_frequency_table(
    keyword_sets: Sequence[Iterable[str]], top: int = 12
) -> List[Tuple[str, int]]:
    """Table 1 / Table 5: the most frequent keywords across pages."""
    counts: Counter = Counter()
    for keywords in keyword_sets:
        counts.update(keywords)
    return counts.most_common(top)
