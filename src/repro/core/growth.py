"""Figure 1: monitored vs hijacked cloud-hosted domains over time."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.collection import FqdnCollector
from repro.core.detection import AbuseDataset


@dataclass(frozen=True)
class GrowthPoint:
    """One month of the Figure 1 series."""

    month: str
    monitored: int
    cumulative_abused: int


def growth_series(collector: FqdnCollector, dataset: AbuseDataset) -> List[GrowthPoint]:
    """The monthly Figure 1 series: monitored set and cumulative abuses.

    Missing months (no collector refresh that month) carry the last
    known value forward, as a plot would.
    """
    monitored: Dict[str, int] = dict(collector.monthly_growth())
    abused: Dict[str, int] = dict(dataset.monthly_cumulative)
    months = sorted(set(monitored) | set(abused))
    points: List[GrowthPoint] = []
    last_monitored = 0
    last_abused = 0
    for month in months:
        last_monitored = monitored.get(month, last_monitored)
        last_abused = abused.get(month, last_abused)
        points.append(
            GrowthPoint(month=month, monitored=last_monitored, cumulative_abused=last_abused)
        )
    return points


def growth_factor(points: List[GrowthPoint]) -> float:
    """Final/initial monitored-set ratio (the paper's set ~doubled)."""
    nonzero = [p.monitored for p in points if p.monitored > 0]
    if len(nonzero) < 2:
        return 1.0
    return nonzero[-1] / nonzero[0]
