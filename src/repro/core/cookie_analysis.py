"""Stolen-cookie correlation (Section 5.5).

Server-side cookie exfiltration leaves no client-visible trace, so the
paper searched darknet leak feeds for authentication cookies that
surfaced *during* the window in which the corresponding domain was
hijacked (83 cookies across 3 subdomains from 53 victim IPs).  This
module runs the same join between the darknet feed and the abuse
dataset's episode windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from repro.core.detection import AbuseDataset
from repro.intel.darknet import CookieLeak, DarknetFeed


@dataclass
class CookieTheftReport:
    """Leaked authentication cookies matched to hijack windows."""

    matched_leaks: List[CookieLeak]
    unique_cookies: int
    affected_subdomains: Set[str]
    victim_ips: Set[str]

    @property
    def total(self) -> int:
        return len(self.matched_leaks)


def correlate_cookie_leaks(
    dataset: AbuseDataset, darknet: DarknetFeed
) -> CookieTheftReport:
    """Match darknet authentication-cookie leaks to abuse episodes.

    A leak counts only if its domain is in the abuse dataset and the
    leak timestamp falls inside one of the domain's abuse episodes —
    the paper's "in the timeframe in which the corresponding dangling
    domains were detected by us as hijacked".
    """
    matched: List[CookieLeak] = []
    cookies: Set[str] = set()
    subdomains: Set[str] = set()
    ips: Set[str] = set()
    for leak in darknet.all_leaks():
        if not leak.cookie.is_authentication:
            continue
        record = dataset.get(leak.domain)
        if record is None:
            continue
        in_window = any(
            episode.started_at <= leak.leaked_at
            and (episode.ended_at is None or leak.leaked_at <= episode.ended_at)
            for episode in record.episodes
        )
        if not in_window:
            continue
        matched.append(leak)
        cookies.add(f"{leak.cookie.domain}:{leak.cookie.name}:{leak.cookie.value}")
        subdomains.add(leak.domain)
        ips.add(leak.victim_ip)
    return CookieTheftReport(
        matched_leaks=matched,
        unique_cookies=len(cookies),
        affected_subdomains=subdomains,
        victim_ips=ips,
    )
