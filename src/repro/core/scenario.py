"""End-to-end scenario driver.

``run_scenario`` builds one simulated Internet, populates it, and runs
the paper's three-year loop week by week on the stage-based
:class:`~repro.pipeline.engine.PipelineEngine`: the legitimate world
evolves, attacker campaigns hunt and hijack, users browse (and get
their cookies stolen), the collector keeps expanding the monitored set,
the monitor samples every monitored FQDN in batches, and the detector
turns changes into abuse records.  ``build_scenario`` exposes the
composed-but-unrun engine for callers that want to step, checkpoint or
resume the run themselves.  The returned :class:`ScenarioResult`
carries every component, so analyses can read both the *measured* view
(the detector's dataset) and the *ground-truth* view (the hijack log) —
enabling the precision/recall scoring the paper itself could not do.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import List, Optional

from repro.attacker.campaign import CampaignOrchestrator
from repro.attacker.groups import AttackerGroup, make_default_groups
from repro.attacker.monetization import MonetizationEcosystem
from repro.core.collection import FqdnCollector
from repro.core.detection import AbuseDataset, AbuseDetector, DetectorConfig
from repro.core.malware_analysis import BinaryHarvester
from repro.core.notifications import NotificationCampaign
from repro.core.monitoring import MonitorConfig, WeeklyMonitor
from repro.core.stages import (
    ChangeDetectStage,
    CollectorRefreshStage,
    DetectStage,
    HarvestStage,
    MonitorSweepStage,
    NotifyStage,
    OrchestratorStage,
    UsersStage,
    WorldStage,
    candidate_names,
)
from repro.faults.plan import FaultConfig, FaultPlan
from repro.faults.retry import CircuitBreaker, RetryPolicy
from repro.parallel.executor import ProcessExecutor, SerialExecutor, SweepExecutor
from repro.parallel.supervisor import SupervisorConfig
from repro.pipeline.context import QuarantineRecord
from repro.pipeline.engine import PipelineEngine
from repro.pipeline.store import CheckpointStore
from repro.pipeline.metrics import PipelineMetrics
from repro.sim.clock import DEFAULT_START, SimClock
from repro.sim.rng import RngStreams
from repro.world.ground_truth import GroundTruthLog
from repro.world.internet import Internet
from repro.world.lifecycle import LifecycleConfig, WorldEngine
from repro.world.organizations import Organization
from repro.world.population import PopulationBuilder, PopulationConfig
from repro.world.users import UserPopulation


@dataclass
class ScenarioConfig:
    """All the knobs of one simulated world run."""

    seed: int = 42
    weeks: int = 156
    start: datetime = DEFAULT_START
    population: PopulationConfig = field(default_factory=PopulationConfig)
    lifecycle: LifecycleConfig = field(default_factory=LifecycleConfig)
    detector: DetectorConfig = field(default_factory=DetectorConfig)
    monitor: MonitorConfig = field(default_factory=MonitorConfig)
    attacker_groups: int = 14
    syndicate_cells: int = 4
    users_per_org: int = 2
    user_org_share: float = 0.35
    browse_visits_per_user: int = 2
    edge_icmp_drop_rate: float = 0.28
    #: Countermeasure knobs (Section 7 recommendations).
    reregistration_cooldown: timedelta = timedelta(0)
    randomize_names: bool = False
    #: How often the collector re-ingests the passive-DNS feed.
    collector_refresh_weeks: int = 4
    #: Run the notification campaign: newly detected abuses trigger
    #: victim notifications, accelerating remediation (Section 1).
    notify_owners: bool = False
    #: Deterministic fault injection (chaos runs); quiescent by default.
    faults: FaultConfig = field(default_factory=FaultConfig)
    #: Consecutive failures before an edge's circuit trips; the breaker
    #: half-opens after one simulated week.
    breaker_threshold: int = 5
    #: Retry budget for a stage tick that raises (1 = fail immediately).
    stage_retry_attempts: int = 1
    #: Sweep workers: 1 runs the serial baseline executor; N > 1 shards
    #: the monitored list across N forked workers per weekly sweep,
    #: merged deterministically in shard order (fault-free runs export
    #: byte-identical digests for any worker count).
    workers: int = 1
    #: Churn-proportional sweeps: the monitor computes each week's
    #: dirty set from the world's revision journal and extends clean
    #: names' windows through its touch ledger instead of re-sampling
    #: them.  Exported digests stay byte-identical to a full sweep's
    #: for any seed and worker count.
    incremental: bool = False
    #: Supervisor wall-clock budget per shard worker, in seconds.
    #: ``None`` auto-selects: a deadline is only needed when hang
    #: faults are injected (workers cannot hang on their own in the
    #: simulation), in which case a short one is chosen.
    shard_deadline: Optional[float] = None
    #: Supervisor re-dispatches of a failed shard span before it is
    #: bisected toward quarantine.
    shard_retries: int = 2

    @classmethod
    def tiny(cls, seed: int = 42) -> "ScenarioConfig":
        """A seconds-fast preset for unit/integration tests."""
        return cls(
            seed=seed,
            weeks=30,
            population=PopulationConfig(
                n_enterprises=16, n_universities=6, n_government=4, n_popular=12
            ),
            lifecycle=LifecycleConfig(weekly_release_rate=0.020),
            attacker_groups=6,
            syndicate_cells=2,
            users_per_org=1,
            user_org_share=0.5,
        )

    @classmethod
    def small(cls, seed: int = 42) -> "ScenarioConfig":
        """A laptop-fast preset for tests: ~1 simulated year, small world."""
        return cls(
            seed=seed,
            weeks=52,
            population=PopulationConfig(
                n_enterprises=40, n_universities=12, n_government=10, n_popular=30
            ),
            lifecycle=LifecycleConfig(weekly_release_rate=0.010),
            attacker_groups=8,
            syndicate_cells=3,
            users_per_org=1,
        )


@dataclass
class ScenarioResult:
    """Everything one finished run produced."""

    config: ScenarioConfig
    internet: Internet
    organizations: List[Organization]
    ground_truth: GroundTruthLog
    groups: List[AttackerGroup]
    orchestrator: CampaignOrchestrator
    engine: WorldEngine
    collector: FqdnCollector
    monitor: WeeklyMonitor
    detector: AbuseDetector
    users: UserPopulation
    harvester: Optional[BinaryHarvester] = None
    notifications: Optional["NotificationCampaign"] = None
    monetization: Optional[MonetizationEcosystem] = None
    weeks_run: int = 0
    #: Per-stage instrumentation of the run (set by ``run_scenario``).
    metrics: Optional[PipelineMetrics] = None
    #: The fault plan driving chaos runs (``None`` = healthy Internet).
    fault_plan: Optional[FaultPlan] = None
    #: Dead-letter log of quarantined FQDNs / failed stage ticks.
    dead_letters: List[QuarantineRecord] = field(default_factory=list)
    #: The sweep executor the monitor stage ran on (serial or sharded).
    executor: Optional[SweepExecutor] = None

    @property
    def dataset(self) -> AbuseDataset:
        """The detector's abuse dataset (the paper's measured output)."""
        return self.detector.dataset

    @property
    def end(self) -> datetime:
        return self.internet.clock.now


def build_scenario(config: Optional[ScenarioConfig] = None) -> PipelineEngine:
    """Construct the world and compose the weekly pipeline, unrun.

    The returned engine's ``payload`` is the :class:`ScenarioResult`;
    ``engine.run()`` executes all configured weeks, ``engine.step()``
    executes one, and ``engine.checkpoint()`` snapshots the run for a
    later :meth:`~repro.pipeline.engine.PipelineEngine.restore`.
    """
    config = config or ScenarioConfig()
    streams = RngStreams(config.seed)
    clock = SimClock(config.start, config.start + timedelta(weeks=config.weeks))
    fault_plan = None
    breaker = None
    if config.faults.enabled:
        # One seed replays the whole storm: the fault streams derive
        # from the scenario seed unless an independent fault seed pins
        # the weather while the world varies.
        fault_streams = (
            RngStreams(config.faults.fault_seed)
            if config.faults.fault_seed is not None
            else streams.fork("faults")
        )
        fault_plan = FaultPlan(config.faults, fault_streams)
        # The breaker guards the *data plane*; worker-only fault runs
        # (crash/hang/poison) leave it out so the fused sampling path
        # stays eligible and a recovered sweep's exports are
        # byte-identical to a fault-free run's.
        if config.faults.any_active:
            breaker = CircuitBreaker(failure_threshold=config.breaker_threshold)
    # The world is built on a healthy Internet — chaos begins only once
    # the weekly pipeline starts ticking.  This keeps the bootstrap
    # (population, initial collector ingest) identical between chaos
    # and fault-free runs of the same world seed.
    build_guard = fault_plan.suppressed() if fault_plan is not None else nullcontext()
    with build_guard:
        internet = Internet(
            streams,
            clock,
            edge_icmp_drop_rate=config.edge_icmp_drop_rate,
            reregistration_cooldown=config.reregistration_cooldown,
            randomize_names=config.randomize_names,
            fault_plan=fault_plan,
            breaker=breaker,
        )
        builder = PopulationBuilder(internet)
        organizations = builder.build(config.population, clock.now)
        ground_truth = GroundTruthLog()
        engine = WorldEngine(
            internet, organizations, builder, config.population, ground_truth,
            config.lifecycle,
        )
        groups = make_default_groups(
            streams, internet.shortener, config.attacker_groups,
            config.syndicate_cells,
        )
        orchestrator = CampaignOrchestrator(
            internet, groups, ground_truth, organizations
        )
        monetization = MonetizationEcosystem(streams.get("monetization"))
        users = UserPopulation(
            internet.client, streams.get("users"), monetization=monetization
        )
        user_rng = streams.get("user-assignment")
        for org in organizations:
            if user_rng.random() < config.user_org_share:
                users.add_users_for_org(org, config.users_per_org, clock.now)

        collector = FqdnCollector(
            internet.resolver, internet.catalog.suffixes,
            internet.catalog.cloud_ips,
        )
        collector.ingest(candidate_names(internet, organizations), clock.now)
    monitor = WeeklyMonitor(
        internet.client,
        config=config.monitor,
        journal=internet.revisions,
        incremental=config.incremental,
    )
    # Incremental sweeps ride the sharded executor's fused path even at
    # one worker (a single inline shard is byte-identical to serial);
    # worker-fault runs need it too — only the supervised executor can
    # retry, bisect and quarantine dying workers.
    shard_deadline = config.shard_deadline
    if shard_deadline is None and config.faults.worker_hang_rate > 0:
        # Hung workers exist only by injection here, and an injected
        # hang never recovers — a short deadline reaps it quickly
        # without ever clipping a healthy worker (the simulation does
        # no real I/O, so honest shards finish in milliseconds).
        shard_deadline = 5.0
    executor: SweepExecutor = (
        ProcessExecutor(
            workers=config.workers,
            supervisor=SupervisorConfig(
                shard_deadline=shard_deadline,
                max_shard_retries=config.shard_retries,
            ),
        )
        if config.workers > 1 or config.incremental or config.faults.worker_active
        else SerialExecutor()
    )
    detector = AbuseDetector(monitor.store, config.detector, whois=internet.whois)

    harvester = BinaryHarvester(internet.client, internet.virustotal)
    notifications = (
        NotificationCampaign(
            organizations, ground_truth, internet.events,
            streams.get("notifications"),
        )
        if config.notify_owners
        else None
    )
    result = ScenarioResult(
        config=config, internet=internet, organizations=organizations,
        ground_truth=ground_truth, groups=groups, orchestrator=orchestrator,
        engine=engine, collector=collector, monitor=monitor, detector=detector,
        users=users, harvester=harvester, notifications=notifications,
        monetization=monetization, fault_plan=fault_plan, executor=executor,
    )

    stages = [
        WorldStage(engine),
        OrchestratorStage(orchestrator),
        UsersStage(users, config.browse_visits_per_user),
        CollectorRefreshStage(
            collector, internet, organizations, config.collector_refresh_weeks
        ),
        MonitorSweepStage(monitor, collector, executor=executor),
        ChangeDetectStage(),
        DetectStage(detector),
        NotifyStage(notifications),
        HarvestStage(harvester, detector, monitor),
    ]
    return PipelineEngine(
        stages, clock, streams, payload=result,
        stage_retry=RetryPolicy(max_attempts=max(1, config.stage_retry_attempts)),
        # The weekly loop must survive a hostile Internet: a failing
        # stage dead-letters its tick, it never aborts the run.
        on_stage_error="degrade",
    )


def run_scenario(
    config: Optional[ScenarioConfig] = None,
    checkpoint_store: Optional[CheckpointStore] = None,
    checkpoint_every: int = 4,
    resume: bool = False,
) -> ScenarioResult:
    """Run one full world from construction to the final week.

    With a ``checkpoint_store`` the engine durably snapshots itself
    every ``checkpoint_every`` weeks; ``resume=True`` restores the
    newest *intact* checkpoint from the store (torn or corrupt files
    are skipped — see :attr:`CheckpointStore.last_recovery`) and runs
    the remaining weeks, falling back to a fresh build when the store
    holds nothing usable.  A resumed run finishes with the same final
    state the uninterrupted run would have had: the checkpoint carries
    the entire engine, world and RNG streams.
    """
    pipeline: Optional[PipelineEngine] = None
    if resume:
        if checkpoint_store is None:
            raise ValueError("resume=True requires a checkpoint_store")
        checkpoint = checkpoint_store.load_latest()
        if checkpoint is not None:
            pipeline = PipelineEngine.restore(checkpoint)
    if pipeline is None:
        pipeline = build_scenario(config)
    if checkpoint_store is not None:
        pipeline.run(
            checkpoint_every=checkpoint_every,
            on_checkpoint=checkpoint_store.save,
        )
    else:
        pipeline.run()
    result: ScenarioResult = pipeline.payload
    result.weeks_run = pipeline.week_index
    result.metrics = pipeline.metrics
    result.dead_letters = pipeline.dead_letters
    return result
