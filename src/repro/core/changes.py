"""Change detection between consecutive snapshots (Section 3.2).

The paper compares weekly samples across several axes: DNS changes,
HTTP response changes, sitemap changes (appearance, or a ~100 KB size
jump), language changes and keyword changes.  A change on its own is
*not* abuse — most changes are legitimate — but changes gate which
snapshots enter signature extraction and matching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional

from repro.core.monitoring import SnapshotFeatures

#: Sitemap size jump treated as significant (the paper's 100 KB).
SITEMAP_JUMP_BYTES = 100 * 1024


@dataclass(frozen=True)
class ChangeEvent:
    """What changed between two consecutive states of one FQDN."""

    fqdn: str
    previous: Optional[SnapshotFeatures]
    current: SnapshotFeatures
    dns_changed: bool = False
    reactivated: bool = False
    went_dark: bool = False
    content_changed: bool = False
    language_changed: bool = False
    sitemap_appeared: bool = False
    sitemap_jumped: bool = False
    keywords_changed: bool = False
    first_observation: bool = False

    @property
    def any_change(self) -> bool:
        return any(
            (
                self.dns_changed, self.reactivated, self.went_dark,
                self.content_changed, self.language_changed,
                self.sitemap_appeared, self.sitemap_jumped,
                self.keywords_changed,
            )
        )

    @property
    def change_kinds(self) -> FrozenSet[str]:
        """Symbolic names of the triggered change axes."""
        kinds = []
        for name in (
            "dns_changed", "reactivated", "went_dark", "content_changed",
            "language_changed", "sitemap_appeared", "sitemap_jumped",
            "keywords_changed",
        ):
            if getattr(self, name):
                kinds.append(name)
        return frozenset(kinds)


def detect_changes(
    previous: Optional[SnapshotFeatures], current: SnapshotFeatures
) -> ChangeEvent:
    """Compare two consecutive states of the same FQDN."""
    if previous is None:
        return ChangeEvent(
            fqdn=current.fqdn, previous=None, current=current,
            first_observation=True,
        )
    dns_changed = (
        previous.cname_chain != current.cname_chain
        or previous.addresses != current.addresses
        or previous.dns_status != current.dns_status
    )
    reactivated = (not previous.reachable) and current.reachable
    went_dark = previous.reachable and not current.reachable
    content_changed = (
        current.reachable
        and previous.html_hash != ""
        and current.html_hash != ""
        and previous.html_hash != current.html_hash
    )
    language_changed = (
        bool(previous.lang) and bool(current.lang) and previous.lang != current.lang
    )
    had_sitemap = previous.sitemap_count > 0
    has_sitemap = current.sitemap_count > 0
    sitemap_appeared = has_sitemap and not had_sitemap and current.reachable
    sitemap_jumped = (
        had_sitemap
        and has_sitemap
        and current.sitemap_size - previous.sitemap_size >= SITEMAP_JUMP_BYTES
    )
    keywords_changed = (
        current.reachable
        and bool(previous.keywords)
        and previous.keywords != current.keywords
    )
    return ChangeEvent(
        fqdn=current.fqdn,
        previous=previous,
        current=current,
        dns_changed=dns_changed,
        reactivated=reactivated,
        went_dark=went_dark,
        content_changed=content_changed,
        language_changed=language_changed,
        sitemap_appeared=sitemap_appeared,
        sitemap_jumped=sitemap_jumped,
        keywords_changed=keywords_changed,
    )
