"""Detector scoring against ground truth (reproduction extension).

The paper validates its detections by manual inspection and victim
notification; it cannot measure recall because real ground truth is
unknowable.  The simulation knows every takeover that actually
happened, so the detector can be scored properly — including detection
latency (time from takeover to first flag).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.core.detection import AbuseDataset
from repro.world.ground_truth import GroundTruthLog


@dataclass
class DetectionScore:
    """Precision/recall/latency of the detector."""

    true_positives: int
    false_positives: int
    false_negatives: int
    latencies_days: List[float]

    @property
    def precision(self) -> float:
        detected = self.true_positives + self.false_positives
        return self.true_positives / detected if detected else 1.0

    @property
    def recall(self) -> float:
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def median_latency_days(self) -> Optional[float]:
        if not self.latencies_days:
            return None
        ordered = sorted(self.latencies_days)
        return ordered[len(ordered) // 2]


def score_detector(dataset: AbuseDataset, ground_truth: GroundTruthLog) -> DetectionScore:
    """Compare detected FQDNs against actual takeovers."""
    actual: Set[str] = set(ground_truth.hijacked_fqdns())
    detected: Set[str] = set(dataset.abused_fqdns())
    true_positives = actual & detected
    latencies: List[float] = []
    for fqdn in sorted(true_positives):
        record = dataset.get(fqdn)
        takeover = min(r.taken_over_at for r in ground_truth.records_for(fqdn))
        latency = (record.first_detected - takeover).total_seconds() / 86_400.0
        latencies.append(max(0.0, latency))
    return DetectionScore(
        true_positives=len(true_positives),
        false_positives=len(detected - actual),
        false_negatives=len(actual - detected),
        latencies_days=latencies,
    )
