"""The notification campaign (Section 1, "Ethics and notifications").

The paper notified 300+ affected organizations, who confirmed the
hijacks.  In the simulation, notifying a victim does what it does in
practice: a confirmed owner remediates much sooner than they would have
noticed on their own.  Running a scenario with
``ScenarioConfig.notify_owners`` enabled measures the campaign's effect
on hijack durations — an ablation the paper could not run on itself.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import Dict, List, Optional, Sequence

from repro.dns.names import Name
from repro.sim.events import EventLog
from repro.world.ground_truth import GroundTruthLog
from repro.world.organizations import Asset, Organization


@dataclass(frozen=True)
class NotificationRecord:
    """One notification sent to one victim organization."""

    fqdn: Name
    org_key: str
    sent_at: datetime
    confirmed: bool
    remediation_due: Optional[datetime]


class NotificationCampaign:
    """Sends abuse notifications and tracks owner responses."""

    def __init__(
        self,
        organizations: Sequence[Organization],
        ground_truth: GroundTruthLog,
        events: EventLog,
        rng: random.Random,
        response_delay_days: tuple = (3, 21),
    ):
        self._assets: Dict[Name, Asset] = {}
        self._org_of: Dict[Name, str] = {}
        for org in organizations:
            for asset in org.assets:
                self._assets[asset.fqdn] = asset
                self._org_of[asset.fqdn] = org.key
        self._ground_truth = ground_truth
        self._events = events
        self._rng = rng
        self._response_delay_days = response_delay_days
        self.sent: List[NotificationRecord] = []
        self._notified: set = set()

    def notify(self, fqdns: Sequence[Name], at: datetime) -> List[NotificationRecord]:
        """Notify the owners of newly detected abuses.

        A notification is *confirmed* when the hijack is real (active
        in ground truth — matching the paper, where every notified
        organization confirmed).  Confirmed owners get a near-term
        remediation deadline unless they were about to fix it anyway.
        """
        records: List[NotificationRecord] = []
        for fqdn in fqdns:
            if fqdn in self._notified:
                continue
            self._notified.add(fqdn)
            asset = self._assets.get(fqdn)
            if asset is None:
                continue
            confirmed = any(
                r.active for r in self._ground_truth.records_for(fqdn)
            )
            due = asset.remediation_due
            if confirmed:
                low, high = self._response_delay_days
                response = at + timedelta(days=self._rng.randrange(low, high + 1))
                if due is None or response < due:
                    asset.remediation_due = response
                    due = response
            record = NotificationRecord(
                fqdn=fqdn, org_key=self._org_of.get(fqdn, ""),
                sent_at=at, confirmed=confirmed, remediation_due=due,
            )
            records.append(record)
            self.sent.append(record)
            self._events.record(
                at, "research.notified", fqdn,
                org=record.org_key, confirmed=confirmed,
            )
        return records

    # -- reporting -------------------------------------------------------------

    @property
    def notified_organizations(self) -> int:
        return len({r.org_key for r in self.sent if r.org_key})

    @property
    def confirmed_count(self) -> int:
        return sum(1 for r in self.sent if r.confirmed)

    @property
    def confirmation_rate(self) -> float:
        return self.confirmed_count / len(self.sent) if self.sent else 0.0
