"""The abuse detector: change gating, matching, extraction, records.

Ties the pipeline together (Figure 25): weekly changed states are
checked against the validated signature store; unmatched-but-suspicious
states are queued for signature extraction together with a short
backlog (the same change often lands on different assets weeks apart);
freshly extracted signatures are retrospectively re-run over the whole
snapshot history, which is how the paper back-dates hijacks it learned
to recognise late.  Confirmed matches accumulate into
:class:`AbuseRecord` entries with open/closed abuse episodes, the unit
every Section 4-6 analysis consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.content.vocab import Topic
from repro.core.changes import ChangeEvent
from repro.core.keywords import abuse_vocabulary_hits, classify_topic, tokenize
from repro.core.monitoring import SnapshotFeatures, SnapshotStore
from repro.core.sigindex import SignatureIndex, external_hosts
from repro.core.signatures import (
    BenignCorpus,
    ExtractorConfig,
    Signature,
    SignatureExtractor,
    facade_markers,
    page_tokens,
)
from repro.dns.names import Name
from repro.obs import OBS
from repro.sim.clock import month_key


@dataclass
class DetectorConfig:
    """Detector behaviour knobs."""

    #: How long unmatched suspicious states stay eligible for clustering.
    backlog_window: timedelta = timedelta(weeks=8)
    #: Cap on the benign validation corpus (memory/validation cost).
    benign_corpus_cap: int = 4000
    #: Sitemap entry count that alone makes a page suspicious.
    bulk_sitemap_count: int = 300
    #: Use the inverted signature/posting indexes for matching and
    #: retrospective rescans.  The indexed path is byte-identical to
    #: the linear scan (same matches, same order, same exports); the
    #: flag exists for the parity tests and the benchmark baseline.
    use_index: bool = True
    extractor: ExtractorConfig = field(default_factory=ExtractorConfig)


@dataclass
class AbuseEpisode:
    """One contiguous period an FQDN served matching abuse content."""

    started_at: datetime
    last_matched: datetime
    ended_at: Optional[datetime] = None

    @property
    def open(self) -> bool:
        return self.ended_at is None

    def duration_days(self, now: Optional[datetime] = None) -> float:
        """Episode lifespan in days, right-censored at ``now`` if open.

        ``now`` must come from the *simulation* clock (e.g. the
        scenario's ``result.end``).  Passing ``datetime.now()`` would
        measure a 2020-anchored simulated episode against today's wall
        clock and report a nonsense multi-year duration, so tz-aware
        datetimes — the signature of ``datetime.now(timezone.utc)`` —
        are rejected, as is omitting ``now`` while the episode is open.
        """
        if now is not None and now.tzinfo is not None:
            raise ValueError(
                "duration_days(now=...) takes a naive simulation-clock "
                "datetime (e.g. the scenario's result.end); a tz-aware "
                f"value ({now.isoformat()}) looks like wall-clock time"
            )
        end = self.ended_at or now
        if end is None:
            raise ValueError(
                "episode still open: pass now= from the simulation clock "
                "(e.g. result.end) to right-censor it — never "
                "datetime.now(), which measures wall-clock time against "
                "simulated timestamps"
            )
        return max(0.0, (end - self.started_at).total_seconds() / 86_400.0)


@dataclass
class AbuseRecord:
    """Everything detected about one abused FQDN."""

    fqdn: Name
    first_detected: datetime
    episodes: List[AbuseEpisode] = field(default_factory=list)
    signature_ids: Set[str] = field(default_factory=set)
    indicator_combinations: Set[FrozenSet[str]] = field(default_factory=set)
    topics: Set[Topic] = field(default_factory=set)
    keywords: Set[str] = field(default_factory=set)
    max_sitemap_count: int = -1
    max_sitemap_size: int = -1
    match_count: int = 0

    @property
    def currently_abused(self) -> bool:
        return bool(self.episodes) and self.episodes[-1].open

    @property
    def last_matched(self) -> datetime:
        return self.episodes[-1].last_matched if self.episodes else self.first_detected

    def simplest_indicators(self) -> FrozenSet[str]:
        """The smallest component combination that identified this FQDN.

        This is the Figure 2 bucketing unit: a domain identifiable with
        just keywords counts as "keywords", one that needed keywords
        plus infrastructure counts as that pair, and so on.
        """
        if not self.indicator_combinations:
            return frozenset()
        return min(self.indicator_combinations, key=lambda c: (len(c), sorted(c)))


class AbuseDataset:
    """The detector's output: records keyed by FQDN."""

    def __init__(self) -> None:
        self._records: Dict[Name, AbuseRecord] = {}
        #: month -> cumulative abused-FQDN count (Figure 1 overlay).
        self.monthly_cumulative: Dict[str, int] = {}

    def get(self, fqdn: Name) -> Optional[AbuseRecord]:
        return self._records.get(fqdn)

    def get_or_create(self, fqdn: Name, at: datetime) -> AbuseRecord:
        record = self._records.get(fqdn)
        if record is None:
            record = AbuseRecord(fqdn=fqdn, first_detected=at)
            self._records[fqdn] = record
        return record

    def records(self) -> List[AbuseRecord]:
        return [self._records[k] for k in sorted(self._records)]

    def abused_fqdns(self) -> List[Name]:
        return sorted(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, fqdn: Name) -> bool:
        return fqdn in self._records

    def snapshot_month(self, at: datetime) -> None:
        self.monthly_cumulative[month_key(at)] = len(self._records)


def indicator_breakdown(dataset: AbuseDataset) -> List[Tuple[str, int, float]]:
    """Figure 2: % of detected hijacks per indicator-type combination.

    Each abused FQDN is bucketed by the *smallest* signature-component
    combination that identified it (keywords alone, keywords+sitemap,
    keywords+infrastructure, template, ...).
    """
    counts: Dict[str, int] = {}
    for record in dataset.records():
        combo = record.simplest_indicators()
        label = "+".join(sorted(combo)) if combo else "(none)"
        counts[label] = counts.get(label, 0) + 1
    total = len(dataset) or 1
    return sorted(
        ((label, count, count / total) for label, count in counts.items()),
        key=lambda row: -row[1],
    )


def topic_breakdown(dataset: AbuseDataset) -> List[Tuple[str, int, float]]:
    """Figure 3: content classification of hijacked domains by topic."""
    counts: Dict[str, int] = {}
    for record in dataset.records():
        if record.topics:
            for topic in record.topics:
                counts[topic.value] = counts.get(topic.value, 0) + 1
        else:
            counts["(unclassified)"] = counts.get("(unclassified)", 0) + 1
    total = sum(counts.values()) or 1
    return sorted(
        ((label, count, count / total) for label, count in counts.items()),
        key=lambda row: -row[1],
    )


class AbuseDetector:
    """Weekly driver of matching and signature extraction."""

    def __init__(
        self,
        store: SnapshotStore,
        config: Optional[DetectorConfig] = None,
        whois=None,
    ):
        self.store = store
        self.config = config or DetectorConfig()
        self.benign = BenignCorpus()
        self.extractor = SignatureExtractor(self.benign, self.config.extractor, whois=whois)
        self.signatures: List[Signature] = []
        #: Inverted candidate index over ``signatures``; kept in sync
        #: lazily (see :meth:`_match_existing`) so code that appends to
        #: the public list directly stays correct.
        self.sig_index = SignatureIndex()
        self.dataset = AbuseDataset()
        #: Unmatched-but-suspicious sightings awaiting clustering,
        #: keyed by (fqdn, state_key) so the same observable state
        #: re-queued across weeks is held once — the value keeps the
        #: newest sighting time (which is what the pruning horizon
        #: should measure) and its features.
        self._backlog: Dict[Tuple[Name, Tuple], Tuple[datetime, SnapshotFeatures]] = {}

    # -- weekly entry point ----------------------------------------------------------

    def process_week(self, changes: Sequence[ChangeEvent], at: datetime) -> List[Name]:
        """Process one week of changes; returns newly flagged FQDNs."""
        newly_flagged: List[Name] = []
        unmatched_suspicious: List[SnapshotFeatures] = []

        for change in changes:
            features = change.current
            if change.first_observation and features.reachable:
                self._maybe_add_benign(features)
            matched = self._match_existing(features)
            if matched:
                if OBS.enabled:
                    OBS.metrics.inc("detector.signature_matches", len(matched))
                if self._record_match(features, matched, at):
                    newly_flagged.append(features.fqdn)
                continue
            self._maybe_close_episode(change, at)
            if self._is_suspicious(change):
                unmatched_suspicious.append(features)

        self._prune_backlog(at)
        for features in unmatched_suspicious:
            # Re-sighting an already queued state refreshes its clock
            # (newest sighting wins) without duplicating it — the same
            # FQDN re-queued every week must not pile identical entries
            # into extraction and double-count in cluster support.
            self._backlog[(features.fqdn, features.state_key())] = (at, features)
        new_signatures = self.extractor.extract(
            [f for _, f in self._backlog.values()], at
        )
        for signature in new_signatures:
            self.signatures.append(signature)
            self.sig_index.sync(self.signatures)
            newly_flagged.extend(self._rescan_history(signature))
        if new_signatures:
            self._drop_matched_backlog()
            if OBS.enabled:
                OBS.metrics.inc("detector.signatures_extracted", len(new_signatures))
        flagged = sorted(set(newly_flagged))
        if flagged and OBS.enabled:
            OBS.metrics.inc("detector.newly_flagged", len(flagged))
        self.dataset.snapshot_month(at)
        return flagged

    # -- matching ---------------------------------------------------------------------

    def _match_existing(
        self, features: SnapshotFeatures
    ) -> List[Tuple[Signature, FrozenSet[str]]]:
        """All signatures matching ``features``, in extraction order.

        The default path asks the :class:`SignatureIndex` which
        signatures share at least one required component token with the
        page and verifies only those; with ``use_index`` off it is the
        paper-faithful linear scan.  Both return the same list.
        """
        if not self.config.use_index:
            matches = []
            for signature in self.signatures:
                components = signature.match(features)
                if components is not None:
                    matches.append((signature, components))
            return matches
        if not self.signatures:
            return []
        if len(self.sig_index) != len(self.signatures):
            self.sig_index.sync(self.signatures)
        if not features.reachable:
            # No signature can match an unreachable state; skip even
            # the candidate lookup (Signature.match would refuse each).
            return []
        tokens = page_tokens(features)
        hosts = external_hosts(features)
        markers = facade_markers(features)
        candidate_ids = self.sig_index.candidates(tokens, hosts, markers)
        matches = []
        for sig_id in candidate_ids:
            signature = self.signatures[sig_id]
            components = signature.match(
                features, tokens=tokens, hosts=hosts, markers=markers
            )
            if components is not None:
                matches.append((signature, components))
        if OBS.enabled:
            OBS.metrics.inc("detector.index.lookups")
            OBS.metrics.inc("detector.index.candidates", len(candidate_ids))
            OBS.metrics.inc(
                "detector.index.pruned", len(self.signatures) - len(candidate_ids)
            )
        return matches

    def _record_match(
        self,
        features: SnapshotFeatures,
        matches: List[Tuple[Signature, FrozenSet[str]]],
        at: datetime,
        observed_at: Optional[datetime] = None,
    ) -> bool:
        when = observed_at or features.at
        is_new = features.fqdn not in self.dataset
        record = self.dataset.get_or_create(features.fqdn, when)
        record.first_detected = min(record.first_detected, when)
        if record.episodes and record.episodes[-1].open:
            episode = record.episodes[-1]
            episode.last_matched = max(episode.last_matched, when)
            episode.started_at = min(episode.started_at, when)
        else:
            record.episodes.append(AbuseEpisode(started_at=when, last_matched=when))
        for signature, components in matches:
            record.signature_ids.add(signature.signature_id)
            record.indicator_combinations.add(components)
        # Truncate in sorted order: ``list(frozenset)[:40]`` keeps an
        # arbitrary hash-ordered subset, which varies per PYTHONHASHSEED
        # and leaks into the keyword/topic exports.
        record.keywords |= set(sorted(features.keywords)[:40])
        topic = classify_topic(page_tokens(features))
        if topic is None and features.sitemap_sample:
            # Facade indexes hide the real content; the generated page
            # names in the sitemap reveal the topic (Section 3.2's
            # "behind the error pages were thousands of other pages").
            slug_text = " ".join(
                url.split("//", 1)[-1].split("/", 1)[-1].replace("-", " ")
                .replace("_", " ").replace(".html", "")
                for url in features.sitemap_sample
            )
            topic = classify_topic(set(tokenize(slug_text)))
        if topic is not None:
            record.topics.add(topic)
        record.max_sitemap_count = max(record.max_sitemap_count, features.sitemap_count)
        record.max_sitemap_size = max(record.max_sitemap_size, features.sitemap_size)
        record.match_count += 1
        return is_new

    def _maybe_close_episode(self, change: ChangeEvent, at: datetime) -> None:
        record = self.dataset.get(change.fqdn)
        if record is None or not record.currently_abused:
            return
        # The FQDN changed state and no signature matches anymore: the
        # abuse ended (owner fixed the record, or content was replaced).
        record.episodes[-1].ended_at = change.current.at

    # -- suspicion gating ---------------------------------------------------------------

    def _is_suspicious(self, change: ChangeEvent) -> bool:
        features = change.current
        if not features.reachable:
            return False
        triggered = change.any_change or change.first_observation
        if not triggered:
            return False
        tokens = page_tokens(features)
        return (
            abuse_vocabulary_hits(tokens) > 0
            or bool(facade_markers(features))
            or features.sitemap_count >= self.config.bulk_sitemap_count
        )

    # -- benign corpus ---------------------------------------------------------------------

    def _maybe_add_benign(self, features: SnapshotFeatures) -> None:
        if len(self.benign) >= self.config.benign_corpus_cap:
            return
        # Analyst-verified benign assets: first sighting, no spam
        # vocabulary, no facade, human-scale sitemap.
        if abuse_vocabulary_hits(page_tokens(features)) > 0:
            return
        if facade_markers(features):
            return
        if features.sitemap_count >= self.config.bulk_sitemap_count:
            return
        self.benign.add(features)

    # -- retrospective scanning ----------------------------------------------------------------

    def _rescan_history(self, signature: Signature) -> List[Name]:
        """Run a new signature over everything already collected.

        States are replayed chronologically per FQDN, and if the abuse
        state has since been replaced by one that matches nothing (the
        owner fixed the record), the reconstructed episode is closed at
        that state's first sighting — retrospective detection must not
        resurrect remediated hijacks as ongoing.

        With ``use_index`` on, the store's posting index narrows the
        walk to FQDNs whose history contains at least one of the
        signature's anchor tokens; everything else cannot match and is
        skipped without changing any output (``None`` from the index
        means "cannot prune" and falls back to the full walk).
        """
        flagged: List[Name] = []
        fqdns = self.store.fqdns()
        if self.config.use_index:
            total = len(fqdns)
            candidates = self.store.rescan_candidates(signature)
            if candidates is None:
                if OBS.enabled:
                    OBS.metrics.inc("rescan.fallbacks")
            else:
                fqdns = [fqdn for fqdn in fqdns if fqdn in candidates]
                if OBS.enabled:
                    OBS.metrics.inc("rescan.skipped", total - len(fqdns))
            if OBS.enabled:
                OBS.metrics.inc("rescan.signatures")
                OBS.metrics.inc("rescan.visited", len(fqdns))
        for fqdn in fqdns:
            history = self.store.history(fqdn)
            matches = [signature.match(state.features) for state in history]
            if not any(components is not None for components in matches):
                continue
            for state, components in zip(history, matches):
                if components is None:
                    continue
                if self._record_match(
                    state.features, [(signature, components)], state.first_seen,
                    observed_at=state.first_seen,
                ):
                    flagged.append(fqdn)
            record = self.dataset.get(fqdn)
            last_hit = max(
                index for index, components in enumerate(matches)
                if components is not None
            )
            if (
                record is not None
                and record.currently_abused
                and last_hit < len(history) - 1
            ):
                successor = history[last_hit + 1]
                episode = record.episodes[-1]
                # Close only when the successor postdates the episode's
                # last live match: the open episode may belong to a
                # *different* signature that matched later states, and
                # back-dating ``ended_at`` below ``last_matched`` would
                # fabricate negative durations (Figures 15/16).
                if (
                    successor.first_seen >= episode.last_matched
                    and not self._match_existing(successor.features)
                ):
                    episode.ended_at = successor.first_seen
        return flagged

    # -- backlog ----------------------------------------------------------------------------------

    def _prune_backlog(self, at: datetime) -> None:
        horizon = at - self.config.backlog_window
        self._backlog = {
            key: (t, f) for key, (t, f) in self._backlog.items() if t >= horizon
        }

    def _drop_matched_backlog(self) -> None:
        self._backlog = {
            key: (t, f)
            for key, (t, f) in self._backlog.items()
            if not self._match_existing(f)
        }
