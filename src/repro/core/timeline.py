"""Per-FQDN incident timelines.

Reconstructs the full chronology of one hijack from the externally
visible traces — cloud provisioning/release events, the dangling
window, the takeover, certificate issuance, detection, notification and
remediation — the narrative a forensic write-up (or the paper's Figure
16 bars) tells about each victim.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import List, Optional

from repro.core.detection import AbuseDataset
from repro.core.scenario import ScenarioResult
from repro.dns.names import Name
from repro.sim.events import EventLog


@dataclass(frozen=True)
class TimelineEntry:
    """One step in a hijack's life."""

    at: datetime
    stage: str
    detail: str = ""


@dataclass
class IncidentTimeline:
    """The ordered chronology of one abused FQDN."""

    fqdn: Name
    entries: List[TimelineEntry]

    def stage_at(self, stage: str) -> Optional[datetime]:
        """Timestamp of the first entry of ``stage``, or ``None``."""
        for entry in self.entries:
            if entry.stage == stage:
                return entry.at
        return None

    @property
    def stages(self) -> List[str]:
        return [entry.stage for entry in self.entries]

    def gap_days(self, earlier: str, later: str) -> Optional[float]:
        """Days between two stages, or ``None`` if either is missing."""
        start = self.stage_at(earlier)
        end = self.stage_at(later)
        if start is None or end is None:
            return None
        return (end - start).total_seconds() / 86_400.0

    def render(self) -> str:
        """A human-readable chronology."""
        lines = [f"Incident timeline — {self.fqdn}"]
        for entry in self.entries:
            detail = f"  ({entry.detail})" if entry.detail else ""
            lines.append(f"  {entry.at.date()}  {entry.stage}{detail}")
        return "\n".join(lines)


def build_timeline(result: ScenarioResult, fqdn: Name) -> IncidentTimeline:
    """Assemble the chronology of one FQDN from all recorded traces."""
    entries: List[TimelineEntry] = []
    events: EventLog = result.internet.events

    for event in events.query(kind="world.dangling", subject=fqdn):
        entries.append(TimelineEntry(event.at, "record-dangled",
                                     f"service {event.data.get('service', '?')}"))
    for event in events.query(kind="attacker.takeover"):
        if fqdn == event.subject or fqdn in event.data.get("victims", ()):
            entries.append(TimelineEntry(event.at, "taken-over",
                                         f"by {event.data.get('group', '?')}"))
    for event in events.query(kind="pki.issued", subject=fqdn):
        owner = str(event.data.get("owner", ""))
        stage = (
            "fraudulent-certificate" if owner.startswith("attacker:")
            else "certificate-issued"
        )
        entries.append(TimelineEntry(event.at, stage, event.data.get("issuer", "")))
    record = result.dataset.get(fqdn)
    if record is not None:
        entries.append(TimelineEntry(record.first_detected, "detected",
                                     "+".join(sorted(record.simplest_indicators()))))
        for episode in record.episodes:
            if episode.ended_at is not None:
                entries.append(TimelineEntry(episode.ended_at, "abuse-ended"))
    for event in events.query(kind="research.notified", subject=fqdn):
        entries.append(TimelineEntry(event.at, "owner-notified",
                                     "confirmed" if event.data.get("confirmed") else ""))
    for event in events.query(kind="world.remediated", subject=fqdn):
        entries.append(TimelineEntry(event.at, "remediated"))
    entries.sort(key=lambda e: (e.at, e.stage))
    return IncidentTimeline(fqdn=fqdn, entries=entries)


def build_all_timelines(result: ScenarioResult) -> List[IncidentTimeline]:
    """Timelines for every detected abuse, ordered by first detection."""
    timelines = [
        build_timeline(result, record.fqdn) for record in result.dataset.records()
    ]
    timelines.sort(key=lambda t: t.stage_at("detected") or datetime.max)
    return timelines
