"""The paper's methodology: collection, monitoring, detection, analysis.

This package is the primary contribution being reproduced — everything
else in :mod:`repro` is substrate.  The pipeline mirrors Figure 25:

1. **Collection** (:mod:`repro.core.collection`): Algorithm 1 filters
   candidate FQDNs down to cloud-pointing ones via CNAME suffixes and
   provider IP ranges, with passive-DNS subdomain expansion.
2. **Monitoring** (:mod:`repro.core.monitoring`): weekly HTTP/S samples
   of index HTML and sitemap per FQDN (at most two requests, per the
   paper's ethics protocol), deduplicated into content states.
3. **Detection** (:mod:`repro.core.detection`,
   :mod:`repro.core.signatures`, :mod:`repro.core.keywords`): change
   detection, signature extraction from co-changing asset clusters,
   benign-corpus validation, and signature matching.
4. **Analysis** (the remaining modules): every table and figure of
   Sections 4-6.

:mod:`repro.core.scenario` drives a full three-year world end to end.
"""

from repro.core.collection import FqdnCollector, collect_fqdns
from repro.core.detection import AbuseDataset, AbuseDetector, AbuseRecord
from repro.core.monitoring import MonitorConfig, SnapshotFeatures, SnapshotStore, WeeklyMonitor
from repro.core.scenario import ScenarioConfig, ScenarioResult, run_scenario

__all__ = [
    "collect_fqdns",
    "FqdnCollector",
    "MonitorConfig",
    "SnapshotFeatures",
    "SnapshotStore",
    "WeeklyMonitor",
    "AbuseDetector",
    "AbuseDataset",
    "AbuseRecord",
    "ScenarioConfig",
    "ScenarioResult",
    "run_scenario",
]
