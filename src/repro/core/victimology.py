"""Victim-side breakdowns (Sections 4.1, Figures 4/5/7/8/9/12, Table 6).

Who got hijacked: Tranco-ranked sites, Fortune 500 / Global 500
enterprises, universities, sectors, TLDs, and the split of abused
second-level domains vs subdomains.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.detection import AbuseDataset
from repro.dns.names import registered_domain, tld_of
from repro.world.organizations import Organization, OrgKind


@dataclass
class VictimologyReport:
    """All victim-side aggregates for one abuse dataset."""

    abused_fqdns: int
    abused_slds: int
    sld_level_abuses: int  # abused names that *are* the registered domain
    subdomain_abuses: int
    affected_tlds: int
    tld_counts: List[Tuple[str, int]]
    tranco_covered_fqdns: int
    tranco_covered_share: float
    hijacks_per_tranco_sld: float
    fortune500_total: int
    fortune500_abused: int
    global500_total: int
    global500_abused: int
    universities_abused: int
    sector_counts: List[Tuple[str, int]]
    org_kind_counts: Dict[str, int]
    #: (tranco rank, abused subdomain count) points for Figure 4.
    tranco_rank_points: List[Tuple[int, int]]
    #: Organizations abused via more than one subdomain.
    multi_subdomain_orgs: int
    max_subdomains_per_org: int

    @property
    def fortune500_share(self) -> float:
        return self.fortune500_abused / self.fortune500_total if self.fortune500_total else 0.0

    @property
    def global500_share(self) -> float:
        return self.global500_abused / self.global500_total if self.global500_total else 0.0


def analyze_victims(
    dataset: AbuseDataset, organizations: Sequence[Organization], top_tlds: int = 12
) -> VictimologyReport:
    """Compute every victim-side aggregate."""
    by_domain: Dict[str, Organization] = {org.domain: org for org in organizations}
    abused = dataset.abused_fqdns()

    slds = set()
    sld_level = 0
    tld_counter: Counter = Counter()
    org_hits: Counter = Counter()
    for fqdn in abused:
        sld = registered_domain(fqdn) or fqdn
        slds.add(sld)
        if fqdn == sld or fqdn == f"www.{sld}":
            sld_level += 1
        tld_counter[tld_of(fqdn)] += 1
        org = by_domain.get(sld)
        if org is not None:
            org_hits[org.key] += 1

    orgs_by_key = {org.key: org for org in organizations}
    abused_orgs = [orgs_by_key[k] for k in org_hits]

    fortune_total = sum(1 for o in organizations if o.is_fortune500)
    fortune_abused = sum(1 for o in abused_orgs if o.is_fortune500)
    global_total = sum(1 for o in organizations if o.is_global500)
    global_abused = sum(1 for o in abused_orgs if o.is_global500)
    universities = sum(
        org_hits[o.key] for o in abused_orgs if o.kind == OrgKind.UNIVERSITY
    )
    sector_counter: Counter = Counter()
    kind_counter: Counter = Counter()
    for org in abused_orgs:
        kind_counter[org.kind.value] += org_hits[org.key]
        if org.sector:
            sector_counter[org.sector] += org_hits[org.key]

    tranco_points = sorted(
        (o.tranco_rank, org_hits[o.key])
        for o in abused_orgs
        if o.tranco_rank is not None
    )
    tranco_fqdns = sum(count for _, count in tranco_points)
    tranco_slds = len(tranco_points)

    return VictimologyReport(
        abused_fqdns=len(abused),
        abused_slds=len(slds),
        sld_level_abuses=sld_level,
        subdomain_abuses=len(abused) - sld_level,
        affected_tlds=len(tld_counter),
        tld_counts=tld_counter.most_common(top_tlds),
        tranco_covered_fqdns=tranco_fqdns,
        tranco_covered_share=tranco_fqdns / len(abused) if abused else 0.0,
        hijacks_per_tranco_sld=tranco_fqdns / tranco_slds if tranco_slds else 0.0,
        fortune500_total=fortune_total,
        fortune500_abused=fortune_abused,
        global500_total=global_total,
        global500_abused=global_abused,
        universities_abused=universities,
        sector_counts=sector_counter.most_common(),
        org_kind_counts=dict(kind_counter),
        tranco_rank_points=tranco_points,
        multi_subdomain_orgs=sum(1 for c in org_hits.values() if c > 1),
        max_subdomains_per_org=max(org_hits.values()) if org_hits else 0,
    )


def top_victims(
    dataset: AbuseDataset,
    organizations: Sequence[Organization],
    kind: Optional[OrgKind] = None,
    limit: int = 25,
) -> List[Tuple[Organization, int]]:
    """Figures 7/8/9: the top abused organizations of a kind."""
    by_domain = {org.domain: org for org in organizations}
    hits: Counter = Counter()
    for fqdn in dataset.abused_fqdns():
        sld = registered_domain(fqdn) or fqdn
        org = by_domain.get(sld)
        if org is None:
            continue
        if kind is not None and org.kind != kind:
            continue
        hits[org.key] += 1
    orgs_by_key = {org.key: org for org in organizations}
    ranked = sorted(
        hits.items(),
        key=lambda item: (-item[1], _rank_key(orgs_by_key[item[0]])),
    )
    return [(orgs_by_key[key], count) for key, count in ranked[:limit]]


def _rank_key(org: Organization) -> int:
    for rank in (org.fortune500_rank, org.qs_rank, org.tranco_rank):
        if rank is not None:
            return rank
    return 10**9
