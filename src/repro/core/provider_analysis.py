"""Provider/resource-type breakdowns (Section 4.2/4.3, Tables 2/3, Fig 11).

Which cloud services hosted the abuse, how abuse rates compare to the
monitored base, and the paper's headline structural finding: *every*
hijack exploited a user-nameable (freetext) resource; none exploited a
lottery-assigned IP or a randomly named resource.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cloud.specs import DEFAULT_SERVICE_SPECS, NamingPolicy, spec_by_key
from repro.core.detection import AbuseDataset
from repro.world.ground_truth import GroundTruthLog
from repro.world.organizations import Organization


@dataclass(frozen=True)
class ServiceRow:
    """One row of Table 2 / Table 3."""

    service_key: str
    provider: str
    function: str
    naming: str
    template: str
    monitored: int
    abused: int

    @property
    def abuse_rate(self) -> float:
        return self.abused / self.monitored if self.monitored else 0.0


@dataclass
class ProviderReport:
    """The full provider/resource analysis."""

    rows: List[ServiceRow]
    provider_abuse_counts: List[Tuple[str, int]]  # Figure 11
    freetext_abuses: int
    random_name_abuses: int
    dedicated_ip_abuses: int

    @property
    def all_abuses_user_nameable(self) -> bool:
        """The Section 4.3 invariant: hijacks target freetext names only."""
        return self.random_name_abuses == 0 and self.dedicated_ip_abuses == 0

    def table3_rows(self) -> List[ServiceRow]:
        """Table 3: abused freetext services, most abused first."""
        rows = [
            r for r in self.rows
            if r.naming == NamingPolicy.FREETEXT.value and r.abused > 0
        ]
        return sorted(rows, key=lambda r: -r.abused)


def analyze_providers(
    dataset: AbuseDataset,
    organizations: Sequence[Organization],
    ground_truth: Optional[GroundTruthLog] = None,
) -> ProviderReport:
    """Tally monitored and abused assets per cloud service.

    The *monitored* column comes from the organizations' asset
    portfolios (what the pipeline watches); the *abused* column from
    the detector's dataset, attributed to a service via the asset that
    owns the FQDN.  When ``ground_truth`` is provided, the naming-policy
    split additionally counts actual takeovers (catching any abused
    resource the detector attributed differently).
    """
    asset_service: Dict[str, str] = {}
    monitored: Counter = Counter()
    for org in organizations:
        for asset in org.assets:
            if asset.service_key:
                monitored[asset.service_key] += 1
                asset_service[asset.fqdn] = asset.service_key

    abused: Counter = Counter()
    for fqdn in dataset.abused_fqdns():
        service = asset_service.get(fqdn)
        if service is not None:
            abused[service] += 1

    rows: List[ServiceRow] = []
    for spec in DEFAULT_SERVICE_SPECS:
        rows.append(
            ServiceRow(
                service_key=spec.key,
                provider=spec.provider,
                function=spec.function,
                naming=spec.naming.value,
                template=spec.suffix_template or "(dedicated IP)",
                monitored=monitored.get(spec.key, 0),
                abused=abused.get(spec.key, 0),
            )
        )

    provider_counts: Counter = Counter()
    for row in rows:
        if row.abused:
            provider_counts[row.provider] += row.abused

    naming_counts = {policy: 0 for policy in NamingPolicy}
    source = (
        [(r.resource.spec.naming, 1) for r in ground_truth.all_records()]
        if ground_truth is not None
        else [(spec_by_key(key).naming, count) for key, count in abused.items()]
    )
    for naming, count in source:
        naming_counts[naming] += count

    return ProviderReport(
        rows=rows,
        provider_abuse_counts=provider_counts.most_common(),
        freetext_abuses=naming_counts[NamingPolicy.FREETEXT],
        random_name_abuses=naming_counts[NamingPolicy.RANDOM_NAME],
        dedicated_ip_abuses=naming_counts[NamingPolicy.DEDICATED_IP],
    )
