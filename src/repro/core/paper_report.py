"""One-call generation of the full paper-style analysis report.

``build_report`` runs every Section 4-6 analysis over a finished
scenario and renders them into a single plain-text document — the
library equivalent of the paper's evaluation section.  Used by the CLI
(``python -m repro report``) and the forensics example; returned as a
string so callers can print, save or diff it.
"""

from __future__ import annotations

from typing import List

from repro.core import (
    abuse_volume,
    cert_analysis,
    clustering,
    cookie_analysis,
    duration,
    growth,
    identifiers as identifiers_mod,
    malware_analysis,
    provider_analysis,
    registrar_analysis,
    reputation,
    scoring,
    seo_analysis,
    victimology,
)
from repro.core.ct_monitoring import evaluate_ct_monitoring
from repro.core.detection import indicator_breakdown, topic_breakdown
from repro.core.reporting import percent, render_table
from repro.core.scenario import ScenarioResult
from repro.core.seo_analysis import table1_index_keywords


def build_report(result: ScenarioResult) -> str:
    """Render the complete analysis report for one finished run."""
    internet = result.internet
    now = result.end
    sections: List[str] = []

    score = scoring.score_detector(result.dataset, result.ground_truth)
    points = growth.growth_series(result.collector, result.dataset)
    sections.append(render_table(
        ["metric", "value"],
        [
            ("weeks simulated", result.weeks_run),
            ("monitored cloud FQDNs", result.collector.monitored_count()),
            ("monitored-set growth", f"x{growth.growth_factor(points):.2f}"),
            ("actual takeovers", len(result.ground_truth)),
            ("abused FQDNs detected", len(result.dataset)),
            ("precision / recall", f"{percent(score.precision)} / {percent(score.recall)}"),
        ],
        title="Pipeline (Section 3, Figure 1)",
    ))

    sections.append(render_table(
        ["indicator combination", "domains", "share"],
        [(l, c, percent(s)) for l, c, s in indicator_breakdown(result.dataset)],
        title="Detections by indicator type (Figure 2)",
    ))
    sections.append(render_table(
        ["topic", "domains", "share"],
        [(l, c, percent(s)) for l, c, s in topic_breakdown(result.dataset)],
        title="Content topics (Figure 3)",
    ))
    sections.append(render_table(
        ["keyword", "pages"], table1_index_keywords(result.dataset),
        title="Top index keywords (Table 1)",
    ))

    victims = victimology.analyze_victims(result.dataset, result.organizations)
    sections.append(render_table(
        ["metric", "value"],
        [
            ("abused FQDNs / SLDs", f"{victims.abused_fqdns} / {victims.abused_slds}"),
            ("SLD-level / subdomain", f"{victims.sld_level_abuses} / {victims.subdomain_abuses}"),
            ("TLDs affected", victims.affected_tlds),
            ("Fortune 500 / Global 500 share",
             f"{percent(victims.fortune500_share)} / {percent(victims.global500_share)}"),
            ("university hijacks", victims.universities_abused),
            ("orgs hit more than once", victims.multi_subdomain_orgs),
        ],
        title="Victimology (Section 4.1, Figures 4/5/7/8/9, Table 6)",
    ))

    providers = provider_analysis.analyze_providers(
        result.dataset, result.organizations, result.ground_truth
    )
    sections.append(render_table(
        ["provider", "abuses"], providers.provider_abuse_counts,
        title=(
            "Providers (Section 4.2, Table 2/3, Figure 11) — "
            f"user-nameable invariant: {providers.all_abuses_user_nameable}"
        ),
    ))

    durations = duration.analyze_durations(result.dataset, now)
    sections.append(render_table(
        ["bucket", "episodes", "share"],
        [
            ("<= 15 days", durations.short_lived, percent(durations.short_lived_share)),
            ("16-65 days", durations.medium,
             percent(durations.medium / durations.total if durations.total else 0)),
            ("> 65 days", durations.long_lived, percent(durations.long_lived_share)),
            ("> 1 year", durations.beyond_year, ""),
        ],
        title="Hijack durations (Section 4.4, Figures 15/16)",
    ))

    seo = seo_analysis.analyze_seo(result.dataset, result.monitor.store, internet.client, now)
    volume = abuse_volume.analyze_volume(result.dataset)
    sections.append(render_table(
        ["metric", "value"],
        [
            ("sites with any SEO", percent(seo.seo_share)),
            ("doorway pages (of SEO sites)", percent(seo.doorway_share)),
            ("keyword stuffing (of pages)", percent(seo.keyword_stuffing_page_rate)),
            ("clickjacking sites", seo.clickjacking_sites),
            ("total uploaded files", volume.total_files),
            ("max files on one site", volume.max_files),
        ],
        title="SEO & volume (Section 5.2, Figure 6, Table 5)",
    ))

    rep = reputation.analyze_reputation(
        result.dataset, internet.whois, internet.ct_log, internet.client, now
    )
    certs = cert_analysis.analyze_certificates(result.dataset, internet.ct_log)
    caa = cert_analysis.analyze_caa(result.dataset, internet.zones, internet.ct_log)
    ct = evaluate_ct_monitoring(result.ground_truth, internet.ct_log)
    sections.append(render_table(
        ["metric", "value"],
        [
            ("abused SLDs older than a year", percent(rep.older_than_year_share)),
            ("abused names with certificates", percent(rep.certified_share)),
            ("single-SAN / multi-SAN certs", f"{certs.single_san_total} / {certs.multi_san_total}"),
            ("free-CA share of single-SAN", percent(certs.free_ca_share)),
            ("parents with CAA", percent(caa.caa_share)),
            ("hijacks CT monitoring would catch", percent(ct.coverage)),
        ],
        title="Reputation & certificates (Sections 5.2.3/5.6, Figures 18/20)",
    ))

    malware = result.harvester.report() if result.harvester else None
    cookies = cookie_analysis.correlate_cookie_leaks(result.dataset, internet.darknet)
    blacklist = malware_analysis.analyze_blacklisting(
        result.dataset, internet.virustotal, internet.ct_log
    )
    sections.append(render_table(
        ["metric", "value"],
        [
            ("binaries retrieved (APK/EXE)",
             f"{malware.total} ({malware.apk_count}/{malware.exe_count})" if malware else "-"),
            ("trojan verdicts", malware.trojan_flagged if malware else "-"),
            ("domains flagged by any AV vendor", blacklist.flagged_once),
            ("leaked auth cookies matched", cookies.unique_cookies),
        ],
        title="Malware, blacklists & cookies (Sections 5.4/5.5, Figure 19)",
    ))

    registrars = registrar_analysis.analyze_registrar_diversity(result.dataset, internet.whois)
    imap = identifiers_mod.extract_identifiers(result.dataset, result.monitor.store)
    clusters = clustering.cluster_identifiers(imap)
    largest = clusters.largest
    sections.append(render_table(
        ["metric", "value"],
        [
            ("same-change clusters spanning 2+ registrars",
             percent(registrars.share_spanning_2plus)),
            ("identifiers extracted", sum(imap.unique_counts.values())),
            ("infrastructure clusters", clusters.cluster_count),
            ("largest cluster (ids / domains)",
             f"{largest.identifier_count} / {largest.domain_count}" if largest else "-"),
            ("hijacks covered by identifiers",
             percent(len(clusters.covered_domains()) / len(result.dataset))
             if len(result.dataset) else "-"),
        ],
        title="Attribution (Section 6, Figures 10/21/22/26/27/28)",
    ))

    if result.monetization is not None and len(result.monetization.ledger):
        payouts = result.monetization.ledger.payouts()
        sections.append(render_table(
            ["referral code", "payout (USD)"],
            [(code, round(total, 2)) for code, total in payouts[:10]],
            title="Monetization (Section 5.3, Figure 24)",
        ))

    header = (
        "=" * 72
        + f"\nABUSE MEASUREMENT REPORT — seed {result.config.seed}, "
        f"{result.weeks_run} weeks, {len(result.dataset)} abused FQDNs\n"
        + "=" * 72
    )
    return header + "\n\n" + "\n\n".join(sections) + "\n"
