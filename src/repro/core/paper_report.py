"""One-call generation of the full paper-style analysis report.

``build_report`` runs every Section 4-6 analysis over a finished
scenario and renders them into a single plain-text document — the
library equivalent of the paper's evaluation section.  Used by the CLI
(``python -m repro report``) and the forensics example; returned as a
string so callers can print, save or diff it.

Since the analysis-engine rework this module is a thin composition
over :mod:`repro.analysis`: the analyses run as a task graph (serially
by default, or on a forked pool with ``workers > 1`` — byte-identical
either way), each section renders from its tasks' payloads, and a
failed analysis degrades to an error stanza instead of killing the
report.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.engine import AnalysisRun, run_analyses
from repro.analysis.tasks import render_sections
from repro.core.scenario import ScenarioResult


def build_report(
    result: ScenarioResult,
    workers: int = 1,
    run: Optional[AnalysisRun] = None,
) -> str:
    """Render the complete analysis report for one finished run.

    ``workers`` sizes the analysis pool (1 = the serial parity path);
    callers that already executed the engine — e.g. to also export
    ``--report-json`` — pass their :class:`AnalysisRun` as ``run`` so
    the analyses are not recomputed.
    """
    if run is None:
        run = run_analyses(result, workers=workers)
    sections = render_sections(run, result)
    header = (
        "=" * 72
        + f"\nABUSE MEASUREMENT REPORT — seed {result.config.seed}, "
        f"{result.weeks_run} weeks, {len(result.dataset)} abused FQDNs\n"
        + "=" * 72
    )
    return header + "\n\n" + "\n\n".join(sections) + "\n"
