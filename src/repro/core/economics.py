"""Attacker economics: why freetext names win (Section 4.3).

Quantifies the paper's "financially motivated selection" argument: a
freetext resource takes one registration attempt at free-tier cost; a
specific released IP takes an expected ``free_pool_size`` allocation
rounds of the lottery (discounted by any warm-reuse bias prior work
exploited), each costing instance-time.  The ratio between the two is
the reason the dataset contains zero IP takeovers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.addresses import IPv4Pool, takeover_attempts_expected


@dataclass
class TakeoverCost:
    """Expected cost of acquiring one specific identity."""

    strategy: str
    expected_attempts: float
    cost_per_attempt_usd: float

    @property
    def expected_cost_usd(self) -> float:
        return self.expected_attempts * self.cost_per_attempt_usd


def freetext_cost(registration_cost_usd: float = 0.0) -> TakeoverCost:
    """Deterministic re-registration: one attempt, usually free tier."""
    return TakeoverCost(
        strategy="freetext-reregistration",
        expected_attempts=1.0,
        cost_per_attempt_usd=registration_cost_usd,
    )


def ip_lottery_cost(
    pool: IPv4Pool,
    warm_fraction: float = 0.0,
    cost_per_allocation_usd: float = 0.0047,  # one billing-minimum VM-minute
) -> TakeoverCost:
    """The IP lottery: expected allocations to win one target address."""
    return TakeoverCost(
        strategy="ip-lottery",
        expected_attempts=takeover_attempts_expected(pool, warm_fraction),
        cost_per_attempt_usd=cost_per_allocation_usd,
    )


def simulate_lottery(
    pool: IPv4Pool,
    target_ip: str,
    rng,
    max_attempts: int = 100_000,
) -> int:
    """Empirically play the IP lottery for ``target_ip``.

    Repeats prior work's allocate-check-release strategy ([12], [3])
    until the target address is won or ``max_attempts`` is exhausted.
    Returns the number of allocations performed (``max_attempts`` if
    the attacker gave up).  The target must currently be free.
    """
    if pool.is_allocated(target_ip):
        raise ValueError(f"{target_ip} is currently allocated; nothing to win")
    held = []
    attempts = 0
    try:
        while attempts < max_attempts:
            ip = pool.allocate(rng)
            attempts += 1
            if ip == target_ip:
                return attempts
            # Strategy choice: release immediately (churn) — holding
            # addresses shrinks the free pool but costs linearly more.
            pool.release(ip)
    finally:
        for ip in held:
            pool.release(ip)
    return attempts


def cost_advantage(freetext: TakeoverCost, lottery: TakeoverCost) -> float:
    """How many times cheaper the freetext path is (in attempts).

    Cost ratios degenerate when the freetext path is literally free, so
    the advantage is expressed in expected attempts.
    """
    return lottery.expected_attempts / freetext.expected_attempts
