"""Registrar diversity of abuse clusters (Section 3.2, Figure 10).

To rule out registrar-driven collective changes, the paper groups
abused domains by identical extracted keyword sets and counts the
distinct registrars per cluster: in 89% of multi-domain clusters the
same change spans 2+ registrars (and owners), proving a third party —
not a registrar — made the change.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.core.detection import AbuseDataset
from repro.whois.registry import DomainRegistry


@dataclass
class RegistrarDiversityReport:
    """Cluster-by-registrar-count distribution."""

    cluster_count: int
    multi_domain_clusters: int
    #: registrar-count -> number of multi-domain clusters with >= that many.
    at_least: Dict[int, int]
    share_spanning_2plus: float
    share_spanning_4plus: float

    def curve(self, up_to: int = 8) -> List[Tuple[int, float]]:
        """Figure 10's curve: % clusters spanning >= X registrars."""
        if not self.multi_domain_clusters:
            return [(x, 0.0) for x in range(1, up_to + 1)]
        return [
            (x, self.at_least.get(x, 0) / self.multi_domain_clusters)
            for x in range(1, up_to + 1)
        ]


def cluster_by_signature(dataset: AbuseDataset) -> List[List[str]]:
    """Group abused FQDNs whose content matched the same signatures.

    Matching signature sets proxies "identical change in content", the
    paper's keyword-list grouping.
    """
    clusters: Dict[FrozenSet[str], List[str]] = defaultdict(list)
    for record in dataset.records():
        key = frozenset(record.signature_ids)
        if key:
            clusters[key].append(record.fqdn)
    return [sorted(members) for members in clusters.values()]


def analyze_registrar_diversity(
    dataset: AbuseDataset, whois: DomainRegistry
) -> RegistrarDiversityReport:
    """Count distinct registrars (and owners) per same-change cluster."""
    clusters = cluster_by_signature(dataset)
    multi = 0
    registrar_counts: List[int] = []
    for members in clusters:
        slds = set()
        registrars = set()
        for fqdn in members:
            record = whois.lookup(fqdn)
            if record is not None:
                slds.add(record.domain)
                registrars.add(record.registrar)
        if len(slds) < 2:
            continue
        multi += 1
        registrar_counts.append(len(registrars))

    at_least: Dict[int, int] = {}
    for threshold in range(1, 12):
        at_least[threshold] = sum(1 for c in registrar_counts if c >= threshold)
    return RegistrarDiversityReport(
        cluster_count=len(clusters),
        multi_domain_clusters=multi,
        at_least=at_least,
        share_spanning_2plus=(at_least.get(2, 0) / multi) if multi else 0.0,
        share_spanning_4plus=(at_least.get(4, 0) / multi) if multi else 0.0,
    )
