"""Signature extraction, validation and matching (Section 3.2).

The paper's key methodological move: when groups of monitored assets
change in similar ways within a short window, an analyst inspects the
new content, keywords and structural features are extracted into a
*signature*, the signature is validated against a large benign corpus
(discarded if it matches), and surviving signatures then classify
further changes automatically.

A signature here is a conjunction of up to four component groups —
matching Figure 2's indicator taxonomy:

* ``keywords``: characteristic content tokens;
* ``sitemap``: a bulk-upload fingerprint (entry count / byte size);
* ``infrastructure``: external hosts the page pulls scripts/links from;
* ``template``: facade markers (the "Comming soon" maintenance pages).

All components present on a signature must hit for a match, and the
matched component set is recorded so the Figure 2 breakdown can be
computed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.keywords import abuse_vocabulary_hits
from repro.core.monitoring import SnapshotFeatures

# The token-extraction helpers live in ``repro.core.sigindex`` (below
# the snapshot store in the import graph, so the store's posting index
# can share them); re-exported here because this module is their
# historical home and most call sites import them from it.
from repro.core.sigindex import (  # noqa: F401  (re-exports)
    MAINTENANCE_MARKERS,
    external_hosts,
    facade_markers,
    page_tokens,
)


@dataclass(frozen=True)
class Signature:
    """One validated abuse signature."""

    signature_id: str
    created_at: datetime
    keywords: FrozenSet[str] = frozenset()
    min_keyword_hits: int = 2
    infrastructure: FrozenSet[str] = frozenset()
    sitemap_min_count: int = 0
    sitemap_min_bytes: int = 0
    template_markers: FrozenSet[str] = frozenset()

    @property
    def components(self) -> FrozenSet[str]:
        """Which indicator groups this signature uses (Figure 2 axes)."""
        groups = []
        if self.keywords:
            groups.append("keywords")
        if self.infrastructure:
            groups.append("infrastructure")
        if self.sitemap_min_count or self.sitemap_min_bytes:
            groups.append("sitemap")
        if self.template_markers:
            groups.append("template")
        return frozenset(groups)

    def match(
        self,
        features: SnapshotFeatures,
        *,
        tokens: Optional[FrozenSet[str]] = None,
        hosts: Optional[FrozenSet[str]] = None,
        markers: Optional[FrozenSet[str]] = None,
    ) -> Optional[FrozenSet[str]]:
        """Match the page; returns the component set on success.

        ``tokens``/``hosts``/``markers`` let a caller testing many
        signatures against one page pass the page's component sets in
        precomputed, instead of re-deriving them per signature; omitted
        ones are computed here, so the result is identical either way.
        """
        if not features.reachable:
            return None
        if self.keywords:
            if tokens is None:
                tokens = page_tokens(features)
            hits = len(self.keywords & tokens)
            if hits < min(self.min_keyword_hits, len(self.keywords)):
                return None
        if self.infrastructure:
            if hosts is None:
                hosts = external_hosts(features)
            if not (self.infrastructure & hosts):
                return None
        if self.sitemap_min_count and features.sitemap_count < self.sitemap_min_count:
            return None
        if self.sitemap_min_bytes and features.sitemap_size < self.sitemap_min_bytes:
            return None
        if self.template_markers:
            if markers is None:
                markers = facade_markers(features)
            if not (self.template_markers & markers):
                return None
        return self.components


@dataclass
class BenignCorpus:
    """The validation corpus of known-benign assets (Section 3.2).

    Assembled from cross-sector benign snapshots; a candidate signature
    that matches anything here is discarded as a false-positive risk.
    """

    snapshots: List[SnapshotFeatures] = field(default_factory=list)
    _tokens: Set[str] = field(default_factory=set)
    _hosts: Set[str] = field(default_factory=set)

    def add(self, features: SnapshotFeatures) -> None:
        self.snapshots.append(features)
        self._tokens |= page_tokens(features)
        self._hosts |= external_hosts(features)

    def __len__(self) -> int:
        return len(self.snapshots)

    @property
    def token_universe(self) -> Set[str]:
        """Every token seen on any benign page."""
        return self._tokens

    @property
    def host_universe(self) -> Set[str]:
        return self._hosts

    def matches_any(self, signature: Signature) -> bool:
        """Whether the signature fires on any benign snapshot."""
        return any(signature.match(s) is not None for s in self.snapshots)


@dataclass
class ExtractorConfig:
    """Thresholds for signature extraction."""

    #: Token-set Jaccard similarity for two pages to co-cluster.
    cluster_similarity: float = 0.30
    #: Minimum cluster size before a signature is derived (the paper
    #: requires the same change across multiple assets).
    min_cluster_size: int = 2
    #: A token must appear on this share of cluster pages to be kept.
    keyword_support: float = 0.6
    #: Sitemap entry count that marks a bulk upload.
    bulk_sitemap_count: int = 300
    #: Sitemap byte size that marks a bulk upload.
    bulk_sitemap_bytes: int = 64 * 1024
    #: Minimum abuse-vocabulary hits for the analyst to confirm a
    #: cluster as malicious (the manual-inspection emulation).
    analyst_min_vocab_hits: int = 2
    #: Minimum keyword-component size; smaller keyword sets are too
    #: generic and are dropped from the signature.
    min_keyword_component: int = 3
    #: Registrar rule-out (Section 3.2): a cluster whose domains all
    #: share one registrar and owner is treated as a legitimate
    #: collective change (registrar-managed parking) and discarded.
    require_registrar_diversity: bool = True


class SignatureExtractor:
    """Derives validated signatures from co-changing suspicious pages.

    ``whois`` enables the registrar rule-out: identical changes across
    domains of a *single* registrar/owner (parked-domain rotations,
    registrar landing pages) are legitimate collective changes, not
    abuse (Section 3.2 / Figure 10).
    """

    def __init__(
        self,
        benign: BenignCorpus,
        config: Optional[ExtractorConfig] = None,
        whois=None,
    ):
        self._benign = benign
        self.config = config or ExtractorConfig()
        self._whois = whois
        self._serial = 0

    def extract(
        self, candidates: Sequence[SnapshotFeatures], at: datetime
    ) -> List[Signature]:
        """Cluster candidates and derive one signature per valid cluster."""
        clusters = self._cluster(candidates)
        signatures: List[Signature] = []
        for cluster in clusters:
            if len(cluster) < self.config.min_cluster_size:
                continue
            if self._is_single_registrar_change(cluster):
                continue  # legitimate collective change (Section 3.2)
            signature = self._derive(cluster, at)
            if signature is None:
                continue
            if self._benign.matches_any(signature):
                continue  # validation failure: discard (Section 3.2)
            signatures.append(signature)
        return signatures

    # -- clustering --------------------------------------------------------------

    def _cluster(
        self, candidates: Sequence[SnapshotFeatures]
    ) -> List[List[SnapshotFeatures]]:
        clusters: List[Tuple[Set[str], List[SnapshotFeatures]]] = []
        for features in candidates:
            tokens = set(page_tokens(features))
            placed = False
            for cluster_tokens, members in clusters:
                if _jaccard(tokens, cluster_tokens) >= self.config.cluster_similarity:
                    members.append(features)
                    cluster_tokens |= tokens
                    placed = True
                    break
            if not placed:
                clusters.append((tokens, [features]))
        return [members for _, members in clusters]

    # -- derivation ---------------------------------------------------------------

    def _derive(
        self, cluster: Sequence[SnapshotFeatures], at: datetime
    ) -> Optional[Signature]:
        support = max(2, int(len(cluster) * self.config.keyword_support))
        token_counts: Dict[str, int] = {}
        host_counts: Dict[str, int] = {}
        marker_counts: Dict[str, int] = {}
        for features in cluster:
            for token in page_tokens(features):
                token_counts[token] = token_counts.get(token, 0) + 1
            for host in external_hosts(features):
                host_counts[host] = host_counts.get(host, 0) + 1
            for marker in facade_markers(features):
                marker_counts[marker] = marker_counts.get(marker, 0) + 1

        benign_tokens = self._benign.token_universe
        keywords = frozenset(
            token
            for token, count in token_counts.items()
            if count >= support and token not in benign_tokens
        )
        if len(keywords) < self.config.min_keyword_component:
            keywords = frozenset()  # too generic to be a component
        infrastructure = frozenset(
            host
            for host, count in host_counts.items()
            if count >= support and host not in self._benign.host_universe
        )
        markers = frozenset(
            marker for marker, count in marker_counts.items() if count >= support
        )
        counts = sorted(f.sitemap_count for f in cluster if f.sitemap_count >= 0)
        sizes = sorted(f.sitemap_size for f in cluster if f.sitemap_size >= 0)
        bulk_sitemap = bool(
            counts and counts[len(counts) // 2] >= self.config.bulk_sitemap_count
        ) or bool(sizes and sizes[len(sizes) // 2] >= self.config.bulk_sitemap_bytes)

        # Analyst confirmation: the cluster must look malicious to a
        # human — spam vocabulary, a facade template, or a bulk upload.
        looks_malicious = (
            abuse_vocabulary_hits(keywords) >= self.config.analyst_min_vocab_hits
            or markers
            or bulk_sitemap
        )
        if not looks_malicious:
            return None
        if not keywords and not markers and not infrastructure and not bulk_sitemap:
            return None
        self._serial += 1
        return Signature(
            signature_id=f"sig-{self._serial:04d}",
            created_at=at,
            keywords=keywords,
            infrastructure=infrastructure if (keywords or markers) else frozenset(),
            sitemap_min_count=self.config.bulk_sitemap_count if bulk_sitemap else 0,
            template_markers=markers,
        )


    def _is_single_registrar_change(self, cluster: Sequence[SnapshotFeatures]) -> bool:
        """The paper's benign-change rule-out via registrar diversity.

        Returns True when the cluster spans several registrable domains
        yet all of them share one registrar *and* one owner — the
        fingerprint of a registrar/parking-provider rollout.
        """
        if not self.config.require_registrar_diversity or self._whois is None:
            return False
        domains = {f.fqdn for f in cluster}
        registrars = set()
        owners = set()
        for fqdn in domains:
            record = self._whois.lookup(fqdn)
            if record is None:
                return False  # unknown ownership: cannot rule out abuse
            registrars.add(record.registrar)
            owners.add(record.owner)
        sld_count = len({self._whois.lookup(f).domain for f in domains})
        return sld_count >= 2 and len(registrars) == 1 and len(owners) == 1


def _jaccard(a: Set[str], b: Set[str]) -> float:
    if not a or not b:
        return 0.0
    return len(a & b) / len(a | b)
